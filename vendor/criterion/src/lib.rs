//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build container has no registry access, so this crate implements the
//! subset of the criterion API the bench harness uses: `Criterion` with the
//! builder knobs, `benchmark_group`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and `final_summary`. Timing is a plain
//! warm-up + batched-sample median; each finished benchmark is also written
//! to `target/criterion/<id>/new/estimates.json` in the same shape the real
//! crate uses, so tooling (`scripts/bench.sh`) can harvest medians.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry + measurement configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    results: Vec<BenchResult>,
}

struct BenchResult {
    id: String,
    median_ns: f64,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// CLI filtering/plotting flags are not supported; accepted for
    /// source-compatibility with the real crate.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&mut self) {
        if self.results.is_empty() {
            return;
        }
        println!("\n== criterion (offline stub) summary ==");
        for r in &self.results {
            println!(
                "{:<64} {:>14.1} ns/iter  ({} samples)",
                r.id, r.median_ns, r.samples
            );
        }
    }

    fn record(&mut self, id: String, median_ns: f64, samples: usize) {
        println!("{id:<64} {median_ns:>14.1} ns/iter");
        // The crate's own tests must not leak fake ids into the report dir.
        if !cfg!(test) {
            write_estimates(&id, median_ns);
        }
        self.results.push(BenchResult {
            id,
            median_ns,
            samples,
        });
    }
}

/// Writes `target/criterion/<id>/new/estimates.json` next to the bench
/// executable's `target` directory (falling back to `./target`).
fn write_estimates(id: &str, median_ns: f64) {
    let target = std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(PathBuf::from)
        })
        .unwrap_or_else(|| PathBuf::from("target"));
    let mut dir = target.join("criterion");
    for part in id.split('/') {
        dir.push(part);
    }
    dir.push("new");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = format!(
        "{{\"median\":{{\"point_estimate\":{median_ns}}},\
         \"mean\":{{\"point_estimate\":{median_ns}}}}}"
    );
    let _ = fs::write(dir.join("estimates.json"), json);
}

/// Names a benchmark as `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Accepts both `&str` and [`BenchmarkId`] benchmark names.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        if self.parameter.is_empty() {
            self.function
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            median_ns: 0.0,
            samples: 0,
        };
        f(&mut b);
        self.criterion.record(full, b.median_ns, b.samples);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Runs the measured routine; `iter` performs the whole warm-up + sampling
/// schedule in one call (the closure passed to `bench_function` therefore
/// runs once, not per-sample as in the real crate).
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_end = Instant::now() + self.warm_up;
        let mut warm_iters = 0u64;
        let warm_started = Instant::now();
        loop {
            black_box(routine());
            warm_iters += 1;
            if Instant::now() >= warm_end || warm_iters >= 100_000 {
                break;
            }
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters as f64;

        // Batch size targeting measurement_time / sample_size per batch.
        let batch_budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((batch_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement * 2;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
        self.samples = samples.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("f", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("p", 10), &10usize, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/f");
        assert_eq!(c.results[1].id, "g/p/10");
        assert!(c.results.iter().all(|r| r.median_ns > 0.0));
        c.final_summary();
    }
}
