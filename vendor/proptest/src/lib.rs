//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build container has no registry access, so this crate re-implements
//! exactly the API surface the workspace's property tests use: the
//! `proptest!` macro, `prop_assert*`, `prop_oneof!`, integer-range and
//! `any::<T>()` strategies, tuple strategies, `prop::collection::vec`,
//! `prop_map`/`prop_recursive`, and string strategies for the small
//! character-class regex subset (`[a-z ]{0,8}`, `.{0,60}`, …) the tests
//! rely on.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated inputs instead of a minimised counterexample) and a
//! fixed deterministic seed schedule per test, so failures reproduce
//! run-to-run.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------------

pub mod test_runner {
    /// SplitMix64-based generator; seeded from the test name and case index
    /// so every run explores the same schedule.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

use test_runner::TestRng;

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::*;

    /// Generates random values of `Self::Value`. Unlike the real crate this
    /// is generation-only: there is no value tree and no shrinking.
    pub trait Strategy: Clone + 'static {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone + 'static,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy {
                gen: Rc::new(move |rng| s.generate(rng)),
            }
        }

        /// Ties the recursive knot by expanding `recurse` `depth` times with
        /// the leaf strategy at the bottom (`desired_size` and
        /// `expected_branch_size` only shape distributions in the real
        /// crate, so they are accepted and ignored here).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = recurse(cur).boxed();
            }
            cur
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + 'static>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone + 'static,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased, cheaply clonable strategy (the `prop_recursive` handle).
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: self.gen.clone(),
            }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between alternatives (the `prop_oneof!` backing type).
    pub struct Union<T> {
        arms: Rc<Vec<BoxedStrategy<T>>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T: 'static> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union {
                arms: Rc::new(arms),
            }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    // ----- integer ranges -------------------------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    // ----- tuples ---------------------------------------------------------

    macro_rules! tuple_strategy {
        ($($s:ident : $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    // ----- string patterns ------------------------------------------------

    /// `&str` literals act as generators for the character-class/repetition
    /// regex subset: `[class]{m,n}`, `.{m,n}`, escapes, and plain literals.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    (0x20u8..=0x7e).map(|b| b as char).collect()
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        // `a-z` range (but a trailing `-` is a literal)
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            let hi = chars[i + 1];
                            i += 2;
                            for c in lo..=hi {
                                set.push(c);
                            }
                        } else {
                            set.push(lo);
                        }
                    }
                    i += 1; // closing ']'
                    set
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {m,n} in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().unwrap(),
                        n.trim().parse::<usize>().unwrap(),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().unwrap();
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty character class in pattern");
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let k = rng.below(set.len() as u64) as usize;
                out.push(set[k]);
            }
        }
        out
    }

    // ----- collections ----------------------------------------------------

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> VecStrategy<S> {
        pub fn new(element: S, size: std::ops::Range<usize>) -> Self {
            VecStrategy { element, size }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod collection {
    pub fn vec<S: crate::strategy::Strategy>(
        element: S,
        size: std::ops::Range<usize>,
    ) -> crate::strategy::VecStrategy<S> {
        crate::strategy::VecStrategy::new(element, size)
    }
}

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

pub mod arbitrary {
    use super::*;

    pub trait Arbitrary: Sized + 'static {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> crate::strategy::Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub use arbitrary::any;

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Number of random cases each `proptest!` test runs.
pub const CASES: u64 = 64;

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strat,
                            &mut rng,
                        );
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    let outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs: {}",
                            stringify!($name),
                            inputs,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert! failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert! failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    panic!("prop_assert_eq! failed: {:?} != {:?}", l, r);
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    panic!(
                        "prop_assert_eq! failed: {:?} != {:?}: {}",
                        l, r, format!($($fmt)+)
                    );
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (l, r) => {
                if *l == *r {
                    panic!("prop_assert_ne! failed: both sides are {:?}", l);
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

// ---------------------------------------------------------------------------
// prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let u = (1usize..10).generate(&mut rng);
            assert!((1..10).contains(&u));
        }
    }

    #[test]
    fn string_patterns_match_class_and_len() {
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..200 {
            let s = "[a-c ]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c == ' ' || ('a'..='c').contains(&c)));
            let t = "[ -~]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&t.len()));
            let dot = ".{0,5}".generate(&mut rng);
            assert!(dot.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn escaped_class_members_parse() {
        let mut rng = TestRng::for_case("escapes", 0);
        for _ in 0..100 {
            let s = "[a-z0-9 +*/()<>=$\\[\\]{}.,:;'\"@!-]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(!s.contains('\\'), "escape leaked into output: {s:?}");
        }
    }

    #[test]
    fn oneof_and_recursive_compose() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(i32),
            Node(Box<T>, Box<T>),
        }
        impl T {
            fn leaf_sum(&self) -> i64 {
                match self {
                    T::Leaf(v) => *v as i64,
                    T::Node(a, b) => a.leaf_sum() + b.leaf_sum(),
                }
            }
        }
        let leaf = (0i32..10).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|t| t),
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = TestRng::for_case("recursive", 0);
        for _ in 0..50 {
            // leaves draw from 0..10, so the sum is non-negative
            assert!(tree.generate(&mut rng).leaf_sum() >= 0);
        }
    }

    #[test]
    fn vec_strategy_len_in_range() {
        let mut rng = TestRng::for_case("vec", 0);
        let s = crate::collection::vec(0i32..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
