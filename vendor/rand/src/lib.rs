//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! The workspace declares `rand` but (currently) never uses it; the build
//! container has no registry access, so this placeholder satisfies the
//! manifest. It exposes a tiny deterministic generator in case a future
//! bench wants cheap pseudo-randomness without the real crate.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SmallRng(u64);

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng(seed | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.below(10);
            assert_eq!(x, b.below(10));
            assert!(x < 10);
        }
    }
}
