#!/usr/bin/env sh
# Runs the path-evaluation microbenchmarks and distils the Criterion
# medians into BENCH_path_eval.json at the repo root:
#
#   { "benchmarks": { "<group>/<function>/<param>": <median ns/iter>, ... } }
#
# The vendored criterion stub writes the same estimates.json layout as the
# real crate (target/criterion/<id>/new/estimates.json with
# median.point_estimate in nanoseconds), so this script works with either.

set -eu

cd "$(dirname "$0")/.."

# Start from a clean report dir so entries from earlier runs (or other
# bench binaries) cannot leak into the harvest below.
rm -rf target/criterion

cargo bench -p xqib-bench --bench micro_engine

out=BENCH_path_eval.json
tmp="$out.tmp"

{
    printf '{\n  "benchmarks": {\n'
    first=1
    # Sorted for a stable, diffable report.
    find target/criterion -name estimates.json -path '*/new/*' | sort | while read -r f; do
        id=${f#target/criterion/}
        id=${id%/new/estimates.json}
        median=$(sed -n 's/.*"median":{"point_estimate":\([0-9.eE+-]*\).*/\1/p' "$f")
        [ -n "$median" ] || continue
        if [ "$first" -eq 1 ]; then
            first=0
        else
            printf ',\n'
        fi
        printf '    "%s": %s' "$id" "$median"
    done
    printf '\n  }\n}\n'
} > "$tmp"
mv "$tmp" "$out"

echo "wrote $out:"
cat "$out"
