#!/usr/bin/env sh
# Runs the microbenchmarks and distils the Criterion medians into JSON
# reports at the repo root:
#
#   BENCH_path_eval.json  — path-evaluation microbenchmarks (micro_engine)
#   BENCH_fault_path.json — behind-pipeline retry overhead (fault_path):
#                           fault-free vs 10%-fault throughput
#   BENCH_txn_apply.json  — transactional PUL apply (txn_apply): undo-log
#                           tracking vs untracked baseline, plus worst-case
#                           full rollback (target: <15% tracking overhead)
#   BENCH_wal_apply.json  — durable server tier (wal_apply): ephemeral vs
#                           WAL-journaled update batches, plus recovery
#                           (checkpoint + redo replay) latency
#   BENCH_overload.json   — overload control (overload): ungoverned vs
#                           governed goodput and latency percentiles under
#                           a 2x overload burst, in virtual time (the
#                           bench binary writes this report itself)
#   BENCH_plan_eval.json  — compiled query pipeline (plan_eval): render
#                           route interpreted vs compiled-cold vs
#                           compiled-cached, §7-style path/FLWOR/exists
#                           workloads, early-exit scaling (1k vs 12k
#                           nodes), and governed-capacity delta
#   BENCH_cluster.json    — replicated cluster (cluster_failover):
#                           acked-update throughput, ack latency and
#                           failover blackout for leader-only vs
#                           1-follower vs 2-follower deployments under a
#                           mid-run leader crash, in virtual time (the
#                           bench binary writes this report itself)
#   BENCH_scrub.json      — anti-entropy scrubbing (scrub): latent decay
#                           at rising intensities over a replicated shard
#                           with a mid-run leader crash — corruption
#                           detected/repaired, demotions, read refusals,
#                           acked updates preserved, in virtual time (the
#                           bench binary writes this report itself)
#   BENCH_reshard.json    — online resharding (reshard): the same
#                           steady workload with no topology change vs a
#                           mid-run grow, grow + ring reseed, and
#                           decommission — acked-update latency, 421
#                           fence-chases and migration counters, in
#                           virtual time (the bench binary writes this
#                           report itself)
#   BENCH_fleet.json      — browser fleet (fleet): 100 Elsevier clients
#                           with whole-document caching vs cache-busting
#                           URLs (origin traffic + cache-hit ratio), plus
#                           the full chaos menu over a mixed fleet, in
#                           virtual time (the bench binary writes this
#                           report itself)
#
# Each report has the shape
#
#   { "benchmarks": { "<group>/<function>/<param>": <median ns/iter>, ... } }
#
# The vendored criterion stub writes the same estimates.json layout as the
# real crate (target/criterion/<id>/new/estimates.json with
# median.point_estimate in nanoseconds), so this script works with either.

set -eu

cd "$(dirname "$0")/.."

# Distils target/criterion into $1. The report dir must contain only the
# wanted bench's entries — callers clean it before each run.
harvest() {
    out=$1
    tmp="$out.tmp"
    {
        printf '{\n  "benchmarks": {\n'
        first=1
        # Sorted for a stable, diffable report.
        find target/criterion -name estimates.json -path '*/new/*' | sort | while read -r f; do
            id=${f#target/criterion/}
            id=${id%/new/estimates.json}
            median=$(sed -n 's/.*"median":{"point_estimate":\([0-9.eE+-]*\).*/\1/p' "$f")
            [ -n "$median" ] || continue
            if [ "$first" -eq 1 ]; then
                first=0
            else
                printf ',\n'
            fi
            printf '    "%s": %s' "$id" "$median"
        done
        printf '\n  }\n}\n'
    } > "$tmp"
    mv "$tmp" "$out"
    echo "wrote $out:"
    cat "$out"
}

# Start from a clean report dir so entries from earlier runs (or other
# bench binaries) cannot leak into the harvest.
rm -rf target/criterion
cargo bench -p xqib-bench --bench micro_engine
harvest BENCH_path_eval.json

rm -rf target/criterion
cargo bench -p xqib-bench --bench fault_path
harvest BENCH_fault_path.json

rm -rf target/criterion
cargo bench -p xqib-bench --bench txn_apply
harvest BENCH_txn_apply.json

rm -rf target/criterion
cargo bench -p xqib-bench --bench wal_apply
harvest BENCH_wal_apply.json

rm -rf target/criterion
cargo bench -p xqib-bench --bench plan_eval
harvest BENCH_plan_eval.json

# The overload, cluster, scrub, fleet and reshard experiments measure
# virtual-time goodput/latency, not wall-clock ns/iter, so their binaries
# write BENCH_overload.json / BENCH_cluster.json / BENCH_scrub.json /
# BENCH_fleet.json / BENCH_reshard.json directly (no criterion harvest).
cargo bench -p xqib-bench --bench overload
cargo bench -p xqib-bench --bench cluster_failover
cargo bench -p xqib-bench --bench scrub
cargo bench -p xqib-bench --bench fleet
cargo bench -p xqib-bench --bench reshard
