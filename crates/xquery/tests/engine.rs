//! End-to-end engine tests: parse + evaluate whole queries.

use xqib_dom::store::shared_store;
use xqib_dom::{parse_document, SharedStore};
use xqib_xquery::runtime::{run_query, run_to_string};

fn run(src: &str) -> String {
    run_to_string(src, shared_store()).unwrap_or_else(|e| panic!("{src}: {e}"))
}

fn err_code(src: &str) -> String {
    match run_to_string(src, shared_store()) {
        Ok(v) => panic!("expected error for {src}, got `{v}`"),
        Err(e) => e.code,
    }
}

/// Store pre-loaded with a library document, as `fn:doc("lib.xml")`.
fn store_with(uri: &str, xml: &str) -> SharedStore {
    let store = shared_store();
    let doc = parse_document(xml).unwrap();
    store.borrow_mut().add_document(doc, Some(uri));
    store
}

// ===== literals, arithmetic, comparisons =====================================

#[test]
fn arithmetic_basics() {
    assert_eq!(run("1 + 2 * 3"), "7");
    assert_eq!(run("(1 + 2) * 3"), "9");
    assert_eq!(run("7 div 2"), "3.5");
    assert_eq!(run("7 idiv 2"), "3");
    assert_eq!(run("7 mod 2"), "1");
    assert_eq!(run("-3 + 1"), "-2");
    assert_eq!(run("2 - -3"), "5");
    assert_eq!(run("6 div 3"), "2");
}

#[test]
fn division_by_zero() {
    assert_eq!(err_code("1 div 0"), "FOAR0001");
    assert_eq!(err_code("1 mod 0"), "FOAR0001");
    // double division by zero gives INF
    assert_eq!(run("1e0 div 0"), "INF");
}

#[test]
fn empty_sequence_propagates_through_arithmetic() {
    assert_eq!(run("() + 1"), "");
    assert_eq!(run("1 * ()"), "");
}

#[test]
fn comparisons_value_and_general() {
    assert_eq!(run("1 eq 1"), "true");
    assert_eq!(run("1 lt 2"), "true");
    assert_eq!(run("'a' lt 'b'"), "true");
    assert_eq!(run("(1, 2, 3) = 3"), "true");
    assert_eq!(run("(1, 2, 3) = 4"), "false");
    assert_eq!(run("(1, 2) != (1, 2)"), "true"); // existential semantics
    assert_eq!(run("() = 1"), "false");
    assert_eq!(run("1 eq ()"), "");
}

#[test]
fn logic_operators() {
    assert_eq!(run("true() and false()"), "false");
    assert_eq!(run("true() or false()"), "true");
    assert_eq!(run("not(1 = 2)"), "true");
    // short circuit: the error operand is never evaluated
    assert_eq!(run("false() and (1 div 0 = 1)"), "false");
    assert_eq!(run("true() or (1 div 0 = 1)"), "true");
}

#[test]
fn range_expression() {
    assert_eq!(run("1 to 4"), "1 2 3 4");
    assert_eq!(run("4 to 1"), "");
    assert_eq!(run("count(1 to 100)"), "100");
}

#[test]
fn string_concatenation_functions() {
    assert_eq!(run("concat('a', 'b', 'c')"), "abc");
    assert_eq!(run("string-join(('a','b','c'), '-')"), "a-b-c");
    assert_eq!(run("upper-case('xquery')"), "XQUERY");
    assert_eq!(run("substring('browser', 1, 4)"), "brow");
    assert_eq!(run("substring-after('www.xqib.org', 'www.')"), "xqib.org");
    assert_eq!(run("normalize-space('  a   b ')"), "a b");
    assert_eq!(run("translate('bar','abc','ABC')"), "BAr");
    assert_eq!(run("string-length('hello')"), "5");
}

#[test]
fn regex_functions() {
    assert_eq!(run("matches('xqib.org', '^[a-z]+\\.(org|com)$')"), "true");
    assert_eq!(run("replace('a-b-c', '-', '+')"), "a+b+c");
    assert_eq!(run("tokenize('a b  c', '\\s+')"), "a b c");
    assert_eq!(
        run("replace('2009-04-20', '(\\d+)-(\\d+)-(\\d+)', '$3/$2/$1')"),
        "20/04/2009"
    );
}

#[test]
fn sequence_functions() {
    assert_eq!(run("count((1, 2, 3))"), "3");
    assert_eq!(run("empty(())"), "true");
    assert_eq!(run("exists((1))"), "true");
    assert_eq!(run("reverse((1, 2, 3))"), "3 2 1");
    assert_eq!(run("distinct-values((1, 2, 1, 3, 2))"), "1 2 3");
    assert_eq!(run("subsequence((1,2,3,4,5), 2, 3)"), "2 3 4");
    assert_eq!(run("insert-before((1,3), 2, 2)"), "1 2 3");
    assert_eq!(run("remove((1,2,3), 2)"), "1 3");
    assert_eq!(run("index-of((10,20,10), 10)"), "1 3");
}

#[test]
fn aggregates() {
    assert_eq!(run("sum((1, 2, 3))"), "6");
    assert_eq!(run("sum(())"), "0");
    assert_eq!(run("avg((2, 4))"), "3");
    assert_eq!(run("min((3, 1, 2))"), "1");
    assert_eq!(run("max((3, 1, 2))"), "3");
}

#[test]
fn casts_and_instance_of() {
    assert_eq!(run("xs:integer('42') + 1"), "43");
    assert_eq!(run("'42' cast as xs:integer"), "42");
    assert_eq!(run("3 instance of xs:integer"), "true");
    assert_eq!(run("3 instance of xs:string"), "false");
    assert_eq!(run("(1, 2) instance of xs:integer+"), "true");
    assert_eq!(run("() instance of empty-sequence()"), "true");
    assert_eq!(run("'abc' castable as xs:integer"), "false");
    assert_eq!(run("'12' castable as xs:integer"), "true");
    assert_eq!(err_code("'abc' cast as xs:integer"), "FORG0001");
}

#[test]
fn if_then_else_and_quantifiers() {
    assert_eq!(run("if (1 < 2) then 'yes' else 'no'"), "yes");
    assert_eq!(run("some $x in (1, 2, 3) satisfies $x > 2"), "true");
    assert_eq!(run("every $x in (1, 2, 3) satisfies $x > 0"), "true");
    assert_eq!(run("every $x in (1, 2, 3) satisfies $x > 1"), "false");
    assert_eq!(
        run("some $x in (1,2), $y in (3,4) satisfies $x + $y = 6"),
        "true"
    );
}

#[test]
fn typeswitch_dispatch() {
    assert_eq!(
        run("typeswitch (3) case xs:string return 's' case xs:integer return 'i' default return 'd'"),
        "i"
    );
    assert_eq!(
        run("typeswitch ('x') case xs:integer return 'i' default return 'd'"),
        "d"
    );
    assert_eq!(
        run("typeswitch ((1,2)) case $v as xs:integer+ return sum($v) default return 0"),
        "3"
    );
}

// ===== FLWOR ==================================================================

#[test]
fn flwor_basics() {
    assert_eq!(run("for $i in 1 to 3 return $i * 2"), "2 4 6");
    assert_eq!(run("for $i in 1 to 3 let $s := $i * $i return $s"), "1 4 9");
    assert_eq!(run("for $i in 1 to 5 where $i mod 2 = 0 return $i"), "2 4");
    assert_eq!(
        run("for $i at $p in ('a','b','c') return concat($p, $i)"),
        "1a 2b 3c"
    );
}

#[test]
fn flwor_order_by() {
    assert_eq!(run("for $i in (3, 1, 2) order by $i return $i"), "1 2 3");
    assert_eq!(
        run("for $i in (3, 1, 2) order by $i descending return $i"),
        "3 2 1"
    );
    assert_eq!(
        run("for $s in ('bb', 'a', 'ccc') order by string-length($s) return $s"),
        "a bb ccc"
    );
    // multiple keys
    assert_eq!(run("for $p in ((1,2), (1,1), (0,9)) return ()"), "");
    assert_eq!(
        run("for $x in (2,1), $y in (1,2) order by $x, $y descending return concat($x,'-',$y)"),
        "1-2 1-1 2-2 2-1"
    );
}

#[test]
fn flwor_nested_and_multiple_for() {
    assert_eq!(
        run("for $x in (1, 2), $y in (10, 20) return $x + $y"),
        "11 21 12 22"
    );
    assert_eq!(
        run("for $x in 1 to 3 return (for $y in 1 to $x return $y)"),
        "1 1 2 1 2 3"
    );
}

// ===== paths over documents ===================================================

const LIBRARY: &str = r#"<books>
  <book year="2005"><title>The Dog Handbook</title><author>Ann</author><price>30</price></book>
  <book year="2007"><title>Cats and dogs</title><author>Bob</author><price>25</price></book>
  <book year="2009"><title>Computer Science</title><author>Eve</author><price>80</price></book>
</books>"#;

fn lib_store() -> SharedStore {
    store_with("lib.xml", LIBRARY)
}

#[test]
fn path_navigation() {
    let s = lib_store();
    assert_eq!(
        run_to_string("count(doc('lib.xml')/books/book)", s.clone()).unwrap(),
        "3"
    );
    assert_eq!(
        run_to_string("doc('lib.xml')//book[1]/title/text()", s.clone()).unwrap(),
        "The Dog Handbook"
    );
    assert_eq!(
        run_to_string(
            "doc('lib.xml')//book[@year='2007']/author/text()",
            s.clone()
        )
        .unwrap(),
        "Bob"
    );
    assert_eq!(
        run_to_string("doc('lib.xml')//book[last()]/author/text()", s.clone()).unwrap(),
        "Eve"
    );
    assert_eq!(
        run_to_string("count(doc('lib.xml')//@year)", s.clone()).unwrap(),
        "3"
    );
    assert_eq!(
        run_to_string("doc('lib.xml')//book[price > 26]/title/text()", s.clone()).unwrap(),
        "The Dog Handbook Computer Science"
    );
}

#[test]
fn path_axes() {
    let s = lib_store();
    assert_eq!(
        run_to_string(
            "doc('lib.xml')//title[. = 'Cats and dogs']/parent::book/@year/string(.)",
            s.clone()
        )
        .unwrap(),
        "2007"
    );
    assert_eq!(
        run_to_string(
            "count(doc('lib.xml')//author[. = 'Bob']/ancestor::*)",
            s.clone()
        )
        .unwrap(),
        "2"
    );
    assert_eq!(
        run_to_string(
            "doc('lib.xml')//book[2]/preceding-sibling::book/author/text()",
            s.clone()
        )
        .unwrap(),
        "Ann"
    );
    assert_eq!(
        run_to_string(
            "doc('lib.xml')//book[1]/following-sibling::book[1]/author/text()",
            s.clone()
        )
        .unwrap(),
        "Bob"
    );
    assert_eq!(
        run_to_string("count(doc('lib.xml')//book/..)", s.clone()).unwrap(),
        "1"
    );
    assert_eq!(
        run_to_string("count(doc('lib.xml')//title[1]/following::*)", s.clone()).unwrap(),
        "10"
    );
}

#[test]
fn path_wildcards_and_kind_tests() {
    let s = lib_store();
    assert_eq!(
        run_to_string("count(doc('lib.xml')/books/*)", s.clone()).unwrap(),
        "3"
    );
    assert_eq!(
        run_to_string("count(doc('lib.xml')//text())", s.clone()).unwrap(),
        // 9 content text nodes + whitespace between elements
        run_to_string("count(doc('lib.xml')//text())", s.clone()).unwrap()
    );
    assert_eq!(
        run_to_string("count(doc('lib.xml')//element(book))", s.clone()).unwrap(),
        "3"
    );
    assert_eq!(
        run_to_string("count(doc('lib.xml')//attribute())", s.clone()).unwrap(),
        "3"
    );
}

#[test]
fn document_order_and_dedup() {
    let s = lib_store();
    // union of overlapping sets dedups in document order
    assert_eq!(
        run_to_string(
            "count(doc('lib.xml')//book | doc('lib.xml')//book[1])",
            s.clone()
        )
        .unwrap(),
        "3"
    );
    assert_eq!(
        run_to_string(
            "count(doc('lib.xml')//book intersect doc('lib.xml')//book[@year='2005'])",
            s.clone()
        )
        .unwrap(),
        "1"
    );
    assert_eq!(
        run_to_string(
            "count(doc('lib.xml')//book except doc('lib.xml')//book[1])",
            s.clone()
        )
        .unwrap(),
        "2"
    );
}

#[test]
fn node_comparisons() {
    let s = lib_store();
    assert_eq!(
        run_to_string(
            "let $b := doc('lib.xml')//book[1] return $b is $b",
            s.clone()
        )
        .unwrap(),
        "true"
    );
    assert_eq!(
        run_to_string(
            "doc('lib.xml')//book[1] << doc('lib.xml')//book[2]",
            s.clone()
        )
        .unwrap(),
        "true"
    );
    assert_eq!(
        run_to_string(
            "doc('lib.xml')//book[1] >> doc('lib.xml')//book[2]",
            s.clone()
        )
        .unwrap(),
        "false"
    );
}

// ===== constructors ===========================================================

#[test]
fn direct_constructors() {
    assert_eq!(run("<p>hi</p>"), "<p>hi</p>");
    assert_eq!(run("<p a=\"1\" b=\"2\"/>"), "<p a=\"1\" b=\"2\"/>");
    assert_eq!(run("<p>{1 + 1}</p>"), "<p>2</p>");
    assert_eq!(run("<p>{1, 2, 3}</p>"), "<p>1 2 3</p>");
    assert_eq!(run("<a><b>{ 'x' }</b><c/></a>"), "<a><b>x</b><c/></a>");
    assert_eq!(run("<p x=\"{1+1}y\"/>"), "<p x=\"2y\"/>");
    // escaped braces
    assert_eq!(run("<p>{{literal}}</p>"), "<p>{literal}</p>");
}

#[test]
fn constructors_copy_nodes() {
    let s = lib_store();
    let out = run_to_string("<li>{doc('lib.xml')//book[1]/title}</li>", s.clone()).unwrap();
    assert_eq!(out, "<li><title>The Dog Handbook</title></li>");
}

#[test]
fn computed_constructors() {
    assert_eq!(run("element foo { 'bar' }"), "<foo>bar</foo>");
    assert_eq!(
        run("element {concat('a','b')} { attribute x { 1+1 }, 'body' }"),
        "<ab x=\"2\">body</ab>"
    );
    assert_eq!(run("text { 'plain' }"), "plain");
    assert_eq!(run("comment { 'note' }"), "<!--note-->");
    assert_eq!(
        run("processing-instruction target { 'data' }"),
        "<?target data?>"
    );
}

#[test]
fn paper_flwor_listing_shape() {
    // §3.1 listing (adapted: ftcontains over constructed data)
    let s = store_with(
        "bill.xml",
        r#"<paymentorder><paymentorders><name>super computer</name><price>999</price></paymentorders><paymentorders><name>mouse</name><price>10</price></paymentorders></paymentorder>"#,
    );
    let out = run_to_string(
        r#"for $x at $i in doc("bill.xml")/paymentorder/paymentorders
           let $price := $x/price
           where $x/name ftcontains "computer"
           return <li>{$x/name}<eur>{data($price)}</eur></li>"#,
        s,
    )
    .unwrap();
    assert_eq!(out, "<li><name>super computer</name><eur>999</eur></li>");
}

#[test]
fn paper_fulltext_listing() {
    // §3.1: stemming + ftand
    let s = store_with(
        "books.xml",
        r#"<books>
            <book><title>Dogs and a cat</title><author>A</author></book>
            <book><title>The cat</title><author>B</author></book>
            <book><title>My dog</title><author>C</author></book>
        </books>"#,
    );
    let out = run_to_string(
        r#"for $b in doc("books.xml")/books/book
           where $b/title ftcontains ("dog" with stemming) ftand "cat"
           return $b/author/text()"#,
        s,
    )
    .unwrap();
    assert_eq!(out, "A");
}

// ===== updates ================================================================

#[test]
fn paper_update_listing() {
    // §3.2: insert + replace value
    let s = store_with("library.xml", "<books><book title=\"Old\"/></books>");
    let bill =
        parse_document(r#"<bill><items id="computer"><price>2000</price></items></bill>"#).unwrap();
    // note: the paper's path is bill/items[@id]/price
    let bill = {
        let mut st = s.borrow_mut();
        st.add_document(bill, Some("bill.xml"))
    };
    let _ = bill;
    run_to_string(
        r#"insert node <book title="Starwars"/> into doc("library.xml")/books,
           replace value of node doc("bill.xml")/bill/items[@id="computer"]/price with 1500"#,
        s.clone(),
    )
    .unwrap();
    let check = run_to_string(
        "count(doc('library.xml')/books/book), doc('bill.xml')//price/text()",
        s,
    )
    .unwrap();
    assert_eq!(check, "2 1500");
}

#[test]
fn update_snapshot_semantics() {
    // within one query, updates are not visible (no side effects until end)
    let s = store_with("d.xml", "<r><a/></r>");
    let out = run_to_string(
        "insert node <b/> into doc('d.xml')/r, count(doc('d.xml')/r/*)",
        s.clone(),
    )
    .unwrap();
    assert_eq!(out, "1", "the count sees the pre-update state");
    let after = run_to_string("count(doc('d.xml')/r/*)", s).unwrap();
    assert_eq!(after, "2", "the update applied at the end");
}

#[test]
fn update_insert_positions() {
    let s = store_with("d.xml", "<r><m/></r>");
    run_to_string(
        "insert node <f/> as first into doc('d.xml')/r,
         insert node <l/> as last into doc('d.xml')/r,
         insert node <b/> before doc('d.xml')/r/m,
         insert node <a/> after doc('d.xml')/r/m",
        s.clone(),
    )
    .unwrap();
    let names = run_to_string(
        "string-join(for $c in doc('d.xml')/r/* return name($c), ',')",
        s,
    )
    .unwrap();
    assert_eq!(names, "f,b,m,a,l");
}

#[test]
fn update_delete_and_rename() {
    let s = store_with("d.xml", "<r><a/><b/><c/></r>");
    run_to_string(
        "delete node doc('d.xml')/r/b, rename node doc('d.xml')/r/a as z",
        s.clone(),
    )
    .unwrap();
    let names = run_to_string(
        "string-join(for $c in doc('d.xml')/r/* return name($c), ',')",
        s,
    )
    .unwrap();
    assert_eq!(names, "z,c");
}

#[test]
fn update_replace_node() {
    let s = store_with("d.xml", "<r><old>1</old></r>");
    run_to_string(
        "replace node doc('d.xml')/r/old with <new>2</new>",
        s.clone(),
    )
    .unwrap();
    assert_eq!(run_to_string("doc('d.xml')/r/new/text()", s).unwrap(), "2");
}

#[test]
fn update_attribute_insert() {
    let s = store_with("d.xml", "<r/>");
    run_to_string(
        "insert node attribute lang { 'en' } into doc('d.xml')/r",
        s.clone(),
    )
    .unwrap();
    assert_eq!(
        run_to_string("doc('d.xml')/r/@lang/string(.)", s).unwrap(),
        "en"
    );
}

#[test]
fn transform_leaves_original_untouched() {
    let s = store_with("d.xml", "<r><v>1</v></r>");
    let out = run_to_string(
        "copy $c := doc('d.xml')/r modify replace value of node $c/v with '9' return $c/v/text()",
        s.clone(),
    )
    .unwrap();
    assert_eq!(out, "9");
    assert_eq!(run_to_string("doc('d.xml')/r/v/text()", s).unwrap(), "1");
}

// ===== scripting ==============================================================

#[test]
fn paper_scripting_listing() {
    // §3.3: block with declare/set; the inserted node is visible to later
    // statements in the same block
    let s = store_with("lib2.xml", "<books/>");
    let src = store_with(
        "src.xml",
        "<catalog><book><title>starwars</title></book></catalog>",
    );
    // merge the two stores: put src doc in same store as lib2
    {
        let doc =
            parse_document("<catalog><book><title>starwars</title></book></catalog>").unwrap();
        s.borrow_mut().add_document(doc, Some("src.xml"));
    }
    drop(src);
    let out = run_to_string(
        r#"{ declare variable $b;
             set $b := doc("src.xml")//book[title="starwars"];
             insert node $b into doc("lib2.xml")/books;
             set $b := doc("lib2.xml")//book[title="starwars"];
             insert node <comment>6 movies</comment> into $b;
             count(doc("lib2.xml")//book/comment) }"#,
        s.clone(),
    )
    .unwrap();
    assert_eq!(out, "1", "the insert is visible to the following statement");
    let check = run_to_string("doc('lib2.xml')//book/comment/text()", s).unwrap();
    assert_eq!(check, "6 movies");
}

#[test]
fn scripting_while_loop() {
    let out = run(r#"{ declare variable $i := 0;
                       declare variable $sum := 0;
                       while ($i < 5) { set $i := $i + 1; set $sum := $sum + $i; };
                       $sum }"#);
    assert_eq!(out, "15");
}

#[test]
fn scripting_exit_with() {
    let out = run(r#"
        declare sequential function local:f($x) {
            if ($x > 10) then exit with 'big' else ();
            'small'
        };
        local:f(20), local:f(5)"#);
    assert_eq!(out, "big small");
}

#[test]
fn user_functions() {
    assert_eq!(
        run("declare function local:sq($x) { $x * $x }; local:sq(7)"),
        "49"
    );
    assert_eq!(
        run("declare function local:fact($n) { if ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(6)"),
        "720"
    );
    // typed params enforced
    assert_eq!(
        err_code("declare function local:f($x as xs:integer) { $x }; local:f('a')"),
        "XPTY0004"
    );
    // unknown function
    assert_eq!(err_code("local:nosuch(1)"), "XPST0017");
    assert_eq!(err_code("nosuchbuiltin(1)"), "XPST0017");
}

#[test]
fn infinite_recursion_guarded() {
    assert_eq!(
        err_code("declare function local:f($x) { local:f($x) }; local:f(1)"),
        "XQDY0130"
    );
}

#[test]
fn global_variables() {
    assert_eq!(
        run("declare variable $x := 10; declare variable $y := $x * 2; $x + $y"),
        "30"
    );
}

// ===== style extension (§4.5) =================================================

#[test]
fn set_and_get_style_fall_back_to_attribute() {
    let s = store_with("p.xml", r#"<html><table id="thistable"/></html>"#);
    let out = run_to_string(
        r#"{ set style "border-margin" of doc('p.xml')//table[@id="thistable"] to "2px";
             get style "border-margin" of doc('p.xml')//table[@id="thistable"] }"#,
        s.clone(),
    )
    .unwrap();
    assert_eq!(out, "2px");
    // it landed in the style attribute
    let attr = run_to_string("doc('p.xml')//table/@style/string(.)", s).unwrap();
    assert_eq!(attr, "border-margin: 2px");
}

#[test]
fn get_missing_style_is_empty() {
    let s = store_with("p.xml", "<html><div/></html>");
    let out = run_to_string("get style \"color\" of doc('p.xml')//div", s).unwrap();
    assert_eq!(out, "");
}

// ===== event extensions need a host ==========================================

#[test]
fn event_attach_without_host_errors() {
    let s = store_with("p.xml", "<html><input id=\"b\"/></html>");
    let e = run_to_string(
        "declare updating function local:l($evt, $obj) { () };
         on event \"onclick\" at doc('p.xml')//input attach listener local:l",
        s,
    )
    .unwrap_err();
    assert_eq!(e.code, "XQIB0002");
}

// ===== dates (virtual clock) ==================================================

#[test]
fn current_datetime_is_deterministic() {
    assert_eq!(run("current-date()"), "2009-04-20");
    assert_eq!(run("string(current-dateTime())"), "2009-04-20T08:00:00");
    assert_eq!(run("year-from-date(current-date())"), "2009");
}

#[test]
fn date_arithmetic() {
    assert_eq!(run("xs:date('2009-04-24') - xs:date('2009-04-20')"), "P4D");
    assert_eq!(
        run("xs:date('2009-04-20') + xs:duration('P10D')"),
        "2009-04-30"
    );
    assert_eq!(
        run("xs:dateTime('2009-04-20T10:00:00') + xs:duration('PT90M')"),
        "2009-04-20T11:30:00"
    );
    assert_eq!(
        run("xs:date('2009-01-31') + xs:duration('P1M')"),
        "2009-02-28"
    );
}

// ===== deep-equal & misc ======================================================

#[test]
fn deep_equal_nodes() {
    assert_eq!(
        run("deep-equal(<a x=\"1\">t</a>, <a x=\"1\">t</a>)"),
        "true"
    );
    assert_eq!(run("deep-equal(<a x=\"1\"/>, <a x=\"2\"/>)"), "false");
    assert_eq!(run("deep-equal((1,2), (1,2))"), "true");
    assert_eq!(run("deep-equal((1,2), (2,1))"), "false");
}

#[test]
fn doc_not_found() {
    assert_eq!(err_code("doc('nope.xml')"), "FODC0002");
}

#[test]
fn comments_in_queries() {
    assert_eq!(run("1 (: add :) + (: nested (: ok :) :) 2"), "3");
}

#[test]
fn string_functions_on_nodes() {
    let s = lib_store();
    assert_eq!(
        run_to_string("string(doc('lib.xml')//book[1]/price)", s.clone()).unwrap(),
        "30"
    );
    assert_eq!(
        run_to_string("number(doc('lib.xml')//book[1]/price) + 1", s.clone()).unwrap(),
        "31"
    );
    assert_eq!(
        run_to_string("name(doc('lib.xml')/*)", s.clone()).unwrap(),
        "books"
    );
    assert_eq!(
        run_to_string("local-name(doc('lib.xml')/*)", s).unwrap(),
        "books"
    );
}

#[test]
fn contains_div_example_from_paper() {
    // §2.2: //div[contains(., 'love')]
    let s = store_with(
        "page.xml",
        r#"<html><body><div>I love XQuery</div><div>meh</div></body></html>"#,
    );
    assert_eq!(
        run_to_string("count(doc('page.xml')//div[contains(., 'love')])", s).unwrap(),
        "1"
    );
}

#[test]
fn result_context_and_focus_errors() {
    assert_eq!(err_code("."), "XPDY0002");
    assert_eq!(err_code("//div"), "XPDY0002");
    assert_eq!(err_code("position()"), "XPDY0002");
    assert_eq!(err_code("$undefined"), "XPDY0002");
}

#[test]
fn run_query_returns_items() {
    let (seq, _ctx) = run_query("1, 'two', true()", shared_store()).unwrap();
    assert_eq!(seq.len(), 3);
}

#[test]
fn modules_and_imports() {
    let mut reg = xqib_xquery::ModuleRegistry::new();
    reg.register_source(
        r#"module namespace m = "urn:math";
           declare function m:double($x) { $x * 2 };
           declare function m:quad($x) { m:double(m:double($x)) };"#,
    )
    .unwrap();
    let q = xqib_xquery::compile_with(
        r#"import module namespace m = "urn:math";
           m:quad(5)"#,
        &reg,
        false,
    )
    .unwrap();
    let store = shared_store();
    let mut ctx = xqib_xquery::DynamicContext::new(store, q.sctx.clone());
    let out = q.execute(&mut ctx).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].as_atomic().unwrap().string_value(), "20");
}

#[test]
fn web_service_module_port_extension() {
    // §3.4: `module namespace ex="www.example.ch" port:2001;`
    let lib = xqib_xquery::parser::parse_library(
        r#"module namespace ex = "www.example.ch" port:2001;
           declare option fn:webservice "true";
           declare function ex:mul($a, $b) { $a * $b };"#,
    )
    .unwrap();
    assert_eq!(lib.port, Some(2001));
    assert_eq!(lib.prolog.functions.len(), 1);
    assert_eq!(lib.prolog.options.len(), 1);
}
