//! Conformance-style tests: systematic sweeps over operators, functions,
//! type rules and error codes — one behaviour per case, modelled on the
//! W3C XQuery test-suite style.

use xqib_dom::store::shared_store;
use xqib_dom::SharedStore;
use xqib_xquery::runtime::run_to_string;

fn run(src: &str) -> String {
    run_to_string(src, shared_store()).unwrap_or_else(|e| panic!("{src}: {e}"))
}

fn err(src: &str) -> String {
    match run_to_string(src, shared_store()) {
        Ok(v) => panic!("expected error for `{src}`, got `{v}`"),
        Err(e) => e.code,
    }
}

fn store(xml: &str) -> SharedStore {
    let s = shared_store();
    let d = xqib_dom::parse_document(xml).unwrap();
    s.borrow_mut().add_document(d, Some("t.xml"));
    s
}

fn runs(src: &str, st: &SharedStore) -> String {
    run_to_string(src, st.clone()).unwrap_or_else(|e| panic!("{src}: {e}"))
}

/// Table-driven checker.
fn check_all(cases: &[(&str, &str)]) {
    for (src, expected) in cases {
        assert_eq!(&run(src), expected, "query: {src}");
    }
}

// ===== operators ==============================================================

#[test]
fn numeric_promotion_matrix() {
    check_all(&[
        // integer op integer
        ("1 + 2", "3"),
        ("1 - 2", "-1"),
        ("2 * 3", "6"),
        ("4 div 2", "2"),
        ("5 div 2", "2.5"),
        ("5 idiv 2", "2"),
        ("-5 idiv 2", "-2"),
        ("5 mod 3", "2"),
        ("-5 mod 3", "-2"),
        // decimal involvement
        ("1.5 + 1", "2.5"),
        ("0.1 + 0.2 < 0.4", "true"),
        ("2.5 * 2", "5"),
        // double involvement
        ("1e0 + 1", "2"),
        ("1e300 * 1e300", "INF"),
        ("-1e300 * 1e300", "-INF"),
        // untyped promotion through node content happens via data(); here
        // via literals the rules are direct
        ("xs:untypedAtomic('5') + 1", "6"),
        ("xs:untypedAtomic('5.5') * 2", "11"),
    ]);
    assert_eq!(err("xs:untypedAtomic('five') + 1"), "FORG0001");
    assert_eq!(err("'5' + 1"), "XPTY0004");
}

#[test]
fn comparison_matrix() {
    check_all(&[
        ("1 = 1.0", "true"),
        ("1 eq 1.0", "true"),
        ("1 < 1.5", "true"),
        ("'a' = 'a'", "true"),
        ("'a' != 'b'", "true"),
        ("true() = true()", "true"),
        ("false() lt true()", "true"),
        ("xs:date('2009-01-01') lt xs:date('2009-01-02')", "true"),
        (
            "xs:dateTime('2009-01-01T00:00:00') eq xs:dateTime('2009-01-01T00:00:00')",
            "true",
        ),
        ("xs:time('09:00:00') lt xs:time('10:00:00')", "true"),
        // general comparisons over sequences
        ("(1, 2) = (2, 3)", "true"),
        ("(1, 2) < (0, 1)", "false"),
        ("(1, 2) != 1", "true"),
        ("() != ()", "false"),
    ]);
}

#[test]
fn sequence_operators() {
    check_all(&[
        ("count((1, (2, 3), ()))", "3"), // flattening
        ("(1, 2)[2]", "2"),
        ("(1 to 10)[. mod 2 = 0]", "2 4 6 8 10"),
        ("(1 to 10)[last()]", "10"),
        ("(1 to 5)[position() > 3]", "4 5"),
        ("empty(())", "true"),
        ("empty((()))", "true"),
        ("exists((0))", "true"),
    ]);
}

#[test]
fn effective_boolean_value_rules() {
    check_all(&[
        ("if (()) then 'y' else 'n'", "n"),
        ("if ('') then 'y' else 'n'", "n"),
        ("if ('x') then 'y' else 'n'", "y"),
        ("if (0) then 'y' else 'n'", "n"),
        ("if (0.0e0) then 'y' else 'n'", "n"),
        ("if (-1) then 'y' else 'n'", "y"),
        ("boolean('false')", "true"), // non-empty string!
    ]);
    assert_eq!(err("if ((1, 2)) then 1 else 2"), "FORG0006");
}

#[test]
fn logic_truth_table() {
    check_all(&[
        ("true() and true()", "true"),
        ("true() and false()", "false"),
        ("false() and false()", "false"),
        ("true() or false()", "true"),
        ("false() or false()", "false"),
        ("not(())", "true"),
        ("not('x')", "false"),
    ]);
}

// ===== casts =================================================================

#[test]
fn cast_matrix() {
    check_all(&[
        ("xs:string(12)", "12"),
        ("xs:string(1.5)", "1.5"),
        ("xs:string(true())", "true"),
        ("xs:integer('007')", "7"),
        ("xs:integer(3.99)", "3"),
        ("xs:integer(-3.99)", "-3"),
        ("xs:integer(true())", "1"),
        ("xs:double('1.5e2')", "150"),
        ("xs:double('INF')", "INF"),
        ("xs:boolean('1')", "true"),
        ("xs:boolean(0)", "false"),
        ("xs:decimal('3.14') * 2", "6.28"),
        ("string(xs:date('2009-04-20'))", "2009-04-20"),
        ("string(xs:duration('P1Y2M'))", "P1Y2M"),
        ("string(xs:anyURI('http://x/'))", "http://x/"),
    ]);
    assert_eq!(err("xs:integer('x')"), "FORG0001");
    assert_eq!(err("xs:boolean('maybe')"), "FORG0001");
    assert_eq!(err("xs:date('2009-13-40')"), "FORG0001");
    assert_eq!(err("xs:integer(1e400)"), "FOCA0002"); // INF
}

#[test]
fn castable_matrix() {
    check_all(&[
        ("'3' castable as xs:integer", "true"),
        ("'x' castable as xs:integer", "false"),
        ("'2009-04-20' castable as xs:date", "true"),
        ("'20-04-2009' castable as xs:date", "false"),
        ("() castable as xs:integer?", "true"),
        ("() castable as xs:integer", "false"),
        ("(1, 2) castable as xs:integer", "false"),
    ]);
}

#[test]
fn instance_of_matrix() {
    check_all(&[
        ("1 instance of xs:integer", "true"),
        ("1 instance of xs:decimal", "true"), // subtype
        ("1.5 instance of xs:integer", "false"),
        ("1 instance of item()", "true"),
        ("<a/> instance of element()", "true"),
        ("<a/> instance of element(a)", "true"),
        ("<a/> instance of element(b)", "false"),
        ("<a/> instance of node()", "true"),
        ("<a/> instance of xs:string", "false"),
        ("attribute x { 1 } instance of attribute()", "true"),
        ("text { 'x' } instance of text()", "true"),
        ("comment { 'x' } instance of comment()", "true"),
        ("(1, 2, 3) instance of xs:integer*", "true"),
        ("() instance of xs:integer?", "true"),
        ("() instance of xs:integer+", "false"),
        ("(1, 'a') instance of xs:integer*", "false"),
    ]);
}

#[test]
fn treat_as() {
    assert_eq!(run("(1 treat as xs:integer) + 1"), "2");
    assert_eq!(err("('x' treat as xs:integer)"), "XPDY0050");
}

// ===== F&O sweep ==============================================================

#[test]
fn fo_strings() {
    check_all(&[
        ("substring('12345', 2)", "2345"),
        ("substring('12345', 2, 2)", "23"),
        ("substring('12345', 0)", "12345"),
        ("substring('12345', 1.5, 2.6)", "234"), // spec rounding example
        ("substring-before('tattoo', 'attoo')", "t"),
        ("substring-before('tattoo', 'xxx')", ""),
        ("substring-after('tattoo', 'tat')", "too"),
        ("contains('tattoo', 'att')", "true"),
        ("contains('tattoo', '')", "true"),
        ("starts-with('tattoo', 'tat')", "true"),
        ("ends-with('tattoo', 'too')", "true"),
        ("string-join((), '-')", ""),
        ("string-join(('a'), '-')", "a"),
        ("normalize-space('')", ""),
        ("translate('abcdabc', 'abc', 'AB')", "ABdAB"),
        ("upper-case('Straße')", "STRASSE"),
        ("encode-for-uri('a b/c')", "a%20b%2Fc"),
        ("string-to-codepoints('AB')", "65 66"),
        ("codepoints-to-string((72, 105))", "Hi"),
    ]);
}

#[test]
fn fo_numeric() {
    check_all(&[
        ("abs(-3)", "3"),
        ("abs(3.5)", "3.5"),
        ("ceiling(1.1)", "2"),
        ("floor(1.9)", "1"),
        ("ceiling(-1.1)", "-1"),
        ("floor(-1.1)", "-2"),
        ("round(2.5)", "3"),
        ("round(-2.5)", "-2"), // round half toward +inf
        ("round-half-to-even(2.5)", "2"),
        ("round-half-to-even(3.5)", "4"),
        ("number('12')", "12"),
        ("string(number('x'))", "NaN"),
        ("abs(())", ""),
    ]);
}

#[test]
fn fo_aggregates_edge_cases() {
    check_all(&[
        ("sum(())", "0"),
        ("sum((), 99)", "99"),
        ("sum((1.5, 2.5))", "4"),
        ("avg(())", ""),
        ("min(())", ""),
        ("max((2, 3.5, 1))", "3.5"),
        ("count(())", "0"),
        ("sum((xs:untypedAtomic('3'), 4))", "7"),
    ]);
}

#[test]
fn fo_sequences_edge_cases() {
    check_all(&[
        ("subsequence((1, 2, 3, 4), 0)", "1 2 3 4"),
        ("subsequence((1, 2, 3, 4), 3)", "3 4"),
        ("subsequence((1, 2, 3, 4), 10)", ""),
        ("subsequence((1, 2, 3, 4), 2, 0)", ""),
        ("remove((1, 2, 3), 0)", "1 2 3"),
        ("remove((1, 2, 3), 9)", "1 2 3"),
        ("insert-before((1, 2), 99, 3)", "1 2 3"),
        ("index-of((1, 2, 3), 9)", ""),
        ("reverse(())", ""),
        ("distinct-values((1, 1.0, '1'))", "1 1"),
        ("zero-or-one(())", ""),
        ("exactly-one(5)", "5"),
        ("one-or-more((1, 2))", "1 2"),
    ]);
    assert_eq!(err("zero-or-one((1, 2))"), "FORG0003");
    assert_eq!(err("one-or-more(())"), "FORG0004");
    assert_eq!(err("exactly-one(())"), "FORG0005");
}

#[test]
fn fo_dates() {
    check_all(&[
        ("year-from-date(xs:date('2009-04-20'))", "2009"),
        ("month-from-date(xs:date('2009-04-20'))", "4"),
        ("day-from-date(xs:date('2009-04-20'))", "20"),
        (
            "hours-from-dateTime(xs:dateTime('2009-04-20T13:45:30'))",
            "13",
        ),
        (
            "minutes-from-dateTime(xs:dateTime('2009-04-20T13:45:30'))",
            "45",
        ),
        (
            "seconds-from-dateTime(xs:dateTime('2009-04-20T13:45:30'))",
            "30",
        ),
        // duration arithmetic
        (
            "string(xs:duration('P1D') + xs:duration('PT12H'))",
            "P1DT12H",
        ),
        ("string(xs:duration('P2D') * 2)", "P4D"),
        ("string(xs:duration('P2D') div 2)", "P1D"),
        (
            "string(xs:date('2009-04-20') - xs:date('2009-04-10'))",
            "P10D",
        ),
    ]);
}

#[test]
fn fo_errors_and_trace() {
    assert_eq!(err("error()"), "FOER0000");
    assert_eq!(err("error('XQIB9999', 'custom')"), "XQIB9999");
    assert_eq!(run("trace((1, 2), 'label')"), "1 2");
}

// ===== node functions over a document =========================================

#[test]
fn node_accessors() {
    let s = store(r#"<r xmlns:p="urn:p"><p:a id="1">text</p:a><!--c--><?pi d?></r>"#);
    assert_eq!(runs("name(doc('t.xml')/r/*[1])", &s), "p:a");
    assert_eq!(runs("local-name(doc('t.xml')/r/*[1])", &s), "a");
    assert_eq!(runs("namespace-uri(doc('t.xml')/r/*[1])", &s), "urn:p");
    assert_eq!(runs("name(doc('t.xml')/r/*[1]/@id)", &s), "id");
    assert_eq!(runs("string(doc('t.xml')/r/*[1])", &s), "text");
    assert_eq!(runs("count(doc('t.xml')/r/comment())", &s), "1");
    assert_eq!(
        runs("count(doc('t.xml')/r/processing-instruction())", &s),
        "1"
    );
    assert_eq!(
        runs("count(doc('t.xml')/r/processing-instruction('pi'))", &s),
        "1"
    );
    assert_eq!(
        runs("count(doc('t.xml')/r/processing-instruction('other'))", &s),
        "0"
    );
    assert_eq!(
        runs(
            "declare namespace p = 'urn:p'; count(root(doc('t.xml')//p:a))",
            &s
        ),
        "1"
    );
    assert_eq!(
        runs(
            "declare namespace p = 'urn:p'; \
             root(doc('t.xml')//p:a) instance of document-node()",
            &s
        ),
        "true"
    );
    // `//node-name(.)` is a function step: the first item is the root
    // element's name
    assert_eq!(runs("string(doc('t.xml')//node-name(.))", &s), "r");
}

#[test]
fn axes_comprehensive() {
    let s = store("<a><b1><c1/><c2/></b1><b2><c3><d/></c3></b2></a>");
    let cases: &[(&str, &str)] = &[
        ("count(doc('t.xml')/a/child::*)", "2"),
        ("count(doc('t.xml')//descendant::c3)", "1"),
        ("count(doc('t.xml')/a/descendant::*)", "6"),
        ("count(doc('t.xml')/a/descendant-or-self::*)", "7"),
        ("name(doc('t.xml')//d/parent::*)", "c3"),
        ("count(doc('t.xml')//d/ancestor::*)", "3"),
        ("count(doc('t.xml')//d/ancestor-or-self::*)", "4"),
        ("name(doc('t.xml')//b1/following-sibling::*)", "b2"),
        ("name(doc('t.xml')//b2/preceding-sibling::*)", "b1"),
        ("count(doc('t.xml')//c1/following::*)", "4"),
        ("count(doc('t.xml')//c3/preceding::*)", "3"),
        ("count(doc('t.xml')//d/self::d)", "1"),
        ("count(doc('t.xml')//d/self::x)", "0"),
    ];
    for (q, expected) in cases {
        assert_eq!(&runs(q, &s), expected, "query: {q}");
    }
}

#[test]
fn predicates_on_reverse_axes_count_backwards() {
    let s = store("<a><b/><b/><b/><mark/></a>");
    // preceding-sibling::b[1] is the NEAREST preceding sibling
    assert_eq!(
        runs("count(doc('t.xml')//mark/preceding-sibling::b[1])", &s),
        "1"
    );
    let s2 = store("<a><b id='1'/><b id='2'/><b id='3'/><mark/></a>");
    assert_eq!(
        runs(
            "string(doc('t.xml')//mark/preceding-sibling::b[1]/@id)",
            &s2
        ),
        "3"
    );
    assert_eq!(
        runs(
            "string(doc('t.xml')//mark/preceding-sibling::b[3]/@id)",
            &s2
        ),
        "1"
    );
}

#[test]
fn wildcard_name_tests() {
    let s = store(r#"<r xmlns:p="urn:p" xmlns:q="urn:q"><p:x/><q:x/><y/></r>"#);
    assert_eq!(runs("count(doc('t.xml')/r/*)", &s), "3");
    assert_eq!(runs("count(doc('t.xml')/r/*:x)", &s), "2");
    assert_eq!(
        runs(
            "declare namespace p = 'urn:p'; count(doc('t.xml')/r/p:*)",
            &s
        ),
        "1"
    );
}

#[test]
fn union_intersect_except_laws() {
    let s = store("<a><b/><c/><d/></a>");
    // A ∪ A = A ; A ∩ A = A ; A \ A = ∅
    assert_eq!(runs("count(doc('t.xml')//* | doc('t.xml')//*)", &s), "4");
    assert_eq!(
        runs("count(doc('t.xml')//* intersect doc('t.xml')//*)", &s),
        "4"
    );
    assert_eq!(
        runs("count(doc('t.xml')//* except doc('t.xml')//*)", &s),
        "0"
    );
    // results in document order regardless of operand order
    assert_eq!(
        runs(
            "string-join(for $n in (doc('t.xml')//c | doc('t.xml')//b) return name($n), ',')",
            &s
        ),
        "b,c"
    );
    assert_eq!(err("(1, 2) | (3)"), "XPTY0004");
}

// ===== constructors ============================================================

#[test]
fn constructor_edge_cases() {
    check_all(&[
        // empty enclosed expression yields nothing
        ("<a>{()}</a>", "<a/>"),
        // sequence of atomics space-joined
        ("<a>{1 to 3}</a>", "<a>1 2 3</a>"),
        // mixed text and enclosed
        ("<a>x{1}y</a>", "<a>x1y</a>"),
        // attribute value templates normalise to strings
        ("<a b=\"{(1, 2)}\"/>", "<a b=\"1 2\"/>"),
        // nested constructors
        ("<a>{<b>{<c/>}</b>}</a>", "<a><b><c/></b></a>"),
        // namespace declaration on constructor
        ("count(<p:a xmlns:p=\"urn:p\"/>/self::*)", "1"),
        // computed everything
        (
            "element r { attribute n { 1 }, text { 'v' }, comment { 'c' } }",
            "<r n=\"1\">v<!--c--></r>",
        ),
        // document constructor
        ("count(document { <a/> }/a)", "1"),
    ]);
    // attributes after content is an error
    assert_eq!(
        err("element r { text { 'v' }, attribute n { 1 } }"),
        "XQTY0024"
    );
}

#[test]
fn constructed_nodes_are_new_copies() {
    // the same expression constructs distinct nodes
    assert_eq!(run("<a/> is <a/>"), "false");
    assert_eq!(run("let $x := <a/> return $x is $x"), "true");
    // copied content is detached from the source
    let s = store("<r><v>1</v></r>");
    assert_eq!(
        runs(
            "let $c := <w>{doc('t.xml')/r/v}</w> \
             return $c/v is doc('t.xml')/r/v",
            &s
        ),
        "false"
    );
}

// ===== FLWOR corner cases =======================================================

#[test]
fn flwor_corner_cases() {
    check_all(&[
        // where before any for: constant filter
        ("let $x := 5 where $x > 3 return $x", "5"),
        // let rebinding shadows
        ("let $x := 1 let $x := $x + 1 return $x", "2"),
        // empty input sequence yields empty output
        ("for $x in () return 'never'", ""),
        // order by with empty keys
        (
            "for $x in (3, 1, 2) order by (if ($x = 1) then () else $x) empty least return $x",
            "1 2 3",
        ),
        (
            "for $x in (3, 1, 2) order by (if ($x = 1) then () else $x) empty greatest return $x",
            "2 3 1",
        ),
        // stable order by: ties keep input order
        (
            "for $x in ('b1', 'a1', 'b2', 'a2') order by substring($x, 1, 1) return $x",
            "a1 a2 b1 b2",
        ),
        // at-position with where
        (
            "for $x at $i in ('a', 'b', 'c') where $i mod 2 = 1 return $x",
            "a c",
        ),
    ]);
}

#[test]
fn quantifier_corner_cases() {
    check_all(&[
        ("some $x in () satisfies true()", "false"),
        ("every $x in () satisfies false()", "true"),
        ("some $x in (1, 2, 3) satisfies $x = 2", "true"),
        // nested: some/every interplay
        (
            "every $x in (1, 2) satisfies some $y in (1, 2) satisfies $x = $y",
            "true",
        ),
    ]);
}

// ===== error codes ==============================================================

#[test]
fn static_error_codes() {
    assert_eq!(err("1 +"), "XPST0003");
    assert_eq!(err("for $x return 1"), "XPST0003");
    assert_eq!(err("<a>"), "XPST0003");
    assert_eq!(err("nosuch:fn(1)"), "XPST0081");
    assert_eq!(err("unknownfn(1)"), "XPST0017");
}

#[test]
fn dynamic_error_codes() {
    assert_eq!(err("$nope"), "XPDY0002");
    assert_eq!(err("('a', 'b') eq 'a'"), "XPTY0004");
    assert_eq!(err("count(1, 2)"), "XPST0017"); // wrong arity
}

#[test]
fn update_error_codes() {
    let s = store("<r><a/></r>");
    let e = run_to_string("insert node <x/> into doc('t.xml')//a/text()", s.clone());
    assert!(e.is_err());
    let e = run_to_string("replace node doc('t.xml') with <x/>", s.clone()).unwrap_err();
    assert_eq!(e.code, "XUDY0009", "cannot replace the document root");
    let e = run_to_string("delete node 42", s).unwrap_err();
    assert_eq!(e.code, "XPTY0004");
}

// ===== whitespace & comments in odd places ======================================

#[test]
fn lexical_robustness() {
    check_all(&[
        ("1+2", "3"),
        ("1 (::)+(::) 2", "3"),
        ("  (: leading :) 42  ", "42"),
        ("(1,2,  3)[ 2 ]", "2"),
        ("'it''s'", "it's"),
        ("\"say \"\"hi\"\"\"", "say \"hi\""),
    ]);
}

#[test]
fn deeply_nested_expressions() {
    // parser recursion sanity
    let mut q = String::from("1");
    for _ in 0..15 {
        q = format!("({q} + 1)");
    }
    assert_eq!(run(&q), "16");
    // beyond the guard: a clean error, not a crash
    let mut q = String::from("1");
    for _ in 0..300 {
        q = format!("({q} + 1)");
    }
    assert_eq!(err(&q), "XPST0003");
}

#[test]
fn keywords_usable_as_element_names() {
    // XQuery reserves nothing: these are all valid element names
    check_all(&[
        ("<for/>", "<for/>"),
        ("<if/>", "<if/>"),
        ("<return x=\"1\"/>", "<return x=\"1\"/>"),
        ("count(<event/>/self::event)", "1"),
    ]);
    let s = store("<r><for>1</for><return>2</return></r>");
    assert_eq!(runs("string(doc('t.xml')/r/for)", &s), "1");
    assert_eq!(runs("string(doc('t.xml')/r/return)", &s), "2");
}

#[test]
fn fn_id_over_id_attributes() {
    let s = store(r#"<r><a id="x"/><b id="y"><c id="z"/></b></r>"#);
    assert_eq!(runs("name(id('x', doc('t.xml')))", &s), "a");
    assert_eq!(runs("count(id('x y z', doc('t.xml')))", &s), "3");
    assert_eq!(runs("count(id(('x', 'z'), doc('t.xml')))", &s), "2");
    assert_eq!(runs("count(id('nope', doc('t.xml')))", &s), "0");
    // context-item form
    assert_eq!(runs("doc('t.xml')/r/id('y')/name(.)", &s), "b");
}
