//! Transactional-apply property tests: random primitive sequences crossed
//! with random crash points must always leave the store serializing exactly
//! as it did before the failed apply (all-or-nothing), and a rolled-back
//! store must stay fully usable.
//!
//! Deterministic CI matrix hook: `XQIB_CRASH_SEED` is mixed into every
//! generated seed, so each matrix entry explores a different region of the
//! sequence × crash-point space while any single failure stays reproducible.

use proptest::prelude::*;
use xqib_dom::serialize::serialize_document;
use xqib_dom::{DocId, NodeRef, QName, Store};
use xqib_xquery::pul::{CrashPoint, Pul, UpdatePrimitive};

fn env_seed() -> u64 {
    std::env::var("XQIB_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// splitmix64: a tiny deterministic generator for shaping primitives. The
/// proptest strategies drive the top-level seed; this fans it out.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// `<r><c0>t0</c0> … <c4>t4</c4></r>` plus the element/text node lists the
/// generator draws targets from.
fn build_store() -> (Store, DocId, Vec<NodeRef>, Vec<NodeRef>) {
    let mut s = Store::new();
    let d = s.new_document(None);
    let doc = s.doc_mut(d);
    let root = doc.create_element(QName::local("r"));
    doc.append_child(doc.root(), root).unwrap();
    let mut elems = vec![NodeRef::new(d, root)];
    let mut texts = Vec::new();
    for i in 0..5 {
        let c = doc.create_element(QName::local(format!("c{i}")));
        doc.append_child(root, c).unwrap();
        let t = doc.create_text(format!("t{i}"));
        doc.append_child(c, t).unwrap();
        elems.push(NodeRef::new(d, c));
        texts.push(NodeRef::new(d, t));
    }
    (s, d, elems, texts)
}

/// A random but structurally valid primitive sequence over the fixed tree.
/// Sequences may still fail `check()` (duplicate rename/replace targets) —
/// that is part of the property: a rejected list must also apply nothing.
fn gen_pul(
    store: &mut Store,
    d: DocId,
    elems: &[NodeRef],
    texts: &[NodeRef],
    rng: &mut Rng,
    len: usize,
) -> Pul {
    let mut pul = Pul::new();
    for i in 0..len {
        // elems[0] is the root element; children target it freely, but
        // delete/replace/rename draw from the non-root slice
        let inner = &elems[1..];
        let prim = match rng.below(8) {
            0 => {
                let n = store
                    .doc_mut(d)
                    .create_element(QName::local(format!("new{i}")));
                UpdatePrimitive::InsertInto {
                    target: *rng.pick(elems),
                    children: vec![NodeRef::new(d, n)],
                }
            }
            1 => {
                let n = store.doc_mut(d).create_text(format!("ins{i}"));
                UpdatePrimitive::InsertBefore {
                    anchor: *rng.pick(inner),
                    children: vec![NodeRef::new(d, n)],
                }
            }
            2 => {
                let a = store
                    .doc_mut(d)
                    .create_attribute(QName::local(format!("a{}", rng.below(3))), format!("v{i}"));
                UpdatePrimitive::InsertAttributes {
                    target: *rng.pick(inner),
                    attrs: vec![NodeRef::new(d, a)],
                }
            }
            3 => UpdatePrimitive::Delete {
                target: if rng.below(2) == 0 {
                    *rng.pick(inner)
                } else {
                    *rng.pick(texts)
                },
            },
            4 => UpdatePrimitive::ReplaceValue {
                target: *rng.pick(texts),
                value: format!("rv{i}"),
            },
            5 => UpdatePrimitive::ReplaceElementContent {
                target: *rng.pick(inner),
                text: format!("rec{i}"),
            },
            6 => UpdatePrimitive::Rename {
                target: *rng.pick(inner),
                name: QName::local(format!("ren{i}")),
            },
            _ => {
                let n = store
                    .doc_mut(d)
                    .create_element(QName::local(format!("sub{i}")));
                UpdatePrimitive::ReplaceNode {
                    target: *rng.pick(inner),
                    replacements: vec![NodeRef::new(d, n)],
                }
            }
        };
        pul.push(prim);
    }
    pul
}

fn snapshot(s: &Store) -> Vec<String> {
    (0..s.doc_count())
        .map(|i| serialize_document(s.doc(DocId(i as u32))))
        .collect()
}

proptest! {
    /// Crashing at ANY step of ANY random primitive sequence leaves the
    /// store serializing exactly as before the apply, and the rolled-back
    /// store behaves identically to a fresh one on the next apply.
    #[test]
    fn crashed_apply_round_trips_the_store(
        seed in 0u64..1_000_000,
        len in 1usize..7,
        crash in 0u64..48,
    ) {
        let mixed = seed ^ env_seed();
        let (mut store, d, elems, texts) = build_store();
        let pul = gen_pul(&mut store, d, &elems, &texts, &mut Rng(mixed), len);
        let before = snapshot(&store);

        // the reference run: same seed, fresh store, no crash
        let (mut fresh, fd, felems, ftexts) = build_store();
        let fpul = gen_pul(&mut fresh, fd, &felems, &ftexts, &mut Rng(mixed), len);
        let fresh_outcome = fpul.apply_with_crash(&mut fresh, CrashPoint::none());

        match pul.clone().apply_with_crash(&mut store, CrashPoint::at(crash)) {
            Err(_) => {
                prop_assert_eq!(
                    &snapshot(&store), &before,
                    "rollback must restore the pre-apply serialization"
                );
                // the rolled-back store is not wedged: re-applying without a
                // crash point agrees with the fresh-store reference run
                let retry = pul.apply_with_crash(&mut store, CrashPoint::none());
                prop_assert_eq!(
                    retry.as_ref().err().map(|e| e.code.clone()),
                    fresh_outcome.as_ref().err().map(|e| e.code.clone()),
                    "retry after rollback diverged from a fresh apply"
                );
                if retry.is_ok() {
                    prop_assert_eq!(snapshot(&store), snapshot(&fresh));
                }
            }
            Ok(()) => {
                // crash point past the end of the list: a complete apply,
                // which must agree with the reference run exactly
                prop_assert!(fresh_outcome.is_ok());
                prop_assert_eq!(snapshot(&store), snapshot(&fresh));
            }
        }
    }

    /// Sweeping every crash point of one fixed sequence: each injected
    /// failure reports `XQIB0012` and rolls back completely.
    #[test]
    fn every_crash_point_reports_the_injected_code(seed in 0u64..100_000) {
        let mixed = seed ^ env_seed();
        for crash in 0u64..32 {
            let (mut store, d, elems, texts) = build_store();
            let pul = gen_pul(&mut store, d, &elems, &texts, &mut Rng(mixed), 4);
            let before = snapshot(&store);
            if pul.check().is_err() {
                // conflicting list: apply refuses up front, nothing to sweep
                break;
            }
            match pul.apply_with_crash(&mut store, CrashPoint::at(crash)) {
                Err(e) => {
                    prop_assert_eq!(&e.code, "XQIB0012", "unexpected failure: {}", e);
                    prop_assert_eq!(snapshot(&store), before);
                }
                // past the last step: nothing left to crash
                Ok(()) => break,
            }
        }
    }
}
