//! Property-based tests for the XQuery engine: the evaluator against
//! independent Rust models, on randomly generated inputs.

use proptest::prelude::*;

use xqib_dom::store::shared_store;
use xqib_xquery::functions::regex::Regex;
use xqib_xquery::runtime::run_to_string;

fn run(src: &str) -> String {
    run_to_string(src, shared_store()).unwrap_or_else(|e| panic!("{src}: {e}"))
}

// ----- arithmetic against a Rust model ----------------------------------------

/// A tiny arithmetic expression tree mirrored in Rust and XQuery.
#[derive(Debug, Clone)]
enum Arith {
    Lit(i32),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_xquery(&self) -> String {
        match self {
            Arith::Lit(n) => {
                if *n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                }
            }
            Arith::Add(a, b) => format!("({} + {})", a.to_xquery(), b.to_xquery()),
            Arith::Sub(a, b) => format!("({} - {})", a.to_xquery(), b.to_xquery()),
            Arith::Mul(a, b) => format!("({} * {})", a.to_xquery(), b.to_xquery()),
        }
    }
    fn eval(&self) -> i64 {
        match self {
            Arith::Lit(n) => *n as i64,
            Arith::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Arith::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Arith::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
        }
    }
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = (-100i32..100).prop_map(Arith::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #[test]
    fn arithmetic_matches_rust_model(e in arith_strategy()) {
        prop_assert_eq!(run(&e.to_xquery()), e.eval().to_string());
    }

    #[test]
    fn range_and_count(a in -50i64..50, len in 0i64..60) {
        let b = a + len - 1;
        let out = run(&format!("count({a} to {b})"));
        prop_assert_eq!(out, len.max(0).to_string());
    }

    #[test]
    fn sum_of_range_is_gauss(n in 1i64..200) {
        let out = run(&format!("sum(1 to {n})"));
        prop_assert_eq!(out, (n * (n + 1) / 2).to_string());
    }

    #[test]
    fn reverse_is_involutive(v in prop::collection::vec(-100i64..100, 0..20)) {
        let seq = v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let out = run(&format!("reverse(reverse(({seq})))"));
        let expected = v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn insert_remove_roundtrip(v in prop::collection::vec(0i64..100, 1..15), pos in 1usize..10) {
        let pos = (pos % v.len()).max(1);
        let seq = v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let out = run(&format!("remove(insert-before(({seq}), {pos}, 999), {pos})"));
        let expected = v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn string_length_matches(s in "[a-zA-Z0-9 ]{0,40}") {
        let out = run(&format!("string-length('{s}')"));
        prop_assert_eq!(out, s.chars().count().to_string());
    }

    #[test]
    fn upper_lower_roundtrip_ascii(s in "[a-z ]{0,30}") {
        let out = run(&format!("lower-case(upper-case('{s}'))"));
        prop_assert_eq!(out, s);
    }

    #[test]
    fn concat_agrees_with_rust(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let out = run(&format!("concat('{a}', '{b}')"));
        prop_assert_eq!(out, format!("{a}{b}"));
    }

    #[test]
    fn flwor_filter_matches_model(v in prop::collection::vec(-50i64..50, 0..25), t in -50i64..50) {
        let seq = v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let out = run(&format!("count(for $x in ({seq}) where $x > {t} return $x)"));
        let expected = v.iter().filter(|&&x| x > t).count();
        prop_assert_eq!(out, expected.to_string());
    }

    #[test]
    fn order_by_sorts(v in prop::collection::vec(-100i64..100, 0..25)) {
        let seq = v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let out = run(&format!("for $x in ({seq}) order by $x return $x"));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expected = sorted.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn general_eq_is_existential(v in prop::collection::vec(0i64..20, 0..15), needle in 0i64..20) {
        let seq = v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let out = run(&format!("({seq}) = {needle}"));
        prop_assert_eq!(out, v.contains(&needle).to_string());
    }

    #[test]
    fn distinct_values_matches_set(v in prop::collection::vec(0i64..10, 0..30)) {
        let seq = v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let out = run(&format!("count(distinct-values(({seq})))"));
        let set: std::collections::HashSet<i64> = v.iter().copied().collect();
        prop_assert_eq!(out, set.len().to_string());
    }

    #[test]
    fn integer_cast_roundtrip(n in any::<i32>()) {
        let out = run(&format!("xs:integer(string(({n})))"));
        prop_assert_eq!(out, n.to_string());
    }
}

// ----- regex engine vs std-based oracles ----------------------------------------

proptest! {
    #[test]
    fn literal_patterns_match_contains(hay in "[a-c]{0,12}", needle in "[a-c]{1,4}") {
        let re = Regex::compile(&needle).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn split_then_join_preserves_content(parts in prop::collection::vec("[a-z]{1,5}", 1..6)) {
        let joined = parts.join(",");
        let re = Regex::compile(",").unwrap();
        prop_assert_eq!(re.split(&joined), parts);
    }

    #[test]
    fn replace_all_removes_every_occurrence(hay in "[ab]{0,15}") {
        let re = Regex::compile("a").unwrap();
        let out = re.replace_all(&hay, "");
        prop_assert!(!out.contains('a'));
        prop_assert_eq!(out.len(), hay.chars().filter(|&c| c != 'a').count());
    }

    #[test]
    fn anchored_full_match_equals_equality(s in "[a-z]{0,8}", t in "[a-z]{0,8}") {
        let re = Regex::compile(&format!("^{t}$")).unwrap();
        prop_assert_eq!(re.is_match(&s), s == t);
    }

    #[test]
    fn char_class_matches_model(s in "[a-z0-9]{0,15}") {
        let re = Regex::compile("[0-9]").unwrap();
        prop_assert_eq!(re.is_match(&s), s.chars().any(|c| c.is_ascii_digit()));
    }
}

// ----- date arithmetic ------------------------------------------------------------

proptest! {
    #[test]
    fn date_plus_days_roundtrip(days in -3000i64..3000) {
        use xqib_xdm::Date;
        let base = Date::parse("2009-04-20").unwrap();
        let there = base.plus_days(days);
        let back = there.plus_days(-days);
        prop_assert_eq!(base, back);
        prop_assert_eq!(there.days_since_epoch() - base.days_since_epoch(), days);
    }

    #[test]
    fn datetime_epoch_roundtrip(ms in 0i64..4_102_444_800_000i64) {
        use xqib_xdm::DateTime;
        let dt = DateTime::from_epoch_millis(ms);
        prop_assert_eq!(dt.epoch_millis(), ms);
    }
}

// ----- parser total on random near-queries (never panics) ---------------------------

proptest! {
    #[test]
    fn parser_never_panics(src in "[a-z0-9 +*/()<>=$\\[\\]{}.,:;'\"@!-]{0,60}") {
        // errors are fine; panics and hangs are not
        let _ = xqib_xquery::parser::parse_expr_str(&src);
    }

    #[test]
    fn lexer_never_panics(src in ".{0,60}") {
        let mut lx = xqib_xquery::lexer::Lexer::new(&src);
        for _ in 0..200 {
            match lx.next_token() {
                Ok(t) if t.tok == xqib_xquery::token::Tok::Eof => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
}

// ----- path normalisation: results are in document order, duplicate-free ------
//
// The evaluator elides the per-step sort when it can prove the construction
// already yields document order (see eval/path.rs); these properties check
// that proof against the actual output for random document shapes, random
// mutation prefixes and every axis family.

proptest! {
    #[test]
    fn path_results_are_sorted_and_deduped(
        width in 1usize..4,
        depth in 1usize..4,
        paras in 1usize..4,
        query_ix in 0usize..10,
    ) {
        use std::cmp::Ordering;
        use xqib_xdm::Item;

        fn nested(out: &mut String, width: usize, depth: usize, paras: usize) {
            if depth == 0 {
                for _ in 0..paras {
                    out.push_str("<p a=\"1\">t</p>");
                }
                return;
            }
            for _ in 0..width {
                out.push_str("<s>");
                nested(out, width, depth - 1, paras);
                out.push_str("</s>");
            }
        }
        let mut xml = String::from("<d>");
        nested(&mut xml, width, depth, paras);
        xml.push_str("</d>");

        let queries = [
            "doc('t.xml')//p",
            "doc('t.xml')//s//p",
            "doc('t.xml')//s/s/*",
            "doc('t.xml')//p/@a",
            "(doc('t.xml')//p)[1]/following::*",
            "(doc('t.xml')//p)[last()]/preceding::*",
            "doc('t.xml')//p/ancestor::s",
            "doc('t.xml')//s/descendant-or-self::*",
            "(doc('t.xml')//s, doc('t.xml')//p)/..",
            "doc('t.xml')//p/preceding-sibling::p",
        ];
        let q = queries[query_ix % queries.len()];

        let store = shared_store();
        let doc = xqib_dom::parse_document(&xml).unwrap();
        store.borrow_mut().add_document(doc, Some("t.xml"));
        let (seq, ctx) = xqib_xquery::runtime::run_query(q, store)
            .unwrap_or_else(|e| panic!("{q}: {e}"));
        let nodes: Vec<xqib_dom::NodeRef> = seq
            .iter()
            .map(|i| match i {
                Item::Node(n) => *n,
                Item::Atomic(_) => panic!("{q}: non-node result"),
            })
            .collect();
        let st = ctx.store.borrow();
        for w in nodes.windows(2) {
            prop_assert_eq!(
                xqib_dom::cmp_doc_order(&st, w[0], w[1]),
                Ordering::Less,
                "{} result not strictly ascending", q
            );
        }
    }
}
