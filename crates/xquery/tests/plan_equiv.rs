//! Differential property tests for the compiled query pipeline: across
//! random queries × random documents × random fuel budgets, the plan
//! evaluator (`plan::lower` + `exec`) must be observationally identical to
//! the tree-walking interpreter — same result sequence, same dynamic error
//! codes, same applied-update effects. The single sanctioned divergence is
//! one-sided: under a fuel budget a streamed plan may *succeed* where the
//! interpreter preempts, but whenever it completes it must produce the
//! interpreter's unlimited-fuel answer, and whenever it fails it must fail
//! with the fuel code.
//!
//! Deterministic CI matrix hook: `XQIB_PLAN_SEED` is mixed into every
//! generated seed, so each matrix entry explores a different region of the
//! query space while any single failure stays reproducible.

use proptest::prelude::*;
use xqib_dom::store::shared_store;
use xqib_dom::SharedStore;
use xqib_xquery::plan::lower;
use xqib_xquery::plancache::{compile_plan, static_fingerprint, PlanCache};
use xqib_xquery::runtime::{self, ModuleRegistry};
use xqib_xquery::DynamicContext;

fn env_seed() -> u64 {
    std::env::var("XQIB_PLAN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// splitmix64, same shape as the other fault-matrix suites: proptest
/// drives the top-level seed, this fans it out into shaping decisions.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[self.below(items.len() as u64) as usize]
    }
}

// ----- generators -----------------------------------------------------------

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const IDS: [&str; 3] = ["k1", "k2", "k3"];

/// A small random element tree with attributes and numeric text.
fn gen_doc(rng: &mut Rng) -> String {
    fn node(rng: &mut Rng, out: &mut String, depth: u64) {
        let tag = rng.pick(&TAGS);
        out.push('<');
        out.push_str(tag);
        if rng.below(2) == 0 {
            out.push_str(&format!(" id=\"{}\"", rng.pick(&IDS)));
        }
        out.push('>');
        let kids = rng.below(if depth == 0 { 1 } else { 4 });
        if kids == 0 {
            out.push_str(&rng.below(100).to_string());
        } else {
            for _ in 0..kids {
                node(rng, out, depth - 1);
            }
        }
        out.push_str(&format!("</{tag}>"));
    }
    let mut xml = String::from("<r>");
    for _ in 0..(1 + rng.below(4)) {
        node(rng, &mut xml, 3);
    }
    xml.push_str("</r>");
    xml
}

fn gen_step(rng: &mut Rng) -> String {
    let sep = if rng.below(3) == 0 { "//" } else { "/" };
    let test = match rng.below(6) {
        0 => "*".to_string(),
        1 => "@id".to_string(),
        _ => rng.pick(&TAGS).to_string(),
    };
    let pred = match rng.below(8) {
        0 => "[1]".to_string(),
        1 => "[last()]".to_string(),
        2 => format!("[@id = '{}']", rng.pick(&IDS)),
        3 => format!("[{}]", rng.pick(&TAGS)),
        4 => format!("[position() < {}]", 1 + rng.below(4)),
        _ => String::new(),
    };
    // predicates on attribute steps are legal but rarely interesting
    if test == "@id" {
        format!("{sep}{test}")
    } else {
        format!("{sep}{test}{pred}")
    }
}

fn gen_path(rng: &mut Rng) -> String {
    let mut p = String::from("doc('t.xml')");
    for _ in 0..(1 + rng.below(3)) {
        p.push_str(&gen_step(rng));
    }
    p
}

fn gen_expr(rng: &mut Rng, depth: u64) -> String {
    if depth == 0 {
        return match rng.below(3) {
            0 => rng.below(20).to_string(),
            1 => format!("'{}'", rng.pick(&IDS)),
            _ => gen_path(rng),
        };
    }
    match rng.below(12) {
        0 => format!(
            "{} {} {}",
            gen_expr(rng, depth - 1),
            rng.pick(&["+", "-", "*"]),
            gen_expr(rng, depth - 1)
        ),
        1 => format!("{} to {}", rng.below(8), rng.below(12)),
        2 => format!(
            "{} {} {}",
            gen_expr(rng, depth - 1),
            rng.pick(&["=", "!=", "<", ">="]),
            gen_expr(rng, depth - 1)
        ),
        3 => format!("exists({})", gen_path(rng)),
        4 => format!("empty({})", gen_path(rng)),
        5 => format!("count({})", gen_path(rng)),
        6 => format!("not({})", gen_expr(rng, depth - 1)),
        7 => {
            let src = if rng.below(2) == 0 {
                gen_path(rng)
            } else {
                format!("{} to {}", rng.below(5), rng.below(9))
            };
            let wher = match rng.below(3) {
                0 => format!(" where $v{d}/@id = '{}'", rng.pick(&IDS), d = depth),
                1 => format!(" where $v{d} = $v{d}", d = depth),
                _ => String::new(),
            };
            let order = if rng.below(3) == 0 {
                format!(" order by $v{d} descending", d = depth)
            } else {
                String::new()
            };
            format!(
                "for $v{d} in {src}{wher}{order} return ($v{d}, {})",
                gen_expr(rng, depth - 1),
                d = depth
            )
        }
        8 => format!(
            "if ({}) then {} else {}",
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1)
        ),
        9 => format!(
            "({}, {})",
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1)
        ),
        10 => format!(
            "some $s in {} satisfies $s = {}",
            gen_path(rng),
            gen_expr(rng, depth - 1)
        ),
        _ => format!("sum(({}))", gen_expr(rng, depth - 1)),
    }
}

/// Randomised updating statements over the generated document, exercising
/// the PUL through the compiled pipeline.
fn gen_update(rng: &mut Rng) -> String {
    let target = format!("(doc('t.xml')//{})[1]", rng.pick(&TAGS));
    match rng.below(4) {
        0 => format!("insert node <n{}/> into {target}", rng.below(5)),
        1 => format!("delete node {target}"),
        2 => format!("rename node {target} as 'z{}'", rng.below(5)),
        _ => format!("replace value of node {target} with '{}'", rng.below(50)),
    }
}

// ----- harness --------------------------------------------------------------

fn store_with_doc(xml: &str) -> SharedStore {
    let store = shared_store();
    let doc = xqib_dom::parse_document(xml).expect("generated doc parses");
    store.borrow_mut().add_document(doc, Some("t.xml"));
    store
}

/// Runs on the given engine; returns the rendered result (or the error
/// code) plus the serialized document afterwards (update visibility).
fn run(
    src: &str,
    xml: &str,
    fuel: Option<u64>,
    use_plan: bool,
) -> (Result<String, String>, String) {
    let store = store_with_doc(xml);
    let result = (|| {
        let q = runtime::compile(src).map_err(|e| e.code)?;
        let mut ctx = DynamicContext::new(store.clone(), q.sctx.clone());
        ctx.set_fuel(fuel);
        let r = if use_plan {
            lower(&q).execute(&mut ctx)
        } else {
            q.execute(&mut ctx)
        };
        r.map(|seq| runtime::render_sequence(&ctx, &seq))
            .map_err(|e| e.code)
    })();
    let after = {
        let s = store.borrow();
        let id = s.doc_by_uri("t.xml").expect("doc survives");
        xqib_dom::serialize::serialize_document(s.doc(id))
    };
    (result, after)
}

proptest! {
    /// Unlimited fuel: results, error codes, and document effects all
    /// match, item for item.
    #[test]
    fn compiled_matches_interpreter(seed in any::<u64>()) {
        let mut rng = Rng(seed ^ env_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let xml = gen_doc(&mut rng);
        let q = gen_expr(&mut rng, 3);
        let (ir, idoc) = run(&q, &xml, None, false);
        let (cr, cdoc) = run(&q, &xml, None, true);
        prop_assert_eq!(&ir, &cr, "result divergence on `{}` over {}", q, xml);
        prop_assert_eq!(&idoc, &cdoc, "document divergence on `{}`", q);
    }

    /// Updating statements: the applied pending-update list leaves both
    /// stores serializing identically.
    #[test]
    fn update_effects_match(seed in any::<u64>()) {
        let mut rng = Rng(seed ^ env_seed().wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let xml = gen_doc(&mut rng);
        let q = format!("{}, 0", gen_update(&mut rng));
        let (ir, idoc) = run(&q, &xml, None, false);
        let (cr, cdoc) = run(&q, &xml, None, true);
        prop_assert_eq!(&ir, &cr, "update result divergence on `{}`", q);
        prop_assert_eq!(&idoc, &cdoc, "update effect divergence on `{}` over {}", q, xml);
    }

    /// Fuel budgets: the compiled engine either reproduces the oracle's
    /// unlimited-fuel answer or raises the preemption code — never a
    /// third thing. (Streaming may legitimately *save* fuel; it must never
    /// spend less and answer differently.)
    #[test]
    fn budgeted_run_is_oracle_result_or_preemption(seed in any::<u64>()) {
        let mut rng = Rng(seed ^ env_seed().wrapping_mul(0x94D0_49BB_1331_11EB));
        let xml = gen_doc(&mut rng);
        let q = gen_expr(&mut rng, 3);
        let budget = 1 + rng.below(3000);
        let (oracle, _) = run(&q, &xml, None, false);
        let (budgeted, _) = run(&q, &xml, Some(budget), true);
        match &budgeted {
            Err(code) if code == "XQIB0011" => {}
            other => prop_assert_eq!(
                other, &oracle,
                "budgeted divergence on `{}` with {} fuel", q, budget
            ),
        }
        // the same one-sided contract holds for the interpreter itself
        let (ibudgeted, _) = run(&q, &xml, Some(budget), false);
        match &ibudgeted {
            Err(code) if code == "XQIB0011" => {}
            other => prop_assert_eq!(other, &oracle, "interpreter budget contract on `{}`", q),
        }
    }
}

/// The plan-cache invalidation regression: a cached plan must not survive
/// a static-context change. Re-registering a module under the same URI
/// changes the fingerprint, so the stale plan (which baked in the old
/// function body) stops matching.
#[test]
fn cached_plan_does_not_survive_static_context_change() {
    let mut reg = ModuleRegistry::new();
    reg.register_source(
        r#"module namespace m = "urn:v";
           declare function m:v() { 1 };"#,
    )
    .unwrap();
    let src = r#"import module namespace m = "urn:v"; m:v()"#;
    let mut cache = PlanCache::new(8);

    let run_cached = |cache: &mut PlanCache, reg: &ModuleRegistry| {
        let fp = static_fingerprint(reg, false);
        let plan = cache
            .get_or_compile(src, fp, || compile_plan(src, reg, false))
            .unwrap();
        let mut ctx = DynamicContext::new(shared_store(), plan.static_context().clone());
        let out = plan.execute(&mut ctx).unwrap();
        runtime::render_sequence(&ctx, &out)
    };

    assert_eq!(run_cached(&mut cache, &reg), "1");
    assert_eq!(run_cached(&mut cache, &reg), "1");
    assert_eq!(cache.stats().hits, 1, "second lookup is a cache hit");

    // the static context changes: same URI, new function body
    reg.register_source(
        r#"module namespace m = "urn:v";
           declare function m:v() { 2 };"#,
    )
    .unwrap();
    assert_eq!(
        run_cached(&mut cache, &reg),
        "2",
        "stale plan served after module re-registration"
    );
    assert_eq!(cache.stats().hits, 1, "new fingerprint must miss");

    // explicit epoch invalidation also recompiles
    cache.invalidate();
    assert_eq!(run_cached(&mut cache, &reg), "2");
    assert_eq!(cache.stats().invalidations, 1);
    assert_eq!(cache.stats().misses, 3);
}
