//! Abstract syntax for XQuery 1.0 plus the Update Facility, the Scripting
//! Extension, Full-Text, and the paper's browser extensions (§4.3–4.5).

use std::rc::Rc;

use xqib_dom::QName;
use xqib_xdm::{Atomic, CompOp, SequenceType, TypeName};

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
}

/// Node comparison operators (`is`, `<<`, `>>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeCompOp {
    Is,
    Precedes,
    Follows,
}

/// XPath axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    Child,
    Descendant,
    Attribute,
    SelfAxis,
    DescendantOrSelf,
    FollowingSibling,
    Following,
    Parent,
    Ancestor,
    PrecedingSibling,
    Preceding,
    AncestorOrSelf,
}

impl Axis {
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::PrecedingSibling
                | Axis::Preceding
                | Axis::AncestorOrSelf
        )
    }
}

/// Node tests within a step.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// `*`
    AnyName,
    /// `name` / `p:name`
    Name(QName),
    /// `p:*`
    NsWildcard(String),
    /// `*:local`
    LocalWildcard(String),
    /// kind tests: `node()`, `text()`, `element(x)?`, …
    Kind(KindTest),
}

/// Kind tests.
#[derive(Debug, Clone, PartialEq)]
pub enum KindTest {
    AnyKind,
    Text,
    Comment,
    Pi(Option<String>),
    Element(Option<QName>),
    Attribute(Option<QName>),
    Document,
}

/// An axis step: `axis::test[preds]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisStep {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Expr>,
}

/// One step in a relative path.
#[derive(Debug, Clone, PartialEq)]
pub enum StepExpr {
    Axis(AxisStep),
    /// A primary expression used as a step (e.g. `$doc/foo`, `id("x")/bar`),
    /// with trailing predicates.
    Filter {
        primary: Box<Expr>,
        predicates: Vec<Expr>,
    },
}

/// How a path starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStart {
    /// `/...` — from the root of the context node's tree.
    Root,
    /// `//...`
    RootDescendant,
    /// relative path
    Relative,
}

/// FLWOR clauses.
#[derive(Debug, Clone, PartialEq)]
pub enum FlworClause {
    For {
        var: QName,
        at: Option<QName>,
        ty: Option<SequenceType>,
        seq: Expr,
    },
    Let {
        var: QName,
        ty: Option<SequenceType>,
        expr: Expr,
    },
    Where(Expr),
    OrderBy {
        specs: Vec<OrderSpec>,
        stable: bool,
    },
}

/// One `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    pub key: Expr,
    pub descending: bool,
    pub empty_least: bool,
}

/// `some`/`every` quantifier kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    Some,
    Every,
}

/// Content of a direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum ElemContent {
    /// literal character data
    Text(String),
    /// `{ expr }`
    Enclosed(Expr),
    /// nested constructor or other expression-valued child
    Child(Expr),
}

/// Content of an attribute value template: literal and enclosed parts.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrContent {
    Text(String),
    Enclosed(Expr),
}

/// Insert positions of the Update Facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPos {
    Into,
    AsFirstInto,
    AsLastInto,
    Before,
    After,
}

/// A computed name: either a static QName or an expression evaluated to one.
#[derive(Debug, Clone, PartialEq)]
pub enum NameExpr {
    Static(QName),
    Dynamic(Box<Expr>),
}

/// Full-text selection (simplified FTSelection grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum FtSelection {
    Or(Vec<FtSelection>),
    And(Vec<FtSelection>),
    Not(Box<FtSelection>),
    /// Words produced by an expression, with match options.
    Words {
        expr: Box<Expr>,
        options: FtMatchOptions,
    },
}

/// Full-text match options (`with stemming`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtMatchOptions {
    pub stemming: bool,
    pub case_sensitive: bool,
    pub wildcards: bool,
}

/// Scripting statements (XQuery Scripting Extension, §3.3; block syntax
/// follows the paper's listings).
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `declare variable $x (as T)? (:= expr)? ;`
    VarDecl {
        name: QName,
        ty: Option<SequenceType>,
        init: Option<Expr>,
    },
    /// `set $x := expr ;`
    Assign { name: QName, value: Expr },
    /// `while (cond) { body }`
    While { cond: Expr, body: Vec<Statement> },
    /// `exit with expr ;`
    ExitWith(Expr),
    /// an expression statement
    Expr(Expr),
}

/// Where an event listener is bound: `at` a location (§4.3.1) or `behind`
/// an asynchronous call (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventBindMode {
    At,
    Behind,
}

/// The expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Atomic),
    VarRef(QName),
    ContextItem,
    /// comma operator — sequence construction
    Sequence(Vec<Expr>),
    Range(Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// unary minus (odd number of `-` signs)
    Neg(Box<Expr>),
    ValueComp(CompOp, Box<Expr>, Box<Expr>),
    GeneralComp(CompOp, Box<Expr>, Box<Expr>),
    NodeComp(NodeCompOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    Flwor {
        clauses: Vec<FlworClause>,
        ret: Box<Expr>,
    },
    Quantified {
        kind: Quantifier,
        bindings: Vec<(QName, Expr)>,
        satisfies: Box<Expr>,
    },
    TypeSwitch {
        operand: Box<Expr>,
        cases: Vec<(SequenceType, Option<QName>, Expr)>,
        default_var: Option<QName>,
        default: Box<Expr>,
    },
    Path {
        start: PathStart,
        steps: Vec<StepExpr>,
    },
    Union(Box<Expr>, Box<Expr>),
    Intersect(Box<Expr>, Box<Expr>),
    Except(Box<Expr>, Box<Expr>),
    InstanceOf(Box<Expr>, SequenceType),
    TreatAs(Box<Expr>, SequenceType),
    CastableAs(Box<Expr>, TypeName, bool),
    CastAs(Box<Expr>, TypeName, bool),
    FunctionCall {
        name: QName,
        args: Vec<Expr>,
    },
    DirectElement {
        name: QName,
        /// attribute name → value template parts
        attrs: Vec<(QName, Vec<AttrContent>)>,
        ns_decls: Vec<(String, String)>,
        children: Vec<ElemContent>,
    },
    ComputedElement {
        name: NameExpr,
        content: Option<Box<Expr>>,
    },
    ComputedAttribute {
        name: NameExpr,
        content: Option<Box<Expr>>,
    },
    ComputedText(Box<Expr>),
    ComputedComment(Box<Expr>),
    ComputedPi {
        target: NameExpr,
        content: Option<Box<Expr>>,
    },
    ComputedDocument(Box<Expr>),
    // --- XQuery Update Facility ---
    Insert {
        source: Box<Expr>,
        pos: InsertPos,
        target: Box<Expr>,
    },
    Delete(Box<Expr>),
    ReplaceNode {
        target: Box<Expr>,
        with: Box<Expr>,
    },
    ReplaceValue {
        target: Box<Expr>,
        with: Box<Expr>,
    },
    Rename {
        target: Box<Expr>,
        name: NameExpr,
    },
    Transform {
        bindings: Vec<(QName, Expr)>,
        modify: Box<Expr>,
        ret: Box<Expr>,
    },
    // --- Scripting Extension ---
    Block(Vec<Statement>),
    // --- Full-Text ---
    FtContains {
        source: Box<Expr>,
        selection: FtSelection,
    },
    // --- Browser extensions (§4.3–4.5) ---
    EventAttach {
        event: Box<Expr>,
        mode: EventBindMode,
        target: Box<Expr>,
        listener: QName,
    },
    EventDetach {
        event: Box<Expr>,
        target: Box<Expr>,
        listener: QName,
    },
    EventTrigger {
        event: Box<Expr>,
        target: Box<Expr>,
    },
    SetStyle {
        prop: Box<Expr>,
        target: Box<Expr>,
        value: Box<Expr>,
    },
    GetStyle {
        prop: Box<Expr>,
        target: Box<Expr>,
    },
}

impl Expr {
    pub fn boxed(self) -> Box<Expr> {
        Box::new(self)
    }
    pub fn string_lit(s: &str) -> Expr {
        Expr::Literal(Atomic::str(s))
    }
    pub fn int_lit(i: i64) -> Expr {
        Expr::Literal(Atomic::Integer(i))
    }
}

/// Function kinds: plain, updating (may produce a PUL), sequential
/// (scripting: applies updates as it goes, may `exit with`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionKind {
    Simple,
    Updating,
    Sequential,
}

/// A user-declared function.
#[derive(Debug, Clone)]
pub struct FunctionDecl {
    pub name: QName,
    pub params: Vec<(QName, Option<SequenceType>)>,
    pub return_type: Option<SequenceType>,
    pub kind: FunctionKind,
    pub body: Rc<Expr>,
}

/// A global variable declaration.
#[derive(Debug, Clone)]
pub struct VarDecl {
    pub name: QName,
    pub ty: Option<SequenceType>,
    /// `None` means `external`.
    pub init: Option<Expr>,
}

/// Prolog of a module.
#[derive(Debug, Clone, Default)]
pub struct Prolog {
    pub namespaces: Vec<(String, String)>,
    pub default_element_ns: Option<String>,
    pub default_function_ns: Option<String>,
    pub variables: Vec<VarDecl>,
    pub functions: Vec<FunctionDecl>,
    pub options: Vec<(QName, String)>,
    pub module_imports: Vec<ModuleImport>,
}

/// `import module namespace p = "uri" at "loc";`
#[derive(Debug, Clone)]
pub struct ModuleImport {
    pub prefix: String,
    pub uri: String,
    pub locations: Vec<String>,
}

/// A parsed main module: prolog plus body program.
#[derive(Debug, Clone)]
pub struct MainModule {
    pub prolog: Prolog,
    /// The query body as a scripting program (a single expression becomes a
    /// one-statement program).
    pub body: Vec<Statement>,
}

/// A parsed library module (`module namespace p = "uri";` + prolog).
#[derive(Debug, Clone)]
pub struct LibraryModule {
    pub prefix: String,
    pub uri: String,
    /// The paper's web-service extension: `module namespace ex="…" port:2001;`
    pub port: Option<u16>,
    pub prolog: Prolog,
}
