//! A server-side plan cache.
//!
//! The §6.1 server evaluates the *same* render queries on every request —
//! the article page, the index page, a handful of ad-hoc templates — yet
//! until this cache existed it re-parsed and re-lowered the query text each
//! time, an O(query size) tax per request that dwarfs execution for small
//! pages. The cache maps `(query text, static-context fingerprint)` to a
//! shared [`CompiledPlan`], so a repeated request costs one hash lookup.
//!
//! # Key and invalidation
//!
//! The second key component is a *fingerprint* of everything compilation
//! reads besides the query text: the registered library modules (their URI
//! and source) and the browser-profile flag — see
//! [`static_fingerprint`]. Two servers with different module registries
//! never share an entry, and re-registering a module changes the
//! fingerprint, so a stale plan cannot be returned for a new static
//! context.
//!
//! Invalidation is additionally *epoch-based*: [`PlanCache::invalidate`]
//! bumps the cache epoch and drops every cached plan, covering
//! environment changes the fingerprint cannot see (a swapped corpus, a
//! recovery, a host-hook change). Each entry records the epoch it was
//! compiled in; an entry from an older epoch is never served.
//!
//! # Bounds
//!
//! The cache holds at most `capacity` plans and evicts the least recently
//! used entry on overflow (exact LRU over a monotone use-tick; eviction is
//! O(n) over a deliberately small n). Compile *errors* are never cached:
//! a failing query costs a re-parse each time, but an admission-controlled
//! server already bounds that, and caching errors would pin attacker-chosen
//! garbage in a bounded cache.

use std::collections::HashMap;
use std::rc::Rc;

use xqib_xdm::XdmResult;

use crate::plan::{lower, CompiledPlan};
use crate::runtime::{compile_with, ModuleRegistry};

/// Hit/miss/eviction counters, cheap to copy into server metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile (entry absent, stale epoch, or first
    /// use).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Epoch bumps (each drops the whole cache).
    pub invalidations: u64,
}

struct Entry {
    plan: Rc<CompiledPlan>,
    /// Cache epoch the plan was compiled under.
    epoch: u64,
    /// Monotone use-tick for LRU eviction.
    last_used: u64,
}

/// A bounded LRU cache of compiled plans. Single-threaded, like the rest
/// of the engine: the server owns one and threads `&mut` through.
pub struct PlanCache {
    capacity: usize,
    epoch: u64,
    tick: u64,
    entries: HashMap<(String, u64), Entry>,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// A cache bounded to `capacity` plans (at least one).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            epoch: 0,
            tick: 0,
            entries: HashMap::new(),
            stats: PlanCacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Drops every cached plan and starts a new epoch. Call when anything
    /// compilation depends on changes out from under the fingerprint.
    pub fn invalidate(&mut self) {
        self.epoch += 1;
        self.entries.clear();
        self.stats.invalidations += 1;
    }

    /// Returns the cached plan for `(src, fingerprint)`, compiling and
    /// inserting via `compile` on a miss. Compile errors pass through
    /// uncached.
    pub fn get_or_compile(
        &mut self,
        src: &str,
        fingerprint: u64,
        compile: impl FnOnce() -> XdmResult<CompiledPlan>,
    ) -> XdmResult<Rc<CompiledPlan>> {
        self.tick += 1;
        let key = (src.to_string(), fingerprint);
        if let Some(entry) = self.entries.get_mut(&key) {
            if entry.epoch == self.epoch {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                return Ok(entry.plan.clone());
            }
            // a pre-invalidation survivor (possible only if callers insert
            // across epochs; kept for defence in depth)
            self.entries.remove(&key);
        }
        self.stats.misses += 1;
        let plan = Rc::new(compile()?);
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(
            key,
            Entry {
                plan: plan.clone(),
                epoch: self.epoch,
                last_used: self.tick,
            },
        );
        Ok(plan)
    }

    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            self.entries.remove(&k);
            self.stats.evictions += 1;
        }
    }
}

/// Compiles a main module against `registry` and lowers it to a plan —
/// the `compile` closure servers hand to [`PlanCache::get_or_compile`].
pub fn compile_plan(
    src: &str,
    registry: &ModuleRegistry,
    browser_profile: bool,
) -> XdmResult<CompiledPlan> {
    let q = compile_with(src, registry, browser_profile)?;
    Ok(lower(&q))
}

/// Fingerprint of the compilation environment: the module registry's
/// contents and the browser-profile flag. Mix further inputs (page-script
/// version, corpus generation) in with [`mix`].
pub fn static_fingerprint(registry: &ModuleRegistry, browser_profile: bool) -> u64 {
    mix(registry.fingerprint(), browser_profile as u64)
}

/// Order-sensitive 64-bit hash combiner (splitmix-style finalisation).
pub fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over bytes: deterministic across processes (unlike the std
/// hasher), so fingerprints are stable for logs and tests.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_plan(c: &mut PlanCache, src: &str, fp: u64) -> Rc<CompiledPlan> {
        c.get_or_compile(src, fp, || compile_plan(src, &ModuleRegistry::new(), false))
            .expect("compiles")
    }

    #[test]
    fn repeated_lookup_hits() {
        let mut c = PlanCache::new(4);
        let a = cache_plan(&mut c, "1 + 1", 0);
        let b = cache_plan(&mut c, "1 + 1", 0);
        assert!(Rc::ptr_eq(&a, &b), "hit must return the same plan");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn fingerprint_partitions_entries() {
        let mut c = PlanCache::new(4);
        let a = cache_plan(&mut c, "1 + 1", 1);
        let b = cache_plan(&mut c, "1 + 1", 2);
        assert!(!Rc::ptr_eq(&a, &b), "different static contexts never share");
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let mut c = PlanCache::new(2);
        cache_plan(&mut c, "1", 0);
        cache_plan(&mut c, "2", 0);
        cache_plan(&mut c, "1", 0); // touch 1: 2 becomes LRU
        cache_plan(&mut c, "3", 0); // evicts 2
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
        cache_plan(&mut c, "1", 0);
        assert_eq!(c.stats().hits, 2, "1 must have survived the eviction");
    }

    #[test]
    fn invalidation_drops_everything() {
        let mut c = PlanCache::new(4);
        let a = cache_plan(&mut c, "1 + 1", 0);
        c.invalidate();
        assert!(c.is_empty());
        let b = cache_plan(&mut c, "1 + 1", 0);
        assert!(!Rc::ptr_eq(&a, &b), "post-invalidation lookups recompile");
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let mut c = PlanCache::new(4);
        for _ in 0..2 {
            let r = c.get_or_compile("1 +", 0, || {
                compile_plan("1 +", &ModuleRegistry::new(), false)
            });
            assert!(r.is_err());
        }
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 2, "every failing lookup recompiles");
    }

    #[test]
    fn registry_fingerprint_tracks_module_changes() {
        let mut r = ModuleRegistry::new();
        let f0 = static_fingerprint(&r, false);
        r.register_source("module namespace m = 'http://x/m'; declare function m:one() { 1 };")
            .unwrap();
        let f1 = static_fingerprint(&r, false);
        assert_ne!(f0, f1, "registering a module must change the fingerprint");
        r.register_source("module namespace m = 'http://x/m'; declare function m:one() { 2 };")
            .unwrap();
        let f2 = static_fingerprint(&r, false);
        assert_ne!(f1, f2, "changing a module's source must change it too");
        assert_ne!(
            static_fingerprint(&r, false),
            static_fingerprint(&r, true),
            "browser profile is part of the static context"
        );
    }
}
