//! # xqib-xquery
//!
//! A from-scratch XQuery engine for the XQIB reproduction of *"XQuery in
//! the Browser"* (WWW 2009) — the role Zorba plays in the paper's plug-in
//! (§5.2), plus the grammar extensions Zorba could not host (§5.1).
//!
//! Implemented surface:
//!
//! * **XQuery 1.0 core**: FLWOR, quantified expressions, typeswitch,
//!   conditionals, full path expressions (all axes), constructors (direct
//!   and computed), operators, `instance of`/`cast`/`castable`/`treat`,
//!   and the `fn:` function & operator library;
//! * **XQuery Update Facility** (§3.2): `insert`/`delete`/`replace`/
//!   `rename`/`transform` with pending-update-list snapshot semantics;
//! * **XQuery Scripting Extension** (§3.3): blocks, `declare variable`,
//!   `set $x := …`, `while`, `exit with`, sequential functions — updates
//!   become visible between statements;
//! * **XQuery Full-Text** (§3.1): `ftcontains` with `ftand`/`ftor`/`ftnot`
//!   and `with stemming` (Porter stemmer included);
//! * the paper's **browser extensions** (§4.3–4.5):
//!   `on event … at|behind … attach|detach listener`, `trigger event`,
//!   `set style … of … to …`, `get style … of …` — bridged to a host via
//!   [`context::EngineHooks`];
//! * a **module system** with the paper's web-service `port:` extension
//!   (§3.4), resolved through [`runtime::ModuleRegistry`].
//!
//! ```
//! use xqib_dom::store::shared_store;
//! let store = shared_store();
//! let out = xqib_xquery::runtime::run_to_string(
//!     "for $i in 1 to 3 return $i * $i", store).unwrap();
//! assert_eq!(out, "1 4 9");
//! ```

pub mod ast;
pub mod context;
pub mod eval;
pub mod exec;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod plancache;
pub mod pul;
pub mod runtime;
pub mod token;
pub mod wire;

pub use context::{DynamicContext, EngineHooks, NativeFn, StaticContext};
pub use runtime::{compile, compile_with, CompiledQuery, ModuleRegistry};
