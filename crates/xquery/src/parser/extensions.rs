//! Parsing of the Update Facility, Full-Text selections and the paper's
//! browser grammar extensions (§4.3 events, §4.4 `behind`, §4.5 CSS).

use xqib_xdm::XdmResult;

use crate::ast::*;
use crate::token::Tok;

use super::Parser;

impl<'a> Parser<'a> {
    // ----- XQuery Update Facility -------------------------------------------

    /// `insert node(s) Source (into | as first into | as last into | before | after) Target`
    pub(crate) fn parse_insert(&mut self) -> XdmResult<Expr> {
        self.expect_kw("insert")?;
        if !self.eat_kw("nodes")? {
            self.expect_kw("node")?;
        }
        let source = self.parse_expr_single()?;
        let pos = if self.eat_kw("into")? {
            InsertPos::Into
        } else if self.at_kw("as") {
            self.advance()?;
            let first = if self.eat_kw("first")? {
                true
            } else {
                self.expect_kw("last")?;
                false
            };
            self.expect_kw("into")?;
            if first {
                InsertPos::AsFirstInto
            } else {
                InsertPos::AsLastInto
            }
        } else if self.eat_kw("before")? {
            InsertPos::Before
        } else if self.eat_kw("after")? {
            InsertPos::After
        } else {
            return Err(
                self.error("expected `into`, `as first into`, `as last into`, `before` or `after`")
            );
        };
        let target = self.parse_expr_single()?;
        // the paper's §4.2.1 listing uses the postfix word order
        // `insert node X into T as first`; accept it as a synonym
        let pos = if pos == InsertPos::Into && self.at_kw("as") {
            self.advance()?;
            if self.eat_kw("first")? {
                InsertPos::AsFirstInto
            } else {
                self.expect_kw("last")?;
                InsertPos::AsLastInto
            }
        } else {
            pos
        };
        Ok(Expr::Insert {
            source: source.boxed(),
            pos,
            target: target.boxed(),
        })
    }

    /// `delete node(s) Target`
    pub(crate) fn parse_delete(&mut self) -> XdmResult<Expr> {
        self.expect_kw("delete")?;
        if !self.eat_kw("nodes")? {
            self.expect_kw("node")?;
        }
        let target = self.parse_expr_single()?;
        Ok(Expr::Delete(target.boxed()))
    }

    /// `replace (value of)? node Target with Expr`
    pub(crate) fn parse_replace(&mut self) -> XdmResult<Expr> {
        self.expect_kw("replace")?;
        let value_of = if self.at_kw("value") {
            self.advance()?;
            self.expect_kw("of")?;
            true
        } else {
            false
        };
        self.expect_kw("node")?;
        let target = self.parse_expr_single()?;
        self.expect_kw("with")?;
        let with = self.parse_expr_single()?;
        Ok(if value_of {
            Expr::ReplaceValue {
                target: target.boxed(),
                with: with.boxed(),
            }
        } else {
            Expr::ReplaceNode {
                target: target.boxed(),
                with: with.boxed(),
            }
        })
    }

    /// `rename node Target as NewName`
    pub(crate) fn parse_rename(&mut self) -> XdmResult<Expr> {
        self.expect_kw("rename")?;
        self.expect_kw("node")?;
        let target = self.parse_expr_single()?;
        self.expect_kw("as")?;
        let name = self.parse_name_expr()?;
        Ok(Expr::Rename {
            target: target.boxed(),
            name,
        })
    }

    /// `copy $x := E (, $y := E)* modify E return E` (with optional leading
    /// `transform` consumed by the caller).
    pub(crate) fn parse_transform(&mut self) -> XdmResult<Expr> {
        self.expect_kw("copy")?;
        let mut bindings = Vec::new();
        loop {
            let var = self.parse_var_name()?;
            self.expect_tok(Tok::ColonEq)?;
            let e = self.parse_expr_single()?;
            bindings.push((var, e));
            if !self.eat_tok(&Tok::Comma)? {
                break;
            }
        }
        self.expect_kw("modify")?;
        let modify = self.parse_expr_single()?;
        self.expect_kw("return")?;
        let ret = self.parse_expr_single()?;
        Ok(Expr::Transform {
            bindings,
            modify: modify.boxed(),
            ret: ret.boxed(),
        })
    }

    /// Name expressions for `rename … as` and computed constructors: either a
    /// QName or an expression evaluating to one.
    fn parse_name_expr(&mut self) -> XdmResult<NameExpr> {
        match self.cur.tok.clone() {
            Tok::Name(_) | Tok::PrefixedName(..) => {
                let q = self.parse_element_qname()?;
                Ok(NameExpr::Static(q))
            }
            _ => {
                let e = self.parse_expr_single()?;
                Ok(NameExpr::Dynamic(e.boxed()))
            }
        }
    }

    // ----- browser extensions (§4.3–4.5) -------------------------------------

    /// ```text
    /// EventAttach ::= "on" "event" ExprSingle ("at"|"behind") ExprSingle
    ///                 "attach" "listener" QName
    /// EventDetach ::= "on" "event" ExprSingle "at" ExprSingle
    ///                 "detach" "listener" QName
    /// ```
    pub(crate) fn parse_event_attach_detach(&mut self) -> XdmResult<Expr> {
        self.expect_kw("on")?;
        self.expect_kw("event")?;
        let event = self.parse_expr_single()?;
        let mode = if self.eat_kw("behind")? {
            EventBindMode::Behind
        } else {
            self.expect_kw("at")?;
            EventBindMode::At
        };
        let target = self.parse_expr_single()?;
        if self.eat_kw("attach")? {
            self.expect_kw("listener")?;
            let listener = self.parse_function_qname()?;
            Ok(Expr::EventAttach {
                event: event.boxed(),
                mode,
                target: target.boxed(),
                listener,
            })
        } else {
            self.expect_kw("detach")?;
            self.expect_kw("listener")?;
            let listener = self.parse_function_qname()?;
            if mode == EventBindMode::Behind {
                return Err(self.error("`behind` is only valid with `attach`"));
            }
            Ok(Expr::EventDetach {
                event: event.boxed(),
                target: target.boxed(),
                listener,
            })
        }
    }

    /// `trigger event ExprSingle at ExprSingle`
    pub(crate) fn parse_event_trigger(&mut self) -> XdmResult<Expr> {
        self.expect_kw("trigger")?;
        self.expect_kw("event")?;
        let event = self.parse_expr_single()?;
        self.expect_kw("at")?;
        let target = self.parse_expr_single()?;
        Ok(Expr::EventTrigger {
            event: event.boxed(),
            target: target.boxed(),
        })
    }

    /// `set style ExprSingle of TargetExpr to ExprSingle`
    ///
    /// The target is parsed *below* the range operator so that the `to`
    /// keyword terminates it (`set style "x" of $t to "2px"` — `$t to …`
    /// must not parse as a range; parenthesise if a range is really meant).
    pub(crate) fn parse_set_style(&mut self) -> XdmResult<Expr> {
        self.expect_kw("set")?;
        self.expect_kw("style")?;
        let prop = self.parse_expr_single()?;
        self.expect_kw("of")?;
        let target = self.parse_below_range()?;
        self.expect_kw("to")?;
        let value = self.parse_expr_single()?;
        Ok(Expr::SetStyle {
            prop: prop.boxed(),
            target: target.boxed(),
            value: value.boxed(),
        })
    }

    /// `get style ExprSingle of ExprSingle`
    pub(crate) fn parse_get_style(&mut self) -> XdmResult<Expr> {
        self.expect_kw("get")?;
        self.expect_kw("style")?;
        let prop = self.parse_expr_single()?;
        self.expect_kw("of")?;
        let target = self.parse_expr_single()?;
        Ok(Expr::GetStyle {
            prop: prop.boxed(),
            target: target.boxed(),
        })
    }

    // ----- full-text ----------------------------------------------------------

    /// FTSelection with `ftor` / `ftand` / `ftnot`, parenthesised groups and
    /// per-group match options.
    pub(crate) fn parse_ft_selection(&mut self) -> XdmResult<FtSelection> {
        self.parse_ft_or()
    }

    fn parse_ft_or(&mut self) -> XdmResult<FtSelection> {
        let first = self.parse_ft_and()?;
        if !self.at_kw("ftor") {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_kw("ftor")? {
            items.push(self.parse_ft_and()?);
        }
        Ok(FtSelection::Or(items))
    }

    fn parse_ft_and(&mut self) -> XdmResult<FtSelection> {
        let first = self.parse_ft_not()?;
        if !self.at_kw("ftand") {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_kw("ftand")? {
            items.push(self.parse_ft_not()?);
        }
        Ok(FtSelection::And(items))
    }

    fn parse_ft_not(&mut self) -> XdmResult<FtSelection> {
        if self.eat_kw("ftnot")? {
            let inner = self.parse_ft_primary()?;
            return Ok(FtSelection::Not(Box::new(inner)));
        }
        self.parse_ft_primary()
    }

    fn parse_ft_primary(&mut self) -> XdmResult<FtSelection> {
        let mut sel = match self.cur.tok.clone() {
            Tok::LParen => {
                self.advance()?;
                let inner = self.parse_ft_selection()?;
                self.expect_tok(Tok::RParen)?;
                inner
            }
            Tok::LBrace => {
                self.advance()?;
                let e = self.parse_expr()?;
                self.expect_tok(Tok::RBrace)?;
                FtSelection::Words {
                    expr: e.boxed(),
                    options: FtMatchOptions::default(),
                }
            }
            Tok::StringLit(s) => {
                self.advance()?;
                FtSelection::Words {
                    expr: Expr::string_lit(&s).boxed(),
                    options: FtMatchOptions::default(),
                }
            }
            Tok::Dollar => {
                let name = self.parse_var_name()?;
                FtSelection::Words {
                    expr: Expr::VarRef(name).boxed(),
                    options: FtMatchOptions::default(),
                }
            }
            other => {
                return Err(self.error(format!(
                    "expected a full-text primary, found {}",
                    other.describe()
                )))
            }
        };
        // match options apply to the nearest primary/group
        while self.at_kw("with")
            || self.at_kw2("case", "sensitive")?
            || self.at_kw2("case", "insensitive")?
        {
            let opts = self.parse_ft_match_option()?;
            sel = apply_options(sel, opts);
        }
        Ok(sel)
    }

    fn parse_ft_match_option(&mut self) -> XdmResult<FtMatchOptions> {
        let mut opts = FtMatchOptions::default();
        if self.eat_kw("with")? {
            if self.eat_kw("stemming")? {
                opts.stemming = true;
            } else if self.eat_kw("wildcards")? {
                opts.wildcards = true;
            } else {
                return Err(self.error("expected `stemming` or `wildcards` after `with`"));
            }
        } else if self.eat_kw("case")? {
            if self.eat_kw("sensitive")? {
                opts.case_sensitive = true;
            } else {
                self.expect_kw("insensitive")?;
            }
        }
        Ok(opts)
    }
}

fn apply_options(sel: FtSelection, opts: FtMatchOptions) -> FtSelection {
    match sel {
        FtSelection::Words { expr, options } => FtSelection::Words {
            expr,
            options: FtMatchOptions {
                stemming: options.stemming || opts.stemming,
                case_sensitive: options.case_sensitive || opts.case_sensitive,
                wildcards: options.wildcards || opts.wildcards,
            },
        },
        FtSelection::And(items) => {
            FtSelection::And(items.into_iter().map(|s| apply_options(s, opts)).collect())
        }
        FtSelection::Or(items) => {
            FtSelection::Or(items.into_iter().map(|s| apply_options(s, opts)).collect())
        }
        FtSelection::Not(inner) => FtSelection::Not(Box::new(apply_options(*inner, opts))),
    }
}
