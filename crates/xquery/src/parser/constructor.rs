//! Direct and computed XML constructors.
//!
//! Direct constructors (`<li>{$x}</li>`) are parsed in raw character mode at
//! the lexer's byte offset; enclosed expressions `{ … }` temporarily switch
//! back to token mode — the classic XQuery dual-state parse.

use xqib_xdm::{XdmError, XdmResult};

use crate::ast::{AttrContent, ElemContent, Expr, NameExpr};
use crate::lexer::{is_name_char, is_name_start, utf8_len};
use crate::token::Tok;

use super::Parser;

impl<'a> Parser<'a> {
    /// Called with `cur == Tok::Lt`. Consumes the whole constructor and
    /// resumes token mode.
    pub(crate) fn parse_direct_constructor(&mut self) -> XdmResult<Expr> {
        debug_assert_eq!(self.cur.tok, Tok::Lt);
        let mut pos = self.cur.end; // first char after '<'
        let expr = self.parse_direct_element(&mut pos)?;
        // resume token mode after the constructor
        self.lx.pos = pos;
        self.advance()?;
        Ok(expr)
    }

    // --- raw character helpers ---

    fn ch(&self, pos: usize) -> Option<u8> {
        self.lx.src.as_bytes().get(pos).copied()
    }

    fn starts_with(&self, pos: usize, s: &str) -> bool {
        self.lx.src.as_bytes()[pos.min(self.lx.src.len())..].starts_with(s.as_bytes())
    }

    fn skip_ws_raw(&self, pos: &mut usize) {
        while matches!(self.ch(*pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            *pos += 1;
        }
    }

    fn read_raw_name(&self, pos: &mut usize) -> XdmResult<String> {
        let start = *pos;
        if !self.ch(*pos).is_some_and(is_name_start) {
            return Err(XdmError::new(
                "XPST0003",
                format!("expected a name in constructor at byte {start}"),
            ));
        }
        while self.ch(*pos).is_some_and(|b| is_name_char(b) || b == b':') {
            *pos += 1;
        }
        Ok(self.lx.src[start..*pos].to_string())
    }

    fn err_at(&self, pos: usize, msg: &str) -> XdmError {
        XdmError::new("XPST0003", format!("{msg} at byte {pos}"))
    }

    /// Parses an element whose `<` has already been consumed; `pos` points at
    /// the element name.
    fn parse_direct_element(&mut self, pos: &mut usize) -> XdmResult<Expr> {
        let raw_name = self.read_raw_name(pos)?;
        let mut local_ns: Vec<(String, String)> = Vec::new();
        let mut raw_attrs: Vec<(String, Vec<AttrContent>)> = Vec::new();

        // attributes
        loop {
            self.skip_ws_raw(pos);
            match self.ch(*pos) {
                Some(b'/') | Some(b'>') | None => break,
                _ => {}
            }
            let aname = self.read_raw_name(pos)?;
            self.skip_ws_raw(pos);
            if self.ch(*pos) != Some(b'=') {
                return Err(self.err_at(*pos, "expected `=` after attribute name"));
            }
            *pos += 1;
            self.skip_ws_raw(pos);
            let parts = self.parse_attr_value_template(pos)?;
            if aname == "xmlns" {
                let uri = literal_only(&parts)
                    .ok_or_else(|| self.err_at(*pos, "xmlns value must be a literal"))?;
                local_ns.push((String::new(), uri));
            } else if let Some(p) = aname.strip_prefix("xmlns:") {
                let uri = literal_only(&parts)
                    .ok_or_else(|| self.err_at(*pos, "xmlns value must be a literal"))?;
                local_ns.push((p.to_string(), uri));
            } else {
                raw_attrs.push((aname, parts));
            }
        }

        // register local namespace declarations for resolving names inside
        let saved_ns: Vec<(String, Option<String>)> = local_ns
            .iter()
            .map(|(p, _)| (p.clone(), self.namespaces.get(p).cloned()))
            .collect();
        let saved_default = self.default_element_ns.clone();
        for (p, u) in &local_ns {
            if p.is_empty() {
                self.default_element_ns = if u.is_empty() { None } else { Some(u.clone()) };
            } else {
                self.namespaces.insert(p.clone(), u.clone());
            }
        }

        let result = self.parse_direct_element_inner(pos, &raw_name, raw_attrs, &local_ns);

        // restore namespace scope
        for (p, old) in saved_ns {
            match old {
                Some(u) => {
                    self.namespaces.insert(p, u);
                }
                None => {
                    self.namespaces.remove(&p);
                }
            }
        }
        self.default_element_ns = saved_default;
        result
    }

    fn parse_direct_element_inner(
        &mut self,
        pos: &mut usize,
        raw_name: &str,
        raw_attrs: Vec<(String, Vec<AttrContent>)>,
        local_ns: &[(String, String)],
    ) -> XdmResult<Expr> {
        let name = self.resolve_raw_lexical(raw_name, true)?;
        let mut attrs = Vec::with_capacity(raw_attrs.len());
        for (an, parts) in raw_attrs {
            let aq = self.resolve_raw_lexical(&an, false)?;
            attrs.push((aq, parts));
        }

        // self-closing?
        if self.ch(*pos) == Some(b'/') {
            *pos += 1;
            if self.ch(*pos) != Some(b'>') {
                return Err(self.err_at(*pos, "expected `>` after `/`"));
            }
            *pos += 1;
            return Ok(Expr::DirectElement {
                name,
                attrs,
                ns_decls: local_ns.to_vec(),
                children: vec![],
            });
        }
        if self.ch(*pos) != Some(b'>') {
            return Err(self.err_at(*pos, "expected `>` in start tag"));
        }
        *pos += 1;

        // content
        let mut children: Vec<ElemContent> = Vec::new();
        let mut text = String::new();
        loop {
            match self.ch(*pos) {
                None => return Err(self.err_at(*pos, "unterminated direct constructor")),
                Some(b'<') => {
                    if self.starts_with(*pos, "</") {
                        flush_text(&mut text, &mut children);
                        *pos += 2;
                        let close = self.read_raw_name(pos)?;
                        if close != raw_name {
                            return Err(self.err_at(
                                *pos,
                                &format!("mismatched close tag </{close}> for <{raw_name}>"),
                            ));
                        }
                        self.skip_ws_raw(pos);
                        if self.ch(*pos) != Some(b'>') {
                            return Err(self.err_at(*pos, "expected `>` in end tag"));
                        }
                        *pos += 1;
                        return Ok(Expr::DirectElement {
                            name,
                            attrs,
                            ns_decls: local_ns.to_vec(),
                            children,
                        });
                    } else if self.starts_with(*pos, "<!--") {
                        flush_text(&mut text, &mut children);
                        *pos += 4;
                        let start = *pos;
                        while !self.starts_with(*pos, "-->") {
                            if self.ch(*pos).is_none() {
                                return Err(self.err_at(start, "unterminated comment"));
                            }
                            *pos += 1;
                        }
                        let body = self.lx.src[start..*pos].to_string();
                        *pos += 3;
                        children.push(ElemContent::Child(Expr::ComputedComment(
                            Expr::string_lit(&body).boxed(),
                        )));
                    } else if self.starts_with(*pos, "<![CDATA[") {
                        *pos += 9;
                        let start = *pos;
                        while !self.starts_with(*pos, "]]>") {
                            if self.ch(*pos).is_none() {
                                return Err(self.err_at(start, "unterminated CDATA"));
                            }
                            *pos += 1;
                        }
                        text.push_str(&self.lx.src[start..*pos]);
                        *pos += 3;
                    } else if self.starts_with(*pos, "<?") {
                        flush_text(&mut text, &mut children);
                        *pos += 2;
                        let target = self.read_raw_name(pos)?;
                        let start = *pos;
                        while !self.starts_with(*pos, "?>") {
                            if self.ch(*pos).is_none() {
                                return Err(self.err_at(start, "unterminated PI"));
                            }
                            *pos += 1;
                        }
                        let body = self.lx.src[start..*pos].trim().to_string();
                        *pos += 2;
                        children.push(ElemContent::Child(Expr::ComputedPi {
                            target: NameExpr::Static(xqib_dom::QName::local(&target)),
                            content: Some(Expr::string_lit(&body).boxed()),
                        }));
                    } else {
                        // nested element
                        flush_text(&mut text, &mut children);
                        *pos += 1;
                        let child = self.parse_direct_element(pos)?;
                        children.push(ElemContent::Child(child));
                    }
                }
                Some(b'{') => {
                    if self.ch(*pos + 1) == Some(b'{') {
                        text.push('{');
                        *pos += 2;
                    } else {
                        flush_text(&mut text, &mut children);
                        *pos += 1;
                        let (e, after) = self.parse_enclosed_in_char_mode(*pos)?;
                        children.push(ElemContent::Enclosed(e));
                        *pos = after;
                    }
                }
                Some(b'}') => {
                    if self.ch(*pos + 1) == Some(b'}') {
                        text.push('}');
                        *pos += 2;
                    } else {
                        return Err(self.err_at(*pos, "`}` must be doubled inside element content"));
                    }
                }
                Some(b'&') => {
                    let rest = &self.lx.src[*pos..];
                    let semi = rest
                        .find(';')
                        .ok_or_else(|| self.err_at(*pos, "unterminated entity reference"))?;
                    let decoded = xqib_dom::parser::decode_entities(&rest[..=semi], *pos)
                        .map_err(|e| XdmError::new("XPST0003", e.to_string()))?;
                    text.push_str(&decoded);
                    *pos += semi + 1;
                }
                Some(b) => {
                    let len = utf8_len(b);
                    text.push_str(&self.lx.src[*pos..*pos + len]);
                    *pos += len;
                }
            }
        }
    }

    /// Attribute value template: quoted string with `{expr}` holes and
    /// `{{`/`}}`/doubled-quote escapes.
    fn parse_attr_value_template(&mut self, pos: &mut usize) -> XdmResult<Vec<AttrContent>> {
        let quote = self
            .ch(*pos)
            .ok_or_else(|| self.err_at(*pos, "expected attribute value"))?;
        if quote != b'"' && quote != b'\'' {
            return Err(self.err_at(*pos, "attribute value must be quoted"));
        }
        *pos += 1;
        let mut parts: Vec<AttrContent> = Vec::new();
        let mut text = String::new();
        loop {
            match self.ch(*pos) {
                None => return Err(self.err_at(*pos, "unterminated attribute value")),
                Some(b) if b == quote => {
                    if self.ch(*pos + 1) == Some(quote) {
                        text.push(quote as char);
                        *pos += 2;
                    } else {
                        *pos += 1;
                        break;
                    }
                }
                Some(b'{') => {
                    if self.ch(*pos + 1) == Some(b'{') {
                        text.push('{');
                        *pos += 2;
                    } else {
                        if !text.is_empty() {
                            parts.push(AttrContent::Text(std::mem::take(&mut text)));
                        }
                        *pos += 1;
                        let (e, after) = self.parse_enclosed_in_char_mode(*pos)?;
                        parts.push(AttrContent::Enclosed(e));
                        *pos = after;
                    }
                }
                Some(b'}') => {
                    if self.ch(*pos + 1) == Some(b'}') {
                        text.push('}');
                        *pos += 2;
                    } else {
                        return Err(
                            self.err_at(*pos, "`}` must be doubled inside attribute values")
                        );
                    }
                }
                Some(b'&') => {
                    let rest = &self.lx.src[*pos..];
                    let semi = rest
                        .find(';')
                        .ok_or_else(|| self.err_at(*pos, "unterminated entity reference"))?;
                    let decoded = xqib_dom::parser::decode_entities(&rest[..=semi], *pos)
                        .map_err(|e| XdmError::new("XPST0003", e.to_string()))?;
                    text.push_str(&decoded);
                    *pos += semi + 1;
                }
                Some(b) => {
                    let len = utf8_len(b);
                    text.push_str(&self.lx.src[*pos..*pos + len]);
                    *pos += len;
                }
            }
        }
        if !text.is_empty() || parts.is_empty() {
            parts.push(AttrContent::Text(text));
        }
        Ok(parts)
    }

    /// Switches to token mode at `pos` to parse an enclosed expression; the
    /// closing `}` is consumed. Returns the expression and the byte offset
    /// right after `}`.
    fn parse_enclosed_in_char_mode(&mut self, pos: usize) -> XdmResult<(Expr, usize)> {
        self.lx.pos = pos;
        self.advance()?;
        let e = self.parse_expr()?;
        if self.cur.tok != Tok::RBrace {
            return Err(self.error(format!(
                "expected `}}` after enclosed expression, found {}",
                self.cur.tok.describe()
            )));
        }
        Ok((e, self.cur.end))
    }

    /// Resolves a raw lexical name (`p:local` or `local`) from a direct
    /// constructor against in-scope namespaces.
    fn resolve_raw_lexical(&self, raw: &str, is_element: bool) -> XdmResult<xqib_dom::QName> {
        match raw.split_once(':') {
            Some((p, l)) => {
                let uri = self.namespaces.get(p).ok_or_else(|| {
                    XdmError::new("XPST0081", format!("undeclared namespace prefix `{p}`"))
                })?;
                Ok(xqib_dom::QName::full(Some(p), Some(uri), l))
            }
            None => {
                if is_element {
                    Ok(xqib_dom::QName::full(
                        None,
                        self.default_element_ns.as_deref(),
                        raw,
                    ))
                } else {
                    Ok(xqib_dom::QName::local(raw))
                }
            }
        }
    }

    // ----- computed constructors -------------------------------------------

    /// `element {E} {E}` / `element name {E}` / `attribute …` / `text {E}` /
    /// `comment {E}` / `processing-instruction …` / `document {E}`.
    pub(crate) fn parse_computed_constructor(&mut self, kind: &str) -> XdmResult<Expr> {
        self.advance()?; // the keyword
        match kind {
            "text" => {
                self.expect_tok(Tok::LBrace)?;
                let e = self.parse_expr()?;
                self.expect_tok(Tok::RBrace)?;
                Ok(Expr::ComputedText(e.boxed()))
            }
            "comment" => {
                self.expect_tok(Tok::LBrace)?;
                let e = self.parse_expr()?;
                self.expect_tok(Tok::RBrace)?;
                Ok(Expr::ComputedComment(e.boxed()))
            }
            "document" => {
                self.expect_tok(Tok::LBrace)?;
                let e = self.parse_expr()?;
                self.expect_tok(Tok::RBrace)?;
                Ok(Expr::ComputedDocument(e.boxed()))
            }
            "element" | "attribute" | "processing-instruction" => {
                let name = if self.cur.tok == Tok::LBrace {
                    self.advance()?;
                    let e = self.parse_expr()?;
                    self.expect_tok(Tok::RBrace)?;
                    NameExpr::Dynamic(e.boxed())
                } else {
                    let q = if kind == "element" {
                        self.parse_element_qname()?
                    } else {
                        let (p, l) = self.parse_raw_qname()?;
                        self.resolve_qname(p, l, false)?
                    };
                    NameExpr::Static(q)
                };
                let content = if self.cur.tok == Tok::LBrace {
                    self.advance()?;
                    if self.cur.tok == Tok::RBrace {
                        self.advance()?;
                        None
                    } else {
                        let e = self.parse_expr()?;
                        self.expect_tok(Tok::RBrace)?;
                        Some(e.boxed())
                    }
                } else {
                    None
                };
                Ok(match kind {
                    "element" => Expr::ComputedElement { name, content },
                    "attribute" => Expr::ComputedAttribute { name, content },
                    _ => Expr::ComputedPi {
                        target: name,
                        content,
                    },
                })
            }
            other => Err(self.error(format!("unknown constructor kind `{other}`"))),
        }
    }
}

fn flush_text(text: &mut String, children: &mut Vec<ElemContent>) {
    if !text.is_empty() {
        children.push(ElemContent::Text(std::mem::take(text)));
    }
}

fn literal_only(parts: &[AttrContent]) -> Option<String> {
    match parts {
        [AttrContent::Text(t)] => Some(t.clone()),
        [] => Some(String::new()),
        _ => None,
    }
}
