//! Expression grammar: precedence chain, FLWOR, conditionals, quantifiers,
//! paths, steps, predicates, primaries and scripting statements.

use xqib_xdm::{Atomic, CompOp, XdmResult};

use crate::ast::*;
use crate::token::Tok;

use super::Parser;

impl<'a> Parser<'a> {
    /// Expr ::= ExprSingle ("," ExprSingle)*
    pub(crate) fn parse_expr(&mut self) -> XdmResult<Expr> {
        let first = self.parse_expr_single()?;
        if self.cur.tok != Tok::Comma {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat_tok(&Tok::Comma)? {
            items.push(self.parse_expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    /// Maximum expression-nesting depth (coarse backstop).
    const MAX_NESTING: usize = 256;
    /// Maximum parser stack consumption in bytes (primary guard; parser
    /// frames are large in debug builds).
    const MAX_STACK_BYTES: usize = 900_000;

    /// ExprSingle — dispatches on leading contextual keywords.
    pub(crate) fn parse_expr_single(&mut self) -> XdmResult<Expr> {
        self.depth += 1;
        let used = self
            .stack_base
            .saturating_sub(crate::context::approx_stack_ptr());
        if self.depth > Self::MAX_NESTING || used > Self::MAX_STACK_BYTES {
            self.depth -= 1;
            return Err(self.error("expression is nested too deeply"));
        }
        let r = self.parse_expr_single_inner();
        self.depth -= 1;
        r
    }

    fn parse_expr_single_inner(&mut self) -> XdmResult<Expr> {
        // FLWOR
        if (self.at_kw("for") || self.at_kw("let")) && self.peek2()? == Tok::Dollar {
            return self.parse_flwor();
        }
        // quantified
        if (self.at_kw("some") || self.at_kw("every")) && self.peek2()? == Tok::Dollar {
            return self.parse_quantified();
        }
        if self.at_kw("typeswitch") && self.peek2()? == Tok::LParen {
            return self.parse_typeswitch();
        }
        if self.at_kw("if") && self.peek2()? == Tok::LParen {
            return self.parse_if();
        }
        // Update Facility
        if self.at_kw2("insert", "node")? || self.at_kw2("insert", "nodes")? {
            return self.parse_insert();
        }
        if self.at_kw2("delete", "node")? || self.at_kw2("delete", "nodes")? {
            return self.parse_delete();
        }
        if self.at_kw2("replace", "node")? || self.at_kw2("replace", "value")? {
            return self.parse_replace();
        }
        if self.at_kw2("rename", "node")? {
            return self.parse_rename();
        }
        if self.at_kw("copy") && self.peek2()? == Tok::Dollar {
            return self.parse_transform();
        }
        if self.at_kw2("transform", "copy")? {
            self.advance()?; // transform
            return self.parse_transform();
        }
        // "do" prefix used by some update drafts (the paper writes
        // `do replace value of …`): accept and delegate.
        if self.at_kw2("do", "replace")? {
            self.advance()?;
            return self.parse_replace();
        }
        if self.at_kw2("do", "insert")? {
            self.advance()?;
            return self.parse_insert();
        }
        if self.at_kw2("do", "delete")? {
            self.advance()?;
            return self.parse_delete();
        }
        if self.at_kw2("do", "rename")? {
            self.advance()?;
            return self.parse_rename();
        }
        // scripting `exit with` in expression position (XQSE allows it in
        // sequential function bodies, e.g. inside an if branch)
        if self.at_kw2("exit", "with")? {
            self.advance()?;
            self.advance()?;
            let e = self.parse_expr_single()?;
            return Ok(Expr::Block(vec![Statement::ExitWith(e)]));
        }
        // Browser extensions
        if self.at_kw2("on", "event")? {
            return self.parse_event_attach_detach();
        }
        if self.at_kw2("trigger", "event")? {
            return self.parse_event_trigger();
        }
        if self.at_kw2("set", "style")? {
            return self.parse_set_style();
        }
        if self.at_kw2("get", "style")? {
            return self.parse_get_style();
        }
        self.parse_or()
    }

    // ----- binary operators: precedence climbing ------------------------------
    //
    // A single climbing function replaces the classic 12-deep grammar chain:
    // recursive-descent frames are expensive in debug builds, and deeply
    // parenthesised queries would otherwise exhaust the stack long before
    // the nesting guard fires.

    fn parse_or(&mut self) -> XdmResult<Expr> {
        self.parse_binary_expr(1)
    }

    #[allow(clippy::while_let_loop)]
    fn parse_binary_expr(&mut self, min_prec: u8) -> XdmResult<Expr> {
        let mut left = self.parse_type_ops()?;
        loop {
            let Some((kind, prec)) = self.peek_binary_op()? else {
                break;
            };
            if prec < min_prec {
                break;
            }
            self.consume_binary_op(&kind)?;
            if let BinKind::FtContains = kind {
                let selection = self.parse_ft_selection()?;
                left = Expr::FtContains {
                    source: left.boxed(),
                    selection,
                };
                continue;
            }
            let right = self.parse_binary_expr(prec + 1)?;
            left = match kind {
                BinKind::Or => Expr::Or(left.boxed(), right.boxed()),
                BinKind::And => Expr::And(left.boxed(), right.boxed()),
                BinKind::GenComp(op) => Expr::GeneralComp(op, left.boxed(), right.boxed()),
                BinKind::ValComp(op) => Expr::ValueComp(op, left.boxed(), right.boxed()),
                BinKind::NodeComp(op) => Expr::NodeComp(op, left.boxed(), right.boxed()),
                BinKind::Range => Expr::Range(left.boxed(), right.boxed()),
                BinKind::Arith(op) => Expr::Arith(op, left.boxed(), right.boxed()),
                BinKind::Union => Expr::Union(left.boxed(), right.boxed()),
                BinKind::Intersect => Expr::Intersect(left.boxed(), right.boxed()),
                BinKind::Except => Expr::Except(left.boxed(), right.boxed()),
                BinKind::FtContains => unreachable!("handled above"),
            };
        }
        Ok(left)
    }

    /// Identifies the binary operator at the current position (if any) and
    /// its precedence. Precedences (low → high): or=1, and=2, comparisons=3,
    /// ftcontains=4, to=5, +/-=6, */div/idiv/mod=7, union=8,
    /// intersect/except=9.
    fn peek_binary_op(&mut self) -> XdmResult<Option<(BinKind, u8)>> {
        let r = match &self.cur.tok {
            Tok::Eq => Some((BinKind::GenComp(CompOp::Eq), 3)),
            Tok::NotEq => Some((BinKind::GenComp(CompOp::Ne), 3)),
            Tok::Lt => Some((BinKind::GenComp(CompOp::Lt), 3)),
            Tok::LtEq => Some((BinKind::GenComp(CompOp::Le), 3)),
            Tok::Gt => Some((BinKind::GenComp(CompOp::Gt), 3)),
            Tok::GtEq => Some((BinKind::GenComp(CompOp::Ge), 3)),
            Tok::LtLt => Some((BinKind::NodeComp(NodeCompOp::Precedes), 3)),
            Tok::GtGt => Some((BinKind::NodeComp(NodeCompOp::Follows), 3)),
            Tok::Plus => Some((BinKind::Arith(ArithOp::Add), 6)),
            Tok::Minus => Some((BinKind::Arith(ArithOp::Sub), 6)),
            Tok::Star => Some((BinKind::Arith(ArithOp::Mul), 7)),
            Tok::Pipe => Some((BinKind::Union, 8)),
            Tok::Name(n) => match n.as_str() {
                "or" => Some((BinKind::Or, 1)),
                "and" => Some((BinKind::And, 2)),
                "eq" => Some((BinKind::ValComp(CompOp::Eq), 3)),
                "ne" => Some((BinKind::ValComp(CompOp::Ne), 3)),
                "lt" => Some((BinKind::ValComp(CompOp::Lt), 3)),
                "le" => Some((BinKind::ValComp(CompOp::Le), 3)),
                "gt" => Some((BinKind::ValComp(CompOp::Gt), 3)),
                "ge" => Some((BinKind::ValComp(CompOp::Ge), 3)),
                "is" => Some((BinKind::NodeComp(NodeCompOp::Is), 3)),
                "ftcontains" => Some((BinKind::FtContains, 4)),
                "to" => Some((BinKind::Range, 5)),
                "div" => Some((BinKind::Arith(ArithOp::Div), 7)),
                "idiv" => Some((BinKind::Arith(ArithOp::IDiv), 7)),
                "mod" => Some((BinKind::Arith(ArithOp::Mod), 7)),
                "union" => Some((BinKind::Union, 8)),
                "intersect" => Some((BinKind::Intersect, 9)),
                "except" => Some((BinKind::Except, 9)),
                _ => None,
            },
            _ => None,
        };
        Ok(r)
    }

    fn consume_binary_op(&mut self, _kind: &BinKind) -> XdmResult<()> {
        self.advance()
    }

    /// An expression one precedence level below the range operator — used
    /// where a following `to` keyword belongs to the surrounding construct
    /// (`set style … of TARGET to …`).
    pub(crate) fn parse_below_range(&mut self) -> XdmResult<Expr> {
        self.parse_binary_expr(6)
    }

    /// Postfix type operators over a unary expression:
    /// `instance of`, `treat as`, `castable as`, `cast as`.
    fn parse_type_ops(&mut self) -> XdmResult<Expr> {
        let mut e = self.parse_unary()?;
        loop {
            if self.at_kw2("instance", "of")? {
                self.advance()?;
                self.advance()?;
                let st = self.parse_sequence_type()?;
                e = Expr::InstanceOf(e.boxed(), st);
            } else if self.at_kw2("treat", "as")? {
                self.advance()?;
                self.advance()?;
                let st = self.parse_sequence_type()?;
                e = Expr::TreatAs(e.boxed(), st);
            } else if self.at_kw2("castable", "as")? {
                self.advance()?;
                self.advance()?;
                let (ty, optional) = self.parse_single_type()?;
                e = Expr::CastableAs(e.boxed(), ty, optional);
            } else if self.at_kw2("cast", "as")? {
                self.advance()?;
                self.advance()?;
                let (ty, optional) = self.parse_single_type()?;
                e = Expr::CastAs(e.boxed(), ty, optional);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_unary(&mut self) -> XdmResult<Expr> {
        let mut negs = 0usize;
        loop {
            match self.cur.tok {
                Tok::Minus => {
                    negs += 1;
                    self.advance()?;
                }
                Tok::Plus => {
                    self.advance()?;
                }
                _ => break,
            }
        }
        let e = self.parse_path()?;
        if negs % 2 == 1 {
            Ok(Expr::Neg(e.boxed()))
        } else {
            Ok(e)
        }
    }

    // ----- paths --------------------------------------------------------------

    fn parse_path(&mut self) -> XdmResult<Expr> {
        match self.cur.tok {
            Tok::Slash => {
                self.advance()?;
                // "/" alone, or "/relative"
                if self.starts_step() {
                    let steps = self.parse_relative_steps()?;
                    Ok(Expr::Path {
                        start: PathStart::Root,
                        steps,
                    })
                } else {
                    Ok(Expr::Path {
                        start: PathStart::Root,
                        steps: vec![],
                    })
                }
            }
            Tok::SlashSlash => {
                self.advance()?;
                let steps = self.parse_relative_steps()?;
                Ok(Expr::Path {
                    start: PathStart::RootDescendant,
                    steps,
                })
            }
            _ => {
                let first = self.parse_step_expr()?;
                if matches!(self.cur.tok, Tok::Slash | Tok::SlashSlash) {
                    let mut steps = vec![first];
                    self.parse_path_tail(&mut steps)?;
                    Ok(Expr::Path {
                        start: PathStart::Relative,
                        steps,
                    })
                } else {
                    // a lone step: axis steps still need path semantics
                    match first {
                        StepExpr::Axis(_) => Ok(Expr::Path {
                            start: PathStart::Relative,
                            steps: vec![first],
                        }),
                        StepExpr::Filter {
                            primary,
                            predicates,
                        } => {
                            if predicates.is_empty() {
                                Ok(*primary)
                            } else {
                                Ok(Expr::Path {
                                    start: PathStart::Relative,
                                    steps: vec![StepExpr::Filter {
                                        primary,
                                        predicates,
                                    }],
                                })
                            }
                        }
                    }
                }
            }
        }
    }

    fn parse_relative_steps(&mut self) -> XdmResult<Vec<StepExpr>> {
        let mut steps = vec![self.parse_step_expr()?];
        self.parse_path_tail(&mut steps)?;
        Ok(steps)
    }

    fn parse_path_tail(&mut self, steps: &mut Vec<StepExpr>) -> XdmResult<()> {
        loop {
            match self.cur.tok {
                Tok::Slash => {
                    self.advance()?;
                    steps.push(self.parse_step_expr()?);
                }
                Tok::SlashSlash => {
                    self.advance()?;
                    // `//` expands to /descendant-or-self::node()/
                    steps.push(StepExpr::Axis(AxisStep {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::Kind(KindTest::AnyKind),
                        predicates: vec![],
                    }));
                    steps.push(self.parse_step_expr()?);
                }
                _ => return Ok(()),
            }
        }
    }

    /// Can the current token begin a path step?
    fn starts_step(&self) -> bool {
        matches!(
            self.cur.tok,
            Tok::Name(_)
                | Tok::PrefixedName(..)
                | Tok::Star
                | Tok::NsWildcard(_)
                | Tok::LocalWildcard(_)
                | Tok::At
                | Tok::Dot
                | Tok::DotDot
                | Tok::Dollar
                | Tok::LParen
                | Tok::StringLit(_)
                | Tok::IntegerLit(_)
                | Tok::DecimalLit(_)
                | Tok::DoubleLit(_)
                | Tok::Lt
        )
    }

    fn parse_step_expr(&mut self) -> XdmResult<StepExpr> {
        // Reverse/forward axis steps & node tests come first; everything
        // else is a filter (primary + predicates).
        if self.cur.tok == Tok::DotDot {
            self.advance()?;
            let predicates = self.parse_predicates()?;
            return Ok(StepExpr::Axis(AxisStep {
                axis: Axis::Parent,
                test: NodeTest::Kind(KindTest::AnyKind),
                predicates,
            }));
        }
        if self.cur.tok == Tok::At {
            self.advance()?;
            let test = self.parse_node_test(true)?;
            let predicates = self.parse_predicates()?;
            return Ok(StepExpr::Axis(AxisStep {
                axis: Axis::Attribute,
                test,
                predicates,
            }));
        }
        // explicit axis?
        if let Tok::Name(name) = self.cur.tok.clone() {
            if self.peek2()? == Tok::ColonColon {
                let axis = match name.as_str() {
                    "child" => Axis::Child,
                    "descendant" => Axis::Descendant,
                    "attribute" => Axis::Attribute,
                    "self" => Axis::SelfAxis,
                    "descendant-or-self" => Axis::DescendantOrSelf,
                    "following-sibling" => Axis::FollowingSibling,
                    "following" => Axis::Following,
                    "parent" => Axis::Parent,
                    "ancestor" => Axis::Ancestor,
                    "preceding-sibling" => Axis::PrecedingSibling,
                    "preceding" => Axis::Preceding,
                    "ancestor-or-self" => Axis::AncestorOrSelf,
                    other => return Err(self.error(format!("unknown axis `{other}`"))),
                };
                self.advance()?; // axis name
                self.advance()?; // ::
                let test = self.parse_node_test(axis == Axis::Attribute)?;
                let predicates = self.parse_predicates()?;
                return Ok(StepExpr::Axis(AxisStep {
                    axis,
                    test,
                    predicates,
                }));
            }
        }
        // name test (child axis) — but not a function call, kind test or
        // keyword-led expression
        let cur_tok = self.cur.tok.clone();
        let is_name_step = match &cur_tok {
            Tok::Star | Tok::NsWildcard(_) | Tok::LocalWildcard(_) => true,
            Tok::PrefixedName(..) => self.peek2()? != Tok::LParen,
            Tok::Name(n) => {
                let next = self.peek2()?;
                if next == Tok::LParen {
                    // kind tests are steps; function calls are primaries
                    matches!(
                        n.as_str(),
                        "node"
                            | "text"
                            | "comment"
                            | "processing-instruction"
                            | "element"
                            | "attribute"
                            | "document-node"
                    )
                } else {
                    !self.starts_computed_constructor(n, &next)?
                }
            }
            _ => false,
        };
        if is_name_step {
            let test = self.parse_node_test(false)?;
            let predicates = self.parse_predicates()?;
            // `attribute(...)` kind test implies the attribute axis
            let axis = match &test {
                NodeTest::Kind(KindTest::Attribute(_)) => Axis::Attribute,
                _ => Axis::Child,
            };
            return Ok(StepExpr::Axis(AxisStep {
                axis,
                test,
                predicates,
            }));
        }
        // primary expression with optional predicates
        let primary = self.parse_primary()?;
        let predicates = self.parse_predicates()?;
        Ok(StepExpr::Filter {
            primary: primary.boxed(),
            predicates,
        })
    }

    /// Is `name` (with `next` following) the start of a computed constructor
    /// or ordered/unordered/validate expression rather than a name step?
    pub(crate) fn starts_computed_constructor(
        &mut self,
        name: &str,
        next: &Tok,
    ) -> XdmResult<bool> {
        match name {
            "text" | "comment" | "document" | "ordered" | "unordered" | "validate" => {
                Ok(*next == Tok::LBrace)
            }
            "element" | "attribute" | "processing-instruction" => {
                if *next == Tok::LBrace {
                    return Ok(true);
                }
                // `element qname {` needs a third-token peek
                if matches!(next, Tok::Name(_) | Tok::PrefixedName(..)) {
                    let save = self.lx.pos;
                    let _name2 = self.lx.next_token()?;
                    let third = self.lx.next_token()?;
                    self.lx.pos = save;
                    return Ok(third.tok == Tok::LBrace);
                }
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    pub(crate) fn parse_node_test(&mut self, attr_axis: bool) -> XdmResult<NodeTest> {
        match self.cur.tok.clone() {
            Tok::Star => {
                self.advance()?;
                Ok(NodeTest::AnyName)
            }
            Tok::NsWildcard(p) => {
                let uri = self
                    .namespaces
                    .get(&p)
                    .cloned()
                    .ok_or_else(|| self.error(format!("undeclared prefix `{p}`")))?;
                self.advance()?;
                Ok(NodeTest::NsWildcard(uri))
            }
            Tok::LocalWildcard(l) => {
                self.advance()?;
                Ok(NodeTest::LocalWildcard(l))
            }
            Tok::Name(n) => {
                if self.peek2()? == Tok::LParen {
                    match n.as_str() {
                        "node" => {
                            self.advance()?;
                            self.expect_tok(Tok::LParen)?;
                            self.expect_tok(Tok::RParen)?;
                            return Ok(NodeTest::Kind(KindTest::AnyKind));
                        }
                        "text" => {
                            self.advance()?;
                            self.expect_tok(Tok::LParen)?;
                            self.expect_tok(Tok::RParen)?;
                            return Ok(NodeTest::Kind(KindTest::Text));
                        }
                        "comment" => {
                            self.advance()?;
                            self.expect_tok(Tok::LParen)?;
                            self.expect_tok(Tok::RParen)?;
                            return Ok(NodeTest::Kind(KindTest::Comment));
                        }
                        "processing-instruction" => {
                            self.advance()?;
                            self.expect_tok(Tok::LParen)?;
                            let target = match self.cur.tok.clone() {
                                Tok::StringLit(s) => {
                                    self.advance()?;
                                    Some(s)
                                }
                                Tok::Name(n) => {
                                    self.advance()?;
                                    Some(n)
                                }
                                _ => None,
                            };
                            self.expect_tok(Tok::RParen)?;
                            return Ok(NodeTest::Kind(KindTest::Pi(target)));
                        }
                        "element" => {
                            self.advance()?;
                            self.expect_tok(Tok::LParen)?;
                            let name = if self.cur.tok == Tok::RParen || self.cur.tok == Tok::Star {
                                let _ = self.eat_tok(&Tok::Star)?;
                                None
                            } else {
                                Some(self.parse_element_qname()?)
                            };
                            self.expect_tok(Tok::RParen)?;
                            return Ok(NodeTest::Kind(KindTest::Element(name)));
                        }
                        "attribute" => {
                            self.advance()?;
                            self.expect_tok(Tok::LParen)?;
                            let name = if self.cur.tok == Tok::RParen || self.cur.tok == Tok::Star {
                                let _ = self.eat_tok(&Tok::Star)?;
                                None
                            } else {
                                let (p, l) = self.parse_raw_qname()?;
                                Some(self.resolve_qname(p, l, false)?)
                            };
                            self.expect_tok(Tok::RParen)?;
                            return Ok(NodeTest::Kind(KindTest::Attribute(name)));
                        }
                        "document-node" => {
                            self.advance()?;
                            self.expect_tok(Tok::LParen)?;
                            // allow an inner element() test, ignored
                            if self.cur.tok != Tok::RParen {
                                let _ = self.parse_node_test(false)?;
                            }
                            self.expect_tok(Tok::RParen)?;
                            return Ok(NodeTest::Kind(KindTest::Document));
                        }
                        _ => {}
                    }
                }
                let (p, l) = self.parse_raw_qname()?;
                // attribute names don't use the default element namespace
                let q = self.resolve_qname(p, l, !attr_axis)?;
                Ok(NodeTest::Name(q))
            }
            Tok::PrefixedName(..) => {
                let (p, l) = self.parse_raw_qname()?;
                let q = self.resolve_qname(p, l, !attr_axis)?;
                Ok(NodeTest::Name(q))
            }
            other => Err(self.error(format!("expected a node test, found {}", other.describe()))),
        }
    }

    pub(crate) fn parse_predicates(&mut self) -> XdmResult<Vec<Expr>> {
        let mut preds = Vec::new();
        while self.cur.tok == Tok::LBracket {
            self.advance()?;
            preds.push(self.parse_expr()?);
            self.expect_tok(Tok::RBracket)?;
        }
        Ok(preds)
    }

    // ----- primaries ------------------------------------------------------------

    pub(crate) fn parse_primary(&mut self) -> XdmResult<Expr> {
        match self.cur.tok.clone() {
            Tok::IntegerLit(i) => {
                self.advance()?;
                Ok(Expr::Literal(Atomic::Integer(i)))
            }
            Tok::DecimalLit(d) => {
                self.advance()?;
                Ok(Expr::Literal(Atomic::Decimal(d)))
            }
            Tok::DoubleLit(d) => {
                self.advance()?;
                Ok(Expr::Literal(Atomic::Double(d)))
            }
            Tok::StringLit(s) => {
                self.advance()?;
                Ok(Expr::Literal(Atomic::str(s)))
            }
            Tok::Dollar => {
                let name = self.parse_var_name()?;
                Ok(Expr::VarRef(name))
            }
            Tok::Dot => {
                self.advance()?;
                Ok(Expr::ContextItem)
            }
            Tok::LParen => {
                self.advance()?;
                if self.eat_tok(&Tok::RParen)? {
                    return Ok(Expr::Sequence(vec![]));
                }
                let e = self.parse_expr()?;
                self.expect_tok(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => self.parse_block(),
            Tok::Lt => self.parse_direct_constructor(),
            Tok::Name(n) => self.parse_keyword_or_call(&n),
            Tok::PrefixedName(..) => self.parse_function_call(),
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }

    fn parse_keyword_or_call(&mut self, name: &str) -> XdmResult<Expr> {
        // computed constructors
        match name {
            "element"
            | "attribute"
            | "text"
            | "comment"
            | "processing-instruction"
            | "document" => {
                let next = self.peek2()?;
                let is_computed =
                    matches!(next, Tok::LBrace | Tok::Name(_) | Tok::PrefixedName(..));
                if is_computed {
                    return self.parse_computed_constructor(name);
                }
            }
            "ordered" | "unordered" if self.peek2()? == Tok::LBrace => {
                self.advance()?;
                self.expect_tok(Tok::LBrace)?;
                let e = self.parse_expr()?;
                self.expect_tok(Tok::RBrace)?;
                return Ok(e);
            }
            "validate" if self.peek2()? == Tok::LBrace => {
                // schema validation is out of scope: validate { E } = E
                self.advance()?;
                self.expect_tok(Tok::LBrace)?;
                let e = self.parse_expr()?;
                self.expect_tok(Tok::RBrace)?;
                return Ok(e);
            }
            _ => {}
        }
        if self.peek2()? == Tok::LParen && !Self::is_reserved_fn_name(name) {
            return self.parse_function_call();
        }
        Err(self.error(format!("unexpected name `{name}` in expression position")))
    }

    pub(crate) fn parse_function_call(&mut self) -> XdmResult<Expr> {
        let name = self.parse_function_qname()?;
        self.expect_tok(Tok::LParen)?;
        let mut args = Vec::new();
        if self.cur.tok != Tok::RParen {
            loop {
                args.push(self.parse_expr_single()?);
                if !self.eat_tok(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect_tok(Tok::RParen)?;
        Ok(Expr::FunctionCall { name, args })
    }

    // ----- control flow -----------------------------------------------------------

    fn parse_if(&mut self) -> XdmResult<Expr> {
        self.expect_kw("if")?;
        self.expect_tok(Tok::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_tok(Tok::RParen)?;
        self.expect_kw("then")?;
        let then = self.parse_expr_single()?;
        self.expect_kw("else")?;
        let els = self.parse_expr_single()?;
        Ok(Expr::If {
            cond: cond.boxed(),
            then: then.boxed(),
            els: els.boxed(),
        })
    }

    fn parse_flwor(&mut self) -> XdmResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.at_kw("for") && self.peek2()? == Tok::Dollar {
                self.advance()?;
                loop {
                    let var = self.parse_var_name()?;
                    let ty = if self.at_kw("as") {
                        self.advance()?;
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    let at = if self.at_kw("at") {
                        self.advance()?;
                        Some(self.parse_var_name()?)
                    } else {
                        None
                    };
                    self.expect_kw("in")?;
                    let seq = self.parse_expr_single()?;
                    clauses.push(FlworClause::For { var, at, ty, seq });
                    if !self.eat_tok(&Tok::Comma)? {
                        break;
                    }
                }
            } else if self.at_kw("let") && self.peek2()? == Tok::Dollar {
                self.advance()?;
                loop {
                    let var = self.parse_var_name()?;
                    let ty = if self.at_kw("as") {
                        self.advance()?;
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    self.expect_tok(Tok::ColonEq)?;
                    let expr = self.parse_expr_single()?;
                    clauses.push(FlworClause::Let { var, ty, expr });
                    if !self.eat_tok(&Tok::Comma)? {
                        break;
                    }
                }
            } else if self.at_kw("where") {
                self.advance()?;
                clauses.push(FlworClause::Where(self.parse_expr_single()?));
            } else if self.at_kw2("order", "by")? {
                self.advance()?;
                self.advance()?;
                clauses.push(self.parse_order_by(false)?);
            } else if self.at_kw2("stable", "order")? {
                self.advance()?;
                self.advance()?;
                self.expect_kw("by")?;
                clauses.push(self.parse_order_by(true)?);
            } else {
                break;
            }
        }
        self.expect_kw("return")?;
        let ret = self.parse_expr_single()?;
        Ok(Expr::Flwor {
            clauses,
            ret: ret.boxed(),
        })
    }

    fn parse_order_by(&mut self, stable: bool) -> XdmResult<FlworClause> {
        let mut specs = Vec::new();
        loop {
            let key = self.parse_expr_single()?;
            let mut descending = false;
            if self.eat_kw("ascending")? {
            } else if self.eat_kw("descending")? {
                descending = true;
            }
            let mut empty_least = true;
            if self.at_kw("empty") {
                self.advance()?;
                if self.eat_kw("greatest")? {
                    empty_least = false;
                } else {
                    self.expect_kw("least")?;
                }
            }
            specs.push(OrderSpec {
                key,
                descending,
                empty_least,
            });
            if !self.eat_tok(&Tok::Comma)? {
                break;
            }
        }
        Ok(FlworClause::OrderBy { specs, stable })
    }

    fn parse_quantified(&mut self) -> XdmResult<Expr> {
        let kind = if self.eat_kw("some")? {
            Quantifier::Some
        } else {
            self.expect_kw("every")?;
            Quantifier::Every
        };
        let mut bindings = Vec::new();
        loop {
            let var = self.parse_var_name()?;
            if self.at_kw("as") {
                self.advance()?;
                let _ = self.parse_sequence_type()?;
            }
            self.expect_kw("in")?;
            let seq = self.parse_expr_single()?;
            bindings.push((var, seq));
            if !self.eat_tok(&Tok::Comma)? {
                break;
            }
        }
        self.expect_kw("satisfies")?;
        let satisfies = self.parse_expr_single()?;
        Ok(Expr::Quantified {
            kind,
            bindings,
            satisfies: satisfies.boxed(),
        })
    }

    fn parse_typeswitch(&mut self) -> XdmResult<Expr> {
        self.expect_kw("typeswitch")?;
        self.expect_tok(Tok::LParen)?;
        let operand = self.parse_expr()?;
        self.expect_tok(Tok::RParen)?;
        let mut cases = Vec::new();
        while self.at_kw("case") {
            self.advance()?;
            let var = if self.cur.tok == Tok::Dollar {
                let v = self.parse_var_name()?;
                self.expect_kw("as")?;
                Some(v)
            } else {
                None
            };
            let st = self.parse_sequence_type()?;
            self.expect_kw("return")?;
            let e = self.parse_expr_single()?;
            cases.push((st, var, e));
        }
        self.expect_kw("default")?;
        let default_var = if self.cur.tok == Tok::Dollar {
            Some(self.parse_var_name()?)
        } else {
            None
        };
        self.expect_kw("return")?;
        let default = self.parse_expr_single()?;
        Ok(Expr::TypeSwitch {
            operand: operand.boxed(),
            cases,
            default_var,
            default: default.boxed(),
        })
    }

    // ----- scripting blocks ----------------------------------------------------

    /// `{ Statement (; Statement)* ;? }` — the XQSE block shape the paper
    /// uses in §3.3 and §6.3.
    pub(crate) fn parse_block(&mut self) -> XdmResult<Expr> {
        self.expect_tok(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.cur.tok != Tok::RBrace {
            stmts.push(self.parse_statement()?);
            if !self.eat_tok(&Tok::Semicolon)? {
                break;
            }
        }
        self.expect_tok(Tok::RBrace)?;
        Ok(Expr::Block(stmts))
    }

    pub(crate) fn parse_statement(&mut self) -> XdmResult<Statement> {
        if self.at_kw2("declare", "variable")? {
            self.advance()?;
            self.advance()?;
            let name = self.parse_var_name()?;
            let ty = if self.at_kw("as") {
                self.advance()?;
                Some(self.parse_sequence_type()?)
            } else {
                None
            };
            // both `:=` and `=` accepted (the paper writes
            // `declare variable $message = <message>…`)
            let init = if self.eat_tok(&Tok::ColonEq)? || self.eat_tok(&Tok::Eq)? {
                Some(self.parse_expr_single()?)
            } else {
                None
            };
            return Ok(Statement::VarDecl { name, ty, init });
        }
        if self.at_kw("set") && self.peek2()? == Tok::Dollar {
            self.advance()?;
            let name = self.parse_var_name()?;
            self.expect_tok(Tok::ColonEq)?;
            let value = self.parse_expr_single()?;
            return Ok(Statement::Assign { name, value });
        }
        if self.at_kw("while") && self.peek2()? == Tok::LParen {
            self.advance()?;
            self.expect_tok(Tok::LParen)?;
            let cond = self.parse_expr()?;
            self.expect_tok(Tok::RParen)?;
            let body_expr = self.parse_block()?;
            let body = match body_expr {
                Expr::Block(stmts) => stmts,
                other => vec![Statement::Expr(other)],
            };
            return Ok(Statement::While { cond, body });
        }
        if self.at_kw2("exit", "with")? {
            self.advance()?;
            self.advance()?;
            let e = self.parse_expr_single()?;
            return Ok(Statement::ExitWith(e));
        }
        Ok(Statement::Expr(self.parse_expr()?))
    }
}

/// Binary operator kinds for the precedence climber.
enum BinKind {
    Or,
    And,
    GenComp(CompOp),
    ValComp(CompOp),
    NodeComp(NodeCompOp),
    FtContains,
    Range,
    Arith(ArithOp),
    Union,
    Intersect,
    Except,
}
