//! Prolog parsing: namespace/option/variable/function declarations and
//! module imports, including `declare updating function` (Update Facility)
//! and `declare sequential function` (Scripting Extension), both of which the
//! paper's listings use.

use xqib_xdm::XdmResult;

use crate::ast::{FunctionDecl, FunctionKind, ModuleImport, Prolog, VarDecl};
use crate::token::Tok;

use super::Parser;

impl<'a> Parser<'a> {
    pub(crate) fn parse_prolog(&mut self) -> XdmResult<Prolog> {
        let mut prolog = Prolog::default();
        loop {
            if self.at_kw("declare") {
                let next = self.peek2()?;
                if next.is_kw("namespace") {
                    self.advance()?;
                    self.advance()?;
                    let prefix = match self.cur.tok.clone() {
                        Tok::Name(n) => {
                            self.advance()?;
                            n
                        }
                        _ => return Err(self.error("expected a namespace prefix")),
                    };
                    self.expect_tok(Tok::Eq)?;
                    let uri = self.parse_string_literal()?;
                    self.expect_tok(Tok::Semicolon)?;
                    self.namespaces.insert(prefix.clone(), uri.clone());
                    prolog.namespaces.push((prefix, uri));
                } else if next.is_kw("default") {
                    self.advance()?;
                    self.advance()?;
                    if self.eat_kw("element")? {
                        self.expect_kw("namespace")?;
                        let uri = self.parse_string_literal()?;
                        self.default_element_ns = if uri.is_empty() {
                            None
                        } else {
                            Some(uri.clone())
                        };
                        prolog.default_element_ns = Some(uri);
                    } else if self.eat_kw("function")? {
                        self.expect_kw("namespace")?;
                        let uri = self.parse_string_literal()?;
                        prolog.default_function_ns = Some(uri);
                    } else if self.eat_kw("collation")? {
                        let _ = self.parse_string_literal()?;
                    } else if self.eat_kw("order")? {
                        // `declare default order empty least/greatest`
                        self.expect_kw("empty")?;
                        if !self.eat_kw("least")? {
                            self.expect_kw("greatest")?;
                        }
                    } else {
                        return Err(self.error("unsupported default declaration"));
                    }
                    self.expect_tok(Tok::Semicolon)?;
                } else if next.is_kw("option") {
                    self.advance()?;
                    self.advance()?;
                    let (p, l) = self.parse_raw_qname()?;
                    let q = self.resolve_qname(p, l, false)?;
                    let value = self.parse_string_literal()?;
                    self.expect_tok(Tok::Semicolon)?;
                    prolog.options.push((q, value));
                } else if next.is_kw("variable") {
                    self.advance()?;
                    self.advance()?;
                    let name = self.parse_var_name()?;
                    let ty = if self.at_kw("as") {
                        self.advance()?;
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    let init = if self.eat_tok(&Tok::ColonEq)? {
                        Some(self.parse_expr_single()?)
                    } else {
                        self.expect_kw("external")?;
                        None
                    };
                    self.expect_tok(Tok::Semicolon)?;
                    prolog.variables.push(VarDecl { name, ty, init });
                } else if next.is_kw("function")
                    || next.is_kw("updating")
                    || next.is_kw("sequential")
                    || next.is_kw("simple")
                {
                    self.advance()?; // declare
                    let kind = if self.eat_kw("updating")? {
                        FunctionKind::Updating
                    } else if self.eat_kw("sequential")? {
                        FunctionKind::Sequential
                    } else {
                        let _ = self.eat_kw("simple")?;
                        FunctionKind::Simple
                    };
                    self.expect_kw("function")?;
                    let decl = self.parse_function_decl(kind)?;
                    self.expect_tok(Tok::Semicolon)?;
                    prolog.functions.push(decl);
                } else if next.is_kw("boundary-space") {
                    self.advance()?;
                    self.advance()?;
                    if !self.eat_kw("preserve")? {
                        self.expect_kw("strip")?;
                    }
                    self.expect_tok(Tok::Semicolon)?;
                } else if next.is_kw("base-uri") {
                    self.advance()?;
                    self.advance()?;
                    let _ = self.parse_string_literal()?;
                    self.expect_tok(Tok::Semicolon)?;
                } else if next.is_kw("construction")
                    || next.is_kw("ordering")
                    || next.is_kw("copy-namespaces")
                    || next.is_kw("revalidation")
                {
                    // accepted and ignored (defaults apply)
                    self.advance()?;
                    while self.cur.tok != Tok::Semicolon && self.cur.tok != Tok::Eof {
                        self.advance()?;
                    }
                    self.expect_tok(Tok::Semicolon)?;
                } else {
                    break;
                }
            } else if self.at_kw("import") {
                let next = self.peek2()?;
                if next.is_kw("module") {
                    self.advance()?;
                    self.advance()?;
                    self.expect_kw("namespace")?;
                    let prefix = match self.cur.tok.clone() {
                        Tok::Name(n) => {
                            self.advance()?;
                            n
                        }
                        _ => return Err(self.error("expected a module prefix")),
                    };
                    self.expect_tok(Tok::Eq)?;
                    let uri = self.parse_string_literal()?;
                    let mut locations = Vec::new();
                    if self.eat_kw("at")? {
                        loop {
                            locations.push(self.parse_string_literal()?);
                            if !self.eat_tok(&Tok::Comma)? {
                                break;
                            }
                        }
                    }
                    self.expect_tok(Tok::Semicolon)?;
                    self.namespaces.insert(prefix.clone(), uri.clone());
                    prolog.module_imports.push(ModuleImport {
                        prefix,
                        uri,
                        locations,
                    });
                } else if next.is_kw("schema") {
                    return Err(self.error("schema import is not supported (untyped data model)"));
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(prolog)
    }

    /// Parses `name(params) (as Type)? ({ body } | external)` after the
    /// `function` keyword.
    pub(crate) fn parse_function_decl(
        &mut self,
        kind: crate::ast::FunctionKind,
    ) -> XdmResult<FunctionDecl> {
        let (p, l) = self.parse_raw_qname()?;
        let name = match p {
            Some(_) => self.resolve_qname(p, l, false)?,
            // unprefixed user functions live in local:
            None => xqib_dom::QName::ns(xqib_dom::name::LOCAL_NS, &l),
        };
        self.expect_tok(Tok::LParen)?;
        let mut params = Vec::new();
        if self.cur.tok != Tok::RParen {
            loop {
                let pname = self.parse_var_name()?;
                let ty = if self.at_kw("as") {
                    self.advance()?;
                    Some(self.parse_sequence_type()?)
                } else {
                    None
                };
                params.push((pname, ty));
                if !self.eat_tok(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect_tok(Tok::RParen)?;
        let return_type = if self.at_kw("as") {
            self.advance()?;
            Some(self.parse_sequence_type()?)
        } else {
            None
        };
        let body = if self.at_kw("external") {
            self.advance()?;
            // external functions are resolved against native bindings at
            // runtime; represent as a call marker
            crate::ast::Expr::FunctionCall {
                name: xqib_dom::QName::ns("xqib:external", "external"),
                args: vec![],
            }
        } else {
            self.parse_block()?
        };
        Ok(FunctionDecl {
            name,
            params,
            return_type,
            kind,
            body: std::rc::Rc::new(body),
        })
    }
}
