//! Recursive-descent parser for XQuery 1.0 + Update Facility + Scripting +
//! Full-Text + the paper's browser extensions.
//!
//! Keywords are contextual (XQuery reserves nothing), so the parser decides
//! keyword-hood by looking at name tokens in position. Direct XML
//! constructors switch the parser into raw character scanning at the lexer's
//! byte offset — the standard dual-lexical-state technique.

mod constructor;
mod expr;
mod extensions;
mod prolog;
mod types;

use std::collections::HashMap;

use xqib_dom::name::{FN_NS, LOCAL_NS, XS_NS};
use xqib_dom::QName;
use xqib_xdm::{XdmError, XdmResult};

use crate::ast::{Expr, LibraryModule, MainModule, Statement};
use crate::lexer::Lexer;
use crate::token::{Tok, Token};

/// Reserved function-name words that must not be parsed as function calls.
const RESERVED_FN_NAMES: &[&str] = &[
    "attribute",
    "comment",
    "document-node",
    "element",
    "empty-sequence",
    "if",
    "item",
    "node",
    "processing-instruction",
    "schema-attribute",
    "schema-element",
    "text",
    "typeswitch",
];

/// The parser state.
pub struct Parser<'a> {
    pub(crate) lx: Lexer<'a>,
    pub(crate) cur: Token,
    /// expression-nesting depth guard (keeps recursive descent off the
    /// end of the stack for adversarial inputs)
    pub(crate) depth: usize,
    /// stack position at parser creation — the primary guard measures real
    /// bytes, since debug-build frames are large
    pub(crate) stack_base: usize,
    /// statically-known namespaces (prefix → URI), seeded with the defaults
    /// plus the browser namespace.
    pub(crate) namespaces: HashMap<String, String>,
    pub(crate) default_element_ns: Option<String>,
}

impl<'a> Parser<'a> {
    pub fn new(src: &'a str) -> XdmResult<Self> {
        let mut lx = Lexer::new(src);
        let cur = lx.next_token()?;
        let mut namespaces = HashMap::new();
        namespaces.insert("xs".to_string(), XS_NS.to_string());
        namespaces.insert("fn".to_string(), FN_NS.to_string());
        namespaces.insert("local".to_string(), LOCAL_NS.to_string());
        namespaces.insert(
            "browser".to_string(),
            xqib_dom::name::BROWSER_NS.to_string(),
        );
        namespaces.insert("xml".to_string(), xqib_dom::name::XML_NS.to_string());
        Ok(Parser {
            lx,
            cur,
            depth: 0,
            stack_base: crate::context::approx_stack_ptr(),
            namespaces,
            default_element_ns: None,
        })
    }

    // ----- token plumbing ---------------------------------------------------

    pub(crate) fn advance(&mut self) -> XdmResult<()> {
        self.cur = self.lx.next_token()?;
        Ok(())
    }

    /// Peeks at the token after the current one without consuming.
    pub(crate) fn peek2(&mut self) -> XdmResult<Tok> {
        let save = self.lx.pos;
        let t = self.lx.next_token()?;
        self.lx.pos = save;
        Ok(t.tok)
    }

    pub(crate) fn error(&self, msg: impl Into<String>) -> XdmError {
        XdmError::new(
            "XPST0003",
            format!("{} (at byte {})", msg.into(), self.cur.start),
        )
    }

    pub(crate) fn expect_tok(&mut self, t: Tok) -> XdmResult<()> {
        if self.cur.tok == t {
            self.advance()
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                t.describe(),
                self.cur.tok.describe()
            )))
        }
    }

    /// Consumes a contextual keyword.
    pub(crate) fn expect_kw(&mut self, kw: &str) -> XdmResult<()> {
        if self.cur.tok.is_kw(kw) {
            self.advance()
        } else {
            Err(self.error(format!(
                "expected keyword `{kw}`, found {}",
                self.cur.tok.describe()
            )))
        }
    }

    pub(crate) fn at_kw(&self, kw: &str) -> bool {
        self.cur.tok.is_kw(kw)
    }

    /// `kw1 kw2` lookahead: current token is `kw1` and next is `kw2`.
    pub(crate) fn at_kw2(&mut self, kw1: &str, kw2: &str) -> XdmResult<bool> {
        Ok(self.at_kw(kw1) && self.peek2()?.is_kw(kw2))
    }

    pub(crate) fn eat_kw(&mut self, kw: &str) -> XdmResult<bool> {
        if self.at_kw(kw) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    pub(crate) fn eat_tok(&mut self, t: &Tok) -> XdmResult<bool> {
        if &self.cur.tok == t {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    // ----- names ------------------------------------------------------------

    /// Parses a lexical QName token into raw (prefix, local).
    pub(crate) fn parse_raw_qname(&mut self) -> XdmResult<(Option<String>, String)> {
        match self.cur.tok.clone() {
            Tok::Name(n) => {
                self.advance()?;
                Ok((None, n))
            }
            Tok::PrefixedName(p, l) => {
                self.advance()?;
                Ok((Some(p), l))
            }
            other => Err(self.error(format!("expected a QName, found {}", other.describe()))),
        }
    }

    /// Resolves a raw name against the in-scope namespaces.
    /// `use_default_element_ns` controls whether unprefixed names pick up the
    /// default element namespace (element names: yes; functions/vars: no).
    pub(crate) fn resolve_qname(
        &self,
        prefix: Option<String>,
        local: String,
        use_default_element_ns: bool,
    ) -> XdmResult<QName> {
        match prefix {
            Some(p) => {
                let uri = self.namespaces.get(&p).ok_or_else(|| {
                    XdmError::new("XPST0081", format!("undeclared namespace prefix `{p}`"))
                })?;
                Ok(QName::full(Some(&p), Some(uri), &local))
            }
            None => {
                if use_default_element_ns {
                    Ok(QName::full(
                        None,
                        self.default_element_ns.as_deref(),
                        &local,
                    ))
                } else {
                    Ok(QName::local(&local))
                }
            }
        }
    }

    /// QName in element-name position.
    pub(crate) fn parse_element_qname(&mut self) -> XdmResult<QName> {
        let (p, l) = self.parse_raw_qname()?;
        self.resolve_qname(p, l, true)
    }

    /// QName in function/variable-name position (no default element ns);
    /// unprefixed function names resolve to `fn:`.
    pub(crate) fn parse_function_qname(&mut self) -> XdmResult<QName> {
        let (p, l) = self.parse_raw_qname()?;
        match p {
            Some(_) => self.resolve_qname(p, l, false),
            None => Ok(QName::ns(FN_NS, &l)),
        }
    }

    /// `$name`
    pub(crate) fn parse_var_name(&mut self) -> XdmResult<QName> {
        self.expect_tok(Tok::Dollar)?;
        let (p, l) = self.parse_raw_qname()?;
        self.resolve_qname(p, l, false)
    }

    // ----- entry points -----------------------------------------------------

    /// Parses a complete main module (prolog + body program).
    pub fn parse_main_module(mut self) -> XdmResult<MainModule> {
        self.skip_version_decl()?;
        let prolog = self.parse_prolog()?;
        let body = self.parse_program()?;
        if self.cur.tok != Tok::Eof {
            return Err(self.error(format!("unexpected trailing {}", self.cur.tok.describe())));
        }
        Ok(MainModule { prolog, body })
    }

    /// Parses a library module.
    pub fn parse_library_module(mut self) -> XdmResult<LibraryModule> {
        self.skip_version_decl()?;
        self.expect_kw("module")?;
        self.expect_kw("namespace")?;
        let prefix = match self.cur.tok.clone() {
            Tok::Name(n) => {
                self.advance()?;
                n
            }
            _ => return Err(self.error("expected module prefix")),
        };
        self.expect_tok(Tok::Eq)?;
        let uri = self.parse_string_literal()?;
        // the paper's web-service extension: `port:2001` — `:2001` is not a
        // QName tail (digits), so read it at the character level
        let port = if self.cur.tok.is_kw("port") {
            let mut pos = self.cur.end;
            let bytes = self.lx.src.as_bytes();
            if bytes.get(pos) == Some(&b':') {
                pos += 1;
                let start = pos;
                while bytes.get(pos).is_some_and(|b| b.is_ascii_digit()) {
                    pos += 1;
                }
                let digits = &self.lx.src[start..pos];
                let port: u16 = digits
                    .parse()
                    .map_err(|_| self.error(format!("bad port number `{digits}`")))?;
                self.lx.pos = pos;
                self.advance()?;
                Some(port)
            } else {
                None
            }
        } else {
            None
        };
        self.expect_tok(Tok::Semicolon)?;
        self.namespaces.insert(prefix.clone(), uri.clone());
        let prolog = self.parse_prolog()?;
        if self.cur.tok != Tok::Eof {
            return Err(self.error(format!(
                "unexpected trailing {} in library module",
                self.cur.tok.describe()
            )));
        }
        Ok(LibraryModule {
            prefix,
            uri,
            port,
            prolog,
        })
    }

    fn skip_version_decl(&mut self) -> XdmResult<()> {
        if self.at_kw("xquery") && self.peek2()?.is_kw("version") {
            self.advance()?; // xquery
            self.advance()?; // version
            let _v = self.parse_string_literal()?;
            if self.eat_kw("encoding")? {
                let _e = self.parse_string_literal()?;
            }
            self.expect_tok(Tok::Semicolon)?;
        }
        Ok(())
    }

    /// The query body: one or more statements separated by `;` (the XQSE
    /// "Program" shape; a plain XQuery body is a single statement).
    fn parse_program(&mut self) -> XdmResult<Vec<Statement>> {
        let mut stmts = Vec::new();
        loop {
            if self.cur.tok == Tok::Eof {
                break;
            }
            let stmt = self.parse_statement()?;
            stmts.push(stmt);
            if !self.eat_tok(&Tok::Semicolon)? {
                break;
            }
        }
        if stmts.is_empty() {
            return Err(self.error("empty query body"));
        }
        Ok(stmts)
    }

    pub(crate) fn parse_string_literal(&mut self) -> XdmResult<String> {
        match self.cur.tok.clone() {
            Tok::StringLit(s) => {
                self.advance()?;
                Ok(s)
            }
            other => Err(self.error(format!(
                "expected a string literal, found {}",
                other.describe()
            ))),
        }
    }

    pub(crate) fn is_reserved_fn_name(name: &str) -> bool {
        RESERVED_FN_NAMES.contains(&name)
    }
}

/// Parses a query source into a main module.
pub fn parse_main(src: &str) -> XdmResult<MainModule> {
    Parser::new(src)?.parse_main_module()
}

/// Parses a library module source.
pub fn parse_library(src: &str) -> XdmResult<LibraryModule> {
    Parser::new(src)?.parse_library_module()
}

/// Parses a single expression (convenience for tests and embedded XPath).
pub fn parse_expr_str(src: &str) -> XdmResult<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.parse_expr()?;
    if p.cur.tok != Tok::Eof {
        return Err(p.error(format!("unexpected trailing {}", p.cur.tok.describe())));
    }
    Ok(e)
}
