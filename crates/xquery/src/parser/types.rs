//! Sequence-type parsing: `empty-sequence()`, `item()`, kind tests, atomic
//! types, occurrence indicators, and `SingleType` for casts.

use xqib_xdm::{ItemType, Occurrence, SequenceType, TypeName, XdmResult};

use crate::ast::{KindTest, NodeTest};
use crate::token::Tok;

use super::Parser;

impl<'a> Parser<'a> {
    /// SequenceType ::= ("empty-sequence" "(" ")") | (ItemType OccurrenceIndicator?)
    pub(crate) fn parse_sequence_type(&mut self) -> XdmResult<SequenceType> {
        if self.at_kw("empty-sequence") {
            self.advance()?;
            self.expect_tok(Tok::LParen)?;
            self.expect_tok(Tok::RParen)?;
            return Ok(SequenceType::empty());
        }
        let item = self.parse_item_type()?;
        let occurrence = match self.cur.tok {
            Tok::Question => {
                self.advance()?;
                Occurrence::Optional
            }
            Tok::Star => {
                self.advance()?;
                Occurrence::ZeroOrMore
            }
            Tok::Plus => {
                self.advance()?;
                Occurrence::OneOrMore
            }
            _ => Occurrence::One,
        };
        Ok(SequenceType {
            item,
            occurrence,
            empty_sequence: false,
        })
    }

    fn parse_item_type(&mut self) -> XdmResult<ItemType> {
        if self.at_kw("item") {
            self.advance()?;
            self.expect_tok(Tok::LParen)?;
            self.expect_tok(Tok::RParen)?;
            return Ok(ItemType::AnyItem);
        }
        // kind tests reuse the node-test parser
        if let Tok::Name(n) = &self.cur.tok {
            if matches!(
                n.as_str(),
                "node"
                    | "text"
                    | "comment"
                    | "processing-instruction"
                    | "element"
                    | "attribute"
                    | "document-node"
            ) && self.peek2()? == Tok::LParen
            {
                let test = self.parse_node_test(false)?;
                return Ok(match test {
                    NodeTest::Kind(KindTest::AnyKind) => ItemType::AnyNode,
                    NodeTest::Kind(KindTest::Text) => ItemType::Text,
                    NodeTest::Kind(KindTest::Comment) => ItemType::Comment,
                    NodeTest::Kind(KindTest::Pi(t)) => ItemType::Pi(t),
                    NodeTest::Kind(KindTest::Element(q)) => ItemType::Element(q),
                    NodeTest::Kind(KindTest::Attribute(q)) => ItemType::Attribute(q),
                    NodeTest::Kind(KindTest::Document) => ItemType::Document,
                    _ => unreachable!("node test parser returned a name test"),
                });
            }
        }
        // atomic type name
        let (prefix, local) = self.parse_raw_qname()?;
        self.atomic_type_from(prefix.as_deref(), &local)
            .map(ItemType::Atomic)
    }

    /// SingleType ::= AtomicType "?"?  (for `cast as` / `castable as`)
    pub(crate) fn parse_single_type(&mut self) -> XdmResult<(TypeName, bool)> {
        let (prefix, local) = self.parse_raw_qname()?;
        let ty = self.atomic_type_from(prefix.as_deref(), &local)?;
        let optional = self.eat_tok(&Tok::Question)?;
        Ok((ty, optional))
    }

    fn atomic_type_from(&self, prefix: Option<&str>, local: &str) -> XdmResult<TypeName> {
        // accept `xs:` prefixed and bare names
        if let Some(p) = prefix {
            if p != "xs" && p != "xsd" {
                return Err(self.error(format!("unknown atomic type `{p}:{local}`")));
            }
        }
        TypeName::from_local(local)
            .ok_or_else(|| self.error(format!("unknown atomic type `{local}`")))
    }
}
