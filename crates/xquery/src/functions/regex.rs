//! A small backtracking regular-expression engine for `fn:matches`,
//! `fn:replace` and `fn:tokenize` (XML Schema regex subset).
//!
//! Supported: literals, `.`, escapes (`\d \D \w \W \s \S \. \\ …`),
//! character classes (`[a-z0-9]`, negation), anchors `^`/`$`, groups with
//! capture, alternation, and the quantifiers `*`, `+`, `?`, `{n}`, `{n,}`,
//! `{n,m}` (greedy, with `?` for reluctant).
//!
//! Written from scratch (no third-party regex crate, per the reproduction
//! rules). Patterns compile to a small AST walked by a backtracking matcher;
//! web-page workloads use short patterns, where this is plenty fast.

use xqib_xdm::{XdmError, XdmResult};

/// A match: (start, end, capture-group spans).
pub type Match = (usize, usize, Vec<Option<(usize, usize)>>);

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    root: Node,
    n_groups: usize,
}

#[derive(Debug, Clone)]
enum Node {
    /// alternation of sequences
    Alt(Vec<Node>),
    Seq(Vec<Node>),
    Char(char),
    AnyChar,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Group(usize, Box<Node>),
    Repeat {
        node: Box<Node>,
        min: usize,
        max: Option<usize>,
        greedy: bool,
    },
    AnchorStart,
    AnchorEnd,
}

#[derive(Debug, Clone)]
enum ClassItem {
    Char(char),
    Range(char, char),
    Digit(bool),
    Word(bool),
    Space(bool),
}

struct PatParser<'a> {
    chars: Vec<char>,
    pos: usize,
    n_groups: usize,
    src: &'a str,
}

fn perr(src: &str, msg: &str) -> XdmError {
    XdmError::new("FORX0002", format!("invalid regex `{src}`: {msg}"))
}

impl<'a> PatParser<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }
    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> XdmResult<Node> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn parse_seq(&mut self) -> XdmResult<Node> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_quantified()?);
        }
        Ok(Node::Seq(items))
    }

    fn parse_quantified(&mut self) -> XdmResult<Node> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                let mut min_s = String::new();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    min_s.push(self.bump().expect("digit"));
                }
                let min: usize = min_s
                    .parse()
                    .map_err(|_| perr(self.src, "bad repetition count"))?;
                let max = if self.peek() == Some(',') {
                    self.bump();
                    if self.peek() == Some('}') {
                        None
                    } else {
                        let mut max_s = String::new();
                        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                            max_s.push(self.bump().expect("digit"));
                        }
                        Some(
                            max_s
                                .parse()
                                .map_err(|_| perr(self.src, "bad repetition count"))?,
                        )
                    }
                } else {
                    Some(min)
                };
                if self.bump() != Some('}') {
                    return Err(perr(self.src, "unterminated `{`"));
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        let greedy = if self.peek() == Some('?') {
            self.bump();
            false
        } else {
            true
        };
        Ok(Node::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    fn parse_atom(&mut self) -> XdmResult<Node> {
        match self.bump() {
            None => Err(perr(self.src, "unexpected end of pattern")),
            Some('(') => {
                // non-capturing (?: ... )
                if self.peek() == Some('?') {
                    self.bump();
                    if self.bump() != Some(':') {
                        return Err(perr(self.src, "only (?: groups supported"));
                    }
                    let inner = self.parse_alt()?;
                    if self.bump() != Some(')') {
                        return Err(perr(self.src, "unterminated group"));
                    }
                    return Ok(inner);
                }
                self.n_groups += 1;
                let idx = self.n_groups;
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(perr(self.src, "unterminated group"));
                }
                Ok(Node::Group(idx, Box::new(inner)))
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::AnyChar),
            Some('^') => Ok(Node::AnchorStart),
            Some('$') => Ok(Node::AnchorEnd),
            Some('\\') => self.parse_escape(false).map(|item| match item {
                ClassItem::Char(c) => Node::Char(c),
                other => Node::Class {
                    negated: false,
                    items: vec![other],
                },
            }),
            Some(c @ ('*' | '+' | '?' | '{' | '}' | ')')) => {
                Err(perr(self.src, &format!("misplaced `{c}`")))
            }
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn parse_class(&mut self) -> XdmResult<Node> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return Err(perr(self.src, "unterminated character class")),
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    items.push(self.parse_escape(true)?);
                }
                Some(c) => {
                    self.bump();
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).copied() != Some(']')
                        && self.chars.get(self.pos + 1).is_some()
                    {
                        self.bump(); // -
                        let hi = self.bump().expect("range end");
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Char(c));
                    }
                }
            }
        }
        Ok(Node::Class { negated, items })
    }

    fn parse_escape(&mut self, _in_class: bool) -> XdmResult<ClassItem> {
        match self.bump() {
            None => Err(perr(self.src, "dangling backslash")),
            Some('d') => Ok(ClassItem::Digit(true)),
            Some('D') => Ok(ClassItem::Digit(false)),
            Some('w') => Ok(ClassItem::Word(true)),
            Some('W') => Ok(ClassItem::Word(false)),
            Some('s') => Ok(ClassItem::Space(true)),
            Some('S') => Ok(ClassItem::Space(false)),
            Some('n') => Ok(ClassItem::Char('\n')),
            Some('t') => Ok(ClassItem::Char('\t')),
            Some('r') => Ok(ClassItem::Char('\r')),
            Some(c) => Ok(ClassItem::Char(c)),
        }
    }
}

impl Regex {
    /// Compiles a pattern.
    pub fn compile(pattern: &str) -> XdmResult<Regex> {
        let mut p = PatParser {
            chars: pattern.chars().collect(),
            pos: 0,
            n_groups: 0,
            src: pattern,
        };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(perr(pattern, "trailing characters"));
        }
        Ok(Regex {
            root,
            n_groups: p.n_groups,
        })
    }

    /// Does the pattern match anywhere in `text` (XPath `fn:matches`
    /// semantics: unanchored)?
    pub fn is_match(&self, text: &str) -> bool {
        self.find_at_any(&text.chars().collect::<Vec<_>>())
            .is_some()
    }

    /// Finds the leftmost match; returns (start, end, groups).
    fn find_at_any(&self, chars: &[char]) -> Option<Match> {
        for start in 0..=chars.len() {
            let mut groups = vec![None; self.n_groups];
            if let Some(end) =
                match_node(&self.root, chars, start, start, &mut groups, &|_, p, _| {
                    Some(p)
                })
            {
                return Some((start, end, groups));
            }
        }
        None
    }

    /// All non-overlapping matches as (start, end, groups).
    pub fn find_all(&self, text: &str) -> Vec<Match> {
        let chars: Vec<char> = text.chars().collect();
        let mut out = Vec::new();
        let mut pos = 0;
        while pos <= chars.len() {
            let mut found = None;
            for start in pos..=chars.len() {
                let mut groups = vec![None; self.n_groups];
                if let Some(end) =
                    match_node(&self.root, &chars, start, start, &mut groups, &|_, p, _| {
                        Some(p)
                    })
                {
                    found = Some((start, end, groups));
                    break;
                }
            }
            match found {
                Some((s, e, g)) => {
                    out.push((s, e, g));
                    pos = if e > s { e } else { e + 1 };
                }
                None => break,
            }
        }
        out
    }

    /// `fn:replace` semantics: replaces every match, supporting `$1…$9`
    /// group references in the replacement.
    pub fn replace_all(&self, text: &str, replacement: &str) -> String {
        let chars: Vec<char> = text.chars().collect();
        let matches = self.find_all(text);
        let mut out = String::new();
        let mut last = 0usize;
        for (s, e, groups) in matches {
            out.extend(&chars[last..s]);
            out.push_str(&expand_replacement(replacement, &chars, &groups));
            last = e;
        }
        out.extend(&chars[last..]);
        out
    }

    /// `fn:tokenize` semantics: splits on every match.
    pub fn split(&self, text: &str) -> Vec<String> {
        let chars: Vec<char> = text.chars().collect();
        let matches = self.find_all(text);
        let mut out = Vec::new();
        let mut last = 0usize;
        for (s, e, _) in matches {
            if e == s && s == last {
                // empty match at current position: avoid empty-loop tokens
                continue;
            }
            out.push(chars[last..s].iter().collect());
            last = e;
        }
        out.push(chars[last..].iter().collect());
        out
    }
}

fn expand_replacement(
    replacement: &str,
    chars: &[char],
    groups: &[Option<(usize, usize)>],
) -> String {
    let mut out = String::new();
    let rep: Vec<char> = replacement.chars().collect();
    let mut i = 0;
    while i < rep.len() {
        if rep[i] == '$' && i + 1 < rep.len() && rep[i + 1].is_ascii_digit() {
            let idx = rep[i + 1].to_digit(10).expect("digit") as usize;
            if idx >= 1 && idx <= groups.len() {
                if let Some((s, e)) = groups[idx - 1] {
                    out.extend(&chars[s..e]);
                }
            }
            i += 2;
        } else if rep[i] == '\\' && i + 1 < rep.len() {
            out.push(rep[i + 1]);
            i += 2;
        } else {
            out.push(rep[i]);
            i += 1;
        }
    }
    out
}

type Cont<'c> = dyn Fn(&[char], usize, &mut Vec<Option<(usize, usize)>>) -> Option<usize> + 'c;

/// Backtracking matcher in continuation-passing style. Returns the end
/// position of a successful overall match.
fn match_node(
    node: &Node,
    chars: &[char],
    pos: usize,
    start: usize,
    groups: &mut Vec<Option<(usize, usize)>>,
    k: &Cont<'_>,
) -> Option<usize> {
    match node {
        Node::Seq(items) => match_seq(items, chars, pos, start, groups, k),
        Node::Alt(branches) => {
            for b in branches {
                let saved = groups.clone();
                if let Some(end) = match_node(b, chars, pos, start, groups, k) {
                    return Some(end);
                }
                *groups = saved;
            }
            None
        }
        Node::Char(c) => {
            if chars.get(pos) == Some(c) {
                k(chars, pos + 1, groups)
            } else {
                None
            }
        }
        Node::AnyChar => {
            if pos < chars.len() && chars[pos] != '\n' {
                k(chars, pos + 1, groups)
            } else {
                None
            }
        }
        Node::Class { negated, items } => {
            let &c = chars.get(pos)?;
            let mut matched = items.iter().any(|it| class_matches(it, c));
            if *negated {
                matched = !matched;
            }
            if matched {
                k(chars, pos + 1, groups)
            } else {
                None
            }
        }
        Node::Group(idx, inner) => {
            let gidx = *idx - 1;
            let open = pos;
            let inner_k = move |cs: &[char],
                                p: usize,
                                gs: &mut Vec<Option<(usize, usize)>>|
                  -> Option<usize> {
                let saved = gs[gidx];
                gs[gidx] = Some((open, p));
                if let Some(end) = k(cs, p, gs) {
                    Some(end)
                } else {
                    gs[gidx] = saved;
                    None
                }
            };
            match_node(inner, chars, pos, start, groups, &inner_k)
        }
        Node::Repeat {
            node,
            min,
            max,
            greedy,
        } => match_repeat(node, *min, *max, *greedy, chars, pos, start, groups, k),
        Node::AnchorStart => {
            if pos == 0 {
                k(chars, pos, groups)
            } else {
                None
            }
        }
        Node::AnchorEnd => {
            if pos == chars.len() {
                k(chars, pos, groups)
            } else {
                None
            }
        }
    }
}

fn match_seq(
    items: &[Node],
    chars: &[char],
    pos: usize,
    start: usize,
    groups: &mut Vec<Option<(usize, usize)>>,
    k: &Cont<'_>,
) -> Option<usize> {
    match items.split_first() {
        None => k(chars, pos, groups),
        Some((first, rest)) => {
            let rest_k =
                move |cs: &[char],
                      p: usize,
                      gs: &mut Vec<Option<(usize, usize)>>|
                      -> Option<usize> { match_seq(rest, cs, p, start, gs, k) };
            match_node(first, chars, pos, start, groups, &rest_k)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn match_repeat(
    node: &Node,
    min: usize,
    max: Option<usize>,
    greedy: bool,
    chars: &[char],
    pos: usize,
    start: usize,
    groups: &mut Vec<Option<(usize, usize)>>,
    k: &Cont<'_>,
) -> Option<usize> {
    if let Some(0) = max {
        return k(chars, pos, groups);
    }
    let must_take = min > 0;
    let take = |groups: &mut Vec<Option<(usize, usize)>>| -> Option<usize> {
        let next_min = min.saturating_sub(1);
        let next_max = max.map(|m| m - 1);
        let inner_k =
            move |cs: &[char], p: usize, gs: &mut Vec<Option<(usize, usize)>>| -> Option<usize> {
                if p == pos {
                    // zero-width progress guard
                    if next_min == 0 {
                        k(cs, p, gs)
                    } else {
                        None
                    }
                } else {
                    match_repeat(node, next_min, next_max, greedy, cs, p, start, gs, k)
                }
            };
        match_node(node, chars, pos, start, groups, &inner_k)
    };
    if must_take {
        return take(groups);
    }
    if greedy {
        let saved = groups.clone();
        if let Some(end) = take(groups) {
            return Some(end);
        }
        *groups = saved;
        k(chars, pos, groups)
    } else {
        let saved = groups.clone();
        if let Some(end) = k(chars, pos, groups) {
            return Some(end);
        }
        *groups = saved;
        take(groups)
    }
}

fn class_matches(item: &ClassItem, c: char) -> bool {
    match item {
        ClassItem::Char(x) => *x == c,
        ClassItem::Range(lo, hi) => *lo <= c && c <= *hi,
        ClassItem::Digit(pos) => c.is_ascii_digit() == *pos,
        ClassItem::Word(pos) => (c.is_alphanumeric() || c == '_') == *pos,
        ClassItem::Space(pos) => c.is_whitespace() == *pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_any() {
        let re = Regex::compile("a.c").unwrap();
        assert!(re.is_match("abc"));
        assert!(re.is_match("xxaXcxx"));
        assert!(!re.is_match("ac"));
    }

    #[test]
    fn anchors() {
        let re = Regex::compile("^ab$").unwrap();
        assert!(re.is_match("ab"));
        assert!(!re.is_match("xab"));
        assert!(!re.is_match("abx"));
        let re = Regex::compile("^a").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("bac"));
    }

    #[test]
    fn classes_and_escapes() {
        let re = Regex::compile(r"[a-c]\d+").unwrap();
        assert!(re.is_match("b42"));
        assert!(!re.is_match("d42"));
        let re = Regex::compile(r"[^0-9]+").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("123"));
        let re = Regex::compile(r"\w+\s\w+").unwrap();
        assert!(re.is_match("hello world"));
    }

    #[test]
    fn quantifiers() {
        assert!(Regex::compile("ab*c").unwrap().is_match("ac"));
        assert!(Regex::compile("ab*c").unwrap().is_match("abbbc"));
        assert!(!Regex::compile("ab+c").unwrap().is_match("ac"));
        assert!(Regex::compile("ab?c").unwrap().is_match("abc"));
        assert!(Regex::compile("a{2,3}").unwrap().is_match("aa"));
        assert!(!Regex::compile("^a{2,3}$").unwrap().is_match("aaaa"));
        assert!(Regex::compile("^a{2}$").unwrap().is_match("aa"));
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::compile("(cat|dog)s?").unwrap();
        assert!(re.is_match("cats"));
        assert!(re.is_match("dog"));
        assert!(!re.is_match("cow"));
    }

    #[test]
    fn replace_with_groups() {
        let re = Regex::compile("(\\w+) (\\w+)").unwrap();
        assert_eq!(re.replace_all("hello world", "$2 $1"), "world hello");
        let re = Regex::compile("o").unwrap();
        assert_eq!(re.replace_all("foo", "0"), "f00");
    }

    #[test]
    fn tokenize_splits() {
        let re = Regex::compile(r"\s+").unwrap();
        assert_eq!(re.split("a  b\tc"), vec!["a", "b", "c"]);
        let re = Regex::compile(",").unwrap();
        assert_eq!(re.split("a,b,,c"), vec!["a", "b", "", "c"]);
        assert_eq!(re.split("abc"), vec!["abc"]);
    }

    #[test]
    fn find_all_non_overlapping() {
        let re = Regex::compile("aa").unwrap();
        let m = re.find_all("aaaa");
        assert_eq!(m.len(), 2);
        assert_eq!((m[0].0, m[0].1), (0, 2));
        assert_eq!((m[1].0, m[1].1), (2, 4));
    }

    #[test]
    fn reluctant_quantifier() {
        let re = Regex::compile("<.+?>").unwrap();
        let m = re.find_all("<a><b>");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn invalid_patterns_rejected() {
        assert!(Regex::compile("(").is_err());
        assert!(Regex::compile("a{").is_err());
        assert!(Regex::compile("*a").is_err());
        assert!(Regex::compile("[abc").is_err());
    }

    #[test]
    fn unicode_chars() {
        let re = Regex::compile("é+").unwrap();
        assert!(re.is_match("crééé"));
        assert_eq!(Regex::compile(".").unwrap().find_all("é").len(), 1);
    }

    #[test]
    fn non_capturing_group() {
        let re = Regex::compile("(?:ab)+c").unwrap();
        assert!(re.is_match("ababc"));
    }
}
