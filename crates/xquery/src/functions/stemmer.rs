//! English stemmer and word tokenizer for the XQuery Full-Text `with
//! stemming` option (§3.1 of the paper: `("dog" with stemming) ftand "cat"`).
//!
//! The stemmer implements the core of Porter's algorithm (steps 1a/1b/1c and
//! the common suffix strips of steps 2–5) — enough that inflectional
//! variants (`dogs`→`dog`, `running`→`run`, `stemming`→`stem`) conflate, as
//! the paper's example requires.

/// Tokenizes text into lower-cased full-text words.
pub fn tokenize_words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '\'' {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Tokenizes while preserving case (for `case sensitive` matching).
pub fn tokenize_words_cased(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '\'' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn is_consonant(word: &[u8], i: usize) -> bool {
    match word[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(word, i - 1),
        _ => true,
    }
}

/// The "measure" m of a stem: the number of VC sequences.
fn measure(word: &[u8]) -> usize {
    let mut m = 0;
    let mut i = 0;
    let n = word.len();
    // skip initial consonants
    while i < n && is_consonant(word, i) {
        i += 1;
    }
    loop {
        // vowels
        while i < n && !is_consonant(word, i) {
            i += 1;
        }
        if i >= n {
            break;
        }
        // consonants
        while i < n && is_consonant(word, i) {
            i += 1;
        }
        m += 1;
        if i >= n {
            break;
        }
    }
    m
}

fn contains_vowel(word: &[u8]) -> bool {
    (0..word.len()).any(|i| !is_consonant(word, i))
}

fn ends_double_consonant(word: &[u8]) -> bool {
    let n = word.len();
    n >= 2 && word[n - 1] == word[n - 2] && is_consonant(word, n - 1)
}

/// cvc pattern at the end, where the last c is not w/x/y.
fn ends_cvc(word: &[u8]) -> bool {
    let n = word.len();
    n >= 3
        && is_consonant(word, n - 3)
        && !is_consonant(word, n - 2)
        && is_consonant(word, n - 1)
        && !matches!(word[n - 1], b'w' | b'x' | b'y')
}

/// Stems an English word (expects lower-case ASCII; other words pass
/// through unchanged).
pub fn stem(word: &str) -> String {
    if !word.is_ascii() || word.len() <= 2 {
        return word.to_string();
    }
    let mut w = word.as_bytes().to_vec();

    // Step 1a: plurals
    if w.ends_with(b"sses") || w.ends_with(b"ies") {
        w.truncate(w.len() - 2);
    } else if w.ends_with(b"ss") {
        // keep
    } else if w.ends_with(b"s") && w.len() > 3 {
        w.truncate(w.len() - 1);
    }

    // Step 1b: -ed / -ing
    let mut cleanup = false;
    if w.ends_with(b"eed") {
        if measure(&w[..w.len() - 3]) > 0 {
            w.truncate(w.len() - 1);
        }
    } else if w.ends_with(b"ed") && contains_vowel(&w[..w.len() - 2]) {
        w.truncate(w.len() - 2);
        cleanup = true;
    } else if w.ends_with(b"ing") && contains_vowel(&w[..w.len() - 3]) {
        w.truncate(w.len() - 3);
        cleanup = true;
    }
    if cleanup {
        if w.ends_with(b"at") || w.ends_with(b"bl") || w.ends_with(b"iz") {
            w.push(b'e');
        } else if ends_double_consonant(&w) && !matches!(w.last(), Some(b'l' | b's' | b'z')) {
            w.truncate(w.len() - 1);
        } else if measure(&w) == 1 && ends_cvc(&w) {
            w.push(b'e');
        }
    }

    // Step 1c: -y → -i
    if w.ends_with(b"y") && contains_vowel(&w[..w.len() - 1]) {
        let n = w.len();
        w[n - 1] = b'i';
    }

    // Steps 2-4 (common suffixes, measure-gated)
    const SUFFIXES: &[(&[u8], &[u8], usize)] = &[
        (b"ational", b"ate", 0),
        (b"tional", b"tion", 0),
        (b"ization", b"ize", 0),
        (b"fulness", b"ful", 0),
        (b"ousness", b"ous", 0),
        (b"iveness", b"ive", 0),
        (b"biliti", b"ble", 0),
        (b"aliti", b"al", 0),
        (b"iviti", b"ive", 0),
        (b"ement", b"", 1),
        (b"ment", b"", 1),
        (b"ness", b"", 0),
        (b"ical", b"ic", 0),
        (b"ance", b"", 1),
        (b"ence", b"", 1),
        (b"able", b"", 1),
        (b"ible", b"", 1),
        (b"ization", b"ize", 0),
        (b"ation", b"ate", 0),
        (b"izer", b"ize", 0),
        (b"ator", b"ate", 0),
        (b"alism", b"al", 0),
        (b"ful", b"", 0),
        (b"ous", b"", 1),
        (b"ive", b"", 1),
        (b"ize", b"", 1),
        (b"ion", b"", 1),
        (b"al", b"", 1),
        (b"er", b"", 1),
        (b"ic", b"", 1),
    ];
    // two passes approximate Porter's cascaded steps 2→3→4
    // (e.g. usefulness → useful → use)
    for _pass in 0..2 {
        for (suffix, replacement, min_m) in SUFFIXES {
            if w.ends_with(suffix) {
                let stem_len = w.len() - suffix.len();
                if measure(&w[..stem_len]) > *min_m {
                    w.truncate(stem_len);
                    w.extend_from_slice(replacement);
                }
                break;
            }
        }
    }

    // Step 5a: final -e
    if w.ends_with(b"e") {
        let m = measure(&w[..w.len() - 1]);
        if m > 1 || (m == 1 && !ends_cvc(&w[..w.len() - 1])) {
            w.truncate(w.len() - 1);
        }
    }
    // Step 5b: -ll → -l
    if measure(&w) > 1 && ends_double_consonant(&w) && w.last() == Some(&b'l') {
        w.truncate(w.len() - 1);
    }

    String::from_utf8(w).unwrap_or_else(|_| word.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenization() {
        assert_eq!(
            tokenize_words("Hello, World! It's 2009."),
            vec!["hello", "world", "it's", "2009"]
        );
        assert_eq!(tokenize_words(""), Vec::<String>::new());
        assert_eq!(tokenize_words("  --  "), Vec::<String>::new());
    }

    #[test]
    fn plural_conflation() {
        assert_eq!(stem("dogs"), stem("dog"));
        assert_eq!(stem("cats"), stem("cat"));
        assert_eq!(stem("churches"), stem("churches")); // idempotent call
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("caress"), "caress");
    }

    #[test]
    fn ing_and_ed_forms() {
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("stemming"), "stem");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("hoped"), "hope");
        // Porter's canonical output for "agreed" is "agre" (step 5a strips
        // the final e because `agre` does not end in cvc)
        assert_eq!(stem("agreed"), "agre");
        assert_eq!(stem("agreed"), stem("agree"), "inflections conflate");
        assert_eq!(stem("plastered"), "plaster");
    }

    #[test]
    fn paper_example_dog_variants_conflate() {
        // §3.1: title ftcontains ("dog" with stemming)
        assert_eq!(stem("dog"), "dog");
        assert_eq!(stem("dogs"), "dog");
    }

    #[test]
    fn derived_suffixes() {
        // canonical Porter output: relational → relat (ate stripped at m>1)
        assert_eq!(stem("relational"), "relat");
        assert_eq!(stem("happiness"), "happi");
        assert_eq!(stem("usefulness"), stem("useful"), "derived forms conflate");
    }

    #[test]
    fn short_and_non_ascii_pass_through() {
        assert_eq!(stem("ab"), "ab");
        assert_eq!(stem("café"), "café");
    }
}
