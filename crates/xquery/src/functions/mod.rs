//! The built-in XQuery function & operator library (`fn:` namespace).
//!
//! §1 of the paper counts "a powerful function and operator library (e.g.,
//! for dates and times)" among XQuery's advantages over JavaScript; this
//! module implements the portion of F&O the paper's applications and a
//! realistic browser workload need: accessors, booleans, numerics, strings
//! (including regex-based `matches`/`replace`/`tokenize`), sequences,
//! aggregation, node functions, dates/times and `fn:doc` under the browser
//! security profile.

pub mod regex;
pub mod stemmer;

use std::rc::Rc;

use xqib_dom::{name::FN_NS, NodeKind, QName};
use xqib_xdm::{
    atomize, effective_boolean_value, value_compare, Atomic, CompOp, DateTime, Item, Sequence,
    TypeName, XdmError, XdmResult,
};

use crate::context::DynamicContext;
use regex::Regex;

/// Attempts to call a built-in function. Returns `None` when the name/arity
/// is not a known built-in (so the caller can raise XPST0017).
pub fn call_builtin(
    ctx: &mut DynamicContext,
    name: &QName,
    mut args: Vec<Sequence>,
) -> Option<XdmResult<Sequence>> {
    // built-ins live in fn: (callers map unprefixed names there)
    if name.ns.as_deref() != Some(FN_NS) {
        return None;
    }
    let arity = args.len();
    let r = match (&*name.local, arity) {
        // ----- accessors -----
        ("string", 0) => ctx
            .context_item()
            .map(|i| vec![Item::string(i.string_value(&ctx.store.borrow()))]),
        ("string", 1) => Ok(match args[0].first() {
            None => vec![Item::string("")],
            Some(i) => vec![Item::string(i.string_value(&ctx.store.borrow()))],
        }),
        ("data", 1) => {
            let store = ctx.store.borrow();
            Ok(args[0]
                .iter()
                .map(|i| Item::Atomic(atomize(&store, i)))
                .collect())
        }
        ("node-name", 1) => one_node(&args[0]).map(|n| match n {
            None => vec![],
            Some(nr) => {
                let store = ctx.store.borrow();
                match store.doc(nr.doc).node_name(nr.node) {
                    Some(q) => vec![Item::Atomic(Atomic::QName(q))],
                    None => vec![],
                }
            }
        }),
        ("base-uri", 0 | 1) => Ok(vec![]),
        ("document-uri", 1) => one_node(&args[0]).map(|n| match n {
            Some(nr) => {
                let store = ctx.store.borrow();
                match &store.doc(nr.doc).base_uri {
                    Some(u) => vec![Item::string(u)],
                    None => vec![],
                }
            }
            None => vec![],
        }),
        // ----- booleans -----
        ("true", 0) => Ok(vec![Item::boolean(true)]),
        ("false", 0) => Ok(vec![Item::boolean(false)]),
        ("not", 1) => effective_boolean_value(&args[0]).map(|b| vec![Item::boolean(!b)]),
        ("boolean", 1) => effective_boolean_value(&args[0]).map(|b| vec![Item::boolean(b)]),
        // ----- numerics -----
        ("abs", 1) => numeric_unary(ctx, &args[0], |d| d.abs()),
        ("ceiling", 1) => numeric_unary(ctx, &args[0], f64::ceil),
        ("floor", 1) => numeric_unary(ctx, &args[0], f64::floor),
        ("round", 1) => numeric_unary(ctx, &args[0], |d| (d + 0.5).floor()),
        ("round-half-to-even", 1) => numeric_unary(ctx, &args[0], |d| {
            let r = d.round();
            if (d - d.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - d.signum()
            } else {
                r
            }
        }),
        ("number", 0) => {
            let item = match ctx.context_item() {
                Ok(i) => i,
                Err(e) => return Some(Err(e)),
            };
            let a = atomize(&ctx.store.borrow(), &item);
            Ok(vec![Item::double(to_double_or_nan(&a))])
        }
        ("number", 1) => {
            let store = ctx.store.borrow();
            Ok(match args[0].first() {
                None => vec![Item::double(f64::NAN)],
                Some(i) => {
                    let a = atomize(&store, i);
                    vec![Item::double(to_double_or_nan(&a))]
                }
            })
        }
        ("count", 1) => Ok(vec![Item::integer(args[0].len() as i64)]),
        ("sum", 1 | 2) => aggregate(ctx, &args[0], Agg::Sum, args.get(1)),
        ("avg", 1) => aggregate(ctx, &args[0], Agg::Avg, None),
        ("min", 1) => aggregate(ctx, &args[0], Agg::Min, None),
        ("max", 1) => aggregate(ctx, &args[0], Agg::Max, None),
        // ----- strings -----
        ("concat", n) if n >= 2 => {
            let store = ctx.store.borrow();
            let mut out = String::new();
            for a in &args {
                if let Some(i) = a.first() {
                    out.push_str(&i.string_value(&store));
                }
            }
            Ok(vec![Item::string(out)])
        }
        ("string-join", 2) => {
            let sep = string_arg(ctx, &args[1]);
            let store = ctx.store.borrow();
            let parts: Vec<String> = args[0].iter().map(|i| i.string_value(&store)).collect();
            Ok(vec![Item::string(parts.join(&sep))])
        }
        ("substring", 2 | 3) => substring(ctx, &args),
        ("string-length", 0) => ctx.context_item().map(|i| {
            vec![Item::integer(
                i.string_value(&ctx.store.borrow()).chars().count() as i64,
            )]
        }),
        ("string-length", 1) => {
            let s = string_arg(ctx, &args[0]);
            Ok(vec![Item::integer(s.chars().count() as i64)])
        }
        ("normalize-space", 0 | 1) => {
            let s = if arity == 0 {
                match ctx.context_item() {
                    Ok(i) => i.string_value(&ctx.store.borrow()),
                    Err(e) => return Some(Err(e)),
                }
            } else {
                string_arg(ctx, &args[0])
            };
            Ok(vec![Item::string(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            )])
        }
        ("upper-case", 1) => Ok(vec![Item::string(string_arg(ctx, &args[0]).to_uppercase())]),
        ("lower-case", 1) => Ok(vec![Item::string(string_arg(ctx, &args[0]).to_lowercase())]),
        ("translate", 3) => {
            let s = string_arg(ctx, &args[0]);
            let from: Vec<char> = string_arg(ctx, &args[1]).chars().collect();
            let to: Vec<char> = string_arg(ctx, &args[2]).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(vec![Item::string(out)])
        }
        ("contains", 2) => {
            let s = string_arg(ctx, &args[0]);
            let t = string_arg(ctx, &args[1]);
            Ok(vec![Item::boolean(s.contains(&t))])
        }
        ("starts-with", 2) => {
            let s = string_arg(ctx, &args[0]);
            let t = string_arg(ctx, &args[1]);
            Ok(vec![Item::boolean(s.starts_with(&t))])
        }
        ("ends-with", 2) => {
            let s = string_arg(ctx, &args[0]);
            let t = string_arg(ctx, &args[1]);
            Ok(vec![Item::boolean(s.ends_with(&t))])
        }
        ("substring-before", 2) => {
            let s = string_arg(ctx, &args[0]);
            let t = string_arg(ctx, &args[1]);
            Ok(vec![Item::string(match s.find(&t) {
                Some(i) => s[..i].to_string(),
                None => String::new(),
            })])
        }
        ("substring-after", 2) => {
            let s = string_arg(ctx, &args[0]);
            let t = string_arg(ctx, &args[1]);
            Ok(vec![Item::string(match s.find(&t) {
                Some(i) => s[i + t.len()..].to_string(),
                None => String::new(),
            })])
        }
        ("matches", 2 | 3) => {
            let s = string_arg(ctx, &args[0]);
            let p = string_arg(ctx, &args[1]);
            Regex::compile(&p).map(|re| vec![Item::boolean(re.is_match(&s))])
        }
        ("replace", 3 | 4) => {
            let s = string_arg(ctx, &args[0]);
            let p = string_arg(ctx, &args[1]);
            let r = string_arg(ctx, &args[2]);
            Regex::compile(&p).map(|re| vec![Item::string(re.replace_all(&s, &r))])
        }
        ("tokenize", 2 | 3) => {
            let s = string_arg(ctx, &args[0]);
            let p = string_arg(ctx, &args[1]);
            Regex::compile(&p).map(|re| {
                re.split(&s)
                    .into_iter()
                    .filter(|t| !t.is_empty())
                    .map(Item::string)
                    .collect()
            })
        }
        ("codepoints-to-string", 1) => {
            let store = ctx.store.borrow();
            let mut out = String::new();
            for i in &args[0] {
                let a = atomize(&store, i);
                match a.as_double() {
                    Ok(d) => match char::from_u32(d as u32) {
                        Some(c) => out.push(c),
                        None => return Some(Err(XdmError::new("FOCH0001", "invalid code point"))),
                    },
                    Err(e) => return Some(Err(e)),
                }
            }
            Ok(vec![Item::string(out)])
        }
        ("string-to-codepoints", 1) => {
            let s = string_arg(ctx, &args[0]);
            Ok(s.chars().map(|c| Item::integer(c as i64)).collect())
        }
        ("encode-for-uri", 1) => {
            let s = string_arg(ctx, &args[0]);
            let mut out = String::new();
            for b in s.bytes() {
                match b {
                    b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                        out.push(b as char)
                    }
                    _ => out.push_str(&format!("%{b:02X}")),
                }
            }
            Ok(vec![Item::string(out)])
        }
        // ----- sequences -----
        ("empty", 1) => Ok(vec![Item::boolean(args[0].is_empty())]),
        ("exists", 1) => Ok(vec![Item::boolean(!args[0].is_empty())]),
        ("reverse", 1) => {
            let mut v = args.remove(0);
            v.reverse();
            Ok(v)
        }
        ("distinct-values", 1) => {
            let store = ctx.store.borrow();
            let mut seen: Vec<Atomic> = Vec::new();
            for i in &args[0] {
                let a = atomize(&store, i);
                let dup = seen.iter().any(|s| {
                    value_compare(CompOp::Eq, s, &a).unwrap_or(false)
                        || (s.string_value() == a.string_value() && s.type_name() == a.type_name())
                });
                if !dup {
                    seen.push(a);
                }
            }
            Ok(seen.into_iter().map(Item::Atomic).collect())
        }
        ("insert-before", 3) => {
            let seq = args[0].clone();
            let pos = match integer_arg(ctx, &args[1]) {
                Ok(p) => p.max(1) as usize - 1,
                Err(e) => return Some(Err(e)),
            };
            let ins = args[2].clone();
            let mut out = seq;
            let at = pos.min(out.len());
            for (k, item) in ins.into_iter().enumerate() {
                out.insert(at + k, item);
            }
            Ok(out)
        }
        ("remove", 2) => {
            let pos = match integer_arg(ctx, &args[1]) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            let mut out = args[0].clone();
            if pos >= 1 && (pos as usize) <= out.len() {
                out.remove(pos as usize - 1);
            }
            Ok(out)
        }
        ("subsequence", 2 | 3) => {
            let start = match double_arg(ctx, &args[1]) {
                Ok(d) => d,
                Err(e) => return Some(Err(e)),
            };
            let len = if arity == 3 {
                match double_arg(ctx, &args[2]) {
                    Ok(d) => d,
                    Err(e) => return Some(Err(e)),
                }
            } else {
                f64::INFINITY
            };
            let start_round = start.round();
            let end = start_round + len.round();
            Ok(args[0]
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let p = (*i + 1) as f64;
                    p >= start_round && p < end
                })
                .map(|(_, item)| item.clone())
                .collect())
        }
        ("index-of", 2) => {
            let store = ctx.store.borrow();
            let needle = match args[1].first() {
                Some(i) => atomize(&store, i),
                None => return Some(Ok(vec![])),
            };
            let mut out = Vec::new();
            for (i, item) in args[0].iter().enumerate() {
                let a = atomize(&store, item);
                if value_compare(CompOp::Eq, &a, &needle).unwrap_or(false) {
                    out.push(Item::integer(i as i64 + 1));
                }
            }
            Ok(out)
        }
        ("zero-or-one", 1) => {
            if args[0].len() <= 1 {
                Ok(args.remove(0))
            } else {
                Err(XdmError::new("FORG0003", "zero-or-one: more than one item"))
            }
        }
        ("one-or-more", 1) => {
            if !args[0].is_empty() {
                Ok(args.remove(0))
            } else {
                Err(XdmError::new("FORG0004", "one-or-more: empty sequence"))
            }
        }
        ("exactly-one", 1) => {
            if args[0].len() == 1 {
                Ok(args.remove(0))
            } else {
                Err(XdmError::new("FORG0005", "exactly-one: not a singleton"))
            }
        }
        ("deep-equal", 2) => {
            let store = ctx.store.borrow();
            Ok(vec![Item::boolean(deep_equal(&store, &args[0], &args[1]))])
        }
        ("unordered", 1) => Ok(args.remove(0)),
        ("last", 0) => match &ctx.focus {
            Some(f) => Ok(vec![Item::integer(f.size as i64)]),
            None => Err(XdmError::undefined("fn:last() with no context")),
        },
        ("position", 0) => match &ctx.focus {
            Some(f) => Ok(vec![Item::integer(f.position as i64)]),
            None => Err(XdmError::undefined("fn:position() with no context")),
        },
        // ----- nodes -----
        ("name", 0 | 1) | ("local-name", 0 | 1) | ("namespace-uri", 0 | 1) => {
            let node = if arity == 0 {
                match ctx.context_item() {
                    Ok(Item::Node(n)) => Some(n),
                    Ok(_) => return Some(Err(XdmError::type_error("context item is not a node"))),
                    Err(e) => return Some(Err(e)),
                }
            } else {
                match one_node(&args[0]) {
                    Ok(n) => n,
                    Err(e) => return Some(Err(e)),
                }
            };
            let store = ctx.store.borrow();
            let q = node.and_then(|nr| store.doc(nr.doc).node_name(nr.node));
            Ok(vec![Item::string(match (&*name.local, q) {
                ("name", Some(q)) => q.lexical(),
                ("local-name", Some(q)) => q.local.to_string(),
                ("namespace-uri", Some(q)) => q.ns_or_empty().to_string(),
                _ => String::new(),
            })])
        }
        ("root", 0 | 1) => {
            let node = if arity == 0 {
                match ctx.context_item() {
                    Ok(Item::Node(n)) => Some(n),
                    Ok(_) => return Some(Err(XdmError::type_error("context item is not a node"))),
                    Err(e) => return Some(Err(e)),
                }
            } else {
                match one_node(&args[0]) {
                    Ok(n) => n,
                    Err(e) => return Some(Err(e)),
                }
            };
            Ok(match node {
                Some(nr) => {
                    let store = ctx.store.borrow();
                    let root = store.doc(nr.doc).tree_root(nr.node);
                    vec![Item::Node(xqib_dom::NodeRef::new(nr.doc, root))]
                }
                None => vec![],
            })
        }
        // ----- documents (browser security profile, §4.2.1) -----
        ("id", 1 | 2) => {
            // fn:id over @id attributes (the HTML/browser model: no DTD)
            let node = if arity == 2 {
                match one_node(&args[1]) {
                    Ok(n) => n,
                    Err(e) => return Some(Err(e)),
                }
            } else {
                match ctx.context_item() {
                    Ok(Item::Node(n)) => Some(n),
                    Ok(_) => {
                        return Some(Err(XdmError::type_error("fn:id requires a node context")))
                    }
                    Err(e) => return Some(Err(e)),
                }
            };
            let Some(node) = node else {
                return Some(Ok(vec![]));
            };
            let store = ctx.store.borrow();
            let wanted: Vec<String> = args[0]
                .iter()
                .flat_map(|i| {
                    i.string_value(&store)
                        .split_whitespace()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                })
                .collect();
            let doc = store.doc(node.doc);
            let root = doc.tree_root(node.node);
            let mut out = Vec::new();
            for n in doc.descendants_or_self(root) {
                if let Some(id) = doc.get_attribute(n, None, "id") {
                    if wanted.iter().any(|w| w == id) {
                        out.push(Item::Node(xqib_dom::NodeRef::new(node.doc, n)));
                    }
                }
            }
            Ok(out)
        }
        ("doc", 1) => {
            let uri = string_arg(ctx, &args[0]);
            let store = ctx.store.borrow();
            match store.doc_by_uri(&uri) {
                Some(d) => Ok(vec![Item::Node(store.root(d))]),
                None => {
                    if ctx.sctx.browser_profile {
                        Err(XdmError::browser_blocked(format!(
                            "fn:doc(\"{uri}\") is blocked in the browser; only \
                             documents provided by the page, the cache or REST \
                             responses are accessible"
                        )))
                    } else {
                        Err(XdmError::new(
                            "FODC0002",
                            format!("document \"{uri}\" not found"),
                        ))
                    }
                }
            }
        }
        ("doc-available", 1) => {
            let uri = string_arg(ctx, &args[0]);
            Ok(vec![Item::boolean(
                ctx.store.borrow().doc_by_uri(&uri).is_some(),
            )])
        }
        ("put", 2) => Err(XdmError::browser_blocked(
            "fn:put is blocked in the browser profile",
        )),
        // ----- dates & times (virtual clock) -----
        ("current-dateTime", 0) => Ok(vec![Item::Atomic(Atomic::DateTime(
            DateTime::from_epoch_millis(ctx.now_millis),
        ))]),
        ("current-date", 0) => Ok(vec![Item::Atomic(Atomic::Date(
            DateTime::from_epoch_millis(ctx.now_millis).date,
        ))]),
        ("current-time", 0) => Ok(vec![Item::Atomic(Atomic::Time(
            DateTime::from_epoch_millis(ctx.now_millis).time,
        ))]),
        ("year-from-date", 1) | ("month-from-date", 1) | ("day-from-date", 1) => {
            date_component(ctx, &args[0], &name.local, false)
        }
        ("year-from-dateTime", 1)
        | ("month-from-dateTime", 1)
        | ("day-from-dateTime", 1)
        | ("hours-from-dateTime", 1)
        | ("minutes-from-dateTime", 1)
        | ("seconds-from-dateTime", 1) => date_component(ctx, &args[0], &name.local, true),
        // ----- diagnostics -----
        ("error", 0) => Err(XdmError::new("FOER0000", "fn:error()")),
        ("error", 1 | 2) => {
            let code = string_arg(ctx, &args[0]);
            let msg = if arity == 2 {
                string_arg(ctx, &args[1])
            } else {
                "fn:error".to_string()
            };
            Err(XdmError::new(
                if code.is_empty() { "FOER0000" } else { &code },
                msg,
            ))
        }
        ("trace", 2) => Ok(args.remove(0)),
        _ => return None,
    };
    Some(r)
}

// ----- helpers ---------------------------------------------------------------

/// String value of the first item of a sequence ("" when empty).
pub fn string_arg(ctx: &DynamicContext, seq: &Sequence) -> String {
    match seq.first() {
        Some(i) => i.string_value(&ctx.store.borrow()),
        None => String::new(),
    }
}

/// `fn:number` semantics: cast to xs:double, NaN on failure.
fn to_double_or_nan(a: &Atomic) -> f64 {
    match a.cast_to(TypeName::Double) {
        Ok(Atomic::Double(d)) => d,
        _ => f64::NAN,
    }
}

fn double_arg(ctx: &DynamicContext, seq: &Sequence) -> XdmResult<f64> {
    match seq.first() {
        Some(i) => atomize(&ctx.store.borrow(), i).as_double(),
        None => Err(XdmError::type_error("expected a number, got ()")),
    }
}

fn integer_arg(ctx: &DynamicContext, seq: &Sequence) -> XdmResult<i64> {
    double_arg(ctx, seq).map(|d| d as i64)
}

fn one_node(seq: &Sequence) -> XdmResult<Option<xqib_dom::NodeRef>> {
    match seq.first() {
        None => Ok(None),
        Some(Item::Node(n)) => Ok(Some(*n)),
        Some(Item::Atomic(_)) => Err(XdmError::type_error("expected a node")),
    }
}

fn numeric_unary(
    ctx: &DynamicContext,
    seq: &Sequence,
    f: impl Fn(f64) -> f64,
) -> XdmResult<Sequence> {
    match seq.first() {
        None => Ok(vec![]),
        Some(i) => {
            let a = atomize(&ctx.store.borrow(), i);
            let d = a.as_double()?;
            let r = f(d);
            Ok(vec![match a {
                Atomic::Integer(_) => Item::integer(r as i64),
                Atomic::Decimal(_) => Item::Atomic(Atomic::Decimal(r)),
                _ => Item::double(r),
            }])
        }
    }
}

enum Agg {
    Sum,
    Avg,
    Min,
    Max,
}

fn aggregate(
    ctx: &DynamicContext,
    seq: &Sequence,
    agg: Agg,
    zero: Option<&Sequence>,
) -> XdmResult<Sequence> {
    if seq.is_empty() {
        return Ok(match agg {
            Agg::Sum => match zero {
                Some(z) => z.clone(),
                None => vec![Item::integer(0)],
            },
            _ => vec![],
        });
    }
    let store = ctx.store.borrow();
    let mut all_int = true;
    let mut vals = Vec::with_capacity(seq.len());
    for i in seq {
        let a = atomize(&store, i);
        if !matches!(a, Atomic::Integer(_)) {
            all_int = false;
        }
        vals.push(a.as_double()?);
    }
    let result = match agg {
        Agg::Sum => vals.iter().sum::<f64>(),
        Agg::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
        Agg::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
        Agg::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    };
    Ok(vec![
        if all_int && result == result.trunc() && !matches!(agg, Agg::Avg) {
            Item::integer(result as i64)
        } else {
            Item::double(result)
        },
    ])
}

fn substring(ctx: &DynamicContext, args: &[Sequence]) -> XdmResult<Sequence> {
    let s = string_arg(ctx, &args[0]);
    let chars: Vec<char> = s.chars().collect();
    let start = double_arg(ctx, &args[1])?.round();
    let len = if args.len() == 3 {
        double_arg(ctx, &args[2])?.round()
    } else {
        f64::INFINITY
    };
    let out: String = chars
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let p = (*i + 1) as f64;
            p >= start && p < start + len
        })
        .map(|(_, c)| *c)
        .collect();
    Ok(vec![Item::string(out)])
}

fn date_component(
    ctx: &DynamicContext,
    seq: &Sequence,
    func: &str,
    is_datetime: bool,
) -> XdmResult<Sequence> {
    let Some(item) = seq.first() else {
        return Ok(vec![]);
    };
    let a = atomize(&ctx.store.borrow(), item);
    let target = if is_datetime {
        TypeName::DateTime
    } else {
        TypeName::Date
    };
    let cast = a.cast_to(target)?;
    let (date, time) = match cast {
        Atomic::DateTime(dt) => (dt.date, Some(dt.time)),
        Atomic::Date(d) => (d, None),
        _ => return Err(XdmError::type_error("expected a date/dateTime")),
    };
    let v: i64 = match func {
        "year-from-date" | "year-from-dateTime" => date.year as i64,
        "month-from-date" | "month-from-dateTime" => date.month as i64,
        "day-from-date" | "day-from-dateTime" => date.day as i64,
        "hours-from-dateTime" => time.map(|t| t.hour as i64).unwrap_or(0),
        "minutes-from-dateTime" => time.map(|t| t.minute as i64).unwrap_or(0),
        "seconds-from-dateTime" => time.map(|t| t.second as i64).unwrap_or(0),
        _ => return Err(XdmError::unknown_function(func, 1)),
    };
    Ok(vec![Item::integer(v)])
}

/// `fn:deep-equal` over two sequences.
pub fn deep_equal(store: &xqib_dom::Store, a: &Sequence, b: &Sequence) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b.iter()).all(|(x, y)| match (x, y) {
        (Item::Atomic(p), Item::Atomic(q)) => value_compare(CompOp::Eq, p, q).unwrap_or(false),
        (Item::Node(p), Item::Node(q)) => deep_equal_nodes(store, *p, *q),
        _ => false,
    })
}

fn deep_equal_nodes(store: &xqib_dom::Store, a: xqib_dom::NodeRef, b: xqib_dom::NodeRef) -> bool {
    let da = store.doc(a.doc);
    let db = store.doc(b.doc);
    match (da.kind(a.node), db.kind(b.node)) {
        (NodeKind::Text { value: x }, NodeKind::Text { value: y }) => x == y,
        (NodeKind::Comment { value: x }, NodeKind::Comment { value: y }) => x == y,
        (
            NodeKind::Attribute { name: nx, value: x },
            NodeKind::Attribute { name: ny, value: y },
        ) => nx == ny && x == y,
        (
            NodeKind::ProcessingInstruction {
                target: tx,
                value: x,
            },
            NodeKind::ProcessingInstruction {
                target: ty,
                value: y,
            },
        ) => tx == ty && x == y,
        (NodeKind::Element { name: nx, .. }, NodeKind::Element { name: ny, .. }) => {
            if nx != ny {
                return false;
            }
            // attributes: same set (order-insensitive)
            let attrs_a = da.attributes(a.node);
            let attrs_b = db.attributes(b.node);
            if attrs_a.len() != attrs_b.len() {
                return false;
            }
            for &aa in attrs_a {
                let (an, av) = match da.kind(aa) {
                    NodeKind::Attribute { name, value } => (name, value),
                    _ => return false,
                };
                let found = attrs_b.iter().any(|&bb| match db.kind(bb) {
                    NodeKind::Attribute { name, value } => name == an && value == av,
                    _ => false,
                });
                if !found {
                    return false;
                }
            }
            // children, ignoring comments/PIs
            let ka: Vec<_> = da
                .children(a.node)
                .iter()
                .copied()
                .filter(|&c| matches!(da.kind(c), NodeKind::Element { .. } | NodeKind::Text { .. }))
                .collect();
            let kb: Vec<_> = db
                .children(b.node)
                .iter()
                .copied()
                .filter(|&c| matches!(db.kind(c), NodeKind::Element { .. } | NodeKind::Text { .. }))
                .collect();
            ka.len() == kb.len()
                && ka.iter().zip(kb.iter()).all(|(&x, &y)| {
                    deep_equal_nodes(
                        store,
                        xqib_dom::NodeRef::new(a.doc, x),
                        xqib_dom::NodeRef::new(b.doc, y),
                    )
                })
        }
        (NodeKind::Document { .. }, NodeKind::Document { .. }) => {
            let ka = da.children(a.node);
            let kb = db.children(b.node);
            ka.len() == kb.len()
                && ka.iter().zip(kb.iter()).all(|(&x, &y)| {
                    deep_equal_nodes(
                        store,
                        xqib_dom::NodeRef::new(a.doc, x),
                        xqib_dom::NodeRef::new(b.doc, y),
                    )
                })
        }
        _ => false,
    }
}

/// Constructor functions in the `xs:` namespace (`xs:integer("4")`, …).
pub fn xs_constructor(
    ctx: &DynamicContext,
    local: &str,
    args: &[Sequence],
) -> Option<XdmResult<Sequence>> {
    let ty = TypeName::from_local(local)?;
    let seq = args.first()?;
    Some(match seq.first() {
        None => Ok(vec![]),
        Some(i) => {
            let a = atomize(&ctx.store.borrow(), i);
            a.cast_to(ty).map(|v| vec![Item::Atomic(v)])
        }
    })
}

/// Registers nothing — kept as the extension point symmetry with natives.
pub fn builtin_exists(name: &QName, arity: usize) -> bool {
    // cheap probe used by diagnostics: try a dry call classification
    if name.ns.as_deref() != Some(FN_NS) {
        return false;
    }
    const VARIADIC: &[&str] = &["concat"];
    if VARIADIC.contains(&&*name.local) {
        return arity >= 2;
    }
    const KNOWN: &[(&str, &[usize])] = &[
        ("string", &[0, 1]),
        ("data", &[1]),
        ("node-name", &[1]),
        ("document-uri", &[1]),
        ("true", &[0]),
        ("false", &[0]),
        ("not", &[1]),
        ("boolean", &[1]),
        ("abs", &[1]),
        ("ceiling", &[1]),
        ("floor", &[1]),
        ("round", &[1]),
        ("round-half-to-even", &[1]),
        ("number", &[0, 1]),
        ("count", &[1]),
        ("sum", &[1, 2]),
        ("avg", &[1]),
        ("min", &[1]),
        ("max", &[1]),
        ("string-join", &[2]),
        ("substring", &[2, 3]),
        ("string-length", &[0, 1]),
        ("normalize-space", &[0, 1]),
        ("upper-case", &[1]),
        ("lower-case", &[1]),
        ("translate", &[3]),
        ("contains", &[2]),
        ("starts-with", &[2]),
        ("ends-with", &[2]),
        ("substring-before", &[2]),
        ("substring-after", &[2]),
        ("matches", &[2, 3]),
        ("replace", &[3, 4]),
        ("tokenize", &[2, 3]),
        ("codepoints-to-string", &[1]),
        ("string-to-codepoints", &[1]),
        ("encode-for-uri", &[1]),
        ("empty", &[1]),
        ("exists", &[1]),
        ("reverse", &[1]),
        ("distinct-values", &[1]),
        ("insert-before", &[3]),
        ("remove", &[2]),
        ("subsequence", &[2, 3]),
        ("index-of", &[2]),
        ("zero-or-one", &[1]),
        ("one-or-more", &[1]),
        ("exactly-one", &[1]),
        ("deep-equal", &[2]),
        ("unordered", &[1]),
        ("last", &[0]),
        ("position", &[0]),
        ("name", &[0, 1]),
        ("local-name", &[0, 1]),
        ("namespace-uri", &[0, 1]),
        ("root", &[0, 1]),
        ("doc", &[1]),
        ("id", &[1, 2]),
        ("doc-available", &[1]),
        ("put", &[2]),
        ("current-dateTime", &[0]),
        ("current-date", &[0]),
        ("current-time", &[0]),
        ("year-from-date", &[1]),
        ("month-from-date", &[1]),
        ("day-from-date", &[1]),
        ("year-from-dateTime", &[1]),
        ("month-from-dateTime", &[1]),
        ("day-from-dateTime", &[1]),
        ("hours-from-dateTime", &[1]),
        ("minutes-from-dateTime", &[1]),
        ("seconds-from-dateTime", &[1]),
        ("error", &[0, 1, 2]),
        ("trace", &[2]),
        ("base-uri", &[0, 1]),
    ];
    KNOWN
        .iter()
        .any(|(n, arities)| *n == &*name.local && arities.contains(&arity))
}

/// Helper: wraps a closure in the [`crate::context::NativeFn`] type.
pub fn native(
    f: impl Fn(&mut DynamicContext, Vec<Sequence>) -> XdmResult<Sequence> + 'static,
) -> crate::context::NativeFn {
    Rc::new(f)
}
