//! Node constructors: direct element constructors (the paper builds whole
//! page fragments with them, §6.3) and computed constructors.
//!
//! Constructed nodes live in the dynamic context's construction document and
//! are deep-copied into target documents by the Update Facility on insert.

use xqib_dom::{DocId, NodeId, NodeRef, QName};
use xqib_xdm::{atomize, Item, Sequence, XdmError, XdmResult};

use crate::ast::{AttrContent, ElemContent, Expr, NameExpr};
use crate::context::DynamicContext;

use super::eval_expr;

pub(crate) fn eval_constructor(ctx: &mut DynamicContext, e: &Expr) -> XdmResult<Sequence> {
    match e {
        Expr::DirectElement {
            name,
            attrs,
            ns_decls,
            children,
        } => {
            let elem = build_element(ctx, name.clone(), ns_decls, attrs, children)?;
            Ok(vec![Item::Node(elem)])
        }
        Expr::ComputedElement { name, content } => {
            let qname = resolve_name(ctx, name)?;
            let doc_id = ctx.construction_doc;
            let elem = {
                let mut store = ctx.store.borrow_mut();
                store.doc_mut(doc_id).create_element(qname)
            };
            let elem_ref = NodeRef::new(doc_id, elem);
            if let Some(c) = content {
                let seq = eval_expr(ctx, c)?;
                add_content(ctx, elem_ref, &seq)?;
            }
            Ok(vec![Item::Node(elem_ref)])
        }
        Expr::ComputedAttribute { name, content } => {
            let qname = resolve_name(ctx, name)?;
            let value = match content {
                Some(c) => {
                    let seq = eval_expr(ctx, c)?;
                    sequence_to_string(ctx, &seq)
                }
                None => String::new(),
            };
            let doc_id = ctx.construction_doc;
            let attr = {
                let mut store = ctx.store.borrow_mut();
                store.doc_mut(doc_id).create_attribute(qname, value)
            };
            Ok(vec![Item::Node(NodeRef::new(doc_id, attr))])
        }
        Expr::ComputedText(content) => {
            let seq = eval_expr(ctx, content)?;
            if seq.is_empty() {
                return Ok(vec![]);
            }
            let value = sequence_to_string(ctx, &seq);
            let doc_id = ctx.construction_doc;
            let t = {
                let mut store = ctx.store.borrow_mut();
                store.doc_mut(doc_id).create_text(value)
            };
            Ok(vec![Item::Node(NodeRef::new(doc_id, t))])
        }
        Expr::ComputedComment(content) => {
            let seq = eval_expr(ctx, content)?;
            let value = sequence_to_string(ctx, &seq);
            let doc_id = ctx.construction_doc;
            let c = {
                let mut store = ctx.store.borrow_mut();
                store.doc_mut(doc_id).create_comment(value)
            };
            Ok(vec![Item::Node(NodeRef::new(doc_id, c))])
        }
        Expr::ComputedPi { target, content } => {
            let qname = resolve_name(ctx, target)?;
            let value = match content {
                Some(c) => {
                    let seq = eval_expr(ctx, c)?;
                    sequence_to_string(ctx, &seq)
                }
                None => String::new(),
            };
            let doc_id = ctx.construction_doc;
            let pi = {
                let mut store = ctx.store.borrow_mut();
                store
                    .doc_mut(doc_id)
                    .create_pi(qname.local.to_string(), value)
            };
            Ok(vec![Item::Node(NodeRef::new(doc_id, pi))])
        }
        Expr::ComputedDocument(content) => {
            let seq = eval_expr(ctx, content)?;
            let doc_id = {
                let mut store = ctx.store.borrow_mut();
                store.new_document(None)
            };
            let root = {
                let store = ctx.store.borrow();
                store.root(doc_id)
            };
            add_content(ctx, root, &seq)?;
            Ok(vec![Item::Node(root)])
        }
        _ => unreachable!("eval_constructor called with a non-constructor"),
    }
}

fn resolve_name(ctx: &mut DynamicContext, name: &NameExpr) -> XdmResult<QName> {
    match name {
        NameExpr::Static(q) => Ok(q.clone()),
        NameExpr::Dynamic(e) => {
            let v = eval_expr(ctx, e)?;
            match v.first() {
                Some(Item::Atomic(xqib_xdm::Atomic::QName(q))) => Ok(q.clone()),
                Some(i) => {
                    let s = i.string_value(&ctx.store.borrow());
                    if s.is_empty() || s.contains(':') {
                        // prefixes in dynamic names would need runtime ns
                        // resolution; only unprefixed names are supported
                        Err(XdmError::new(
                            "XQDY0074",
                            format!("cannot resolve dynamic name `{s}`"),
                        ))
                    } else {
                        Ok(QName::local(&s))
                    }
                }
                None => Err(XdmError::new(
                    "XQDY0074",
                    "empty name in computed constructor",
                )),
            }
        }
    }
}

fn build_element(
    ctx: &mut DynamicContext,
    name: QName,
    ns_decls: &[(String, String)],
    attrs: &[(QName, Vec<AttrContent>)],
    children: &[ElemContent],
) -> XdmResult<NodeRef> {
    let doc_id = ctx.construction_doc;
    let elem = {
        let mut store = ctx.store.borrow_mut();
        let doc = store.doc_mut(doc_id);
        let e = doc.create_element(name);
        for (p, u) in ns_decls {
            doc.add_ns_decl(e, p.clone(), u.clone())
                .map_err(|er| XdmError::new("XQDY0025", er.to_string()))?;
        }
        e
    };
    let elem_ref = NodeRef::new(doc_id, elem);
    // attributes: evaluate value templates
    for (aname, parts) in attrs {
        let mut value = String::new();
        for part in parts {
            match part {
                AttrContent::Text(t) => value.push_str(t),
                AttrContent::Enclosed(e) => {
                    let seq = eval_expr(ctx, e)?;
                    value.push_str(&sequence_to_string(ctx, &seq));
                }
            }
        }
        let mut store = ctx.store.borrow_mut();
        store
            .doc_mut(doc_id)
            .set_attribute(elem, aname.clone(), value)
            .map_err(|er| XdmError::new("XQDY0025", er.to_string()))?;
    }
    // children
    for child in children {
        match child {
            ElemContent::Text(t) => {
                let mut store = ctx.store.borrow_mut();
                let doc = store.doc_mut(doc_id);
                let tn = doc.create_text(t.clone());
                doc.append_child(elem, tn)
                    .map_err(|er| XdmError::new("XQTY0024", er.to_string()))?;
            }
            ElemContent::Enclosed(e) | ElemContent::Child(e) => {
                let seq = eval_expr(ctx, e)?;
                add_content(ctx, elem_ref, &seq)?;
            }
        }
    }
    Ok(elem_ref)
}

/// Content-sequence processing: adjacent atomic values are joined with
/// spaces into text nodes; nodes are deep-copied; attribute nodes attach to
/// the element (and must precede other content).
pub(crate) fn add_content(
    ctx: &mut DynamicContext,
    parent: NodeRef,
    seq: &Sequence,
) -> XdmResult<()> {
    let mut pending_text: Option<String> = None;
    let mut saw_child = false;
    for item in seq {
        match item {
            Item::Atomic(_) => {
                let s = {
                    let store = ctx.store.borrow();
                    atomize(&store, item).string_value()
                };
                match pending_text {
                    Some(ref mut t) => {
                        t.push(' ');
                        t.push_str(&s);
                    }
                    None => pending_text = Some(s),
                }
            }
            Item::Node(n) => {
                let is_attr = {
                    let store = ctx.store.borrow();
                    store.doc(n.doc).kind(n.node).is_attribute()
                };
                if is_attr {
                    if saw_child || pending_text.is_some() {
                        return Err(XdmError::new(
                            "XQTY0024",
                            "attribute nodes must precede other element content",
                        ));
                    }
                    let mut store = ctx.store.borrow_mut();
                    let copied = copy_into(&mut store, parent.doc, *n);
                    store
                        .doc_mut(parent.doc)
                        .put_attribute_node(parent.node, copied)
                        .map_err(|er| XdmError::new("XQDY0025", er.to_string()))?;
                } else {
                    flush_text(ctx, parent, &mut pending_text)?;
                    saw_child = true;
                    let mut store = ctx.store.borrow_mut();
                    let copied = copy_into(&mut store, parent.doc, *n);
                    store
                        .doc_mut(parent.doc)
                        .append_child(parent.node, copied)
                        .map_err(|er| XdmError::new("XQTY0024", er.to_string()))?;
                }
            }
        }
    }
    flush_text(ctx, parent, &mut pending_text)?;
    Ok(())
}

fn flush_text(
    ctx: &mut DynamicContext,
    parent: NodeRef,
    pending: &mut Option<String>,
) -> XdmResult<()> {
    if let Some(t) = pending.take() {
        if !t.is_empty() {
            let mut store = ctx.store.borrow_mut();
            let doc = store.doc_mut(parent.doc);
            let tn = doc.create_text(t);
            doc.append_child(parent.node, tn)
                .map_err(|er| XdmError::new("XQTY0024", er.to_string()))?;
        }
    }
    Ok(())
}

/// Deep-copies a node (possibly from another document) into `target_doc`.
pub(crate) fn copy_into(store: &mut xqib_dom::Store, target_doc: DocId, src: NodeRef) -> NodeId {
    store.copy_node_between(src, target_doc)
}

/// String value of a content sequence: items joined with spaces.
pub(crate) fn sequence_to_string(ctx: &DynamicContext, seq: &Sequence) -> String {
    let store = ctx.store.borrow();
    seq.iter()
        .map(|i| atomize(&store, i).string_value())
        .collect::<Vec<_>>()
        .join(" ")
}
