//! Full-text `ftcontains` evaluation (§3.1 of the paper): tokenisation,
//! phrase matching, `ftand`/`ftor`/`ftnot` composition and the `with
//! stemming` / case / wildcard match options.

use xqib_xdm::{Sequence, XdmResult};

use crate::ast::{Expr, FtMatchOptions, FtSelection};
use crate::context::DynamicContext;
use crate::functions::regex::Regex;
use crate::functions::stemmer::{stem, tokenize_words, tokenize_words_cased};

use super::eval_expr;

pub(crate) fn eval_ftcontains(
    ctx: &mut DynamicContext,
    source: &Expr,
    selection: &FtSelection,
) -> XdmResult<Sequence> {
    let items = eval_expr(ctx, source)?;
    // ftcontains is existential over the source sequence
    for item in &items {
        let text = item.string_value(&ctx.store.borrow());
        if selection_matches(ctx, &text, selection)? {
            return Ok(vec![xqib_xdm::Item::boolean(true)]);
        }
    }
    Ok(vec![xqib_xdm::Item::boolean(false)])
}

fn selection_matches(ctx: &mut DynamicContext, text: &str, sel: &FtSelection) -> XdmResult<bool> {
    match sel {
        FtSelection::Or(items) => {
            for s in items {
                if selection_matches(ctx, text, s)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        FtSelection::And(items) => {
            for s in items {
                if !selection_matches(ctx, text, s)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        FtSelection::Not(inner) => Ok(!selection_matches(ctx, text, inner)?),
        FtSelection::Words { expr, options } => {
            let v = eval_expr(ctx, expr)?;
            // each item is a phrase; any phrase matching suffices
            for item in &v {
                let phrase = item.string_value(&ctx.store.borrow());
                if phrase_matches(text, &phrase, options) {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

/// Does `text` contain the token phrase `phrase` under the given options?
pub fn phrase_matches(text: &str, phrase: &str, opts: &FtMatchOptions) -> bool {
    let tokenize_phrase = |s: &str| -> Vec<String> {
        if opts.wildcards {
            // keep wildcard metacharacters intact in query tokens
            s.split_whitespace()
                .map(|w| {
                    if opts.case_sensitive {
                        w.to_string()
                    } else {
                        w.to_lowercase()
                    }
                })
                .collect()
        } else if opts.case_sensitive {
            tokenize_words_cased(s)
        } else {
            tokenize_words(s)
        }
    };
    let (text_tokens, phrase_tokens): (Vec<String>, Vec<String>) = (
        if opts.case_sensitive {
            tokenize_words_cased(text)
        } else {
            tokenize_words(text)
        },
        tokenize_phrase(phrase),
    );
    if phrase_tokens.is_empty() {
        return false;
    }
    let norm = |w: &str| -> String {
        if opts.stemming {
            stem(&w.to_lowercase())
        } else {
            w.to_string()
        }
    };
    let text_norm: Vec<String> = text_tokens.iter().map(|w| norm(w)).collect();
    let phrase_norm: Vec<String> = phrase_tokens.iter().map(|w| norm(w)).collect();

    let token_eq = |t: &str, p: &str| -> bool {
        if opts.wildcards && p.contains(['*', '?', '.']) {
            // FT wildcard syntax: `.` any char, `.*` any run, `*` → any run
            let pat = p.replace("*", ".*").replace('?', ".?");
            match Regex::compile(&format!("^{pat}$")) {
                Ok(re) => re.is_match(t),
                Err(_) => t == p,
            }
        } else {
            t == p
        }
    };

    if phrase_norm.len() == 1 {
        return text_norm.iter().any(|t| token_eq(t, &phrase_norm[0]));
    }
    // multi-word phrase: consecutive token match
    if text_norm.len() < phrase_norm.len() {
        return false;
    }
    text_norm
        .windows(phrase_norm.len())
        .any(|w| w.iter().zip(&phrase_norm).all(|(t, p)| token_eq(t, p)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> FtMatchOptions {
        FtMatchOptions::default()
    }

    #[test]
    fn single_word() {
        assert!(phrase_matches("the quick brown fox", "quick", &opts()));
        assert!(!phrase_matches("the quick brown fox", "slow", &opts()));
        // tokenisation is case-insensitive by default
        assert!(phrase_matches("The QUICK fox", "quick", &opts()));
    }

    #[test]
    fn phrase_must_be_consecutive() {
        assert!(phrase_matches("a b c d", "b c", &opts()));
        assert!(!phrase_matches("a b x c", "b c", &opts()));
    }

    #[test]
    fn stemming_conflates_variants() {
        let o = FtMatchOptions {
            stemming: true,
            ..Default::default()
        };
        assert!(phrase_matches("three dogs barked", "dog", &o));
        assert!(phrase_matches("the dog barked", "dogs", &o));
        assert!(!phrase_matches("three dogs barked", "dog", &opts()));
    }

    #[test]
    fn case_sensitivity_option() {
        let o = FtMatchOptions {
            case_sensitive: true,
            ..Default::default()
        };
        assert!(phrase_matches("Internet Explorer", "Internet", &o));
        assert!(!phrase_matches("internet explorer", "Internet", &o));
    }

    #[test]
    fn wildcards() {
        let o = FtMatchOptions {
            wildcards: true,
            ..Default::default()
        };
        assert!(phrase_matches("computers are great", "comput*", &o));
        assert!(!phrase_matches("cats are great", "comput*", &o));
    }

    #[test]
    fn url_words_tokenise() {
        // §4.2.1: `$x/location/href ftcontains "https://"` — the URL text
        // tokenises to the word `https`
        assert!(phrase_matches(
            "https://www.dbis.ethz.ch",
            "https://",
            &opts()
        ));
        assert!(!phrase_matches("http://www.dbis.ethz.ch", "https", &opts()));
    }
}
