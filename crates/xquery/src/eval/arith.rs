//! Arithmetic, unary minus and range expressions, including the date/time
//! and duration operator overloads.

use xqib_xdm::{atomize, Atomic, DateTime, Duration, Item, Sequence, XdmError, XdmResult};

use crate::ast::{ArithOp, Expr};
use crate::context::DynamicContext;

use super::eval_expr;

pub(crate) fn eval_range(ctx: &mut DynamicContext, lo: &Expr, hi: &Expr) -> XdmResult<Sequence> {
    let l = atomic_operand(ctx, lo)?;
    let h = atomic_operand(ctx, hi)?;
    let Some((l, h)) = range_bounds(l, h)? else {
        return Ok(vec![]);
    };
    Ok((l..=h).map(Item::integer).collect())
}

/// Resolves range endpoints to inclusive integer bounds; `None` when the
/// range is empty (an empty operand or `lo > hi`).
pub(crate) fn range_bounds(
    lo: Option<Atomic>,
    hi: Option<Atomic>,
) -> XdmResult<Option<(i64, i64)>> {
    let (Some(l), Some(h)) = (lo, hi) else {
        return Ok(None);
    };
    let l = l.as_double()? as i64;
    let h = h.as_double()? as i64;
    Ok(if l > h { None } else { Some((l, h)) })
}

pub(crate) fn eval_neg(ctx: &mut DynamicContext, inner: &Expr) -> XdmResult<Sequence> {
    let v = atomic_operand(ctx, inner)?;
    neg_atomic(v)
}

/// Unary minus over an optional atomized operand.
pub(crate) fn neg_atomic(v: Option<Atomic>) -> XdmResult<Sequence> {
    match v {
        None => Ok(vec![]),
        Some(a) => match a {
            Atomic::Integer(i) => Ok(vec![Item::integer(-i)]),
            Atomic::Decimal(d) => Ok(vec![Item::Atomic(Atomic::Decimal(-d))]),
            _ => Ok(vec![Item::double(-a.as_double()?)]),
        },
    }
}

/// Evaluates to at most one atomized item (arithmetic operand rule).
fn atomic_operand(ctx: &mut DynamicContext, e: &Expr) -> XdmResult<Option<Atomic>> {
    let v = eval_expr(ctx, e)?;
    atomic_from_seq(ctx, &v)
}

/// The arithmetic operand rule applied to an already-evaluated sequence.
pub(crate) fn atomic_from_seq(ctx: &DynamicContext, v: &Sequence) -> XdmResult<Option<Atomic>> {
    match v.len() {
        0 => Ok(None),
        1 => {
            let a = atomize(&ctx.store.borrow(), &v[0]);
            Ok(Some(a))
        }
        n => Err(XdmError::type_error(format!(
            "arithmetic operand must be a singleton, got {n} items"
        ))),
    }
}

pub(crate) fn eval_arith(
    ctx: &mut DynamicContext,
    op: ArithOp,
    l: &Expr,
    r: &Expr,
) -> XdmResult<Sequence> {
    let (Some(a), Some(b)) = (atomic_operand(ctx, l)?, atomic_operand(ctx, r)?) else {
        return Ok(vec![]);
    };
    apply_arith(op, &a, &b).map(|v| vec![Item::Atomic(v)])
}

/// Applies an arithmetic operator to two atomics with the XPath promotion
/// rules (untyped → double; integer-preserving +,-,*; decimal division).
pub fn apply_arith(op: ArithOp, a: &Atomic, b: &Atomic) -> XdmResult<Atomic> {
    use Atomic::*;

    // date/time & duration overloads first
    match (op, a, b) {
        (ArithOp::Sub, DateTime(x), DateTime(y)) => {
            return Ok(Duration(xqib_xdm::datetime::datetime_diff(x, y)));
        }
        (ArithOp::Sub, Date(x), Date(y)) => {
            return Ok(Duration(xqib_xdm::Duration::from_millis(
                (x.days_since_epoch() - y.days_since_epoch()) * 86_400_000,
            )));
        }
        (ArithOp::Add, Date(x), Duration(d)) | (ArithOp::Add, Duration(d), Date(x)) => {
            return add_date_duration(*x, d, 1);
        }
        (ArithOp::Sub, Date(x), Duration(d)) => {
            return add_date_duration(*x, d, -1);
        }
        (ArithOp::Add, DateTime(x), Duration(d)) | (ArithOp::Add, Duration(d), DateTime(x)) => {
            return add_datetime_duration(*x, d, 1);
        }
        (ArithOp::Sub, DateTime(x), Duration(d)) => {
            return add_datetime_duration(*x, d, -1);
        }
        (ArithOp::Add, Duration(x), Duration(y)) => {
            return Ok(Duration(xqib_xdm::Duration {
                months: x.months + y.months,
                millis: x.millis + y.millis,
            }));
        }
        (ArithOp::Sub, Duration(x), Duration(y)) => {
            return Ok(Duration(xqib_xdm::Duration {
                months: x.months - y.months,
                millis: x.millis - y.millis,
            }));
        }
        (ArithOp::Mul, Duration(x), n) | (ArithOp::Mul, n, Duration(x))
            if n.is_numeric() || matches!(n, Untyped(_)) =>
        {
            let f = n.as_double()?;
            return Ok(Duration(xqib_xdm::Duration {
                months: (x.months as f64 * f) as i64,
                millis: (x.millis as f64 * f) as i64,
            }));
        }
        (ArithOp::Div, Duration(x), n) if n.is_numeric() => {
            let f = n.as_double()?;
            if f == 0.0 {
                return Err(XdmError::div_by_zero());
            }
            return Ok(Duration(xqib_xdm::Duration {
                months: (x.months as f64 / f) as i64,
                millis: (x.millis as f64 / f) as i64,
            }));
        }
        _ => {}
    }

    // integer-preserving paths
    if let (Integer(x), Integer(y)) = (a, b) {
        return match op {
            ArithOp::Add => Ok(Integer(x.wrapping_add(*y))),
            ArithOp::Sub => Ok(Integer(x.wrapping_sub(*y))),
            ArithOp::Mul => Ok(Integer(x.wrapping_mul(*y))),
            ArithOp::Div => {
                if *y == 0 {
                    Err(XdmError::div_by_zero())
                } else if x % y == 0 {
                    Ok(Integer(x / y))
                } else {
                    Ok(Decimal(*x as f64 / *y as f64))
                }
            }
            ArithOp::IDiv => {
                if *y == 0 {
                    Err(XdmError::div_by_zero())
                } else {
                    Ok(Integer(x / y))
                }
            }
            ArithOp::Mod => {
                if *y == 0 {
                    Err(XdmError::div_by_zero())
                } else {
                    Ok(Integer(x % y))
                }
            }
        };
    }

    // general numeric path via double
    let x = a.as_double()?;
    let y = b.as_double()?;
    let wrap = |d: f64| -> Atomic {
        // keep decimal-ness when neither operand is a double
        let both_decimalish =
            !matches!(a, Double(_) | Untyped(_)) && !matches!(b, Double(_) | Untyped(_));
        if both_decimalish {
            Decimal(d)
        } else {
            Double(d)
        }
    };
    match op {
        ArithOp::Add => Ok(wrap(x + y)),
        ArithOp::Sub => Ok(wrap(x - y)),
        ArithOp::Mul => Ok(wrap(x * y)),
        ArithOp::Div => {
            if y == 0.0 && !matches!(a, Double(_)) && !matches!(b, Double(_)) {
                Err(XdmError::div_by_zero())
            } else {
                Ok(wrap(x / y))
            }
        }
        ArithOp::IDiv => {
            if y == 0.0 {
                Err(XdmError::div_by_zero())
            } else {
                Ok(Integer((x / y).trunc() as i64))
            }
        }
        ArithOp::Mod => {
            if y == 0.0 && !matches!(a, Double(_)) && !matches!(b, Double(_)) {
                Err(XdmError::div_by_zero())
            } else {
                Ok(wrap(x % y))
            }
        }
    }
}

fn add_date_duration(d: xqib_xdm::Date, dur: &Duration, sign: i64) -> XdmResult<Atomic> {
    let months_total = d.year as i64 * 12 + (d.month as i64 - 1) + sign * dur.months;
    let year = months_total.div_euclid(12) as i32;
    let month = (months_total.rem_euclid(12) + 1) as u8;
    let max_day = days_in(year, month);
    let day = d.day.min(max_day);
    let base = xqib_xdm::Date { year, month, day };
    let with_days = base.plus_days(sign * (dur.millis / 86_400_000));
    Ok(Atomic::Date(with_days))
}

fn add_datetime_duration(dt: DateTime, dur: &Duration, sign: i64) -> XdmResult<Atomic> {
    // months first
    let date_part = match add_date_duration(dt.date, &Duration::from_months(dur.months), sign)? {
        Atomic::Date(d) => d,
        _ => unreachable!(),
    };
    let base = DateTime::new(date_part, dt.time);
    let ms = base.epoch_millis() + sign * dur.millis;
    Ok(Atomic::DateTime(DateTime::from_epoch_millis(ms)))
}

fn days_in(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
    }
}
