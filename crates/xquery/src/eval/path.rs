//! Path expression evaluation: axes, node tests, predicates, document-order
//! normalisation. This is the workhorse of browser scripting — "programming
//! the browser involves mostly XML (i.e., DOM) navigation" (paper abstract).

use xqib_dom::{NodeKind, NodeRef, Store};
use xqib_xdm::{effective_boolean_value, Atomic, Item, Sequence, XdmError, XdmResult};

use crate::ast::{Axis, AxisStep, KindTest, NodeTest, PathStart, StepExpr};
use crate::context::DynamicContext;

use super::eval_expr;

pub(crate) fn eval_path(
    ctx: &mut DynamicContext,
    start: PathStart,
    steps: &[StepExpr],
) -> XdmResult<Sequence> {
    // Initial context sequence, plus whether it is already known to be in
    // document order without duplicates ("normalized") — the invariant the
    // sort-elision below relies on. Singletons trivially are; a leading
    // filter step keeps its expression's own order, so it is not.
    let mut steps = steps;
    let mut normalized = true;
    let mut current: Sequence = match start {
        PathStart::Relative => match &ctx.focus {
            Some(f) => vec![f.item.clone()],
            None => {
                // A relative path whose first step is a primary expression
                // (e.g. `doc("x")//y`, `$v/y`) needs no context item: the
                // first step supplies the context for the rest.
                let (first, rest) = steps
                    .split_first()
                    .ok_or_else(|| XdmError::undefined("relative path with no context item"))?;
                match first {
                    StepExpr::Filter {
                        primary,
                        predicates,
                    } => {
                        let r = eval_expr(ctx, primary)?;
                        let filtered = apply_predicates(ctx, r, predicates)?;
                        steps = rest;
                        normalized = filtered.len() <= 1;
                        filtered
                    }
                    StepExpr::Axis(_) => {
                        return Err(XdmError::undefined("relative path with no context item"))
                    }
                }
            }
        },
        PathStart::Root | PathStart::RootDescendant => {
            let item = ctx.context_item()?;
            let Item::Node(n) = item else {
                return Err(XdmError::new(
                    "XPTY0020",
                    "`/` requires the context item to be a node",
                ));
            };
            let store = ctx.store.borrow();
            let root = store.doc(n.doc).tree_root(n.node);
            vec![Item::Node(NodeRef::new(n.doc, root))]
        }
    };
    if start == PathStart::RootDescendant {
        current = apply_axis_step(
            ctx,
            &current,
            &AxisStep {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::Kind(KindTest::AnyKind),
                predicates: vec![],
            },
            normalized,
        )?;
        // Axis steps always emit normalized output.
    }
    for step in steps {
        (current, normalized) = apply_step(ctx, &current, step, normalized)?;
    }
    Ok(current)
}

/// Applies one step; returns the result sequence plus whether it is
/// normalized (document order, duplicate-free).
fn apply_step(
    ctx: &mut DynamicContext,
    input: &Sequence,
    step: &StepExpr,
    input_normalized: bool,
) -> XdmResult<(Sequence, bool)> {
    // fuel is charged per (step, context item): a step over a huge node set
    // costs proportionally, so runaway traversals are preempted even when
    // the query text is a single path expression
    ctx.charge_fuel(1 + input.len() as u64)?;
    match step {
        StepExpr::Axis(ax) => apply_axis_step(ctx, input, ax, input_normalized).map(|s| (s, true)),
        StepExpr::Filter {
            primary,
            predicates,
        } => {
            let mut combined: Sequence = Vec::new();
            let size = input.len();
            for (i, item) in input.iter().enumerate() {
                let result =
                    ctx.with_focus(item.clone(), i + 1, size, |ctx| eval_expr(ctx, primary))?;
                combined.extend(apply_predicates(ctx, result, predicates)?);
            }
            // An empty or singleton result needs neither the XPTY0018
            // homogeneity scan nor normalisation.
            if combined.len() <= 1 {
                return Ok((combined, true));
            }
            let mut any_node = false;
            let mut any_atomic = false;
            for r in &combined {
                match r {
                    Item::Node(_) => any_node = true,
                    Item::Atomic(_) => any_atomic = true,
                }
            }
            if any_node && any_atomic {
                return Err(XdmError::new(
                    "XPTY0018",
                    "path step mixes nodes and atomic values",
                ));
            }
            if any_node {
                let mut refs: Vec<NodeRef> = combined
                    .iter()
                    .map(|i| i.as_node().expect("all nodes"))
                    .collect();
                let store = ctx.store.borrow();
                xqib_dom::order::sort_dedup(&store, &mut refs);
                Ok((refs.into_iter().map(Item::Node).collect(), true))
            } else {
                // Atomic-only results keep expression order; mark them
                // non-normalized so a later axis step (which would be a
                // type error anyway) never elides on their account.
                Ok((combined, false))
            }
        }
    }
}

/// True if concatenating per-input results of `axis` preserves document
/// order and never duplicates, given inputs that are strictly ordered and
/// pairwise non-nested: each input's results stay inside its own subtree
/// (or are the node itself/its attributes), so they cannot interleave.
pub(crate) fn axis_concat_stays_sorted(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Child | Axis::Attribute | Axis::SelfAxis | Axis::Descendant | Axis::DescendantOrSelf
    )
}

/// True if `axis` enumerates nodes in reverse document order.
pub(crate) fn axis_is_reverse(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Ancestor | Axis::AncestorOrSelf | Axis::PrecedingSibling | Axis::Preceding
    )
}

fn apply_axis_step(
    ctx: &mut DynamicContext,
    input: &Sequence,
    step: &AxisStep,
    input_normalized: bool,
) -> XdmResult<Sequence> {
    let mut out_refs: Vec<NodeRef> = Vec::new();
    for item in input {
        let Item::Node(n) = item else {
            return Err(XdmError::new(
                "XPTY0019",
                "axis step applied to an atomic value",
            ));
        };
        // candidates in axis order
        let candidates: Vec<NodeRef> = {
            let store = ctx.store.borrow();
            axis_nodes(&store, *n, step.axis)
                .into_iter()
                .filter(|&c| node_test_matches(&store, c, step.axis, &step.test))
                .collect()
        };
        let filtered = apply_predicates_to_nodes(ctx, candidates, &step.predicates)?;
        out_refs.extend(filtered);
    }

    // Document-order normalisation, elided where the construction already
    // guarantees it: a single context node emits each axis in (possibly
    // reversed) document order with no duplicates, and subtree-confined
    // axes concatenate in order over strictly-ordered, non-nested inputs.
    if out_refs.len() > 1 {
        let store = ctx.store.borrow();
        let elide = if input.len() == 1 {
            true
        } else {
            input_normalized
                && axis_concat_stays_sorted(step.axis)
                && xqib_dom::order::strictly_ordered_disjoint(
                    &store,
                    input.iter().filter_map(|i| i.as_node()),
                )
        };
        if elide {
            if input.len() == 1 && axis_is_reverse(step.axis) {
                out_refs.reverse();
            }
            xqib_dom::order::stats::record_elided_sort();
            debug_assert!(out_refs.windows(2).all(|w| {
                xqib_dom::cmp_doc_order(&store, w[0], w[1]) == std::cmp::Ordering::Less
            }));
        } else {
            xqib_dom::order::sort_dedup(&store, &mut out_refs);
        }
    }
    Ok(out_refs.into_iter().map(Item::Node).collect())
}

/// A predicate whose selection is a pure position lookup: a numeric literal
/// (`[1]`, `[2.5]`) or a bare `last()` call resolving to the built-in.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PosTake {
    Index(f64),
    Last,
}

/// Recognises positional-take predicates. `last()` qualifies only when it
/// is not shadowed by a user-declared function — the decision is static
/// (the `fn:` namespace is reserved, natives live in `browser:`) so the
/// interpreter and the compiled plan always agree on it.
pub(crate) fn positional_take(ctx: &DynamicContext, pred: &crate::ast::Expr) -> Option<PosTake> {
    static_positional_take(&ctx.sctx, pred)
}

pub(crate) fn static_positional_take(
    sctx: &crate::context::StaticContext,
    pred: &crate::ast::Expr,
) -> Option<PosTake> {
    match pred {
        crate::ast::Expr::Literal(a) if a.is_numeric() && !matches!(a, Atomic::Untyped(_)) => {
            Some(PosTake::Index(a.as_double().ok()?))
        }
        crate::ast::Expr::FunctionCall { name, args }
            if args.is_empty()
                && &*name.local == "last"
                && name.ns.as_deref() == Some(xqib_dom::name::FN_NS)
                && sctx.lookup_function(name, 0).is_none() =>
        {
            Some(PosTake::Last)
        }
        _ => None,
    }
}

/// Resolves a positional take against a list of `len` items: the selected
/// index (0-based), or `None` for an empty selection. Matches
/// `predicate_truth`'s `d == position` test: fractional, negative and NaN
/// positions select nothing.
pub(crate) fn take_index(take: &PosTake, len: usize) -> Option<usize> {
    match take {
        PosTake::Index(d) => {
            if *d >= 1.0 && d.fract() == 0.0 && (*d as usize) <= len {
                Some(*d as usize - 1)
            } else {
                None
            }
        }
        PosTake::Last => len.checked_sub(1),
    }
}

/// Applies predicates to a node list (in axis order: positions count along
/// the axis direction).
pub(crate) fn apply_predicates_to_nodes(
    ctx: &mut DynamicContext,
    nodes: Vec<NodeRef>,
    predicates: &[crate::ast::Expr],
) -> XdmResult<Vec<NodeRef>> {
    let mut current = nodes;
    for pred in predicates {
        // Positional short-circuit: `[k]` / `[last()]` index directly
        // instead of evaluating the predicate against every node — `//x[1]`
        // must not pay for every sibling it discards.
        if let Some(take) = positional_take(ctx, pred) {
            ctx.charge_fuel(1)?;
            current = match take_index(&take, current.len()) {
                Some(i) => vec![current[i]],
                None => vec![],
            };
            continue;
        }
        let size = current.len();
        let mut next = Vec::with_capacity(current.len());
        for (i, n) in current.iter().enumerate() {
            let keep = ctx.with_focus(Item::Node(*n), i + 1, size, |ctx| {
                predicate_truth(ctx, pred, i + 1)
            })?;
            if keep {
                next.push(*n);
            }
        }
        current = next;
    }
    Ok(current)
}

/// Applies predicates to a general sequence.
pub(crate) fn apply_predicates(
    ctx: &mut DynamicContext,
    seq: Sequence,
    predicates: &[crate::ast::Expr],
) -> XdmResult<Sequence> {
    let mut current = seq;
    for pred in predicates {
        if let Some(take) = positional_take(ctx, pred) {
            ctx.charge_fuel(1)?;
            current = match take_index(&take, current.len()) {
                Some(i) => vec![current[i].clone()],
                None => vec![],
            };
            continue;
        }
        let size = current.len();
        let mut next = Vec::with_capacity(current.len());
        for (i, item) in current.iter().enumerate() {
            let keep = ctx.with_focus(item.clone(), i + 1, size, |ctx| {
                predicate_truth(ctx, pred, i + 1)
            })?;
            if keep {
                next.push(item.clone());
            }
        }
        current = next;
    }
    Ok(current)
}

/// Predicate semantics: a numeric singleton is a position test, everything
/// else takes the effective boolean value.
pub(crate) fn predicate_truth(
    ctx: &mut DynamicContext,
    pred: &crate::ast::Expr,
    position: usize,
) -> XdmResult<bool> {
    let v = eval_expr(ctx, pred)?;
    if v.len() == 1 {
        if let Item::Atomic(a) = &v[0] {
            if a.is_numeric() && !matches!(a, Atomic::Untyped(_)) {
                let d = a.as_double()?;
                return Ok(d == position as f64);
            }
        }
    }
    effective_boolean_value(&v)
}

/// Produces the nodes on `axis` from `n`, in axis order (reverse axes yield
/// reverse document order, matching positional-predicate semantics).
pub fn axis_nodes(store: &Store, n: NodeRef, axis: Axis) -> Vec<NodeRef> {
    let doc = store.doc(n.doc);
    let mk = |id| NodeRef::new(n.doc, id);
    match axis {
        Axis::Child => doc.children(n.node).iter().map(|&c| mk(c)).collect(),
        Axis::Attribute => doc.attributes(n.node).iter().map(|&a| mk(a)).collect(),
        Axis::SelfAxis => vec![n],
        Axis::Parent => doc.parent(n.node).map(mk).into_iter().collect(),
        Axis::Descendant => {
            // skip(1) drops self without the O(n) front-shift of remove(0)
            doc.descendants_or_self(n.node)
                .into_iter()
                .skip(1)
                .map(mk)
                .collect()
        }
        Axis::DescendantOrSelf => doc
            .descendants_or_self(n.node)
            .into_iter()
            .map(mk)
            .collect(),
        Axis::Ancestor => {
            let mut out = Vec::new();
            let mut cur = doc.parent(n.node);
            while let Some(p) = cur {
                out.push(mk(p));
                cur = doc.parent(p);
            }
            out
        }
        Axis::AncestorOrSelf => {
            let mut out = vec![n];
            let mut cur = doc.parent(n.node);
            while let Some(p) = cur {
                out.push(mk(p));
                cur = doc.parent(p);
            }
            out
        }
        Axis::FollowingSibling => {
            let Some(parent) = doc.parent(n.node) else {
                return vec![];
            };
            if doc.kind(n.node).is_attribute() {
                return vec![];
            }
            let sibs = doc.children(parent);
            match sibs.iter().position(|&s| s == n.node) {
                Some(i) => sibs[i + 1..].iter().map(|&s| mk(s)).collect(),
                None => vec![],
            }
        }
        Axis::PrecedingSibling => {
            let Some(parent) = doc.parent(n.node) else {
                return vec![];
            };
            if doc.kind(n.node).is_attribute() {
                return vec![];
            }
            let sibs = doc.children(parent);
            match sibs.iter().position(|&s| s == n.node) {
                Some(i) => sibs[..i].iter().rev().map(|&s| mk(s)).collect(),
                None => vec![],
            }
        }
        Axis::Following => {
            // All nodes after n in document order, excluding descendants
            // and attributes: with the order index this is one slice of the
            // pre-order sequence, `(end(n), end-of-tree]`. Attribute context
            // nodes follow from their owner element (their own "following
            // within the owner" is the owner's remaining subtree, which the
            // axis excludes).
            let ix = doc.order_index();
            let base = if doc.kind(n.node).is_attribute() {
                match doc.parent(n.node) {
                    Some(owner) => owner,
                    None => return vec![],
                }
            } else {
                n.node
            };
            let root = ix.tree_root(base);
            ix.pre_order()[ix.end(base) as usize + 1..]
                .iter()
                .take_while(|&&v| ix.tree_root(v) == root)
                .filter(|&&v| !doc.kind(v).is_attribute())
                .map(|&v| mk(v))
                .collect()
        }
        Axis::Preceding => {
            // All nodes before n in document order, excluding ancestors and
            // attributes, in reverse document order: the pre-order slice
            // `[start-of-tree, begin(n))` walked backwards. The ancestor
            // filter is an O(1) interval test; it also removes an attribute
            // context node's owner (attributes live inside the owner's
            // interval).
            let ix = doc.order_index();
            let root = ix.tree_root(n.node);
            let tree_start = ix.begin(root) as usize;
            ix.pre_order()[tree_start..ix.begin(n.node) as usize]
                .iter()
                .rev()
                .filter(|&&v| !doc.kind(v).is_attribute() && !ix.is_ancestor_of(v, n.node))
                .map(|&v| mk(v))
                .collect()
        }
    }
}

/// Does `node` satisfy the node test on the given axis? The principal node
/// kind is attribute for the attribute axis, element otherwise.
pub fn node_test_matches(store: &Store, node: NodeRef, axis: Axis, test: &NodeTest) -> bool {
    let doc = store.doc(node.doc);
    let kind = doc.kind(node.node);
    let principal_is_attr = axis == Axis::Attribute;
    match test {
        NodeTest::AnyName => {
            if principal_is_attr {
                kind.is_attribute()
            } else {
                kind.is_element()
            }
        }
        NodeTest::Name(q) => match kind {
            NodeKind::Element { name, .. } if !principal_is_attr => name == q,
            NodeKind::Attribute { name, .. } if principal_is_attr => name == q,
            _ => false,
        },
        NodeTest::NsWildcard(uri) => match kind {
            NodeKind::Element { name, .. } if !principal_is_attr => {
                name.ns.as_deref() == Some(uri.as_str())
            }
            NodeKind::Attribute { name, .. } if principal_is_attr => {
                name.ns.as_deref() == Some(uri.as_str())
            }
            _ => false,
        },
        NodeTest::LocalWildcard(local) => match kind {
            NodeKind::Element { name, .. } if !principal_is_attr => &*name.local == local,
            NodeKind::Attribute { name, .. } if principal_is_attr => &*name.local == local,
            _ => false,
        },
        NodeTest::Kind(kt) => kind_test_matches(kind, kt),
    }
}

fn kind_test_matches(kind: &NodeKind, kt: &KindTest) -> bool {
    match kt {
        KindTest::AnyKind => true,
        KindTest::Text => kind.is_text(),
        KindTest::Comment => matches!(kind, NodeKind::Comment { .. }),
        KindTest::Pi(target) => match kind {
            NodeKind::ProcessingInstruction { target: actual, .. } => match target {
                Some(t) => actual == t,
                None => true,
            },
            _ => false,
        },
        KindTest::Element(name) => match kind {
            NodeKind::Element { name: actual, .. } => match name {
                Some(q) => actual == q,
                None => true,
            },
            _ => false,
        },
        KindTest::Attribute(name) => match kind {
            NodeKind::Attribute { name: actual, .. } => match name {
                Some(q) => actual == q,
                None => true,
            },
            _ => false,
        },
        KindTest::Document => kind.is_document(),
    }
}

/// Convenience used by hosts (minijs `document.evaluate`, window views):
/// evaluates an axis+test from a context node without predicates.
pub fn simple_axis(store: &Store, n: NodeRef, axis: Axis, test: &NodeTest) -> Vec<NodeRef> {
    axis_nodes(store, n, axis)
        .into_iter()
        .filter(|&c| node_test_matches(store, c, axis, test))
        .collect()
}
