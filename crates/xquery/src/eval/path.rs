//! Path expression evaluation: axes, node tests, predicates, document-order
//! normalisation. This is the workhorse of browser scripting — "programming
//! the browser involves mostly XML (i.e., DOM) navigation" (paper abstract).

use xqib_dom::{NodeKind, NodeRef, Store};
use xqib_xdm::{
    effective_boolean_value, Atomic, Item, Sequence, XdmError, XdmResult,
};

use crate::ast::{Axis, AxisStep, KindTest, NodeTest, PathStart, StepExpr};
use crate::context::DynamicContext;

use super::eval_expr;

pub(crate) fn eval_path(
    ctx: &mut DynamicContext,
    start: PathStart,
    steps: &[StepExpr],
) -> XdmResult<Sequence> {
    // initial context sequence
    let mut steps = steps;
    let mut current: Sequence = match start {
        PathStart::Relative => match &ctx.focus {
            Some(f) => vec![f.item.clone()],
            None => {
                // A relative path whose first step is a primary expression
                // (e.g. `doc("x")//y`, `$v/y`) needs no context item: the
                // first step supplies the context for the rest.
                let (first, rest) = steps.split_first().ok_or_else(|| {
                    XdmError::undefined("relative path with no context item")
                })?;
                match first {
                    StepExpr::Filter { primary, predicates } => {
                        let r = eval_expr(ctx, primary)?;
                        let filtered = apply_predicates(ctx, r, predicates)?;
                        steps = rest;
                        filtered
                    }
                    StepExpr::Axis(_) => {
                        return Err(XdmError::undefined(
                            "relative path with no context item",
                        ))
                    }
                }
            }
        },
        PathStart::Root | PathStart::RootDescendant => {
            let item = ctx.context_item()?;
            let Item::Node(n) = item else {
                return Err(XdmError::new(
                    "XPTY0020",
                    "`/` requires the context item to be a node",
                ));
            };
            let store = ctx.store.borrow();
            let root = store.doc(n.doc).tree_root(n.node);
            vec![Item::Node(NodeRef::new(n.doc, root))]
        }
    };
    if start == PathStart::RootDescendant {
        current = apply_axis_step(
            ctx,
            &current,
            &AxisStep {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::Kind(KindTest::AnyKind),
                predicates: vec![],
            },
        )?;
    }
    for step in steps {
        current = apply_step(ctx, &current, step)?;
    }
    Ok(current)
}

fn apply_step(
    ctx: &mut DynamicContext,
    input: &Sequence,
    step: &StepExpr,
) -> XdmResult<Sequence> {
    match step {
        StepExpr::Axis(ax) => apply_axis_step(ctx, input, ax),
        StepExpr::Filter { primary, predicates } => {
            let mut combined: Sequence = Vec::new();
            let mut any_node = false;
            let mut any_atomic = false;
            let size = input.len();
            for (i, item) in input.iter().enumerate() {
                let result = ctx.with_focus(item.clone(), i + 1, size, |ctx| {
                    eval_expr(ctx, primary)
                })?;
                let filtered = apply_predicates(ctx, result, predicates)?;
                for r in &filtered {
                    match r {
                        Item::Node(_) => any_node = true,
                        Item::Atomic(_) => any_atomic = true,
                    }
                }
                combined.extend(filtered);
            }
            if any_node && any_atomic {
                return Err(XdmError::new(
                    "XPTY0018",
                    "path step mixes nodes and atomic values",
                ));
            }
            if any_node {
                let mut refs: Vec<NodeRef> = combined
                    .iter()
                    .map(|i| i.as_node().expect("all nodes"))
                    .collect();
                let store = ctx.store.borrow();
                xqib_dom::order::sort_dedup(&store, &mut refs);
                Ok(refs.into_iter().map(Item::Node).collect())
            } else {
                Ok(combined)
            }
        }
    }
}

fn apply_axis_step(
    ctx: &mut DynamicContext,
    input: &Sequence,
    step: &AxisStep,
) -> XdmResult<Sequence> {
    let mut out_refs: Vec<NodeRef> = Vec::new();
    for item in input {
        let Item::Node(n) = item else {
            return Err(XdmError::new(
                "XPTY0019",
                "axis step applied to an atomic value",
            ));
        };
        // candidates in axis order
        let candidates: Vec<NodeRef> = {
            let store = ctx.store.borrow();
            axis_nodes(&store, *n, step.axis)
                .into_iter()
                .filter(|&c| node_test_matches(&store, c, step.axis, &step.test))
                .collect()
        };
        let filtered = apply_predicates_to_nodes(ctx, candidates, &step.predicates)?;
        out_refs.extend(filtered);
    }
    let store = ctx.store.borrow();
    xqib_dom::order::sort_dedup(&store, &mut out_refs);
    Ok(out_refs.into_iter().map(Item::Node).collect())
}

/// Applies predicates to a node list (in axis order: positions count along
/// the axis direction).
fn apply_predicates_to_nodes(
    ctx: &mut DynamicContext,
    nodes: Vec<NodeRef>,
    predicates: &[crate::ast::Expr],
) -> XdmResult<Vec<NodeRef>> {
    let mut current = nodes;
    for pred in predicates {
        let size = current.len();
        let mut next = Vec::with_capacity(current.len());
        for (i, n) in current.iter().enumerate() {
            let keep = ctx.with_focus(Item::Node(*n), i + 1, size, |ctx| {
                predicate_truth(ctx, pred, i + 1)
            })?;
            if keep {
                next.push(*n);
            }
        }
        current = next;
    }
    Ok(current)
}

/// Applies predicates to a general sequence.
pub(crate) fn apply_predicates(
    ctx: &mut DynamicContext,
    seq: Sequence,
    predicates: &[crate::ast::Expr],
) -> XdmResult<Sequence> {
    let mut current = seq;
    for pred in predicates {
        let size = current.len();
        let mut next = Vec::with_capacity(current.len());
        for (i, item) in current.iter().enumerate() {
            let keep = ctx.with_focus(item.clone(), i + 1, size, |ctx| {
                predicate_truth(ctx, pred, i + 1)
            })?;
            if keep {
                next.push(item.clone());
            }
        }
        current = next;
    }
    Ok(current)
}

/// Predicate semantics: a numeric singleton is a position test, everything
/// else takes the effective boolean value.
fn predicate_truth(
    ctx: &mut DynamicContext,
    pred: &crate::ast::Expr,
    position: usize,
) -> XdmResult<bool> {
    let v = eval_expr(ctx, pred)?;
    if v.len() == 1 {
        if let Item::Atomic(a) = &v[0] {
            if a.is_numeric() && !matches!(a, Atomic::Untyped(_)) {
                let d = a.as_double()?;
                return Ok(d == position as f64);
            }
        }
    }
    effective_boolean_value(&v)
}

/// Produces the nodes on `axis` from `n`, in axis order (reverse axes yield
/// reverse document order, matching positional-predicate semantics).
pub fn axis_nodes(store: &Store, n: NodeRef, axis: Axis) -> Vec<NodeRef> {
    let doc = store.doc(n.doc);
    let mk = |id| NodeRef::new(n.doc, id);
    match axis {
        Axis::Child => doc.children(n.node).iter().map(|&c| mk(c)).collect(),
        Axis::Attribute => doc.attributes(n.node).iter().map(|&a| mk(a)).collect(),
        Axis::SelfAxis => vec![n],
        Axis::Parent => doc.parent(n.node).map(mk).into_iter().collect(),
        Axis::Descendant => {
            let mut v = doc.descendants_or_self(n.node);
            v.remove(0);
            v.into_iter().map(mk).collect()
        }
        Axis::DescendantOrSelf => {
            doc.descendants_or_self(n.node).into_iter().map(mk).collect()
        }
        Axis::Ancestor => {
            let mut out = Vec::new();
            let mut cur = doc.parent(n.node);
            while let Some(p) = cur {
                out.push(mk(p));
                cur = doc.parent(p);
            }
            out
        }
        Axis::AncestorOrSelf => {
            let mut out = vec![n];
            let mut cur = doc.parent(n.node);
            while let Some(p) = cur {
                out.push(mk(p));
                cur = doc.parent(p);
            }
            out
        }
        Axis::FollowingSibling => {
            let Some(parent) = doc.parent(n.node) else { return vec![] };
            if doc.kind(n.node).is_attribute() {
                return vec![];
            }
            let sibs = doc.children(parent);
            match sibs.iter().position(|&s| s == n.node) {
                Some(i) => sibs[i + 1..].iter().map(|&s| mk(s)).collect(),
                None => vec![],
            }
        }
        Axis::PrecedingSibling => {
            let Some(parent) = doc.parent(n.node) else { return vec![] };
            if doc.kind(n.node).is_attribute() {
                return vec![];
            }
            let sibs = doc.children(parent);
            match sibs.iter().position(|&s| s == n.node) {
                Some(i) => sibs[..i].iter().rev().map(|&s| mk(s)).collect(),
                None => vec![],
            }
        }
        Axis::Following => {
            // all nodes after n in document order, excluding descendants
            let mut out = Vec::new();
            let mut cur = n.node;
            while let Some(parent) = doc.parent(cur) {
                let sibs = doc.children(parent);
                if let Some(i) = sibs.iter().position(|&s| s == cur) {
                    for &s in &sibs[i + 1..] {
                        for d in doc.descendants_or_self(s) {
                            out.push(mk(d));
                        }
                    }
                }
                cur = parent;
            }
            out
        }
        Axis::Preceding => {
            // all nodes before n in document order, excluding ancestors
            let mut out = Vec::new();
            let mut cur = n.node;
            while let Some(parent) = doc.parent(cur) {
                let sibs = doc.children(parent);
                if let Some(i) = sibs.iter().position(|&s| s == cur) {
                    for &s in sibs[..i].iter().rev() {
                        let mut desc = doc.descendants_or_self(s);
                        desc.reverse();
                        for d in desc {
                            out.push(mk(d));
                        }
                    }
                }
                cur = parent;
            }
            out
        }
    }
}

/// Does `node` satisfy the node test on the given axis? The principal node
/// kind is attribute for the attribute axis, element otherwise.
pub fn node_test_matches(
    store: &Store,
    node: NodeRef,
    axis: Axis,
    test: &NodeTest,
) -> bool {
    let doc = store.doc(node.doc);
    let kind = doc.kind(node.node);
    let principal_is_attr = axis == Axis::Attribute;
    match test {
        NodeTest::AnyName => {
            if principal_is_attr {
                kind.is_attribute()
            } else {
                kind.is_element()
            }
        }
        NodeTest::Name(q) => match kind {
            NodeKind::Element { name, .. } if !principal_is_attr => name == q,
            NodeKind::Attribute { name, .. } if principal_is_attr => name == q,
            _ => false,
        },
        NodeTest::NsWildcard(uri) => match kind {
            NodeKind::Element { name, .. } if !principal_is_attr => {
                name.ns.as_deref() == Some(uri.as_str())
            }
            NodeKind::Attribute { name, .. } if principal_is_attr => {
                name.ns.as_deref() == Some(uri.as_str())
            }
            _ => false,
        },
        NodeTest::LocalWildcard(local) => match kind {
            NodeKind::Element { name, .. } if !principal_is_attr => {
                &*name.local == local
            }
            NodeKind::Attribute { name, .. } if principal_is_attr => {
                &*name.local == local
            }
            _ => false,
        },
        NodeTest::Kind(kt) => kind_test_matches(kind, kt),
    }
}

fn kind_test_matches(kind: &NodeKind, kt: &KindTest) -> bool {
    match kt {
        KindTest::AnyKind => true,
        KindTest::Text => kind.is_text(),
        KindTest::Comment => matches!(kind, NodeKind::Comment { .. }),
        KindTest::Pi(target) => match kind {
            NodeKind::ProcessingInstruction { target: actual, .. } => match target {
                Some(t) => actual == t,
                None => true,
            },
            _ => false,
        },
        KindTest::Element(name) => match kind {
            NodeKind::Element { name: actual, .. } => match name {
                Some(q) => actual == q,
                None => true,
            },
            _ => false,
        },
        KindTest::Attribute(name) => match kind {
            NodeKind::Attribute { name: actual, .. } => match name {
                Some(q) => actual == q,
                None => true,
            },
            _ => false,
        },
        KindTest::Document => kind.is_document(),
    }
}

/// Convenience used by hosts (minijs `document.evaluate`, window views):
/// evaluates an axis+test from a context node without predicates.
pub fn simple_axis(
    store: &Store,
    n: NodeRef,
    axis: Axis,
    test: &NodeTest,
) -> Vec<NodeRef> {
    axis_nodes(store, n, axis)
        .into_iter()
        .filter(|&c| node_test_matches(store, c, axis, test))
        .collect()
}
