//! The tree-walking evaluator.

pub mod arith;
pub mod constructor;
pub mod flwor;
pub mod fulltext;
pub mod path;
pub mod update;

use xqib_dom::{name::XS_NS, NodeRef, QName};
use xqib_xdm::{
    atomize, effective_boolean_value, general_compare, value_compare, Atomic, Item, Sequence,
    XdmError, XdmResult,
};

use crate::ast::*;
use crate::context::DynamicContext;
use crate::functions;

/// Internal control-flow code for `exit with` (never surfaces to callers).
pub(crate) const EXIT_CODE: &str = "XQIB-EXIT";
/// Maximum user-function recursion depth (secondary guard).
const MAX_CALL_DEPTH: usize = 4096;
/// Maximum engine stack consumption in bytes (primary guard — interpreter
/// frames are large in debug builds, so count bytes, not calls).
const MAX_STACK_BYTES: usize = 1_000_000;

/// Evaluates an expression to a sequence.
pub fn eval_expr(ctx: &mut DynamicContext, e: &Expr) -> XdmResult<Sequence> {
    // one fuel unit per expression step — the preemption granularity
    ctx.charge_fuel(1)?;
    match e {
        Expr::Literal(a) => Ok(vec![Item::Atomic(a.clone())]),
        Expr::VarRef(name) => ctx
            .lookup_var(name)
            .cloned()
            .ok_or_else(|| XdmError::undefined(format!("undefined variable ${name}"))),
        Expr::ContextItem => ctx.context_item().map(|i| vec![i]),
        Expr::Sequence(items) => {
            let mut out = Vec::new();
            for item in items {
                out.extend(eval_expr(ctx, item)?);
            }
            Ok(out)
        }
        Expr::Range(lo, hi) => arith::eval_range(ctx, lo, hi),
        Expr::Arith(op, l, r) => arith::eval_arith(ctx, *op, l, r),
        Expr::Neg(inner) => arith::eval_neg(ctx, inner),
        Expr::ValueComp(op, l, r) => eval_value_comp(ctx, *op, l, r),
        Expr::GeneralComp(op, l, r) => eval_general_comp(ctx, *op, l, r),
        Expr::NodeComp(op, l, r) => eval_node_comp(ctx, *op, l, r),
        Expr::And(l, r) => {
            let lv = effective_boolean_value(&eval_expr(ctx, l)?)?;
            if !lv {
                return Ok(vec![Item::boolean(false)]);
            }
            let rv = effective_boolean_value(&eval_expr(ctx, r)?)?;
            Ok(vec![Item::boolean(rv)])
        }
        Expr::Or(l, r) => {
            let lv = effective_boolean_value(&eval_expr(ctx, l)?)?;
            if lv {
                return Ok(vec![Item::boolean(true)]);
            }
            let rv = effective_boolean_value(&eval_expr(ctx, r)?)?;
            Ok(vec![Item::boolean(rv)])
        }
        Expr::If { cond, then, els } => {
            let c = effective_boolean_value(&eval_expr(ctx, cond)?)?;
            if c {
                eval_expr(ctx, then)
            } else {
                eval_expr(ctx, els)
            }
        }
        Expr::Flwor { clauses, ret } => flwor::eval_flwor(ctx, clauses, ret),
        Expr::Quantified {
            kind,
            bindings,
            satisfies,
        } => flwor::eval_quantified(ctx, *kind, bindings, satisfies),
        Expr::TypeSwitch {
            operand,
            cases,
            default_var,
            default,
        } => eval_typeswitch(ctx, operand, cases, default_var.as_ref(), default),
        Expr::Path { start, steps } => path::eval_path(ctx, *start, steps),
        Expr::Union(l, r) => eval_set_op(ctx, SetOp::Union, l, r),
        Expr::Intersect(l, r) => eval_set_op(ctx, SetOp::Intersect, l, r),
        Expr::Except(l, r) => eval_set_op(ctx, SetOp::Except, l, r),
        Expr::InstanceOf(inner, st) => eval_instance_of(ctx, inner, st),
        Expr::TreatAs(inner, st) => eval_treat_as(ctx, inner, st),
        Expr::CastableAs(inner, ty, optional) => eval_castable(ctx, inner, *ty, *optional),
        Expr::CastAs(inner, ty, optional) => eval_cast(ctx, inner, *ty, *optional),
        Expr::FunctionCall { name, args } => eval_call(ctx, name, args),
        Expr::DirectElement { .. }
        | Expr::ComputedElement { .. }
        | Expr::ComputedAttribute { .. }
        | Expr::ComputedText(_)
        | Expr::ComputedComment(_)
        | Expr::ComputedPi { .. }
        | Expr::ComputedDocument(_) => constructor::eval_constructor(ctx, e),
        Expr::Insert { .. }
        | Expr::Delete(_)
        | Expr::ReplaceNode { .. }
        | Expr::ReplaceValue { .. }
        | Expr::Rename { .. }
        | Expr::Transform { .. } => update::eval_update(ctx, e),
        Expr::Block(stmts) => eval_block(ctx, stmts),
        Expr::FtContains { source, selection } => fulltext::eval_ftcontains(ctx, source, selection),
        Expr::EventAttach {
            event,
            mode,
            target,
            listener,
        } => eval_event_attach(ctx, event, *mode, target, listener),
        Expr::EventDetach {
            event,
            target,
            listener,
        } => eval_event_detach(ctx, event, target, listener),
        Expr::EventTrigger { event, target } => eval_event_trigger(ctx, event, target),
        Expr::SetStyle {
            prop,
            target,
            value,
        } => eval_set_style(ctx, prop, target, value),
        Expr::GetStyle { prop, target } => eval_get_style(ctx, prop, target),
    }
}

// ----- out-of-line arm implementations (keeps eval_expr's frame small) -------

fn eval_value_comp(
    ctx: &mut DynamicContext,
    op: xqib_xdm::CompOp,
    l: &Expr,
    r: &Expr,
) -> XdmResult<Sequence> {
    let ls = eval_expr(ctx, l)?;
    let rs = eval_expr(ctx, r)?;
    value_comp_seqs(ctx, op, &ls, &rs)
}

/// Value comparison over already-evaluated operand sequences (shared with
/// the compiled evaluator so both tiers agree exactly).
pub(crate) fn value_comp_seqs(
    ctx: &DynamicContext,
    op: xqib_xdm::CompOp,
    ls: &Sequence,
    rs: &Sequence,
) -> XdmResult<Sequence> {
    if ls.is_empty() || rs.is_empty() {
        return Ok(vec![]);
    }
    if ls.len() > 1 || rs.len() > 1 {
        return Err(XdmError::type_error(
            "value comparison requires singleton operands",
        ));
    }
    let (a, b) = {
        let store = ctx.store.borrow();
        (atomize(&store, &ls[0]), atomize(&store, &rs[0]))
    };
    // untyped operands are compared as strings in value comparisons
    let a = promote_untyped_to_string(a);
    let b = promote_untyped_to_string(b);
    value_compare(op, &a, &b).map(|v| vec![Item::boolean(v)])
}

fn eval_general_comp(
    ctx: &mut DynamicContext,
    op: xqib_xdm::CompOp,
    l: &Expr,
    r: &Expr,
) -> XdmResult<Sequence> {
    let ls = eval_expr(ctx, l)?;
    let rs = eval_expr(ctx, r)?;
    general_comp_seqs(ctx, op, &ls, &rs)
}

/// General comparison over already-evaluated operand sequences (shared with
/// the compiled evaluator so both tiers agree exactly).
pub(crate) fn general_comp_seqs(
    ctx: &DynamicContext,
    op: xqib_xdm::CompOp,
    ls: &Sequence,
    rs: &Sequence,
) -> XdmResult<Sequence> {
    let (la, ra) = {
        let store = ctx.store.borrow();
        (
            ls.iter().map(|i| atomize(&store, i)).collect::<Vec<_>>(),
            rs.iter().map(|i| atomize(&store, i)).collect::<Vec<_>>(),
        )
    };
    general_compare(op, &la, &ra).map(|v| vec![Item::boolean(v)])
}

fn eval_node_comp(
    ctx: &mut DynamicContext,
    op: NodeCompOp,
    l: &Expr,
    r: &Expr,
) -> XdmResult<Sequence> {
    let ls = eval_expr(ctx, l)?;
    let rs = eval_expr(ctx, r)?;
    if ls.is_empty() || rs.is_empty() {
        return Ok(vec![]);
    }
    let a = single_node(&ls)?;
    let b = single_node(&rs)?;
    let store = ctx.store.borrow();
    let result = match op {
        NodeCompOp::Is => a == b,
        NodeCompOp::Precedes => {
            xqib_dom::order::cmp_doc_order(&store, a, b) == std::cmp::Ordering::Less
        }
        NodeCompOp::Follows => {
            xqib_dom::order::cmp_doc_order(&store, a, b) == std::cmp::Ordering::Greater
        }
    };
    Ok(vec![Item::boolean(result)])
}

fn eval_typeswitch(
    ctx: &mut DynamicContext,
    operand: &Expr,
    cases: &[(xqib_xdm::SequenceType, Option<QName>, Expr)],
    default_var: Option<&QName>,
    default: &Expr,
) -> XdmResult<Sequence> {
    let value = eval_expr(ctx, operand)?;
    for (st, var, body) in cases {
        let matches = ctx.with_store(|s| st.matches(s, &value));
        if matches {
            ctx.push_scope();
            if let Some(v) = var {
                ctx.bind_var(v.clone(), value.clone());
            }
            let r = eval_expr(ctx, body);
            ctx.pop_scope();
            return r;
        }
    }
    ctx.push_scope();
    if let Some(v) = default_var {
        ctx.bind_var(v.clone(), value.clone());
    }
    let r = eval_expr(ctx, default);
    ctx.pop_scope();
    r
}

#[derive(Clone, Copy)]
enum SetOp {
    Union,
    Intersect,
    Except,
}

fn eval_set_op(ctx: &mut DynamicContext, op: SetOp, l: &Expr, r: &Expr) -> XdmResult<Sequence> {
    let a = node_sequence(ctx, l)?;
    let b = node_sequence(ctx, r)?;
    let mut refs: Vec<NodeRef> = match op {
        SetOp::Union => {
            let mut v = a;
            v.extend(b);
            v
        }
        SetOp::Intersect => a.into_iter().filter(|n| b.contains(n)).collect(),
        SetOp::Except => a.into_iter().filter(|n| !b.contains(n)).collect(),
    };
    let store = ctx.store.borrow();
    xqib_dom::order::sort_dedup(&store, &mut refs);
    Ok(refs.into_iter().map(Item::Node).collect())
}

fn eval_instance_of(
    ctx: &mut DynamicContext,
    inner: &Expr,
    st: &xqib_xdm::SequenceType,
) -> XdmResult<Sequence> {
    let v = eval_expr(ctx, inner)?;
    let m = ctx.with_store(|s| st.matches(s, &v));
    Ok(vec![Item::boolean(m)])
}

fn eval_treat_as(
    ctx: &mut DynamicContext,
    inner: &Expr,
    st: &xqib_xdm::SequenceType,
) -> XdmResult<Sequence> {
    let v = eval_expr(ctx, inner)?;
    let m = ctx.with_store(|s| st.matches(s, &v));
    if m {
        Ok(v)
    } else {
        Err(XdmError::new(
            "XPDY0050",
            format!("treat as {st}: value does not match"),
        ))
    }
}

fn eval_castable(
    ctx: &mut DynamicContext,
    inner: &Expr,
    ty: xqib_xdm::TypeName,
    optional: bool,
) -> XdmResult<Sequence> {
    let v = eval_expr(ctx, inner)?;
    let ok = match v.len() {
        0 => optional,
        1 => {
            let a = atomize(&ctx.store.borrow(), &v[0]);
            a.cast_to(ty).is_ok()
        }
        _ => false,
    };
    Ok(vec![Item::boolean(ok)])
}

fn eval_cast(
    ctx: &mut DynamicContext,
    inner: &Expr,
    ty: xqib_xdm::TypeName,
    optional: bool,
) -> XdmResult<Sequence> {
    let v = eval_expr(ctx, inner)?;
    match v.len() {
        0 => {
            if optional {
                Ok(vec![])
            } else {
                Err(XdmError::type_error("cast of empty sequence"))
            }
        }
        1 => {
            let a = atomize(&ctx.store.borrow(), &v[0]);
            a.cast_to(ty).map(|r| vec![Item::Atomic(r)])
        }
        _ => Err(XdmError::type_error("cast of multi-item sequence")),
    }
}

fn eval_call(ctx: &mut DynamicContext, name: &QName, args: &[Expr]) -> XdmResult<Sequence> {
    let mut argv = Vec::with_capacity(args.len());
    for a in args {
        argv.push(eval_expr(ctx, a)?);
    }
    call_function(ctx, name, argv)
}

fn eval_event_attach(
    ctx: &mut DynamicContext,
    event: &Expr,
    mode: EventBindMode,
    target: &Expr,
    listener: &QName,
) -> XdmResult<Sequence> {
    let ev = eval_string(ctx, event)?;
    match mode {
        EventBindMode::At => {
            let targets = eval_expr(ctx, target)?;
            let hooks = require_hooks(ctx)?;
            hooks.attach_listener(ctx, &ev, &targets, listener)?;
        }
        EventBindMode::Behind => {
            let hooks = require_hooks(ctx)?;
            hooks.attach_behind(ctx, &ev, target, listener)?;
        }
    }
    Ok(vec![])
}

fn eval_event_detach(
    ctx: &mut DynamicContext,
    event: &Expr,
    target: &Expr,
    listener: &QName,
) -> XdmResult<Sequence> {
    let ev = eval_string(ctx, event)?;
    let targets = eval_expr(ctx, target)?;
    let hooks = require_hooks(ctx)?;
    hooks.detach_listener(ctx, &ev, &targets, listener)?;
    Ok(vec![])
}

fn eval_event_trigger(
    ctx: &mut DynamicContext,
    event: &Expr,
    target: &Expr,
) -> XdmResult<Sequence> {
    let ev = eval_string(ctx, event)?;
    let targets = eval_expr(ctx, target)?;
    let hooks = require_hooks(ctx)?;
    hooks.trigger_event(ctx, &ev, &targets)?;
    Ok(vec![])
}

fn eval_set_style(
    ctx: &mut DynamicContext,
    prop: &Expr,
    target: &Expr,
    value: &Expr,
) -> XdmResult<Sequence> {
    let p = eval_string(ctx, prop)?;
    let v = eval_string(ctx, value)?;
    let targets = eval_expr(ctx, target)?;
    for t in &targets {
        let Item::Node(n) = t else {
            return Err(XdmError::type_error("set style target must be a node"));
        };
        let handled = match ctx.hooks.clone() {
            Some(h) => h.set_style(ctx, *n, &p, &v)?,
            None => false,
        };
        if !handled {
            set_style_attribute(ctx, *n, &p, &v)?;
        }
    }
    Ok(vec![])
}

fn eval_get_style(ctx: &mut DynamicContext, prop: &Expr, target: &Expr) -> XdmResult<Sequence> {
    let p = eval_string(ctx, prop)?;
    let targets = eval_expr(ctx, target)?;
    let Some(Item::Node(n)) = targets.first() else {
        return Ok(vec![]);
    };
    let answered = match ctx.hooks.clone() {
        Some(h) => h.get_style(ctx, *n, &p)?,
        None => None,
    };
    let value = match answered {
        Some(v) => v,
        None => get_style_attribute(ctx, *n, &p),
    };
    Ok(match value {
        Some(v) => vec![Item::string(v)],
        None => vec![],
    })
}

fn promote_untyped_to_string(a: Atomic) -> Atomic {
    match a {
        Atomic::Untyped(s) => Atomic::String(s),
        other => other,
    }
}

fn require_hooks(ctx: &DynamicContext) -> XdmResult<std::rc::Rc<dyn crate::context::EngineHooks>> {
    ctx.hooks.clone().ok_or_else(|| {
        XdmError::new(
            "XQIB0002",
            "event expressions require a browser host (no hooks installed)",
        )
    })
}

/// Evaluates an expression and returns the string value of its first item.
pub fn eval_string(ctx: &mut DynamicContext, e: &Expr) -> XdmResult<String> {
    let v = eval_expr(ctx, e)?;
    Ok(functions::string_arg(ctx, &v))
}

/// Evaluates an expression expected to produce zero or more nodes.
pub(crate) fn node_sequence(ctx: &mut DynamicContext, e: &Expr) -> XdmResult<Vec<NodeRef>> {
    let v = eval_expr(ctx, e)?;
    v.into_iter()
        .map(|i| match i {
            Item::Node(n) => Ok(n),
            Item::Atomic(_) => Err(XdmError::type_error(
                "expected nodes, found an atomic value",
            )),
        })
        .collect()
}

fn single_node(seq: &Sequence) -> XdmResult<NodeRef> {
    match &seq[..] {
        [Item::Node(n)] => Ok(*n),
        _ => Err(XdmError::type_error("expected a single node")),
    }
}

// ----- scripting blocks ---------------------------------------------------

/// Evaluates a block: statements run sequentially, pending updates are
/// applied *between* statements (§3.3 — "the effects of the execution of one
/// expression become visible for the execution of other, sub-sequent
/// expressions"). The value of the block is the value of its last statement.
pub fn eval_block(ctx: &mut DynamicContext, stmts: &[Statement]) -> XdmResult<Sequence> {
    ctx.push_scope();
    let r = eval_statements(ctx, stmts);
    ctx.pop_scope();
    r
}

pub(crate) fn eval_statements(
    ctx: &mut DynamicContext,
    stmts: &[Statement],
) -> XdmResult<Sequence> {
    let mut last: Sequence = vec![];
    for (i, stmt) in stmts.iter().enumerate() {
        let is_last = i + 1 == stmts.len();
        last = eval_statement(ctx, stmt)?;
        // apply pending updates so the next statement sees them; the final
        // statement's updates are left to the caller (top-level applies them
        // after the whole program, matching snapshot semantics for plain
        // queries while scripting blocks re-apply eagerly).
        if !is_last {
            apply_pending(ctx)?;
        }
    }
    Ok(last)
}

fn eval_statement(ctx: &mut DynamicContext, stmt: &Statement) -> XdmResult<Sequence> {
    match stmt {
        Statement::VarDecl { name, ty: _, init } => {
            let v = match init {
                Some(e) => eval_expr(ctx, e)?,
                None => vec![],
            };
            ctx.bind_var(name.clone(), v);
            Ok(vec![])
        }
        Statement::Assign { name, value } => {
            let v = eval_expr(ctx, value)?;
            ctx.assign_var(name, v)?;
            Ok(vec![])
        }
        Statement::While { cond, body } => {
            let mut guard = 0u64;
            loop {
                let c = effective_boolean_value(&eval_expr(ctx, cond)?)?;
                if !c {
                    break;
                }
                ctx.push_scope();
                let r = eval_statements(ctx, body);
                ctx.pop_scope();
                r?;
                apply_pending(ctx)?;
                guard += 1;
                if guard > ctx.loop_guard {
                    return Err(XdmError::new(
                        "XQSE0001",
                        "while loop exceeded the iteration guard",
                    ));
                }
            }
            Ok(vec![])
        }
        Statement::ExitWith(e) => {
            let v = eval_expr(ctx, e)?;
            ctx.exit_value = Some(v);
            Err(XdmError::new(EXIT_CODE, "exit"))
        }
        Statement::Expr(e) => eval_expr(ctx, e),
    }
}

/// Applies the accumulated pending update list to the store. When a redo
/// journal is installed (durable server tier), the list is wire-encoded
/// against the pre-apply store first and pushed to the journal only if the
/// apply succeeds — a rolled-back apply must not leave a redo record.
pub fn apply_pending(ctx: &mut DynamicContext) -> XdmResult<()> {
    if ctx.pul.is_empty() {
        return Ok(());
    }
    // Point of no return for deadline-budgeted requests: once the first
    // non-empty pending update list starts committing, the deadline may no
    // longer preempt — shedding mid-transaction would trade a late response
    // for a torn one. The invariant the server tier relies on: a request
    // killed by `XQIB0014` has applied (and journaled) nothing.
    if ctx.fuel_commit_exempt {
        ctx.fuel = None;
    }
    let pul = ctx.pul.take();
    let journal = ctx.pul_journal.clone();
    let mut store = ctx.store.borrow_mut();
    let encoded = match &journal {
        Some(_) => Some(crate::wire::encode_pul(&store, &pul)?),
        None => None,
    };
    pul.apply(&mut store)?;
    if let (Some(journal), Some(bytes)) = (journal, encoded) {
        journal.borrow_mut().push(bytes);
    }
    Ok(())
}

// ----- function calls -------------------------------------------------------

/// Calls a function by name with pre-evaluated arguments. Resolution order:
/// `xs:` constructor → user-declared → native (browser library) → built-in.
pub fn call_function(
    ctx: &mut DynamicContext,
    name: &QName,
    args: Vec<Sequence>,
) -> XdmResult<Sequence> {
    if name.ns.as_deref() == Some(XS_NS) {
        if args.len() == 1 {
            if let Some(r) = functions::xs_constructor(ctx, &name.local, &args) {
                return r;
            }
        }
        return Err(XdmError::unknown_function(&name.lexical(), args.len()));
    }
    if let Some(decl) = ctx.sctx.lookup_function(name, args.len()) {
        return call_user_function(ctx, &decl, args);
    }
    if let Some(native) = ctx.lookup_native(name, args.len()) {
        return native(ctx, args);
    }
    if let Some(r) = functions::call_builtin(ctx, name, args.clone()) {
        return r;
    }
    Err(XdmError::unknown_function(&name.lexical(), args.len()))
}

/// Invokes a user-declared function: fresh frame, parameter binding with
/// sequence-type checks, `exit with` handling for sequential functions.
pub fn call_user_function(
    ctx: &mut DynamicContext,
    decl: &FunctionDecl,
    args: Vec<Sequence>,
) -> XdmResult<Sequence> {
    let used = ctx
        .stack_base
        .saturating_sub(crate::context::approx_stack_ptr());
    if ctx.call_depth >= MAX_CALL_DEPTH || used > MAX_STACK_BYTES {
        return Err(XdmError::new(
            "XQDY0130",
            format!("recursion too deep calling {}", decl.name),
        ));
    }
    ctx.call_depth += 1;
    ctx.push_function_frame();
    let result = (|| {
        for ((pname, pty), value) in decl.params.iter().zip(args) {
            if let Some(ty) = pty {
                let ok = ctx.with_store(|s| ty.matches(s, &value));
                if !ok {
                    return Err(XdmError::type_error(format!(
                        "argument ${pname} of {} does not match {ty}",
                        decl.name
                    )));
                }
            }
            ctx.bind_var(pname.clone(), value);
        }
        eval_expr(ctx, &decl.body)
    })();
    ctx.pop_function_frame();
    ctx.call_depth -= 1;
    match result {
        Err(e) if e.code == EXIT_CODE => Ok(ctx.exit_value.take().unwrap_or_default()),
        other => other,
    }
}

// ----- style attribute fallback (§4.5) ---------------------------------------

/// Parses a `style` attribute value into (property, value) pairs.
pub fn parse_style_attr(style: &str) -> Vec<(String, String)> {
    style
        .split(';')
        .filter_map(|decl| {
            let (p, v) = decl.split_once(':')?;
            let p = p.trim();
            let v = v.trim();
            if p.is_empty() {
                None
            } else {
                Some((p.to_string(), v.to_string()))
            }
        })
        .collect()
}

/// Renders (property, value) pairs back into a `style` attribute value.
pub fn render_style_attr(props: &[(String, String)]) -> String {
    props
        .iter()
        .map(|(p, v)| format!("{p}: {v}"))
        .collect::<Vec<_>>()
        .join("; ")
}

fn set_style_attribute(
    ctx: &mut DynamicContext,
    target: NodeRef,
    prop: &str,
    value: &str,
) -> XdmResult<()> {
    let mut store = ctx.store.borrow_mut();
    let doc = store.doc_mut(target.doc);
    if !doc.kind(target.node).is_element() {
        return Err(XdmError::type_error("set style target must be an element"));
    }
    let existing = doc
        .get_attribute(target.node, None, "style")
        .unwrap_or("")
        .to_string();
    let mut props = parse_style_attr(&existing);
    match props.iter_mut().find(|(p, _)| p == prop) {
        Some(slot) => slot.1 = value.to_string(),
        None => props.push((prop.to_string(), value.to_string())),
    }
    doc.set_attribute(
        target.node,
        QName::local("style"),
        render_style_attr(&props),
    )
    .map_err(|e| XdmError::new("XQIB0003", e.to_string()))?;
    Ok(())
}

fn get_style_attribute(ctx: &DynamicContext, target: NodeRef, prop: &str) -> Option<String> {
    let store = ctx.store.borrow();
    let style = store
        .doc(target.doc)
        .get_attribute(target.node, None, "style")?;
    parse_style_attr(style)
        .into_iter()
        .find(|(p, _)| p == prop)
        .map(|(_, v)| v)
}
