//! FLWOR and quantified expressions.

use xqib_dom::QName;
use xqib_xdm::{
    atomize, compare_atomics, effective_boolean_value, Atomic, Item, Sequence, XdmError, XdmResult,
};

use crate::ast::{Expr, FlworClause, OrderSpec, Quantifier};
use crate::context::DynamicContext;

use super::eval_expr;

/// One tuple of the FLWOR tuple stream.
type Tuple = Vec<(QName, Sequence)>;

pub(crate) fn eval_flwor(
    ctx: &mut DynamicContext,
    clauses: &[FlworClause],
    ret: &Expr,
) -> XdmResult<Sequence> {
    let mut tuples: Vec<Tuple> = vec![Vec::new()];
    for clause in clauses {
        tuples = apply_clause(ctx, tuples, clause)?;
    }
    let mut out = Vec::new();
    for tuple in tuples {
        let v = with_tuple(ctx, &tuple, |ctx| eval_expr(ctx, ret))?;
        out.extend(v);
    }
    Ok(out)
}

fn with_tuple<R>(
    ctx: &mut DynamicContext,
    tuple: &Tuple,
    f: impl FnOnce(&mut DynamicContext) -> XdmResult<R>,
) -> XdmResult<R> {
    ctx.push_scope();
    for (name, value) in tuple {
        ctx.bind_var(name.clone(), value.clone());
    }
    let r = f(ctx);
    ctx.pop_scope();
    r
}

fn apply_clause(
    ctx: &mut DynamicContext,
    tuples: Vec<Tuple>,
    clause: &FlworClause,
) -> XdmResult<Vec<Tuple>> {
    match clause {
        FlworClause::For { var, at, ty, seq } => {
            let mut out = Vec::new();
            for tuple in tuples {
                let items = with_tuple(ctx, &tuple, |ctx| eval_expr(ctx, seq))?;
                for (i, item) in items.into_iter().enumerate() {
                    // one fuel unit per tuple the `for` clause materialises:
                    // cartesian blow-ups are preempted even though each
                    // binding evaluates only a handful of expressions
                    ctx.charge_fuel(1)?;
                    if let Some(t) = ty {
                        let single = vec![item.clone()];
                        let ok = ctx.with_store(|s| t.matches(s, &single));
                        if !ok {
                            return Err(XdmError::type_error(format!(
                                "for ${var} as {t}: item does not match"
                            )));
                        }
                    }
                    let mut new_tuple = tuple.clone();
                    new_tuple.push((var.clone(), vec![item]));
                    if let Some(at_var) = at {
                        new_tuple.push((at_var.clone(), vec![Item::integer(i as i64 + 1)]));
                    }
                    out.push(new_tuple);
                }
            }
            Ok(out)
        }
        FlworClause::Let { var, ty: _, expr } => {
            let mut out = Vec::with_capacity(tuples.len());
            for tuple in tuples {
                let v = with_tuple(ctx, &tuple, |ctx| eval_expr(ctx, expr))?;
                let mut new_tuple = tuple;
                new_tuple.push((var.clone(), v));
                out.push(new_tuple);
            }
            Ok(out)
        }
        FlworClause::Where(cond) => {
            let mut out = Vec::with_capacity(tuples.len());
            for tuple in tuples {
                let keep = with_tuple(ctx, &tuple, |ctx| {
                    let v = eval_expr(ctx, cond)?;
                    effective_boolean_value(&v)
                })?;
                if keep {
                    out.push(tuple);
                }
            }
            Ok(out)
        }
        FlworClause::OrderBy { specs, stable: _ } => order_tuples(ctx, tuples, specs),
    }
}

/// Sort key: one optional atomic per order spec per tuple.
fn order_tuples(
    ctx: &mut DynamicContext,
    tuples: Vec<Tuple>,
    specs: &[OrderSpec],
) -> XdmResult<Vec<Tuple>> {
    let mut keyed: Vec<(Vec<Option<Atomic>>, Tuple)> = Vec::with_capacity(tuples.len());
    for tuple in tuples {
        let mut keys = Vec::with_capacity(specs.len());
        for spec in specs {
            let v = with_tuple(ctx, &tuple, |ctx| eval_expr(ctx, &spec.key))?;
            let key = match v.len() {
                0 => None,
                1 => Some(atomize(&ctx.store.borrow(), &v[0])),
                _ => return Err(XdmError::type_error("order by key must be a singleton")),
            };
            keys.push(key);
        }
        keyed.push((keys, tuple));
    }
    let dirs: Vec<(bool, bool)> = specs
        .iter()
        .map(|s| (s.descending, s.empty_least))
        .collect();
    sort_keyed(keyed, &dirs)
}

/// Stable, spec-directed sort of keyed values. `dirs` is one
/// `(descending, empty_least)` pair per order key. Shared between the
/// interpreter and the compiled evaluator so `order by` ties, empty-key
/// placement and the NaN-skip rule agree exactly.
pub(crate) fn sort_keyed<T>(
    mut keyed: Vec<(Vec<Option<Atomic>>, T)>,
    dirs: &[(bool, bool)],
) -> XdmResult<Vec<T>> {
    let mut err: Option<XdmError> = None;
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, &(descending, empty_least)) in dirs.iter().enumerate() {
            let ord = match (&ka[i], &kb[i]) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => {
                    if empty_least {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                }
                (Some(_), None) => {
                    if empty_least {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Less
                    }
                }
                (Some(a), Some(b)) => match compare_atomics(a, b) {
                    Ok(o) => o,
                    Err(e) => {
                        if err.is_none() && e.code != "XQIBNAN" {
                            err = Some(e);
                        }
                        std::cmp::Ordering::Equal
                    }
                },
            };
            let ord = if descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(keyed.into_iter().map(|(_, t)| t).collect())
}

pub(crate) fn eval_quantified(
    ctx: &mut DynamicContext,
    kind: Quantifier,
    bindings: &[(QName, Expr)],
    satisfies: &Expr,
) -> XdmResult<Sequence> {
    let result = quantify(ctx, kind, bindings, satisfies)?;
    Ok(vec![Item::boolean(result)])
}

fn quantify(
    ctx: &mut DynamicContext,
    kind: Quantifier,
    bindings: &[(QName, Expr)],
    satisfies: &Expr,
) -> XdmResult<bool> {
    match bindings.split_first() {
        None => {
            let v = eval_expr(ctx, satisfies)?;
            effective_boolean_value(&v)
        }
        Some(((var, seq), rest)) => {
            let items = eval_expr(ctx, seq)?;
            for item in items {
                ctx.push_scope();
                ctx.bind_var(var.clone(), vec![item]);
                let inner = quantify(ctx, kind, rest, satisfies);
                ctx.pop_scope();
                let inner = inner?;
                match kind {
                    Quantifier::Some if inner => return Ok(true),
                    Quantifier::Every if !inner => return Ok(false),
                    _ => {}
                }
            }
            Ok(matches!(kind, Quantifier::Every))
        }
    }
}
