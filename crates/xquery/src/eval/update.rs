//! Evaluation of XQuery Update Facility expressions into pending-update
//! primitives (§3.2 of the paper), plus `transform … modify … return`.

use xqib_dom::{NodeKind, NodeRef};
use xqib_xdm::{Item, Sequence, XdmError, XdmResult};

use crate::ast::{Expr, InsertPos, NameExpr};
use crate::context::DynamicContext;
use crate::pul::UpdatePrimitive;

use super::constructor::copy_into;
use super::{eval_expr, node_sequence};

pub(crate) fn eval_update(ctx: &mut DynamicContext, e: &Expr) -> XdmResult<Sequence> {
    match e {
        Expr::Insert {
            source,
            pos,
            target,
        } => {
            let src_nodes = node_sequence(ctx, source)?;
            let targets = eval_expr(ctx, target)?;
            let target = exactly_one_node(&targets, "insert target")?;

            // split source into attributes and content nodes
            let (attr_nodes, content_nodes): (Vec<NodeRef>, Vec<NodeRef>) = {
                let store = ctx.store.borrow();
                src_nodes
                    .into_iter()
                    .partition(|n| store.doc(n.doc).kind(n.node).is_attribute())
            };

            match pos {
                InsertPos::Into | InsertPos::AsFirstInto | InsertPos::AsLastInto => {
                    let target_ok = {
                        let store = ctx.store.borrow();
                        matches!(
                            store.doc(target.doc).kind(target.node),
                            NodeKind::Element { .. } | NodeKind::Document { .. }
                        )
                    };
                    if !target_ok {
                        return Err(XdmError::new(
                            "XUTY0005",
                            "insert into target must be an element or document",
                        ));
                    }
                    let attrs = copy_all(ctx, target.doc, &attr_nodes);
                    let children = copy_all(ctx, target.doc, &content_nodes);
                    if !attrs.is_empty() {
                        ctx.pul
                            .push(UpdatePrimitive::InsertAttributes { target, attrs });
                    }
                    if !children.is_empty() {
                        ctx.pul.push(match pos {
                            InsertPos::AsFirstInto => {
                                UpdatePrimitive::InsertFirst { target, children }
                            }
                            _ => UpdatePrimitive::InsertLast { target, children },
                        });
                    }
                }
                InsertPos::Before | InsertPos::After => {
                    let (has_parent, parent) = {
                        let store = ctx.store.borrow();
                        let p = store.parent(target);
                        (p.is_some(), p)
                    };
                    if !has_parent {
                        return Err(XdmError::new(
                            "XUDY0029",
                            "insert before/after target has no parent",
                        ));
                    }
                    let attrs = copy_all(ctx, target.doc, &attr_nodes);
                    let children = copy_all(ctx, target.doc, &content_nodes);
                    if !attrs.is_empty() {
                        // attributes attach to the target's parent element
                        let parent = parent.expect("checked above");
                        ctx.pul.push(UpdatePrimitive::InsertAttributes {
                            target: parent,
                            attrs,
                        });
                    }
                    if !children.is_empty() {
                        ctx.pul.push(match pos {
                            InsertPos::Before => UpdatePrimitive::InsertBefore {
                                anchor: target,
                                children,
                            },
                            _ => UpdatePrimitive::InsertAfter {
                                anchor: target,
                                children,
                            },
                        });
                    }
                }
            }
            Ok(vec![])
        }
        Expr::Delete(target) => {
            let targets = node_sequence(ctx, target)?;
            for t in targets {
                ctx.pul.push(UpdatePrimitive::Delete { target: t });
            }
            Ok(vec![])
        }
        Expr::ReplaceNode { target, with } => {
            let targets = eval_expr(ctx, target)?;
            let target = exactly_one_node(&targets, "replace target")?;
            {
                let store = ctx.store.borrow();
                if store.parent(target).is_none() {
                    return Err(XdmError::new(
                        "XUDY0009",
                        "replace target must have a parent",
                    ));
                }
            }
            let target_is_attr = {
                let store = ctx.store.borrow();
                store.doc(target.doc).kind(target.node).is_attribute()
            };
            let replacements = node_sequence(ctx, with)?;
            {
                let store = ctx.store.borrow();
                for r in &replacements {
                    let r_is_attr = store.doc(r.doc).kind(r.node).is_attribute();
                    if r_is_attr != target_is_attr {
                        return Err(XdmError::new(
                            "XUTY0011",
                            "replacement node kind must match the target kind",
                        ));
                    }
                }
            }
            let copies = copy_all(ctx, target.doc, &replacements);
            ctx.pul.push(UpdatePrimitive::ReplaceNode {
                target,
                replacements: copies,
            });
            Ok(vec![])
        }
        Expr::ReplaceValue { target, with } => {
            let targets = eval_expr(ctx, target)?;
            let target = exactly_one_node(&targets, "replace value target")?;
            let value_seq = eval_expr(ctx, with)?;
            let value = super::constructor::sequence_to_string(ctx, &value_seq);
            ctx.pul
                .push(UpdatePrimitive::ReplaceValue { target, value });
            Ok(vec![])
        }
        Expr::Rename { target, name } => {
            let targets = eval_expr(ctx, target)?;
            let target = exactly_one_node(&targets, "rename target")?;
            {
                let store = ctx.store.borrow();
                let kind = store.doc(target.doc).kind(target.node);
                if !matches!(
                    kind,
                    NodeKind::Element { .. }
                        | NodeKind::Attribute { .. }
                        | NodeKind::ProcessingInstruction { .. }
                ) {
                    return Err(XdmError::new(
                        "XUTY0012",
                        "rename target must be an element, attribute or PI",
                    ));
                }
            }
            let qname = match name {
                NameExpr::Static(q) => q.clone(),
                NameExpr::Dynamic(e) => {
                    let v = eval_expr(ctx, e)?;
                    match v.first() {
                        Some(Item::Atomic(xqib_xdm::Atomic::QName(q))) => q.clone(),
                        Some(i) => {
                            let s = i.string_value(&ctx.store.borrow());
                            xqib_dom::QName::local(&s)
                        }
                        None => return Err(XdmError::new("XQDY0074", "empty rename name")),
                    }
                }
            };
            ctx.pul.push(UpdatePrimitive::Rename {
                target,
                name: qname,
            });
            Ok(vec![])
        }
        Expr::Transform {
            bindings,
            modify,
            ret,
        } => {
            ctx.push_scope();
            let result = (|| {
                for (var, src) in bindings {
                    let v = eval_expr(ctx, src)?;
                    let node = exactly_one_node(&v, "copy binding")?;
                    let copied = {
                        let mut store = ctx.store.borrow_mut();
                        let c = copy_into(&mut store, node.doc, node);
                        NodeRef::new(node.doc, c)
                    };
                    ctx.bind_var(var.clone(), vec![Item::Node(copied)]);
                }
                // run `modify` against a private PUL applied immediately —
                // its effects touch only the copies
                let outer_pul = ctx.pul.take();
                let modify_result = eval_expr(ctx, modify);
                let inner_pul = ctx.pul.take();
                ctx.pul = outer_pul;
                modify_result?;
                {
                    let mut store = ctx.store.borrow_mut();
                    inner_pul.apply(&mut store)?;
                }
                eval_expr(ctx, ret)
            })();
            ctx.pop_scope();
            result
        }
        _ => unreachable!("eval_update called with a non-update expression"),
    }
}

fn exactly_one_node(seq: &Sequence, what: &str) -> XdmResult<NodeRef> {
    match &seq[..] {
        [Item::Node(n)] => Ok(*n),
        [] => Err(XdmError::new("XUDY0027", format!("{what} is empty"))),
        _ => Err(XdmError::new(
            "XUTY0008",
            format!("{what} must be exactly one node"),
        )),
    }
}

fn copy_all(
    ctx: &mut DynamicContext,
    target_doc: xqib_dom::DocId,
    nodes: &[NodeRef],
) -> Vec<NodeRef> {
    let mut store = ctx.store.borrow_mut();
    nodes
        .iter()
        .map(|n| NodeRef::new(target_doc, copy_into(&mut store, target_doc, *n)))
        .collect()
}
