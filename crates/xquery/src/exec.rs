//! The streaming pull evaluator for [`CompiledPlan`]s.
//!
//! Where the interpreter materialises every intermediate sequence, this
//! executor evaluates plan paths through *cursors*: each axis step pulls
//! nodes from the step before it one at a time, so `exists(//a)` touches a
//! single node, `//x[1]` stops at the first match per context node, and a
//! long path never holds more than one per-step frontier in memory. Fuel is
//! charged per pulled candidate, so `XQIB0011`/`XQIB0014` preemption
//! semantics are preserved — a streamed query pays proportionally to the
//! nodes it actually touches.
//!
//! # Equivalence contract
//!
//! For every query, `CompiledPlan::execute` produces the same sequence,
//! the same dynamic error codes and the same pending-update effects as
//! `CompiledQuery::execute`, with one documented exception: under a fuel
//! budget a streamed early exit may *succeed* where the interpreter runs
//! out of fuel (never the other way around — the executor charges at least
//! as eagerly). The machinery behind the guarantee:
//!
//! * lazy cursors are only built for paths lowering marked `lazy` (every
//!   predicate stage statically infallible), so a cursor can fail only
//!   before its first item or on fuel — pull order can never reorder which
//!   error surfaces;
//! * steps whose per-node output cannot be concatenated in document order
//!   (`streamed == false`) run as buffered barriers inside the pipeline,
//!   draining their input and sorting exactly like the interpreter;
//! * anything outside the streaming subset — multi-item path starts,
//!   fallible predicates, general FLWOR shapes — replays the interpreter's
//!   breadth-first algorithm over the plan, value for value and charge
//!   point for charge point.

use xqib_dom::{NodeRef, QName, Store};
use xqib_xdm::{
    atomize, effective_boolean_value, Atomic, EbvProbe, Item, Sequence, XdmError, XdmResult,
};

use crate::ast::Axis;
use crate::context::DynamicContext;
use crate::eval::arith::{apply_arith, atomic_from_seq, neg_atomic, range_bounds};
use crate::eval::flwor::sort_keyed;
use crate::eval::path::{
    axis_concat_stays_sorted, axis_is_reverse, axis_nodes, node_test_matches, take_index, PosTake,
};
use crate::eval::{self, EXIT_CODE};
use crate::plan::{
    comparable_infallible, plan_class, yields_nodes_only, CompiledPlan, PathPlan, PathStartPlan,
    Plan, PlanAxisStep, PlanClause, PlanPred, PlanStep, PlanStmt, PredStage, ValClass,
};

impl CompiledPlan {
    /// Executes the lowered program: globals, body statements with
    /// scripting visibility between them, `exit with` unwinding, final
    /// update application. Mirrors `CompiledQuery::execute`.
    pub fn execute(&self, ctx: &mut DynamicContext) -> XdmResult<Sequence> {
        self.init_globals(ctx)?;
        let result = exec_statements(ctx, &self.body);
        let result = match result {
            Err(e) if e.code == EXIT_CODE => Ok(ctx.exit_value.take().unwrap_or_default()),
            other => other,
        }?;
        eval::apply_pending(ctx)?;
        Ok(result)
    }

    fn init_globals(&self, ctx: &mut DynamicContext) -> XdmResult<()> {
        for g in &self.globals {
            if let Some(init) = &g.init {
                let v = eval_plan(ctx, init)?;
                ctx.bind_global(g.name.clone(), v);
            } else if ctx.lookup_var(&g.name).is_none() {
                return Err(XdmError::undefined(format!(
                    "external variable ${} was not provided",
                    g.name
                )));
            }
        }
        Ok(())
    }
}

fn exec_statements(ctx: &mut DynamicContext, stmts: &[PlanStmt]) -> XdmResult<Sequence> {
    let mut last: Sequence = vec![];
    for (i, stmt) in stmts.iter().enumerate() {
        let is_last = i + 1 == stmts.len();
        last = exec_statement(ctx, stmt)?;
        if !is_last {
            eval::apply_pending(ctx)?;
        }
    }
    Ok(last)
}

fn exec_statement(ctx: &mut DynamicContext, stmt: &PlanStmt) -> XdmResult<Sequence> {
    match stmt {
        PlanStmt::VarDecl { name, init } => {
            let v = match init {
                Some(p) => eval_plan(ctx, p)?,
                None => vec![],
            };
            ctx.bind_var(name.clone(), v);
            Ok(vec![])
        }
        PlanStmt::Assign { name, value } => {
            let v = eval_plan(ctx, value)?;
            ctx.assign_var(name, v)?;
            Ok(vec![])
        }
        PlanStmt::While { cond, body } => {
            let mut guard = 0u64;
            loop {
                let c = effective_boolean_value(&eval_plan(ctx, cond)?)?;
                if !c {
                    break;
                }
                ctx.push_scope();
                let r = exec_statements(ctx, body);
                ctx.pop_scope();
                r?;
                eval::apply_pending(ctx)?;
                guard += 1;
                if guard > ctx.loop_guard {
                    return Err(XdmError::new(
                        "XQSE0001",
                        "while loop exceeded the iteration guard",
                    ));
                }
            }
            Ok(vec![])
        }
        PlanStmt::ExitWith(p) => {
            let v = eval_plan(ctx, p)?;
            ctx.exit_value = Some(v);
            Err(XdmError::new(EXIT_CODE, "exit"))
        }
        PlanStmt::Expr(p) => eval_plan(ctx, p),
    }
}

// ---------------------------------------------------------------------------
// expression evaluation
// ---------------------------------------------------------------------------

pub(crate) fn eval_plan(ctx: &mut DynamicContext, p: &Plan) -> XdmResult<Sequence> {
    // fallbacks charge for themselves inside `eval_expr`
    if let Plan::Fallback(e) = p {
        return eval::eval_expr(ctx, e);
    }
    ctx.charge_fuel(1)?;
    match p {
        Plan::Fallback(_) => unreachable!("handled above"),
        Plan::Const(seq) => Ok(seq.clone()),
        Plan::Var(name) => ctx
            .lookup_var(name)
            .cloned()
            .ok_or_else(|| XdmError::undefined(format!("undefined variable ${name}"))),
        Plan::ContextItem => ctx.context_item().map(|i| vec![i]),
        Plan::Seq(ps) => {
            let mut out = Vec::new();
            for part in ps {
                out.extend(eval_plan(ctx, part)?);
            }
            Ok(out)
        }
        Plan::Range(lo, hi) => {
            let l = plan_atomic(ctx, lo)?;
            let h = plan_atomic(ctx, hi)?;
            let Some((l, h)) = range_bounds(l, h)? else {
                return Ok(vec![]);
            };
            Ok((l..=h).map(Item::integer).collect())
        }
        Plan::Arith(op, l, r) => {
            let (Some(a), Some(b)) = (plan_atomic(ctx, l)?, plan_atomic(ctx, r)?) else {
                return Ok(vec![]);
            };
            apply_arith(*op, &a, &b).map(|v| vec![Item::Atomic(v)])
        }
        Plan::Neg(inner) => {
            let v = plan_atomic(ctx, inner)?;
            neg_atomic(v)
        }
        Plan::ValueComp(op, l, r) => {
            let ls = eval_plan(ctx, l)?;
            let rs = eval_plan(ctx, r)?;
            eval::value_comp_seqs(ctx, *op, &ls, &rs)
        }
        Plan::GeneralComp(op, l, r) => {
            let ls = eval_plan(ctx, l)?;
            let rs = eval_plan(ctx, r)?;
            eval::general_comp_seqs(ctx, *op, &ls, &rs)
        }
        Plan::And(l, r) => {
            let lv = effective_boolean_value(&eval_plan(ctx, l)?)?;
            if !lv {
                return Ok(vec![Item::boolean(false)]);
            }
            let rv = effective_boolean_value(&eval_plan(ctx, r)?)?;
            Ok(vec![Item::boolean(rv)])
        }
        Plan::Or(l, r) => {
            let lv = effective_boolean_value(&eval_plan(ctx, l)?)?;
            if lv {
                return Ok(vec![Item::boolean(true)]);
            }
            let rv = effective_boolean_value(&eval_plan(ctx, r)?)?;
            Ok(vec![Item::boolean(rv)])
        }
        Plan::If { cond, then, els } => {
            if effective_boolean_value(&eval_plan(ctx, cond)?)? {
                eval_plan(ctx, then)
            } else {
                eval_plan(ctx, els)
            }
        }
        Plan::Flwor { clauses, ret } => exec_flwor(ctx, clauses, ret),
        Plan::Path(pp) => eval_path_plan(ctx, pp),
        Plan::Exists { src, negate } => {
            let mut cur = open_cursor(ctx, src)?;
            let found = cur.next(ctx)?.is_some();
            Ok(vec![Item::boolean(found != *negate)])
        }
        Plan::Count(src) => {
            let mut cur = open_cursor(ctx, src)?;
            let mut n: i64 = 0;
            while cur.next(ctx)?.is_some() {
                n += 1;
            }
            Ok(vec![Item::integer(n)])
        }
        Plan::Not(src) => {
            let mut cur = open_cursor(ctx, src)?;
            let mut probe = EbvProbe::new();
            loop {
                match cur.next(ctx)? {
                    Some(item) => {
                        if let Some(b) = probe.push(item)? {
                            return Ok(vec![Item::boolean(!b)]);
                        }
                    }
                    None => return Ok(vec![Item::boolean(!probe.finish()?)]),
                }
            }
        }
        Plan::Call { name, args } => {
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval_plan(ctx, a)?);
            }
            eval::call_function(ctx, name, argv)
        }
    }
}

/// The arithmetic operand rule over a plan operand.
fn plan_atomic(ctx: &mut DynamicContext, p: &Plan) -> XdmResult<Option<Atomic>> {
    let v = eval_plan(ctx, p)?;
    atomic_from_seq(ctx, &v)
}

// ---------------------------------------------------------------------------
// cursors
// ---------------------------------------------------------------------------

/// A pull source over a plan's result. Only lazy paths and ranges stream;
/// everything else materialises once and iterates.
enum Cursor<'p> {
    Seq(std::vec::IntoIter<Item>),
    Range(std::ops::RangeInclusive<i64>),
    Path(Box<PathCursor<'p>>),
}

fn open_cursor<'p>(ctx: &mut DynamicContext, p: &'p Plan) -> XdmResult<Cursor<'p>> {
    match p {
        Plan::Range(lo, hi) => {
            ctx.charge_fuel(1)?;
            let l = plan_atomic(ctx, lo)?;
            let h = plan_atomic(ctx, hi)?;
            Ok(match range_bounds(l, h)? {
                Some((l, h)) => Cursor::Range(l..=h),
                None => Cursor::Seq(Vec::new().into_iter()),
            })
        }
        Plan::Path(pp) if pp.lazy => {
            ctx.charge_fuel(1)?;
            match open_path(ctx, pp)? {
                Opened::Stream(cur) => Ok(Cursor::Path(Box::new(cur))),
                Opened::Eager(seq) => Ok(Cursor::Seq(seq.into_iter())),
            }
        }
        other => Ok(Cursor::Seq(eval_plan(ctx, other)?.into_iter())),
    }
}

impl Cursor<'_> {
    fn next(&mut self, ctx: &mut DynamicContext) -> XdmResult<Option<Item>> {
        match self {
            Cursor::Seq(it) => Ok(it.next()),
            Cursor::Range(r) => match r.next() {
                Some(i) => {
                    ctx.charge_fuel(1)?;
                    Ok(Some(Item::integer(i)))
                }
                None => Ok(None),
            },
            Cursor::Path(pc) => pc.next(ctx),
        }
    }
}

// ---------------------------------------------------------------------------
// path evaluation
// ---------------------------------------------------------------------------

enum Opened<'p> {
    Stream(PathCursor<'p>),
    Eager(Sequence),
}

fn eval_path_plan(ctx: &mut DynamicContext, pp: &PathPlan) -> XdmResult<Sequence> {
    match open_path(ctx, pp)? {
        Opened::Eager(seq) => Ok(seq),
        Opened::Stream(mut cur) => {
            let mut out = Vec::new();
            while let Some(item) = cur.next(ctx)? {
                out.push(item);
            }
            Ok(out)
        }
    }
}

/// Resolves the path start exactly like the interpreter and decides between
/// a streaming cursor and an eager replay. Streaming requires the `lazy`
/// flag plus a single-node start: the static invariants were computed under
/// that assumption, so anything else replays breadth-first.
fn open_path<'p>(ctx: &mut DynamicContext, pp: &'p PathPlan) -> XdmResult<Opened<'p>> {
    let (mut start, mut normalized, mut steps) = resolve_start(ctx, pp)?;
    if !pp.lazy {
        return exec_steps_eager(ctx, start, normalized, steps).map(Opened::Eager);
    }
    // a leading filter step (focus-present case) runs as one eager step
    if let Some((PlanStep::Filter { primary, preds }, rest)) = steps.split_first() {
        ctx.charge_fuel(1 + start.len() as u64)?;
        let (seq, norm) = apply_filter_step(ctx, &start, primary, preds)?;
        start = seq;
        normalized = norm;
        steps = rest;
    }
    if steps.is_empty() || start.len() != 1 || !matches!(start[0], Item::Node(_)) {
        // non-node starts raise XPTY0019 with the interpreter's charge order
        return exec_steps_eager(ctx, start, normalized, steps).map(Opened::Eager);
    }
    let Item::Node(n) = start[0] else {
        unreachable!("checked above")
    };
    Ok(Opened::Stream(PathCursor::new(n, steps)))
}

fn resolve_start<'p>(
    ctx: &mut DynamicContext,
    pp: &'p PathPlan,
) -> XdmResult<(Sequence, bool, &'p [PlanStep])> {
    match pp.start {
        PathStartPlan::Root => {
            let item = ctx.context_item()?;
            let Item::Node(n) = item else {
                return Err(XdmError::new(
                    "XPTY0020",
                    "`/` requires the context item to be a node",
                ));
            };
            let root = {
                let store = ctx.store.borrow();
                store.doc(n.doc).tree_root(n.node)
            };
            Ok((vec![Item::Node(NodeRef::new(n.doc, root))], true, &pp.steps))
        }
        PathStartPlan::Relative => {
            if let Some(f) = &ctx.focus {
                return Ok((vec![f.item.clone()], true, &pp.steps));
            }
            match pp.steps.split_first() {
                Some((PlanStep::Filter { primary, preds }, rest)) => {
                    let r = eval_plan(ctx, primary)?;
                    let filtered = apply_plan_preds(ctx, r, preds)?;
                    let normalized = filtered.len() <= 1;
                    Ok((filtered, normalized, rest))
                }
                _ => Err(XdmError::undefined("relative path with no context item")),
            }
        }
    }
}

// ----- eager replay (interpreter algorithm over the plan) -------------------

fn exec_steps_eager(
    ctx: &mut DynamicContext,
    mut current: Sequence,
    mut normalized: bool,
    steps: &[PlanStep],
) -> XdmResult<Sequence> {
    for step in steps {
        ctx.charge_fuel(1 + current.len() as u64)?;
        match step {
            PlanStep::Axis(ax) => {
                current = eager_axis_step(ctx, &current, ax, normalized)?;
                normalized = true;
            }
            PlanStep::Filter { primary, preds } => {
                let (seq, norm) = apply_filter_step(ctx, &current, primary, preds)?;
                current = seq;
                normalized = norm;
            }
        }
    }
    Ok(current)
}

fn eager_axis_step(
    ctx: &mut DynamicContext,
    input: &Sequence,
    step: &PlanAxisStep,
    input_normalized: bool,
) -> XdmResult<Sequence> {
    let mut out_refs: Vec<NodeRef> = Vec::new();
    for item in input {
        let Item::Node(n) = item else {
            return Err(XdmError::new(
                "XPTY0019",
                "axis step applied to an atomic value",
            ));
        };
        out_refs.extend(node_survivors(ctx, *n, step, false)?);
    }
    if out_refs.len() > 1 {
        let store = ctx.store.borrow();
        let elide = if input.len() == 1 {
            true
        } else {
            input_normalized
                && axis_concat_stays_sorted(step.axis)
                && xqib_dom::order::strictly_ordered_disjoint(
                    &store,
                    input.iter().filter_map(|i| i.as_node()),
                )
        };
        if elide {
            if input.len() == 1 && axis_is_reverse(step.axis) {
                out_refs.reverse();
            }
            xqib_dom::order::stats::record_elided_sort();
        } else {
            xqib_dom::order::sort_dedup(&store, &mut out_refs);
        }
    }
    Ok(out_refs.into_iter().map(Item::Node).collect())
}

/// The interpreter's filter-step arm: per-item focus, predicates,
/// homogeneity check, node normalisation.
fn apply_filter_step(
    ctx: &mut DynamicContext,
    input: &Sequence,
    primary: &Plan,
    preds: &[PlanPred],
) -> XdmResult<(Sequence, bool)> {
    let mut combined: Sequence = Vec::new();
    let size = input.len();
    for (i, item) in input.iter().enumerate() {
        let result = ctx.with_focus(item.clone(), i + 1, size, |ctx| eval_plan(ctx, primary))?;
        combined.extend(apply_plan_preds(ctx, result, preds)?);
    }
    if combined.len() <= 1 {
        return Ok((combined, true));
    }
    let mut any_node = false;
    let mut any_atomic = false;
    for r in &combined {
        match r {
            Item::Node(_) => any_node = true,
            Item::Atomic(_) => any_atomic = true,
        }
    }
    if any_node && any_atomic {
        return Err(XdmError::new(
            "XPTY0018",
            "path step mixes nodes and atomic values",
        ));
    }
    if any_node {
        let mut refs: Vec<NodeRef> = combined
            .iter()
            .map(|i| i.as_node().expect("all nodes"))
            .collect();
        let store = ctx.store.borrow();
        xqib_dom::order::sort_dedup(&store, &mut refs);
        Ok((refs.into_iter().map(Item::Node).collect(), true))
    } else {
        Ok((combined, false))
    }
}

/// Lowered-predicate application to a general sequence (the interpreter's
/// `apply_predicates`).
fn apply_plan_preds(
    ctx: &mut DynamicContext,
    seq: Sequence,
    preds: &[PlanPred],
) -> XdmResult<Sequence> {
    let mut current = seq;
    for pred in preds {
        if let Some(take) = &pred.take {
            ctx.charge_fuel(1)?;
            current = match take_index(take, current.len()) {
                Some(i) => vec![current[i].clone()],
                None => vec![],
            };
            continue;
        }
        let size = current.len();
        let mut next = Vec::with_capacity(size);
        for (i, item) in current.iter().enumerate() {
            let keep = ctx.with_focus(item.clone(), i + 1, size, |ctx| {
                plan_pred_truth(ctx, &pred.plan, i + 1)
            })?;
            if keep {
                next.push(item.clone());
            }
        }
        current = next;
    }
    Ok(current)
}

/// Predicate semantics: a numeric singleton is a position test, everything
/// else takes the effective boolean value.
fn plan_pred_truth(ctx: &mut DynamicContext, p: &Plan, position: usize) -> XdmResult<bool> {
    let v = eval_plan(ctx, p)?;
    if v.len() == 1 {
        if let Item::Atomic(a) = &v[0] {
            if a.is_numeric() && !matches!(a, Atomic::Untyped(_)) {
                let d = a.as_double()?;
                return Ok(d == position as f64);
            }
        }
    }
    effective_boolean_value(&v)
}

// ----- per-node stage machinery --------------------------------------------

/// Candidates of one axis step from one context node, with all predicate
/// stages applied (positions count along the axis direction). When
/// `reverse` is set, reverse-axis output is flipped to document order —
/// the interpreter's single-input elision.
fn node_survivors(
    ctx: &mut DynamicContext,
    n: NodeRef,
    step: &PlanAxisStep,
    reverse: bool,
) -> XdmResult<Vec<NodeRef>> {
    let candidates: Vec<NodeRef> = {
        let store = ctx.store.borrow();
        axis_nodes(&store, n, step.axis)
            .into_iter()
            .filter(|&c| node_test_matches(&store, c, step.axis, &step.test))
            .collect()
    };
    ctx.charge_fuel(candidates.len() as u64)?;
    let mut survivors = apply_stages(ctx, candidates, &step.stages)?;
    if reverse && axis_is_reverse(step.axis) && survivors.len() > 1 {
        survivors.reverse();
    }
    Ok(survivors)
}

fn apply_stages(
    ctx: &mut DynamicContext,
    nodes: Vec<NodeRef>,
    stages: &[PredStage],
) -> XdmResult<Vec<NodeRef>> {
    let mut current = nodes;
    for stage in stages {
        match stage {
            PredStage::Take(t) => {
                ctx.charge_fuel(1)?;
                current = match take_index(t, current.len()) {
                    Some(i) => vec![current[i]],
                    None => vec![],
                };
            }
            PredStage::AttrEq { name, value } => {
                ctx.charge_fuel(current.len() as u64)?;
                let store = ctx.store.borrow();
                current.retain(|&c| attr_eq(&store, c, name, value));
            }
            PredStage::Filter(p) => {
                let size = current.len();
                let mut next = Vec::with_capacity(size);
                for (i, &c) in current.iter().enumerate() {
                    let keep = ctx.with_focus(Item::Node(c), i + 1, size, |ctx| {
                        let v = eval_plan(ctx, &p.plan)?;
                        effective_boolean_value(&v)
                    })?;
                    if keep {
                        next.push(c);
                    }
                }
                current = next;
            }
            PredStage::General(preds) => {
                for pred in preds {
                    if let Some(take) = &pred.take {
                        ctx.charge_fuel(1)?;
                        current = match take_index(take, current.len()) {
                            Some(i) => vec![current[i]],
                            None => vec![],
                        };
                        continue;
                    }
                    let size = current.len();
                    let mut next = Vec::with_capacity(size);
                    for (i, &c) in current.iter().enumerate() {
                        let keep = ctx.with_focus(Item::Node(c), i + 1, size, |ctx| {
                            plan_pred_truth(ctx, &pred.plan, i + 1)
                        })?;
                        if keep {
                            next.push(c);
                        }
                    }
                    current = next;
                }
            }
        }
    }
    Ok(current)
}

fn attr_eq(store: &Store, c: NodeRef, name: &QName, value: &str) -> bool {
    store
        .doc(c.doc)
        .get_attribute(c.node, name.ns.as_deref(), &name.local)
        == Some(value)
}

// ----- the streaming cursor -------------------------------------------------

/// A chain of per-step cursors over an all-axis-step path with a single
/// node start. Pulling the last step pulls its input from the previous one
/// on demand (volcano-style).
struct PathCursor<'p> {
    start: Option<NodeRef>,
    steps: Vec<StepCursor<'p>>,
}

enum StepCursor<'p> {
    /// per-node concatenation preserves document order
    Streamed {
        step: &'p PlanAxisStep,
        out: StepOut,
    },
    /// sort barrier: drains its whole input, applies the step eagerly
    Barrier {
        step: &'p PlanAxisStep,
        out: Option<std::vec::IntoIter<NodeRef>>,
    },
}

enum StepOut {
    Idle,
    Walk(WalkState),
    List(std::vec::IntoIter<NodeRef>),
}

impl<'p> PathCursor<'p> {
    fn new(start: NodeRef, steps: &'p [PlanStep]) -> Self {
        let steps = steps
            .iter()
            .map(|s| {
                let PlanStep::Axis(ax) = s else {
                    unreachable!("open_path consumes filter steps before streaming")
                };
                if ax.streamed {
                    StepCursor::Streamed {
                        step: ax,
                        out: StepOut::Idle,
                    }
                } else {
                    StepCursor::Barrier {
                        step: ax,
                        out: None,
                    }
                }
            })
            .collect();
        PathCursor {
            start: Some(start),
            steps,
        }
    }

    fn next(&mut self, ctx: &mut DynamicContext) -> XdmResult<Option<Item>> {
        let last = self.steps.len() - 1;
        Ok(self.step_next(ctx, last)?.map(Item::Node))
    }

    fn pull_input(&mut self, ctx: &mut DynamicContext, i: usize) -> XdmResult<Option<NodeRef>> {
        if i == 0 {
            Ok(self.start.take())
        } else {
            self.step_next(ctx, i - 1)
        }
    }

    fn step_next(&mut self, ctx: &mut DynamicContext, i: usize) -> XdmResult<Option<NodeRef>> {
        if matches!(self.steps[i], StepCursor::Barrier { .. }) {
            if matches!(&self.steps[i], StepCursor::Barrier { out: None, .. }) {
                let mut inputs: Vec<NodeRef> = Vec::new();
                while let Some(n) = self.pull_input(ctx, i)? {
                    inputs.push(n);
                }
                let StepCursor::Barrier { step, .. } = &self.steps[i] else {
                    unreachable!()
                };
                let step = *step;
                let result = barrier_apply(ctx, inputs, step)?;
                let StepCursor::Barrier { out, .. } = &mut self.steps[i] else {
                    unreachable!()
                };
                *out = Some(result.into_iter());
            }
            let StepCursor::Barrier { out: Some(it), .. } = &mut self.steps[i] else {
                unreachable!()
            };
            return Ok(it.next());
        }
        loop {
            {
                let StepCursor::Streamed { step, out } = &mut self.steps[i] else {
                    unreachable!()
                };
                match out {
                    StepOut::Idle => {}
                    StepOut::Walk(ws) => {
                        if let Some(n) = walk_next(ctx, ws, step)? {
                            return Ok(Some(n));
                        }
                    }
                    StepOut::List(it) => {
                        if let Some(n) = it.next() {
                            return Ok(Some(n));
                        }
                    }
                }
            }
            let Some(n) = self.pull_input(ctx, i)? else {
                return Ok(None);
            };
            // the interpreter charges one unit per (step, context item)
            ctx.charge_fuel(1)?;
            let StepCursor::Streamed { step, .. } = &self.steps[i] else {
                unreachable!()
            };
            let step = *step;
            let new_out = open_node(ctx, n, step)?;
            let StepCursor::Streamed { out, .. } = &mut self.steps[i] else {
                unreachable!()
            };
            *out = new_out;
        }
    }
}

/// Drain-and-sort application of a non-streamable step inside the lazy
/// pipeline. Input from a streamed upstream is always normalized.
fn barrier_apply(
    ctx: &mut DynamicContext,
    inputs: Vec<NodeRef>,
    step: &PlanAxisStep,
) -> XdmResult<Vec<NodeRef>> {
    ctx.charge_fuel(1 + inputs.len() as u64)?;
    let seq: Sequence = inputs.into_iter().map(Item::Node).collect();
    let out = eager_axis_step(ctx, &seq, step, true)?;
    Ok(out
        .into_iter()
        .map(|i| i.as_node().expect("axis output is nodes"))
        .collect())
}

/// Opens one context node's axis enumeration: a lazy walker when the axis
/// and stages support incremental admission, otherwise a buffered list.
fn open_node(ctx: &mut DynamicContext, n: NodeRef, step: &PlanAxisStep) -> XdmResult<StepOut> {
    let walkable = matches!(
        step.axis,
        Axis::Child | Axis::Attribute | Axis::SelfAxis | Axis::Descendant | Axis::DescendantOrSelf
    ) && step.stages.iter().all(|s| {
        matches!(
            s,
            PredStage::AttrEq { .. } | PredStage::Filter(_) | PredStage::Take(PosTake::Index(_))
        )
    });
    if !walkable {
        // reverse axes are only streamed off a single context node, where
        // the interpreter elides the sort and reverses into document order
        let survivors = node_survivors(ctx, n, step, true)?;
        return Ok(StepOut::List(survivors.into_iter()));
    }
    let walker = match step.axis {
        Axis::Child => Walker::Children { parent: n, idx: 0 },
        Axis::Attribute => Walker::Attrs { owner: n, idx: 0 },
        Axis::SelfAxis => Walker::SelfOnce(Some(n)),
        Axis::Descendant => {
            let store = ctx.store.borrow();
            let stack = store
                .doc(n.doc)
                .children(n.node)
                .iter()
                .rev()
                .map(|&k| NodeRef::new(n.doc, k))
                .collect();
            Walker::Desc { stack }
        }
        Axis::DescendantOrSelf => Walker::Desc { stack: vec![n] },
        _ => unreachable!("walkable axes checked above"),
    };
    let takes = vec![
        0u64;
        step.stages
            .iter()
            .filter(|s| matches!(s, PredStage::Take(_)))
            .count()
    ];
    Ok(StepOut::Walk(WalkState {
        walker,
        takes,
        closed: false,
    }))
}

/// Incremental enumeration of one context node's candidates.
struct WalkState {
    walker: Walker,
    /// survivor counters, one per `Take` stage
    takes: Vec<u64>,
    /// a take stage consumed its selected index — nothing later can pass
    closed: bool,
}

enum Walker {
    Children {
        parent: NodeRef,
        idx: usize,
    },
    Attrs {
        owner: NodeRef,
        idx: usize,
    },
    SelfOnce(Option<NodeRef>),
    /// pre-order traversal (seeded with `[self]` for descendant-or-self,
    /// the reversed child list for descendant)
    Desc {
        stack: Vec<NodeRef>,
    },
}

impl Walker {
    fn next(&mut self, store: &Store) -> Option<NodeRef> {
        match self {
            Walker::Children { parent, idx } => {
                let r = store
                    .doc(parent.doc)
                    .children(parent.node)
                    .get(*idx)
                    .map(|&k| NodeRef::new(parent.doc, k));
                if r.is_some() {
                    *idx += 1;
                }
                r
            }
            Walker::Attrs { owner, idx } => {
                let r = store
                    .doc(owner.doc)
                    .attributes(owner.node)
                    .get(*idx)
                    .map(|&k| NodeRef::new(owner.doc, k));
                if r.is_some() {
                    *idx += 1;
                }
                r
            }
            Walker::SelfOnce(slot) => slot.take(),
            Walker::Desc { stack } => {
                let n = stack.pop()?;
                let doc = store.doc(n.doc);
                for &k in doc.children(n.node).iter().rev() {
                    stack.push(NodeRef::new(n.doc, k));
                }
                Some(n)
            }
        }
    }
}

fn walk_next(
    ctx: &mut DynamicContext,
    ws: &mut WalkState,
    step: &PlanAxisStep,
) -> XdmResult<Option<NodeRef>> {
    if ws.closed {
        return Ok(None);
    }
    loop {
        let cand = {
            let store = ctx.store.borrow();
            ws.walker.next(&store)
        };
        let Some(c) = cand else {
            return Ok(None);
        };
        // one fuel unit per candidate examined: streamed traversals pay
        // proportionally to the nodes they touch, preserving preemption
        ctx.charge_fuel(1)?;
        if !ctx.with_store(|s| node_test_matches(s, c, step.axis, &step.test)) {
            continue;
        }
        if admit(ctx, c, step, ws)? {
            return Ok(Some(c));
        }
        if ws.closed {
            return Ok(None);
        }
    }
}

/// Runs the stage pipeline over one candidate. `Take(Index)` stages count
/// survivors of the stages before them, pass exactly the k-th, and close
/// the node afterwards — the streaming form of the positional short-circuit.
fn admit(
    ctx: &mut DynamicContext,
    c: NodeRef,
    step: &PlanAxisStep,
    ws: &mut WalkState,
) -> XdmResult<bool> {
    let mut take_i = 0;
    for stage in &step.stages {
        match stage {
            PredStage::Take(PosTake::Index(d)) => {
                ws.takes[take_i] += 1;
                let pos = ws.takes[take_i];
                take_i += 1;
                let sel = if *d >= 1.0 && d.fract() == 0.0 {
                    Some(*d as u64)
                } else {
                    None
                };
                match sel {
                    Some(k) if pos == k => {
                        // selected: later stages may still reject it, but no
                        // other candidate can ever pass this stage
                        ws.closed = true;
                    }
                    Some(k) if pos < k => return Ok(false),
                    _ => {
                        // fractional/negative index selects nothing
                        ws.closed = true;
                        return Ok(false);
                    }
                }
            }
            PredStage::Take(PosTake::Last) => unreachable!("last-takes are buffered"),
            PredStage::AttrEq { name, value } => {
                let hit = ctx.with_store(|s| attr_eq(s, c, name, value));
                if !hit {
                    return Ok(false);
                }
            }
            PredStage::Filter(p) => {
                // position-free: the (1, 1) focus is observationally
                // equivalent for these predicates
                let keep = ctx.with_focus(Item::Node(c), 1, 1, |ctx| {
                    let v = eval_plan(ctx, &p.plan)?;
                    effective_boolean_value(&v)
                })?;
                if !keep {
                    return Ok(false);
                }
            }
            PredStage::General(_) => unreachable!("general stages are buffered"),
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// FLWOR
// ---------------------------------------------------------------------------

type Tuple = Vec<(QName, Sequence)>;

fn with_tuple<R>(
    ctx: &mut DynamicContext,
    tuple: &Tuple,
    f: impl FnOnce(&mut DynamicContext) -> XdmResult<R>,
) -> XdmResult<R> {
    ctx.push_scope();
    for (name, value) in tuple {
        ctx.bind_var(name.clone(), value.clone());
    }
    let r = f(ctx);
    ctx.pop_scope();
    r
}

fn exec_flwor(ctx: &mut DynamicContext, clauses: &[PlanClause], ret: &Plan) -> XdmResult<Sequence> {
    if let Some(out) = try_stream_flwor(ctx, clauses, ret)? {
        return Ok(out);
    }
    // interpreter-identical breadth-first tuple pipeline
    let mut tuples: Vec<Tuple> = vec![Vec::new()];
    for clause in clauses {
        tuples = apply_plan_clause(ctx, tuples, clause)?;
    }
    let mut out = Vec::new();
    for tuple in tuples {
        let v = with_tuple(ctx, &tuple, |ctx| eval_plan(ctx, ret))?;
        out.extend(v);
    }
    Ok(out)
}

fn apply_plan_clause(
    ctx: &mut DynamicContext,
    tuples: Vec<Tuple>,
    clause: &PlanClause,
) -> XdmResult<Vec<Tuple>> {
    match clause {
        PlanClause::For { var, at, ty, seq } => {
            let mut out = Vec::new();
            for tuple in tuples {
                let items = with_tuple(ctx, &tuple, |ctx| eval_plan(ctx, seq))?;
                for (i, item) in items.into_iter().enumerate() {
                    ctx.charge_fuel(1)?;
                    if let Some(t) = ty {
                        let single = vec![item.clone()];
                        let ok = ctx.with_store(|s| t.matches(s, &single));
                        if !ok {
                            return Err(XdmError::type_error(format!(
                                "for ${var} as {t}: item does not match"
                            )));
                        }
                    }
                    let mut new_tuple = tuple.clone();
                    new_tuple.push((var.clone(), vec![item]));
                    if let Some(at_var) = at {
                        new_tuple.push((at_var.clone(), vec![Item::integer(i as i64 + 1)]));
                    }
                    out.push(new_tuple);
                }
            }
            Ok(out)
        }
        PlanClause::Let { var, expr } => {
            let mut out = Vec::with_capacity(tuples.len());
            for tuple in tuples {
                let v = with_tuple(ctx, &tuple, |ctx| eval_plan(ctx, expr))?;
                let mut new_tuple = tuple;
                new_tuple.push((var.clone(), v));
                out.push(new_tuple);
            }
            Ok(out)
        }
        PlanClause::Where(cond) => {
            let mut out = Vec::with_capacity(tuples.len());
            for tuple in tuples {
                let keep = with_tuple(ctx, &tuple, |ctx| {
                    let v = eval_plan(ctx, cond)?;
                    effective_boolean_value(&v)
                })?;
                if keep {
                    out.push(tuple);
                }
            }
            Ok(out)
        }
        PlanClause::OrderBy(specs) => {
            let mut keyed: Vec<(Vec<Option<Atomic>>, Tuple)> = Vec::with_capacity(tuples.len());
            for tuple in tuples {
                let mut keys = Vec::with_capacity(specs.len());
                for spec in specs {
                    let v = with_tuple(ctx, &tuple, |ctx| eval_plan(ctx, &spec.key))?;
                    let key = match v.len() {
                        0 => None,
                        1 => Some(atomize(&ctx.store.borrow(), &v[0])),
                        _ => return Err(XdmError::type_error("order by key must be a singleton")),
                    };
                    keys.push(key);
                }
                keyed.push((keys, tuple));
            }
            let dirs: Vec<(bool, bool)> = specs
                .iter()
                .map(|s| (s.descending, s.empty_least))
                .collect();
            sort_keyed(keyed, &dirs)
        }
    }
}

// ----- streaming FLWOR ------------------------------------------------------

/// Streams `for $v in <lazy node path> (let|where)* return R` in two
/// phases: phase 1 pulls source bindings one at a time and applies the
/// `let`/`where` chain immediately (all clause expressions are statically
/// infallible and read-only, so neither error order nor the store can
/// diverge from the interpreter's breadth-first pipeline); phase 2 runs the
/// return clause over the surviving tuples only after the cursor is fully
/// drained, so `R` may allocate, update or raise freely. Anything outside
/// this shape falls back to the breadth-first replica.
fn try_stream_flwor(
    ctx: &mut DynamicContext,
    clauses: &[PlanClause],
    ret: &Plan,
) -> XdmResult<Option<Sequence>> {
    let Some((first, rest)) = clauses.split_first() else {
        return Ok(None);
    };
    let PlanClause::For {
        var,
        at,
        ty,
        seq: Plan::Path(pp),
    } = first
    else {
        return Ok(None);
    };
    if ty.is_some() || !pp.lazy || !yields_nodes_only(pp) {
        return Ok(None);
    }
    for clause in rest {
        let ok = match clause {
            PlanClause::Where(cond) => stream_cond_ok(cond, var),
            PlanClause::Let { expr, .. } => {
                matches!(expr, Plan::Const(_)) || node_var_path(expr, var)
            }
            _ => false,
        };
        if !ok {
            return Ok(None);
        }
    }

    let mut source = match open_path(ctx, pp)? {
        Opened::Stream(c) => Cursor::Path(Box::new(c)),
        Opened::Eager(seq) => Cursor::Seq(seq.into_iter()),
    };
    let mut tuples: Vec<Tuple> = Vec::new();
    let mut pos: i64 = 0;
    while let Some(item) = source.next(ctx)? {
        // one fuel unit per tuple, like the interpreter's `for` clause
        ctx.charge_fuel(1)?;
        pos += 1;
        let mut tuple: Tuple = vec![(var.clone(), vec![item])];
        if let Some(at_var) = at {
            tuple.push((at_var.clone(), vec![Item::integer(pos)]));
        }
        let mut keep = true;
        for clause in rest {
            match clause {
                PlanClause::Let { var: lv, expr } => {
                    let v = with_tuple(ctx, &tuple, |ctx| eval_plan(ctx, expr))?;
                    tuple.push((lv.clone(), v));
                }
                PlanClause::Where(cond) => {
                    keep = with_tuple(ctx, &tuple, |ctx| {
                        let v = eval_plan(ctx, cond)?;
                        effective_boolean_value(&v)
                    })?;
                    if !keep {
                        break;
                    }
                }
                _ => unreachable!("gated above"),
            }
        }
        if keep {
            tuples.push(tuple);
        }
    }
    let mut out = Vec::new();
    for tuple in &tuples {
        let v = with_tuple(ctx, tuple, |ctx| eval_plan(ctx, ret))?;
        out.extend(v);
    }
    Ok(Some(out))
}

/// `$v/axis…` — a relative path reading only the bound node: a bare-`$v`
/// leading filter step followed by axis steps with infallible stages.
/// With `$v` holding a single node, evaluation cannot raise and yields
/// nodes only.
fn node_var_path(p: &Plan, var: &QName) -> bool {
    let Plan::Path(pp) = p else {
        return false;
    };
    if pp.start != PathStartPlan::Relative {
        return false;
    }
    let Some((PlanStep::Filter { primary, preds }, rest)) = pp.steps.split_first() else {
        return false;
    };
    if !matches!(primary, Plan::Var(v) if v == var) || !preds.is_empty() {
        return false;
    }
    !rest.is_empty()
        && rest.iter().all(|s| match s {
            PlanStep::Axis(ax) => ax.stages.iter().all(|st| st.infallible()),
            PlanStep::Filter { .. } => false,
        })
}

/// Infallible-and-EBV-safe under "`$var` holds one node, focus unknown".
/// Deliberately narrow: the common `where` shapes over the bound variable.
fn stream_cond_ok(p: &Plan, var: &QName) -> bool {
    match p {
        Plan::Const(seq) => effective_boolean_value(seq).is_ok(),
        Plan::GeneralComp(_, l, r) => match (stream_class(l, var), stream_class(r, var)) {
            (Some(a), Some(b)) => comparable_infallible(a, b),
            _ => false,
        },
        Plan::And(l, r) | Plan::Or(l, r) => stream_cond_ok(l, var) && stream_cond_ok(r, var),
        Plan::Exists { src, .. } => node_var_path(src, var) || matches!(&**src, Plan::Const(_)),
        Plan::Not(src) => stream_cond_ok(src, var),
        _ => node_var_path(p, var),
    }
}

/// Value class of an infallible comparison operand in the same context;
/// `None` means "may raise". A node sequence atomizes to untyped, which
/// general comparison treats as string-like.
fn stream_class(p: &Plan, var: &QName) -> Option<ValClass> {
    match p {
        Plan::Const(_) => Some(plan_class(p)),
        Plan::Var(v) if v == var => Some(ValClass::StrLike),
        _ if node_var_path(p, var) => Some(ValClass::StrLike),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::lower;
    use crate::runtime::{self, render_sequence};
    use xqib_dom::store::shared_store;
    use xqib_dom::SharedStore;

    const DOC: &str = r#"<site><items><item id="a"><price>10</price></item><item id="b"><price>20</price></item><item id="c"><price>30</price></item></items><names><name>x</name><name>y</name></names></site>"#;

    fn store_with_doc(xml: &str) -> SharedStore {
        let store = shared_store();
        let doc = xqib_dom::parse_document(xml).unwrap();
        store.borrow_mut().add_document(doc, Some("t.xml"));
        store
    }

    fn interp(src: &str, store: SharedStore, fuel: Option<u64>) -> Result<String, String> {
        let q = runtime::compile(src).map_err(|e| e.code)?;
        let mut ctx = DynamicContext::new(store, q.sctx.clone());
        ctx.set_fuel(fuel);
        match q.execute(&mut ctx) {
            Ok(seq) => Ok(render_sequence(&ctx, &seq)),
            Err(e) => Err(e.code),
        }
    }

    fn compiled(src: &str, store: SharedStore, fuel: Option<u64>) -> Result<String, String> {
        let q = runtime::compile(src).map_err(|e| e.code)?;
        let plan = lower(&q);
        let mut ctx = DynamicContext::new(store, q.sctx.clone());
        ctx.set_fuel(fuel);
        match plan.execute(&mut ctx) {
            Ok(seq) => Ok(render_sequence(&ctx, &seq)),
            Err(e) => Err(e.code),
        }
    }

    fn same(src: &str) {
        let a = interp(src, store_with_doc(DOC), None);
        let b = compiled(src, store_with_doc(DOC), None);
        assert_eq!(a, b, "compiled/interpreted divergence on `{src}`");
    }

    #[test]
    fn paths_agree() {
        same("doc('t.xml')//item");
        same("doc('t.xml')//item/price");
        same("doc('t.xml')/site/items/item");
        same("doc('t.xml')//item/@id");
        same("doc('t.xml')//item[@id = 'b']");
        same("doc('t.xml')//item[price]");
        same("doc('t.xml')//item[1]");
        same("doc('t.xml')//item[last()]");
        same("doc('t.xml')//item[2]/price");
        same("(doc('t.xml')//item)[2]");
        same("doc('t.xml')//item/parent::items");
        same("doc('t.xml')//price/ancestor::*");
        same("doc('t.xml')//item[2]/preceding-sibling::item");
        same("doc('t.xml')//name/../name");
        same("doc('t.xml')//*[@id][price/text() = '20']");
    }

    #[test]
    fn scalars_and_flwor_agree() {
        same("1 to 10");
        same("sum(1 to 100)");
        same("for $i in 1 to 5 return $i * $i");
        same("for $i in doc('t.xml')//item return $i/price");
        same("for $i in doc('t.xml')//item where $i/@id = 'b' return $i");
        same("for $i at $p in doc('t.xml')//item return $p");
        same("for $i in doc('t.xml')//item order by $i/@id descending return $i/@id");
        same("for $i in doc('t.xml')//item let $p := $i/price where $p = 20 return $i/@id");
        same("exists(doc('t.xml')//item)");
        same("empty(doc('t.xml')//missing)");
        same("count(doc('t.xml')//item)");
        same("not(doc('t.xml')//missing)");
        same("if (doc('t.xml')//item) then 'y' else 'n'");
        same("some $i in doc('t.xml')//item satisfies $i/@id = 'c'");
    }

    #[test]
    fn errors_agree() {
        same("1 div 0");
        same("$undeclared");
        same("doc('t.xml')//item/(price, 7)");
        same("('a','b')/self::node()");
        same("doc('t.xml')//item[price div 0 = 1]");
    }

    #[test]
    fn scripting_and_updates_agree() {
        same("declare variable $n := 0; while ($n < 5) { set $n := $n + 1; }; $n");
        same("declare variable $n := 3; if ($n > 2) then exit with 'big' else (); 'small'");
        let a = {
            let store = store_with_doc(DOC);
            let r = interp(
                "insert node <new/> into doc('t.xml')/site, 0",
                store.clone(),
                None,
            );
            (
                r,
                runtime::run_to_string("doc('t.xml')/site/new", store).unwrap(),
            )
        };
        let b = {
            let store = store_with_doc(DOC);
            let r = compiled(
                "insert node <new/> into doc('t.xml')/site, 0",
                store.clone(),
                None,
            );
            (
                r,
                runtime::run_to_string("doc('t.xml')/site/new", store).unwrap(),
            )
        };
        assert_eq!(a, b, "update effects diverge");
        assert_eq!(b.1, "<new/>");
    }

    #[test]
    fn streamed_early_exit_uses_less_fuel() {
        // a budget the interpreter exhausts but the streaming cursor,
        // stopping at the first match, does not
        let mut wide = String::from("<d><hit/>");
        for _ in 0..500 {
            wide.push_str("<pad><x/><x/></pad>");
        }
        wide.push_str("</d>");
        let q = "exists(doc('t.xml')//hit)";
        assert_eq!(
            interp(q, store_with_doc(&wide), Some(200)).unwrap_err(),
            "XQIB0011"
        );
        assert_eq!(
            compiled(q, store_with_doc(&wide), Some(200)).unwrap(),
            "true"
        );
        // and the streamed result is never *cheaper but wrong*: unlimited
        // budgets agree
        let a = interp(q, store_with_doc(&wide), None).unwrap();
        let b = compiled(q, store_with_doc(&wide), None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fuel_exhaustion_still_raises() {
        let q = "count(doc('t.xml')//item)";
        assert_eq!(
            compiled(q, store_with_doc(DOC), Some(3)).unwrap_err(),
            "XQIB0011"
        );
    }

    #[test]
    fn positional_walker_stops_early() {
        let mut wide = String::from("<d>");
        for i in 0..1000 {
            wide.push_str(&format!("<item n=\"{i}\"/>"));
        }
        wide.push_str("</d>");
        // the interpreter evaluates the attribute predicate under a focus
        // for every child; the walker probes one candidate, takes it, and
        // closes the node
        let q = "doc('t.xml')/d/item[@n = '0'][1]/@n";
        let fuel_of = |use_plan: bool, src: &str, xml: &str| {
            let store = store_with_doc(xml);
            let q = runtime::compile(src).unwrap();
            let mut ctx = DynamicContext::new(store, q.sctx.clone());
            // a huge budget so `fuel_used` is tracked without preemption
            ctx.set_fuel(Some(u64::MAX));
            let out = if use_plan {
                lower(&q).execute(&mut ctx).unwrap()
            } else {
                q.execute(&mut ctx).unwrap()
            };
            (render_sequence(&ctx, &out), ctx.fuel_used)
        };
        let (iv, ifuel) = fuel_of(false, q, &wide);
        let (cv, cfuel) = fuel_of(true, q, &wide);
        assert_eq!(iv, cv);
        assert!(
            cfuel * 10 < ifuel,
            "walker should examine ~1 candidate, not 1000 (compiled {cfuel} vs interpreted {ifuel})"
        );
    }
}
