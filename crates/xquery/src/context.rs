//! Static and dynamic evaluation contexts.
//!
//! Per §3.1 of the paper: "an XQuery expression is evaluated in a context.
//! The context contains functions, namespaces, schemas, and variable
//! bindings. … Extending the context with new browser-specific namespace,
//! schema, and function definitions is an important part of integrating
//! XQuery into the Web browser." The [`DynamicContext::natives`] registry
//! and the [`EngineHooks`] trait are exactly that extension point: the XQIB
//! plug-in (crate `xqib-core`) registers the `browser:` function library and
//! the event/CSS bridges there.

use std::collections::HashMap;
use std::rc::Rc;

use xqib_dom::{DocId, NodeRef, QName, SharedStore, Store};
use xqib_xdm::{Item, Sequence, XdmError, XdmResult};

use crate::ast::{Expr, FunctionDecl};
use crate::pul::Pul;

/// Signature of a native (host-provided) function.
pub type NativeFn = Rc<dyn Fn(&mut DynamicContext, Vec<Sequence>) -> XdmResult<Sequence>>;

/// Host bridge for the browser grammar extensions. Implemented by the XQIB
/// plug-in; when absent, event expressions raise `XQIB0002` and style
/// expressions fall back to the element's `style` attribute.
pub trait EngineHooks {
    /// `on event E at T attach listener Q` (§4.3.1).
    fn attach_listener(
        &self,
        ctx: &mut DynamicContext,
        event: &str,
        targets: &[Item],
        listener: &QName,
    ) -> XdmResult<()>;

    /// `on event E at T detach listener Q`.
    fn detach_listener(
        &self,
        ctx: &mut DynamicContext,
        event: &str,
        targets: &[Item],
        listener: &QName,
    ) -> XdmResult<()>;

    /// `trigger event E at T` — simulates the user action.
    fn trigger_event(
        &self,
        ctx: &mut DynamicContext,
        event: &str,
        targets: &[Item],
    ) -> XdmResult<()>;

    /// `on event E behind Call attach listener Q` (§4.4): bind the event to
    /// the asynchronous evaluation of `call`.
    fn attach_behind(
        &self,
        ctx: &mut DynamicContext,
        event: &str,
        call: &Expr,
        listener: &QName,
    ) -> XdmResult<()>;

    /// `set style P of T to V` (§4.5). Return `Ok(false)` to fall back to
    /// the `style` attribute.
    fn set_style(
        &self,
        ctx: &mut DynamicContext,
        target: NodeRef,
        prop: &str,
        value: &str,
    ) -> XdmResult<bool>;

    /// `get style P of T`. Return `Ok(None)` to fall back to the `style`
    /// attribute; `Ok(Some(v))` to answer.
    fn get_style(
        &self,
        ctx: &mut DynamicContext,
        target: NodeRef,
        prop: &str,
    ) -> XdmResult<Option<Option<String>>>;
}

/// The static context: user-declared functions and compile-time options.
#[derive(Default)]
pub struct StaticContext {
    pub functions: HashMap<(QName, usize), Rc<FunctionDecl>>,
    pub options: Vec<(QName, String)>,
    /// The browser security profile (§4.2.1): `fn:doc` resolves only against
    /// documents the plug-in has made available (the page, frames, cached or
    /// REST-fetched XML) — never arbitrary URLs; `fn:put` is blocked.
    pub browser_profile: bool,
}

impl StaticContext {
    pub fn declare_function(&mut self, decl: FunctionDecl) {
        self.functions
            .insert((decl.name.clone(), decl.params.len()), Rc::new(decl));
    }

    pub fn lookup_function(&self, name: &QName, arity: usize) -> Option<Rc<FunctionDecl>> {
        self.functions.get(&(name.clone(), arity)).cloned()
    }
}

/// The focus: context item, position and size.
#[derive(Debug, Clone)]
pub struct Focus {
    pub item: Item,
    pub position: usize,
    pub size: usize,
}

/// The dynamic context threaded through evaluation.
pub struct DynamicContext {
    pub store: SharedStore,
    pub sctx: Rc<StaticContext>,
    /// Variable scopes; index 0 holds the globals.
    scopes: Vec<HashMap<QName, Sequence>>,
    /// Function-call barriers: a lookup never crosses below the last barrier
    /// (except into the globals).
    barriers: Vec<usize>,
    pub focus: Option<Focus>,
    /// The virtual clock (epoch millis) — `fn:current-dateTime` et al. read
    /// this, keeping whole-system runs deterministic.
    pub now_millis: i64,
    /// Pending updates accumulated during evaluation.
    pub pul: Pul,
    /// Browser bridge (events, async, CSS).
    pub hooks: Option<Rc<dyn EngineHooks>>,
    /// Native functions registered by the host (`browser:` library, tests).
    pub natives: HashMap<(QName, usize), NativeFn>,
    /// Where constructed nodes live.
    pub construction_doc: DocId,
    /// Set by `exit with`; consumed by the enclosing function/block.
    pub exit_value: Option<Sequence>,
    /// Recursion guard (call count).
    pub call_depth: usize,
    /// `while` iteration guard (XQSE0001 beyond this many iterations).
    pub loop_guard: u64,
    /// Stack address recorded at context creation; used to bound actual
    /// stack consumption of deep recursion (debug frames are large).
    pub stack_base: usize,
    /// Remaining evaluation fuel. Every expression step charges one unit;
    /// reaching zero raises [`Self::fuel_code`]. `None` disables preemption
    /// (ad-hoc queries, page load). Hosts set a budget per listener
    /// invocation; the server tier sets one per request deadline.
    pub fuel: Option<u64>,
    /// Units charged since the fuel budget was last (re)set.
    pub fuel_used: u64,
    /// Error code raised on fuel exhaustion: `XQIB0011` for a host's
    /// listener budget (the default), `XQIB0014` when the budget encodes a
    /// request deadline (see [`Self::set_deadline_fuel`]).
    pub fuel_code: &'static str,
    /// When set, committing a pending update list is a point of no return:
    /// `apply_pending` clears the fuel budget before the first non-empty
    /// apply, so a deadline can only kill a request that has not mutated
    /// anything yet — a deadline-killed request has exactly zero applied
    /// (and zero journaled) effects.
    pub fuel_commit_exempt: bool,
    /// Redo-log sink: when set, every successfully applied PUL is wire-
    /// encoded (against the pre-apply store) and pushed here, in apply
    /// order. The durable `XmlDb` drains this into its write-ahead log.
    pub pul_journal: Option<Rc<std::cell::RefCell<Vec<Vec<u8>>>>>,
}

/// A restore point for the parts of the dynamic context a panicking or
/// erroring listener can leave inconsistent (scope/barrier stacks, call
/// depth, focus). Captured before each isolated listener invocation and
/// replayed by the host when the listener does not return normally.
#[derive(Debug, Clone)]
pub struct CtxCheckpoint {
    scopes_len: usize,
    barriers_len: usize,
    call_depth: usize,
    focus: Option<Focus>,
}

/// Approximate current stack pointer (stacks grow downward on all supported
/// targets).
#[inline(never)]
pub fn approx_stack_ptr() -> usize {
    let probe = 0u8;
    &probe as *const u8 as usize
}

impl DynamicContext {
    pub fn new(store: SharedStore, sctx: Rc<StaticContext>) -> Self {
        let construction_doc = store.borrow_mut().new_document(None);
        DynamicContext {
            store,
            sctx,
            scopes: vec![HashMap::new()],
            barriers: Vec::new(),
            focus: None,
            now_millis: 1_240_214_400_000, // 2009-04-20T08:00:00, WWW'09 week
            pul: Pul::new(),
            hooks: None,
            natives: HashMap::new(),
            construction_doc,
            exit_value: None,
            call_depth: 0,
            loop_guard: 10_000_000,
            stack_base: approx_stack_ptr(),
            fuel: None,
            fuel_used: 0,
            fuel_code: "XQIB0011",
            fuel_commit_exempt: false,
            pul_journal: None,
        }
    }

    /// Installs (or clears) the preemption budget and resets the usage
    /// counter. Called by the host once per listener invocation.
    pub fn set_fuel(&mut self, budget: Option<u64>) {
        self.fuel = budget;
        self.fuel_used = 0;
        self.fuel_code = "XQIB0011";
    }

    /// Installs a *deadline* budget: the same preemption mechanism as
    /// [`Self::set_fuel`], but exhaustion raises `XQIB0014` ("deadline
    /// exceeded") so hosts can distinguish a request that ran out of its
    /// per-request deadline from a listener that ran out of its fuel
    /// allowance. The server tier converts the milliseconds remaining until
    /// a request's deadline into fuel units before evaluation.
    pub fn set_deadline_fuel(&mut self, budget: u64) {
        self.fuel = Some(budget);
        self.fuel_used = 0;
        self.fuel_code = "XQIB0014";
    }

    /// Charges `n` fuel units, raising [`Self::fuel_code`] once the budget
    /// is spent. Free when no budget is installed.
    #[inline]
    pub fn charge_fuel(&mut self, n: u64) -> XdmResult<()> {
        self.fuel_used += n;
        if let Some(fuel) = self.fuel.as_mut() {
            if *fuel < n {
                self.fuel = Some(0);
                let what = if self.fuel_code == "XQIB0014" {
                    "request deadline exceeded"
                } else {
                    "evaluation fuel exhausted"
                };
                return Err(XdmError::new(
                    self.fuel_code,
                    format!("{what} after {} steps", self.fuel_used),
                ));
            }
            *fuel -= n;
        }
        Ok(())
    }

    /// Captures the scope/barrier/focus state for later [`Self::restore`].
    pub fn checkpoint(&self) -> CtxCheckpoint {
        CtxCheckpoint {
            scopes_len: self.scopes.len(),
            barriers_len: self.barriers.len(),
            call_depth: self.call_depth,
            focus: self.focus.clone(),
        }
    }

    /// Rewinds the context to a checkpoint taken earlier on the same
    /// context: scopes and barriers pushed since are dropped, call depth and
    /// focus are restored. Used to repair state after a listener panicked or
    /// errored mid-evaluation.
    pub fn restore(&mut self, cp: &CtxCheckpoint) {
        self.scopes.truncate(cp.scopes_len.max(1));
        self.barriers.truncate(cp.barriers_len);
        self.call_depth = cp.call_depth;
        self.focus = cp.focus.clone();
        self.exit_value = None;
    }

    /// Re-anchors the stack guard to the current thread position. Hosts that
    /// re-enter the engine from deep native frames (event dispatch) call this
    /// before invoking listeners.
    pub fn reset_stack_base(&mut self) {
        self.stack_base = approx_stack_ptr();
    }

    /// Immutable access to the store for the duration of a closure.
    pub fn with_store<R>(&self, f: impl FnOnce(&Store) -> R) -> R {
        f(&self.store.borrow())
    }

    // ----- variables --------------------------------------------------------

    /// Binds a variable in the innermost scope.
    pub fn bind_var(&mut self, name: QName, value: Sequence) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name, value);
    }

    /// Binds a global variable.
    pub fn bind_global(&mut self, name: QName, value: Sequence) {
        self.scopes[0].insert(name, value);
    }

    /// Looks a variable up, respecting function-call barriers.
    pub fn lookup_var(&self, name: &QName) -> Option<&Sequence> {
        let floor = self.barriers.last().copied().unwrap_or(0);
        for scope in self.scopes[floor.max(1).min(self.scopes.len())..]
            .iter()
            .rev()
        {
            if let Some(v) = scope.get(name) {
                return Some(v);
            }
        }
        // barrier frames still see globals
        self.scopes[0].get(name)
    }

    /// Re-assigns an existing variable (scripting `set $x := …`); searches
    /// visible scopes, erroring if the variable was never declared.
    pub fn assign_var(&mut self, name: &QName, value: Sequence) -> XdmResult<()> {
        let floor = self.barriers.last().copied().unwrap_or(0);
        let lo = floor.max(1).min(self.scopes.len());
        for scope in self.scopes[lo..].iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        if let Some(slot) = self.scopes[0].get_mut(name) {
            *slot = value;
            return Ok(());
        }
        Err(XdmError::undefined(format!(
            "cannot assign to undeclared variable ${name}"
        )))
    }

    /// Snapshot of every variable binding currently visible — used by the
    /// `behind` construct (§4.4) to capture the environment of an
    /// asynchronous call before queuing it on the event loop.
    pub fn snapshot_visible_vars(&self) -> Vec<(QName, Sequence)> {
        let floor = self.barriers.last().copied().unwrap_or(0);
        let mut out: Vec<(QName, Sequence)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let lo = floor.max(1).min(self.scopes.len());
        for scope in self.scopes[lo..].iter().rev() {
            for (k, v) in scope {
                if seen.insert(k.clone()) {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
        for (k, v) in &self.scopes[0] {
            if seen.insert(k.clone()) {
                out.push((k.clone(), v.clone()));
            }
        }
        out
    }

    pub fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    pub fn pop_scope(&mut self) {
        debug_assert!(self.scopes.len() > 1, "cannot pop the global scope");
        self.scopes.pop();
    }

    /// Enters a function body: fresh scope invisible to caller locals.
    pub fn push_function_frame(&mut self) {
        self.scopes.push(HashMap::new());
        self.barriers.push(self.scopes.len() - 1);
    }

    pub fn pop_function_frame(&mut self) {
        self.barriers.pop();
        self.scopes.pop();
    }

    // ----- focus ------------------------------------------------------------

    /// Runs `f` with the given focus, restoring the previous one after.
    pub fn with_focus<R>(
        &mut self,
        item: Item,
        position: usize,
        size: usize,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let saved = self.focus.take();
        self.focus = Some(Focus {
            item,
            position,
            size,
        });
        let r = f(self);
        self.focus = saved;
        r
    }

    pub fn context_item(&self) -> XdmResult<Item> {
        self.focus
            .as_ref()
            .map(|f| f.item.clone())
            .ok_or_else(|| XdmError::undefined("the context item is undefined"))
    }

    // ----- natives ----------------------------------------------------------

    /// Registers a native function (the plug-in's `browser:` library).
    pub fn register_native(&mut self, name: QName, arity: usize, f: NativeFn) {
        self.natives.insert((name, arity), f);
    }

    pub fn lookup_native(&self, name: &QName, arity: usize) -> Option<NativeFn> {
        self.natives.get(&(name.clone(), arity)).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::store::shared_store;

    fn ctx() -> DynamicContext {
        DynamicContext::new(shared_store(), Rc::new(StaticContext::default()))
    }

    #[test]
    fn scoped_binding_and_shadowing() {
        let mut c = ctx();
        let x = QName::local("x");
        c.bind_global(x.clone(), vec![Item::integer(1)]);
        c.push_scope();
        c.bind_var(x.clone(), vec![Item::integer(2)]);
        assert_eq!(c.lookup_var(&x).unwrap().len(), 1);
        assert_eq!(
            c.lookup_var(&x).unwrap()[0]
                .as_atomic()
                .unwrap()
                .string_value(),
            "2"
        );
        c.pop_scope();
        assert_eq!(
            c.lookup_var(&x).unwrap()[0]
                .as_atomic()
                .unwrap()
                .string_value(),
            "1"
        );
    }

    #[test]
    fn function_frames_hide_caller_locals_but_see_globals() {
        let mut c = ctx();
        let g = QName::local("g");
        let l = QName::local("l");
        c.bind_global(g.clone(), vec![Item::integer(42)]);
        c.push_scope();
        c.bind_var(l.clone(), vec![Item::integer(7)]);
        c.push_function_frame();
        assert!(c.lookup_var(&l).is_none(), "caller locals are hidden");
        assert!(c.lookup_var(&g).is_some(), "globals remain visible");
        c.pop_function_frame();
        assert!(c.lookup_var(&l).is_some());
        c.pop_scope();
    }

    #[test]
    fn assign_updates_existing_binding() {
        let mut c = ctx();
        let x = QName::local("x");
        c.push_scope();
        c.bind_var(x.clone(), vec![]);
        c.assign_var(&x, vec![Item::integer(9)]).unwrap();
        assert_eq!(
            c.lookup_var(&x).unwrap()[0]
                .as_atomic()
                .unwrap()
                .string_value(),
            "9"
        );
        let y = QName::local("y");
        assert!(c.assign_var(&y, vec![]).is_err());
    }

    #[test]
    fn focus_save_restore() {
        let mut c = ctx();
        assert!(c.context_item().is_err());
        let r = c.with_focus(Item::integer(5), 2, 10, |c| {
            let f = c.focus.as_ref().unwrap();
            (f.position, f.size)
        });
        assert_eq!(r, (2, 10));
        assert!(c.focus.is_none());
    }
}
