//! Plan IR: a compact, analyzable representation lowered from the AST.
//!
//! The interpreter in `eval/` walks the AST directly and materializes every
//! intermediate sequence. The plan tier lowers a compiled module once into a
//! small IR on which four rewrites run:
//!
//! * **constant folding** — literal arithmetic, comparisons, ranges and
//!   boolean short-circuits collapse to [`Plan::Const`]. A computation is
//!   only folded when it *succeeds*; anything that would raise a dynamic
//!   error (`1 div 0`) is left in place so the error surfaces at run time
//!   with the same code the interpreter produces.
//! * **step fusion** — `descendant-or-self::node()/child::t` (the `//t`
//!   expansion) fuses into a single `descendant::t` step when the child
//!   step's predicates are statically position-free, halving the number of
//!   per-node passes on the hottest axis in the §7 workloads.
//! * **predicate pushdown** — predicates are classified into pipeline
//!   *stages* applied per candidate while the axis enumerates:
//!   positional takes (`[1]`, `[last()]`), attribute-equality probes
//!   (`[@id = "x"]`, answered straight off the attribute table), lazy
//!   position-free filters, and a buffered general tail for everything
//!   positional.
//! * **early-exit rewrites** — `exists()`, `empty()`, `not()` and `count()`
//!   over unshadowed `fn:` names become dedicated plan nodes the streaming
//!   executor can satisfy without draining their operand.
//!
//! Anything the IR does not model (constructors, updates, full-text,
//! type-switch, events, …) lowers to [`Plan::Fallback`], which the executor
//! hands verbatim to the interpreter — the plan tier is a fast path, never
//! a second dialect.
//!
//! # Streaming soundness
//!
//! The executor evaluates a [`PathPlan`] lazily only when `lazy` is set.
//! Lowering grants it exactly when every step is an axis step whose
//! predicate stages are all *statically infallible*: a lazy cursor then
//! either fails before yielding its first item or on fuel exhaustion, so
//! depth-first pulling can never reorder which dynamic error surfaces
//! relative to the interpreter's breadth-first walk — and `exists()`-style
//! early exits are always observationally safe. Per-step `streamed` flags
//! additionally record whether concatenating per-node axis output preserves
//! document order (tracked through the static [`Inv`] invariant lattice);
//! steps without the flag run as buffered sort barriers inside the lazy
//! pipeline, exactly reproducing the interpreter's normalisation.

use std::rc::Rc;

use xqib_dom::{name::FN_NS, QName};
use xqib_xdm::{
    effective_boolean_value, general_compare, value_compare, Atomic, CompOp, Item, Sequence,
    SequenceType,
};

use crate::ast::{
    ArithOp, Axis, AxisStep, Expr, FlworClause, KindTest, NodeTest, PathStart, Statement, StepExpr,
};
use crate::context::StaticContext;
use crate::eval::arith::{apply_arith, neg_atomic, range_bounds};
use crate::eval::path::{static_positional_take, PosTake};
use crate::runtime::CompiledQuery;

/// Rewrite counters, exposed through `browser:planCache()` introspection.
#[derive(Debug, Default, Clone, Copy)]
pub struct PlanStats {
    /// subexpressions collapsed to constants
    pub folded: u32,
    /// `//t` expansions fused into single `descendant::t` steps
    pub fused_steps: u32,
    /// predicates pushed into axis enumeration (filters + attribute probes)
    pub pushed_preds: u32,
    /// early-exit rewrites (`exists`/`empty`/`not`/`count`, positional takes)
    pub early_exits: u32,
    /// paths eligible for lazy streaming evaluation
    pub lazy_paths: u32,
    /// subexpressions lowered to interpreter fallbacks
    pub fallbacks: u32,
}

/// A lowered main module: globals + statement list, sharing the static
/// context of the [`CompiledQuery`] it was lowered from.
pub struct CompiledPlan {
    pub(crate) sctx: Rc<StaticContext>,
    pub(crate) globals: Vec<PlanGlobal>,
    pub(crate) body: Vec<PlanStmt>,
    pub(crate) stats: PlanStats,
}

impl CompiledPlan {
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    pub fn static_context(&self) -> &Rc<StaticContext> {
        &self.sctx
    }
}

pub(crate) struct PlanGlobal {
    pub name: QName,
    /// `None` means `external`.
    pub init: Option<Plan>,
}

/// Mirrors [`Statement`] with lowered expressions.
pub(crate) enum PlanStmt {
    VarDecl { name: QName, init: Option<Plan> },
    Assign { name: QName, value: Plan },
    While { cond: Plan, body: Vec<PlanStmt> },
    ExitWith(Plan),
    Expr(Plan),
}

/// The expression IR. Every node evaluates against the same
/// `DynamicContext` the interpreter uses, so fallbacks and plan nodes
/// compose freely within one query.
pub(crate) enum Plan {
    Const(Sequence),
    Var(QName),
    ContextItem,
    Seq(Vec<Plan>),
    Range(Box<Plan>, Box<Plan>),
    Arith(ArithOp, Box<Plan>, Box<Plan>),
    Neg(Box<Plan>),
    ValueComp(CompOp, Box<Plan>, Box<Plan>),
    GeneralComp(CompOp, Box<Plan>, Box<Plan>),
    And(Box<Plan>, Box<Plan>),
    Or(Box<Plan>, Box<Plan>),
    If {
        cond: Box<Plan>,
        then: Box<Plan>,
        els: Box<Plan>,
    },
    Flwor {
        clauses: Vec<PlanClause>,
        ret: Box<Plan>,
    },
    Path(PathPlan),
    /// `exists(src)` (`negate` = false) / `empty(src)` (`negate` = true)
    Exists {
        src: Box<Plan>,
        negate: bool,
    },
    Count(Box<Plan>),
    Not(Box<Plan>),
    /// generic function call through the interpreter's dispatch chain
    Call {
        name: QName,
        args: Vec<Plan>,
    },
    /// anything the IR does not model: evaluated by the interpreter
    Fallback(Rc<Expr>),
}

pub(crate) enum PlanClause {
    For {
        var: QName,
        at: Option<QName>,
        ty: Option<SequenceType>,
        seq: Plan,
    },
    Let {
        var: QName,
        expr: Plan,
    },
    Where(Plan),
    OrderBy(Vec<PlanOrderSpec>),
}

pub(crate) struct PlanOrderSpec {
    pub key: Plan,
    pub descending: bool,
    pub empty_least: bool,
}

/// A lowered path expression.
pub(crate) struct PathPlan {
    pub start: PathStartPlan,
    pub steps: Vec<PlanStep>,
    /// Lazy pull evaluation is observationally equivalent: every step is an
    /// axis step and every predicate stage is statically infallible (a lazy
    /// cursor can then only fail before its first item or on fuel).
    pub lazy: bool,
}

#[derive(PartialEq, Eq, Clone, Copy)]
pub(crate) enum PathStartPlan {
    /// `/...` — the root of the context node's tree
    Root,
    /// relative path: the focus item, or a leading filter step when there
    /// is no focus (the interpreter's `doc("x")//y` shape)
    Relative,
}

pub(crate) enum PlanStep {
    Axis(PlanAxisStep),
    /// mid-path (or leading) filter step — always an eager barrier
    Filter {
        primary: Plan,
        preds: Vec<PlanPred>,
    },
}

pub(crate) struct PlanAxisStep {
    pub axis: Axis,
    pub test: NodeTest,
    pub stages: Vec<PredStage>,
    /// Concatenating per-node output in input order preserves document
    /// order with no duplicates (given the start turns out to be at most
    /// one item at run time), so no sort barrier is needed.
    pub streamed: bool,
}

/// A lowered predicate plus the static facts the executor needs.
pub(crate) struct PlanPred {
    pub plan: Plan,
    /// `[k]` / `[last()]` recognised on the original expression — mirrors
    /// the interpreter's positional short-circuit
    pub take: Option<PosTake>,
    /// truth value is independent of `position()`/`last()` and never a
    /// numeric position test, so it can be decided per candidate
    pub positional_free: bool,
    /// cannot raise a dynamic error (fuel aside) when the focus is a node
    pub infallible: bool,
}

/// One stage of an axis step's predicate pipeline, applied in order.
pub(crate) enum PredStage {
    /// positional take: index the surviving candidates of this node
    Take(PosTake),
    /// `[@name = "literal"]` answered directly off the attribute table
    AttrEq { name: QName, value: Rc<str> },
    /// position-free predicate: tested one candidate at a time
    Filter(PlanPred),
    /// positional tail: buffered per node and applied with true positions,
    /// exactly like the interpreter
    General(Vec<PlanPred>),
}

impl PredStage {
    pub(crate) fn infallible(&self) -> bool {
        match self {
            PredStage::Take(_) | PredStage::AttrEq { .. } => true,
            PredStage::Filter(p) => p.infallible,
            PredStage::General(ps) => ps.iter().all(|p| p.infallible),
        }
    }
}

// ---------------------------------------------------------------------------
// lowering
// ---------------------------------------------------------------------------

/// Lowers a compiled module to a plan. Lowering never fails: uncovered
/// constructs become interpreter fallbacks.
pub fn lower(q: &CompiledQuery) -> CompiledPlan {
    let sctx = q.sctx.clone();
    let mut stats = PlanStats::default();
    let globals = q
        .module
        .prolog
        .variables
        .iter()
        .map(|v| PlanGlobal {
            name: v.name.clone(),
            init: v.init.as_ref().map(|e| lower_expr(&sctx, e, &mut stats)),
        })
        .collect();
    let body = q
        .module
        .body
        .iter()
        .map(|s| lower_stmt(&sctx, s, &mut stats))
        .collect();
    CompiledPlan {
        sctx,
        globals,
        body,
        stats,
    }
}

fn lower_stmt(sctx: &StaticContext, s: &Statement, stats: &mut PlanStats) -> PlanStmt {
    match s {
        Statement::VarDecl { name, ty: _, init } => PlanStmt::VarDecl {
            name: name.clone(),
            init: init.as_ref().map(|e| lower_expr(sctx, e, stats)),
        },
        Statement::Assign { name, value } => PlanStmt::Assign {
            name: name.clone(),
            value: lower_expr(sctx, value, stats),
        },
        Statement::While { cond, body } => PlanStmt::While {
            cond: lower_expr(sctx, cond, stats),
            body: body.iter().map(|b| lower_stmt(sctx, b, stats)).collect(),
        },
        Statement::ExitWith(e) => PlanStmt::ExitWith(lower_expr(sctx, e, stats)),
        Statement::Expr(e) => PlanStmt::Expr(lower_expr(sctx, e, stats)),
    }
}

pub(crate) fn lower_expr(sctx: &StaticContext, e: &Expr, stats: &mut PlanStats) -> Plan {
    match e {
        Expr::Literal(a) => Plan::Const(vec![Item::Atomic(a.clone())]),
        Expr::VarRef(q) => Plan::Var(q.clone()),
        Expr::ContextItem => Plan::ContextItem,
        Expr::Sequence(es) => {
            let parts: Vec<Plan> = es.iter().map(|x| lower_expr(sctx, x, stats)).collect();
            fold_seq(parts, stats)
        }
        Expr::Range(a, b) => fold_range(
            lower_expr(sctx, a, stats),
            lower_expr(sctx, b, stats),
            stats,
        ),
        Expr::Arith(op, a, b) => fold_arith(
            *op,
            lower_expr(sctx, a, stats),
            lower_expr(sctx, b, stats),
            stats,
        ),
        Expr::Neg(a) => fold_neg(lower_expr(sctx, a, stats), stats),
        Expr::ValueComp(op, a, b) => fold_value_comp(
            *op,
            lower_expr(sctx, a, stats),
            lower_expr(sctx, b, stats),
            stats,
        ),
        Expr::GeneralComp(op, a, b) => fold_general_comp(
            *op,
            lower_expr(sctx, a, stats),
            lower_expr(sctx, b, stats),
            stats,
        ),
        Expr::And(a, b) => fold_and(
            lower_expr(sctx, a, stats),
            lower_expr(sctx, b, stats),
            stats,
        ),
        Expr::Or(a, b) => fold_or(
            lower_expr(sctx, a, stats),
            lower_expr(sctx, b, stats),
            stats,
        ),
        Expr::If { cond, then, els } => fold_if(
            lower_expr(sctx, cond, stats),
            lower_expr(sctx, then, stats),
            lower_expr(sctx, els, stats),
            stats,
        ),
        Expr::Flwor { clauses, ret } => Plan::Flwor {
            clauses: clauses
                .iter()
                .map(|c| lower_clause(sctx, c, stats))
                .collect(),
            ret: Box::new(lower_expr(sctx, ret, stats)),
        },
        Expr::Path { start, steps } => lower_path(sctx, *start, steps, stats),
        Expr::FunctionCall { name, args } => lower_call(sctx, name, args, stats),
        other => {
            stats.fallbacks += 1;
            Plan::Fallback(Rc::new(other.clone()))
        }
    }
}

fn lower_clause(sctx: &StaticContext, c: &FlworClause, stats: &mut PlanStats) -> PlanClause {
    match c {
        FlworClause::For { var, at, ty, seq } => PlanClause::For {
            var: var.clone(),
            at: at.clone(),
            ty: ty.clone(),
            seq: lower_expr(sctx, seq, stats),
        },
        FlworClause::Let { var, ty: _, expr } => PlanClause::Let {
            var: var.clone(),
            expr: lower_expr(sctx, expr, stats),
        },
        FlworClause::Where(cond) => PlanClause::Where(lower_expr(sctx, cond, stats)),
        FlworClause::OrderBy { specs, stable: _ } => PlanClause::OrderBy(
            specs
                .iter()
                .map(|s| PlanOrderSpec {
                    key: lower_expr(sctx, &s.key, stats),
                    descending: s.descending,
                    empty_least: s.empty_least,
                })
                .collect(),
        ),
    }
}

/// True if `name(#arity)` resolves to the `fn:` built-in: right namespace
/// and not shadowed by a user/module declaration. The `fn:` namespace is
/// reserved (natives register under `browser:`), so this is a static fact.
fn is_fn_builtin(sctx: &StaticContext, name: &QName, arity: usize) -> bool {
    name.ns.as_deref() == Some(FN_NS) && sctx.lookup_function(name, arity).is_none()
}

fn lower_call(sctx: &StaticContext, name: &QName, args: &[Expr], stats: &mut PlanStats) -> Plan {
    if is_fn_builtin(sctx, name, args.len())
        && args.len() == 1
        && matches!(&*name.local, "exists" | "empty" | "count" | "not")
    {
        stats.early_exits += 1;
        let arg = lower_expr(sctx, &args[0], stats);
        return match &*name.local {
            "exists" => fold_exists(arg, false, stats),
            "empty" => fold_exists(arg, true, stats),
            "count" => fold_count(arg, stats),
            _ => fold_not(arg, stats),
        };
    }
    Plan::Call {
        name: name.clone(),
        args: args.iter().map(|a| lower_expr(sctx, a, stats)).collect(),
    }
}

// ---------------------------------------------------------------------------
// path lowering: fusion, pushdown, streaming analysis
// ---------------------------------------------------------------------------

/// Static ordering facts about the node sequence flowing between steps,
/// assuming the path start resolves to at most one item (the executor
/// checks that at run time and falls back to eager evaluation otherwise).
#[derive(Clone, Copy)]
struct Inv {
    /// document order, duplicate-free
    ordered: bool,
    /// additionally pairwise non-nested (no node contains another)
    disjoint: bool,
    /// at most one node
    one: bool,
}

/// Can per-node output of `axis` be concatenated in input order without a
/// sort barrier?
fn step_streamable(inv: Inv, axis: Axis) -> bool {
    if inv.one {
        // a single context node emits every axis in (possibly reversed)
        // document order with no duplicates — mirrors the interpreter's
        // single-input sort elision
        return true;
    }
    if inv.ordered && inv.disjoint {
        // subtree-confined axes over ordered, non-nested inputs
        return crate::eval::path::axis_concat_stays_sorted(axis);
    }
    if inv.ordered {
        // attributes sit between their owner and its children, so even
        // nested (but ordered, duplicate-free) inputs concatenate sorted;
        // self is a subset
        return matches!(axis, Axis::Attribute | Axis::SelfAxis);
    }
    false
}

fn step_out_inv(inv: Inv, axis: Axis, streamed: bool, has_take: bool) -> Inv {
    let out = if !streamed {
        // barrier: sort_dedup leaves order without the non-nesting fact
        Inv {
            ordered: true,
            disjoint: false,
            one: false,
        }
    } else {
        match axis {
            Axis::SelfAxis => inv,
            Axis::Child | Axis::Attribute | Axis::FollowingSibling | Axis::PrecedingSibling => {
                Inv {
                    ordered: true,
                    disjoint: true,
                    one: false,
                }
            }
            Axis::Parent => Inv {
                ordered: true,
                disjoint: true,
                one: inv.one,
            },
            Axis::Descendant
            | Axis::DescendantOrSelf
            | Axis::Ancestor
            | Axis::AncestorOrSelf
            | Axis::Following
            | Axis::Preceding => Inv {
                ordered: true,
                disjoint: false,
                one: false,
            },
        }
    };
    if inv.one && has_take {
        // a positional take keeps at most one survivor per context node
        Inv {
            ordered: true,
            disjoint: true,
            one: true,
        }
    } else {
        out
    }
}

fn lower_path(
    sctx: &StaticContext,
    start: PathStart,
    steps: &[StepExpr],
    stats: &mut PlanStats,
) -> Plan {
    // `//t` parses as RootDescendant; materialize the d-o-s step so the
    // fusion pass below sees the same shape as an explicit `/descendant-
    // or-self::node()/child::t`.
    let mut ast_steps: Vec<StepExpr> = Vec::with_capacity(steps.len() + 1);
    let start_plan = match start {
        PathStart::Root => PathStartPlan::Root,
        PathStart::RootDescendant => {
            ast_steps.push(StepExpr::Axis(AxisStep {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::Kind(KindTest::AnyKind),
                predicates: vec![],
            }));
            PathStartPlan::Root
        }
        PathStart::Relative => PathStartPlan::Relative,
    };
    ast_steps.extend(steps.iter().cloned());

    let mut plan_steps: Vec<PlanStep> = Vec::with_capacity(ast_steps.len());
    let mut lazy = true;
    // optimistic: the start is at most one item (verified at run time)
    let mut inv = Inv {
        ordered: true,
        disjoint: true,
        one: true,
    };
    let mut idx = 0;
    while idx < ast_steps.len() {
        match &ast_steps[idx] {
            StepExpr::Filter {
                primary,
                predicates,
            } => {
                let leading = idx == 0 && start_plan == PathStartPlan::Relative;
                if !leading {
                    // a mid-path filter step is an eager barrier with
                    // arbitrary (fallible) primaries — no lazy evaluation
                    lazy = false;
                    inv = Inv {
                        ordered: false,
                        disjoint: false,
                        one: false,
                    };
                }
                // a leading filter is consumed while resolving the start,
                // before the pipeline emits anything, so it keeps the
                // optimistic invariant
                plan_steps.push(PlanStep::Filter {
                    primary: lower_expr(sctx, primary, stats),
                    preds: predicates
                        .iter()
                        .map(|p| lower_pred(sctx, p, stats))
                        .collect(),
                });
            }
            StepExpr::Axis(ax) => {
                // fusion: d-o-s::node() (no predicates) + child::t[preds]
                // → descendant::t[preds], valid only when the child step's
                // predicates are position-free (`//x[1]` groups positions
                // per d-o-s node and must not fuse)
                let mut axis = ax.axis;
                let mut test = &ax.test;
                let mut predicates = &ax.predicates;
                if ax.axis == Axis::DescendantOrSelf
                    && matches!(ax.test, NodeTest::Kind(KindTest::AnyKind))
                    && ax.predicates.is_empty()
                {
                    if let Some(StepExpr::Axis(next)) = ast_steps.get(idx + 1) {
                        if next.axis == Axis::Child
                            && next.predicates.iter().all(|p| is_positional_free(sctx, p))
                        {
                            axis = Axis::Descendant;
                            test = &next.test;
                            predicates = &next.predicates;
                            stats.fused_steps += 1;
                            idx += 1;
                        }
                    }
                }
                let stages = lower_stages(sctx, predicates, stats);
                if !stages.iter().all(|s| s.infallible()) {
                    lazy = false;
                }
                let streamed = step_streamable(inv, axis);
                let has_take = stages.iter().any(|s| matches!(s, PredStage::Take(_)));
                inv = step_out_inv(inv, axis, streamed, has_take);
                plan_steps.push(PlanStep::Axis(PlanAxisStep {
                    axis,
                    test: test.clone(),
                    stages,
                    streamed,
                }));
            }
        }
        idx += 1;
    }

    if lazy && !plan_steps.is_empty() {
        stats.lazy_paths += 1;
    }
    Plan::Path(PathPlan {
        start: start_plan,
        steps: plan_steps,
        lazy,
    })
}

fn lower_stages(sctx: &StaticContext, preds: &[Expr], stats: &mut PlanStats) -> Vec<PredStage> {
    let mut stages = Vec::with_capacity(preds.len());
    let mut i = 0;
    while i < preds.len() {
        let p = &preds[i];
        if let Some(t) = static_positional_take(sctx, p) {
            stages.push(PredStage::Take(t));
            stats.early_exits += 1;
            i += 1;
            continue;
        }
        if let Some((name, value)) = attr_eq_pattern(p) {
            stages.push(PredStage::AttrEq { name, value });
            stats.pushed_preds += 1;
            i += 1;
            continue;
        }
        let lowered = lower_pred(sctx, p, stats);
        if lowered.positional_free {
            stages.push(PredStage::Filter(lowered));
            stats.pushed_preds += 1;
            i += 1;
            continue;
        }
        // first positional predicate: everything from here on needs true
        // positions over the surviving candidate list
        stages.push(PredStage::General(
            preds[i..]
                .iter()
                .map(|p| lower_pred(sctx, p, stats))
                .collect(),
        ));
        break;
    }
    stages
}

fn lower_pred(sctx: &StaticContext, e: &Expr, stats: &mut PlanStats) -> PlanPred {
    let take = static_positional_take(sctx, e);
    let positional_free = is_positional_free(sctx, e);
    let plan = lower_expr(sctx, e, stats);
    let infallible = plan_infallible(&plan);
    PlanPred {
        plan,
        take,
        positional_free,
        infallible,
    }
}

/// `[@name = "literal"]` (either operand order): answered by a direct
/// attribute-table probe. Matches the interpreter exactly: the attribute
/// atomizes to untyped, which a general comparison against a string casts
/// to string — plain string equality, and an absent attribute is `false`.
fn attr_eq_pattern(e: &Expr) -> Option<(QName, Rc<str>)> {
    let Expr::GeneralComp(CompOp::Eq, l, r) = e else {
        return None;
    };
    if let (Some(q), Some(v)) = (attr_step(l), string_lit(r)) {
        return Some((q, v));
    }
    if let (Some(q), Some(v)) = (attr_step(r), string_lit(l)) {
        return Some((q, v));
    }
    None
}

fn attr_step(e: &Expr) -> Option<QName> {
    let Expr::Path { start, steps } = e else {
        return None;
    };
    if *start != PathStart::Relative || steps.len() != 1 {
        return None;
    }
    match &steps[0] {
        StepExpr::Axis(AxisStep {
            axis: Axis::Attribute,
            test: NodeTest::Name(q),
            predicates,
        }) if predicates.is_empty() => Some(q.clone()),
        _ => None,
    }
}

fn string_lit(e: &Expr) -> Option<Rc<str>> {
    match e {
        Expr::Literal(Atomic::String(s)) => Some(s.clone()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// static analyses
// ---------------------------------------------------------------------------

/// A predicate is position-free when its truth value per candidate cannot
/// depend on `position()`/`last()` and cannot be a numeric position test:
/// it must be statically boolean-valued *and* never read the focus position.
fn is_positional_free(sctx: &StaticContext, e: &Expr) -> bool {
    boolean_valued(sctx, e) && focus_position_free(sctx, e)
}

/// Conservatively: does this expression always produce a value whose
/// predicate truth is the effective boolean value (never a numeric
/// singleton that would become a position test)?
fn boolean_valued(sctx: &StaticContext, e: &Expr) -> bool {
    match e {
        Expr::ValueComp(..)
        | Expr::GeneralComp(..)
        | Expr::NodeComp(..)
        | Expr::And(..)
        | Expr::Or(..)
        | Expr::Quantified { .. }
        | Expr::InstanceOf(..)
        | Expr::CastableAs(..)
        | Expr::FtContains { .. } => true,
        Expr::Literal(Atomic::Boolean(_) | Atomic::String(_)) => true,
        // node-set operators and paths ending in an axis step yield nodes
        // only — node sequences always take the EBV
        Expr::Union(..) | Expr::Intersect(..) | Expr::Except(..) => true,
        Expr::Path { steps, .. } => matches!(steps.last(), Some(StepExpr::Axis(_))),
        Expr::If { then, els, .. } => boolean_valued(sctx, then) && boolean_valued(sctx, els),
        Expr::FunctionCall { name, args } if is_fn_builtin(sctx, name, args.len()) => {
            matches!(
                &*name.local,
                "exists"
                    | "empty"
                    | "not"
                    | "boolean"
                    | "contains"
                    | "starts-with"
                    | "ends-with"
                    | "matches"
            )
        }
        _ => false,
    }
}

/// Conservatively: is this expression's value independent of the *focus
/// position* (`position()`/`last()`)? Nested step predicates rebind the
/// focus and are skipped; user-declared functions may read the caller's
/// focus and natives are opaque, so both reject.
fn focus_position_free(sctx: &StaticContext, e: &Expr) -> bool {
    let rec = |x: &Expr| focus_position_free(sctx, x);
    match e {
        Expr::Literal(_) | Expr::VarRef(_) | Expr::ContextItem => true,
        Expr::Sequence(es) => es.iter().all(rec),
        Expr::Range(a, b)
        | Expr::Arith(_, a, b)
        | Expr::ValueComp(_, a, b)
        | Expr::GeneralComp(_, a, b)
        | Expr::NodeComp(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b) => rec(a) && rec(b),
        Expr::Neg(a)
        | Expr::InstanceOf(a, _)
        | Expr::TreatAs(a, _)
        | Expr::CastableAs(a, _, _)
        | Expr::CastAs(a, _, _) => rec(a),
        Expr::If { cond, then, els } => rec(cond) && rec(then) && rec(els),
        Expr::Quantified {
            bindings,
            satisfies,
            ..
        } => bindings.iter().all(|(_, s)| rec(s)) && rec(satisfies),
        Expr::Flwor { clauses, ret } => {
            clauses.iter().all(|c| match c {
                FlworClause::For { seq, .. } => rec(seq),
                FlworClause::Let { expr, .. } => rec(expr),
                FlworClause::Where(cond) => rec(cond),
                FlworClause::OrderBy { specs, .. } => specs.iter().all(|s| rec(&s.key)),
            }) && rec(ret)
        }
        Expr::Path { steps, .. } => steps.iter().all(|s| match s {
            // axis steps carry no focus-reading expressions of their own;
            // their predicates get a fresh focus
            StepExpr::Axis(_) => true,
            StepExpr::Filter { primary, .. } => rec(primary),
        }),
        Expr::FunctionCall { name, args } => {
            if !is_fn_builtin(sctx, name, args.len()) {
                return false;
            }
            if args.is_empty() && matches!(&*name.local, "position" | "last") {
                return false;
            }
            args.iter().all(rec)
        }
        _ => false,
    }
}

/// Value classes for deciding whether a comparison can raise a type or
/// cast error. Nodes atomize to untyped in this (untyped) instantiation.
#[derive(PartialEq, Eq, Clone, Copy)]
pub(crate) enum ValClass {
    Empty,
    StrLike,
    Num,
    Bool,
    Other,
}

pub(crate) fn plan_class(p: &Plan) -> ValClass {
    match p {
        Plan::Const(seq) => {
            if seq.is_empty() {
                return ValClass::Empty;
            }
            let mut class: Option<ValClass> = None;
            for item in seq {
                let c = match item {
                    Item::Atomic(Atomic::String(_) | Atomic::Untyped(_)) => ValClass::StrLike,
                    Item::Atomic(a) if a.is_numeric() => ValClass::Num,
                    Item::Atomic(Atomic::Boolean(_)) => ValClass::Bool,
                    _ => ValClass::Other,
                };
                match class {
                    None => class = Some(c),
                    Some(prev) if prev == c => {}
                    Some(_) => return ValClass::Other,
                }
            }
            class.unwrap_or(ValClass::Other)
        }
        Plan::Path(pp) => {
            if yields_nodes_only(pp) {
                ValClass::StrLike
            } else {
                ValClass::Other
            }
        }
        Plan::Exists { .. } | Plan::Not(_) => ValClass::Bool,
        Plan::Count(_) => ValClass::Num,
        _ => ValClass::Other,
    }
}

pub(crate) fn yields_nodes_only(pp: &PathPlan) -> bool {
    match pp.steps.last() {
        Some(PlanStep::Axis(_)) => true,
        Some(PlanStep::Filter { .. }) => false,
        None => pp.start == PathStartPlan::Root,
    }
}

/// Comparing these two classes (after untyped promotion) can never raise:
/// strings/untyped compare as strings, numerics via double (NaN maps to a
/// boolean, not an error), booleans directly. Anything mixed can need a
/// cast or is a type error.
pub(crate) fn comparable_infallible(a: ValClass, b: ValClass) -> bool {
    a == ValClass::Empty || b == ValClass::Empty || (a == b && a != ValClass::Other)
}

/// At most one item, statically.
fn at_most_one(p: &Plan) -> bool {
    match p {
        Plan::Const(seq) => seq.len() <= 1,
        Plan::ContextItem | Plan::Exists { .. } | Plan::Not(_) | Plan::Count(_) => true,
        _ => false,
    }
}

/// Can taking the effective boolean value of this plan's result raise
/// `FORG0006`?
pub(crate) fn ebv_safe(p: &Plan) -> bool {
    match p {
        Plan::Const(seq) => effective_boolean_value(seq).is_ok(),
        Plan::Path(pp) => yields_nodes_only(pp),
        Plan::ValueComp(..)
        | Plan::GeneralComp(..)
        | Plan::And(..)
        | Plan::Or(..)
        | Plan::Exists { .. }
        | Plan::Not(_)
        | Plan::Count(_) => true,
        Plan::If { then, els, .. } => ebv_safe(then) && ebv_safe(els),
        _ => false,
    }
}

/// Conservatively: evaluated with a *node* focus (predicate context), can
/// this plan raise any dynamic error besides fuel exhaustion?
pub(crate) fn plan_infallible(p: &Plan) -> bool {
    match p {
        Plan::Const(_) | Plan::ContextItem => true,
        Plan::Seq(ps) => ps.iter().all(plan_infallible),
        Plan::Path(pp) => {
            pp.start == PathStartPlan::Root
                || pp.steps.iter().all(|s| match s {
                    PlanStep::Axis(ax) => ax.stages.iter().all(|st| st.infallible()),
                    PlanStep::Filter { .. } => false,
                })
        }
        Plan::GeneralComp(_, l, r) => {
            plan_infallible(l)
                && plan_infallible(r)
                && comparable_infallible(plan_class(l), plan_class(r))
        }
        Plan::ValueComp(_, l, r) => {
            plan_infallible(l)
                && plan_infallible(r)
                && comparable_infallible(plan_class(l), plan_class(r))
                && at_most_one(l)
                && at_most_one(r)
        }
        Plan::And(l, r) | Plan::Or(l, r) => {
            plan_infallible(l) && plan_infallible(r) && ebv_safe(l) && ebv_safe(r)
        }
        Plan::Exists { src, .. } | Plan::Count(src) => plan_infallible(src),
        Plan::Not(src) => plan_infallible(src) && ebv_safe(src),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// constant folding (success-only: dynamic errors stay dynamic)
// ---------------------------------------------------------------------------

/// The arithmetic operand rule over a constant sequence. `Err(())` means
/// "cannot fold" (the interpreter would raise or the shape is unexpected).
fn const_atomic(seq: &Sequence) -> Result<Option<Atomic>, ()> {
    match seq.len() {
        0 => Ok(None),
        1 => match &seq[0] {
            Item::Atomic(a) => Ok(Some(a.clone())),
            Item::Node(_) => Err(()),
        },
        _ => Err(()),
    }
}

fn fold_seq(parts: Vec<Plan>, stats: &mut PlanStats) -> Plan {
    if parts.len() == 1 {
        return parts.into_iter().next().expect("len checked");
    }
    if parts.iter().all(|p| matches!(p, Plan::Const(_))) {
        let mut out = Vec::new();
        for p in parts {
            let Plan::Const(seq) = p else { unreachable!() };
            out.extend(seq);
        }
        stats.folded += 1;
        return Plan::Const(out);
    }
    Plan::Seq(parts)
}

/// Ranges fold only when small: `1 to 1000000` stays a plan node the
/// executor streams without materializing.
const MAX_FOLDED_RANGE: i64 = 1024;

fn fold_range(l: Plan, r: Plan, stats: &mut PlanStats) -> Plan {
    if let (Plan::Const(a), Plan::Const(b)) = (&l, &r) {
        if let (Ok(x), Ok(y)) = (const_atomic(a), const_atomic(b)) {
            match range_bounds(x, y) {
                Ok(None) => {
                    stats.folded += 1;
                    return Plan::Const(vec![]);
                }
                Ok(Some((lo, hi))) if hi - lo < MAX_FOLDED_RANGE => {
                    stats.folded += 1;
                    return Plan::Const((lo..=hi).map(Item::integer).collect());
                }
                _ => {}
            }
        }
    }
    Plan::Range(Box::new(l), Box::new(r))
}

fn fold_arith(op: ArithOp, l: Plan, r: Plan, stats: &mut PlanStats) -> Plan {
    if let (Plan::Const(a), Plan::Const(b)) = (&l, &r) {
        match (const_atomic(a), const_atomic(b)) {
            (Ok(None), Ok(_)) | (Ok(Some(_)), Ok(None)) => {
                stats.folded += 1;
                return Plan::Const(vec![]);
            }
            (Ok(Some(x)), Ok(Some(y))) => {
                if let Ok(v) = apply_arith(op, &x, &y) {
                    stats.folded += 1;
                    return Plan::Const(vec![Item::Atomic(v)]);
                }
            }
            _ => {}
        }
    }
    Plan::Arith(op, Box::new(l), Box::new(r))
}

fn fold_neg(inner: Plan, stats: &mut PlanStats) -> Plan {
    if let Plan::Const(a) = &inner {
        if let Ok(v) = const_atomic(a) {
            if let Ok(seq) = neg_atomic(v) {
                stats.folded += 1;
                return Plan::Const(seq);
            }
        }
    }
    Plan::Neg(Box::new(inner))
}

fn fold_value_comp(op: CompOp, l: Plan, r: Plan, stats: &mut PlanStats) -> Plan {
    if let (Plan::Const(a), Plan::Const(b)) = (&l, &r) {
        if a.is_empty() || b.is_empty() {
            stats.folded += 1;
            return Plan::Const(vec![]);
        }
        if let (Ok(Some(x)), Ok(Some(y))) = (const_atomic(a), const_atomic(b)) {
            // literals are never untyped, so no promotion step is needed
            if !matches!(x, Atomic::Untyped(_)) && !matches!(y, Atomic::Untyped(_)) {
                if let Ok(v) = value_compare(op, &x, &y) {
                    stats.folded += 1;
                    return Plan::Const(vec![Item::boolean(v)]);
                }
            }
        }
    }
    Plan::ValueComp(op, Box::new(l), Box::new(r))
}

fn fold_general_comp(op: CompOp, l: Plan, r: Plan, stats: &mut PlanStats) -> Plan {
    if let (Plan::Const(a), Plan::Const(b)) = (&l, &r) {
        let atoms = |seq: &Sequence| -> Option<Vec<Atomic>> {
            seq.iter()
                .map(|i| match i {
                    Item::Atomic(a) => Some(a.clone()),
                    Item::Node(_) => None,
                })
                .collect()
        };
        if let (Some(xs), Some(ys)) = (atoms(a), atoms(b)) {
            if let Ok(v) = general_compare(op, &xs, &ys) {
                stats.folded += 1;
                return Plan::Const(vec![Item::boolean(v)]);
            }
        }
    }
    Plan::GeneralComp(op, Box::new(l), Box::new(r))
}

fn fold_and(l: Plan, r: Plan, stats: &mut PlanStats) -> Plan {
    if let Plan::Const(a) = &l {
        match effective_boolean_value(a) {
            // short-circuit exactly like the interpreter: a false left
            // operand means the right is never evaluated
            Ok(false) => {
                stats.folded += 1;
                return Plan::Const(vec![Item::boolean(false)]);
            }
            Ok(true) => {
                if let Plan::Const(b) = &r {
                    if let Ok(v) = effective_boolean_value(b) {
                        stats.folded += 1;
                        return Plan::Const(vec![Item::boolean(v)]);
                    }
                }
            }
            Err(_) => {}
        }
    }
    Plan::And(Box::new(l), Box::new(r))
}

fn fold_or(l: Plan, r: Plan, stats: &mut PlanStats) -> Plan {
    if let Plan::Const(a) = &l {
        match effective_boolean_value(a) {
            Ok(true) => {
                stats.folded += 1;
                return Plan::Const(vec![Item::boolean(true)]);
            }
            Ok(false) => {
                if let Plan::Const(b) = &r {
                    if let Ok(v) = effective_boolean_value(b) {
                        stats.folded += 1;
                        return Plan::Const(vec![Item::boolean(v)]);
                    }
                }
            }
            Err(_) => {}
        }
    }
    Plan::Or(Box::new(l), Box::new(r))
}

fn fold_if(cond: Plan, then: Plan, els: Plan, stats: &mut PlanStats) -> Plan {
    if let Plan::Const(c) = &cond {
        if let Ok(b) = effective_boolean_value(c) {
            stats.folded += 1;
            // the untaken branch is never evaluated by the interpreter
            // either, so dropping it cannot elide an error
            return if b { then } else { els };
        }
    }
    Plan::If {
        cond: Box::new(cond),
        then: Box::new(then),
        els: Box::new(els),
    }
}

fn fold_exists(src: Plan, negate: bool, stats: &mut PlanStats) -> Plan {
    if let Plan::Const(seq) = &src {
        stats.folded += 1;
        return Plan::Const(vec![Item::boolean(seq.is_empty() == negate)]);
    }
    Plan::Exists {
        src: Box::new(src),
        negate,
    }
}

fn fold_count(src: Plan, stats: &mut PlanStats) -> Plan {
    if let Plan::Const(seq) = &src {
        stats.folded += 1;
        return Plan::Const(vec![Item::integer(seq.len() as i64)]);
    }
    Plan::Count(Box::new(src))
}

fn fold_not(src: Plan, stats: &mut PlanStats) -> Plan {
    if let Plan::Const(seq) = &src {
        if let Ok(b) = effective_boolean_value(seq) {
            stats.folded += 1;
            return Plan::Const(vec![Item::boolean(!b)]);
        }
    }
    Plan::Not(Box::new(src))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime;

    fn plan_of(src: &str) -> CompiledPlan {
        lower(&runtime::compile(src).expect("compiles"))
    }

    fn body_plan(p: &CompiledPlan) -> &Plan {
        match p.body.first().expect("one statement") {
            PlanStmt::Expr(plan) => plan,
            _ => panic!("expected an expression statement"),
        }
    }

    #[test]
    fn folds_literal_arithmetic() {
        let p = plan_of("1 + 2 * 3");
        assert!(p.stats.folded >= 2);
        match body_plan(&p) {
            Plan::Const(seq) => {
                assert_eq!(seq.len(), 1);
                assert!(matches!(&seq[0], Item::Atomic(Atomic::Integer(7))));
            }
            _ => panic!("expected a folded constant"),
        }
    }

    #[test]
    fn division_by_zero_stays_dynamic() {
        let p = plan_of("1 div 0");
        assert!(
            matches!(body_plan(&p), Plan::Arith(..)),
            "folding must not swallow the runtime error"
        );
    }

    #[test]
    fn fuses_descendant_child() {
        let p = plan_of("//item");
        assert_eq!(p.stats.fused_steps, 1);
        match body_plan(&p) {
            Plan::Path(pp) => {
                assert_eq!(pp.steps.len(), 1);
                match &pp.steps[0] {
                    PlanStep::Axis(ax) => assert_eq!(ax.axis, Axis::Descendant),
                    _ => panic!("expected an axis step"),
                }
                assert!(pp.lazy);
            }
            _ => panic!("expected a path"),
        }
    }

    #[test]
    fn positional_predicate_blocks_fusion() {
        let p = plan_of("//item[1]");
        assert_eq!(
            p.stats.fused_steps, 0,
            "`//x[1]` groups positions per d-o-s node; fusing would change the result"
        );
    }

    #[test]
    fn attr_eq_predicate_becomes_probe_stage() {
        let p = plan_of("//item[@id = \"x\"]");
        match body_plan(&p) {
            Plan::Path(pp) => {
                assert!(pp.lazy);
                let PlanStep::Axis(ax) = &pp.steps[0] else {
                    panic!("axis step");
                };
                assert!(matches!(ax.stages[0], PredStage::AttrEq { .. }));
            }
            _ => panic!("expected a path"),
        }
        assert!(p.stats.pushed_preds >= 1);
    }

    #[test]
    fn exists_lowered_to_early_exit_node() {
        let p = plan_of("exists(//a)");
        assert!(matches!(body_plan(&p), Plan::Exists { negate: false, .. }));
        let p = plan_of("empty(//a)");
        assert!(matches!(body_plan(&p), Plan::Exists { negate: true, .. }));
    }

    #[test]
    fn shadowed_builtin_is_not_fused() {
        let p = plan_of(
            "declare namespace f = \"http://www.w3.org/2005/xpath-functions\";\n\
             declare function f:exists($x) { 42 };\n\
             f:exists(//a)",
        );
        assert!(
            matches!(body_plan(&p), Plan::Call { .. }),
            "a user-declared fn:exists must go through the generic call path"
        );
    }

    #[test]
    fn position_free_comparison_streams_under_filter_stage() {
        let p = plan_of("//entry[author = \"Kim\"]");
        match body_plan(&p) {
            Plan::Path(pp) => {
                assert!(pp.lazy, "string-vs-node comparison is infallible");
                let PlanStep::Axis(ax) = &pp.steps[0] else {
                    panic!("axis step");
                };
                match &ax.stages[0] {
                    PredStage::Filter(pred) => {
                        assert!(pred.positional_free);
                        assert!(pred.infallible);
                    }
                    _ => panic!("expected a filter stage"),
                }
            }
            _ => panic!("expected a path"),
        }
    }

    #[test]
    fn arithmetic_predicate_is_not_lazy() {
        // `@n + 1` can raise FORG0001 per candidate — the whole path must
        // stay eager so error order matches the interpreter
        let p = plan_of("//entry[@n + 1 = 2]");
        match body_plan(&p) {
            Plan::Path(pp) => assert!(!pp.lazy),
            _ => panic!("expected a path"),
        }
    }

    #[test]
    fn position_call_is_not_position_free() {
        let p = plan_of("//entry[position() = 2]");
        match body_plan(&p) {
            Plan::Path(pp) => {
                let PlanStep::Axis(ax) = pp.steps.last().expect("step") else {
                    panic!("axis step");
                };
                assert!(matches!(ax.stages[0], PredStage::General(_)));
            }
            _ => panic!("expected a path"),
        }
    }

    #[test]
    fn if_with_constant_condition_picks_branch() {
        let p = plan_of("if (1 = 1) then \"a\" else (1 div 0)");
        match body_plan(&p) {
            Plan::Const(seq) => assert_eq!(seq.len(), 1),
            _ => panic!("constant condition should fold"),
        }
    }

    #[test]
    fn uncovered_constructs_fall_back() {
        let p = plan_of("<a>{1}</a>");
        assert!(matches!(body_plan(&p), Plan::Fallback(_)));
        assert_eq!(p.stats.fallbacks, 1);
    }
}
