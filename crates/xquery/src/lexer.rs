//! The XQuery lexer.
//!
//! A resettable streaming tokenizer: the parser can snapshot and restore the
//! byte position, which is how direct XML constructors are handled — on
//! seeing `<` in expression-start position the parser switches to raw
//! character scanning at the lexer's current offset (the standard technique
//! for XQuery's dual lexical state).

use xqib_xdm::{XdmError, XdmResult};

use crate::token::{Tok, Token};

/// Streaming tokenizer over the query source.
#[derive(Debug, Clone)]
pub struct Lexer<'a> {
    pub src: &'a str,
    pub pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn bytes(&self) -> &'a [u8] {
        self.src.as_bytes()
    }

    pub fn peek_byte(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes().get(self.pos + off).copied()
    }

    /// Skips whitespace and (nested) XQuery comments `(: … :)`.
    pub fn skip_trivia(&mut self) -> XdmResult<()> {
        loop {
            match self.peek_byte() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'(') if self.peek_at(1) == Some(b':') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1;
                    while depth > 0 {
                        match (self.peek_byte(), self.peek_at(1)) {
                            (Some(b'('), Some(b':')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(b':'), Some(b')')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(XdmError::new(
                                    "XPST0003",
                                    format!("unterminated comment at byte {start}"),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> XdmResult<Token> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek_byte() else {
            return Ok(Token {
                tok: Tok::Eof,
                start,
                end: start,
            });
        };
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semicolon
            }
            b'@' => {
                self.pos += 1;
                Tok::At
            }
            b'$' => {
                self.pos += 1;
                Tok::Dollar
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'-' => {
                self.pos += 1;
                Tok::Minus
            }
            b'|' => {
                self.pos += 1;
                Tok::Pipe
            }
            b'?' => {
                self.pos += 1;
                Tok::Question
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'!' => {
                if self.peek_at(1) == Some(b'=') {
                    self.pos += 2;
                    Tok::NotEq
                } else {
                    return Err(XdmError::new(
                        "XPST0003",
                        format!("unexpected `!` at byte {start}"),
                    ));
                }
            }
            b'<' => match self.peek_at(1) {
                Some(b'=') => {
                    self.pos += 2;
                    Tok::LtEq
                }
                Some(b'<') => {
                    self.pos += 2;
                    Tok::LtLt
                }
                _ => {
                    self.pos += 1;
                    Tok::Lt
                }
            },
            b'>' => match self.peek_at(1) {
                Some(b'=') => {
                    self.pos += 2;
                    Tok::GtEq
                }
                Some(b'>') => {
                    self.pos += 2;
                    Tok::GtGt
                }
                _ => {
                    self.pos += 1;
                    Tok::Gt
                }
            },
            b'/' => {
                if self.peek_at(1) == Some(b'/') {
                    self.pos += 2;
                    Tok::SlashSlash
                } else {
                    self.pos += 1;
                    Tok::Slash
                }
            }
            b'.' => {
                if self.peek_at(1) == Some(b'.') {
                    self.pos += 2;
                    Tok::DotDot
                } else if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    return self.lex_number(start);
                } else {
                    self.pos += 1;
                    Tok::Dot
                }
            }
            b':' => {
                if self.peek_at(1) == Some(b':') {
                    self.pos += 2;
                    Tok::ColonColon
                } else if self.peek_at(1) == Some(b'=') {
                    self.pos += 2;
                    Tok::ColonEq
                } else {
                    return Err(XdmError::new(
                        "XPST0003",
                        format!("unexpected `:` at byte {start}"),
                    ));
                }
            }
            b'*' => {
                self.pos += 1;
                // `*:local`
                if self.peek_byte() == Some(b':') && self.peek_at(1).is_some_and(is_name_start) {
                    self.pos += 1;
                    let local = self.lex_ncname();
                    Tok::LocalWildcard(local)
                } else {
                    Tok::Star
                }
            }
            b'"' | b'\'' => return self.lex_string(start),
            c if c.is_ascii_digit() => return self.lex_number(start),
            c if is_name_start(c) => {
                let first = self.lex_ncname();
                // QName: name ':' name with no intervening '::' or ':='
                if self.peek_byte() == Some(b':') && self.peek_at(1).is_some_and(is_name_start) {
                    self.pos += 1;
                    let local = self.lex_ncname();
                    Tok::PrefixedName(first, local)
                } else if self.peek_byte() == Some(b':') && self.peek_at(1) == Some(b'*') {
                    self.pos += 2;
                    Tok::NsWildcard(first)
                } else {
                    Tok::Name(first)
                }
            }
            other => {
                return Err(XdmError::new(
                    "XPST0003",
                    format!("unexpected character `{}` at byte {start}", other as char),
                ))
            }
        };
        Ok(Token {
            tok,
            start,
            end: self.pos,
        })
    }

    fn lex_ncname(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek_byte() {
            if is_name_char(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_string()
    }

    fn lex_number(&mut self, start: usize) -> XdmResult<Token> {
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek_byte() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    // `1 .. 2`: don't eat `..`
                    if self.peek_at(1) == Some(b'.') {
                        break;
                    }
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek_byte(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        let tok =
            if saw_exp {
                Tok::DoubleLit(text.parse::<f64>().map_err(|_| {
                    XdmError::new("XPST0003", format!("bad double literal `{text}`"))
                })?)
            } else if saw_dot {
                Tok::DecimalLit(text.parse::<f64>().map_err(|_| {
                    XdmError::new("XPST0003", format!("bad decimal literal `{text}`"))
                })?)
            } else {
                Tok::IntegerLit(text.parse::<i64>().map_err(|_| {
                    XdmError::new("XPST0003", format!("bad integer literal `{text}`"))
                })?)
            };
        Ok(Token {
            tok,
            start,
            end: self.pos,
        })
    }

    fn lex_string(&mut self, start: usize) -> XdmResult<Token> {
        let quote = self.peek_byte().expect("caller saw a quote");
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek_byte() {
                None => {
                    return Err(XdmError::new(
                        "XPST0003",
                        format!("unterminated string literal at byte {start}"),
                    ))
                }
                Some(b) if b == quote => {
                    // doubled quote = escaped quote
                    if self.peek_at(1) == Some(quote) {
                        out.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(b'&') => {
                    // entity reference inside string literal
                    let rest = &self.src[self.pos..];
                    let Some(semi) = rest.find(';') else {
                        return Err(XdmError::new(
                            "XPST0003",
                            "unterminated entity reference in string literal",
                        ));
                    };
                    let decoded = xqib_dom::parser::decode_entities(&rest[..=semi], self.pos)
                        .map_err(|e| XdmError::new("XPST0003", e.to_string()))?;
                    out.push_str(&decoded);
                    self.pos += semi + 1;
                }
                Some(_) => {
                    // consume one full UTF-8 char
                    let ch_len = utf8_len(self.bytes()[self.pos]);
                    out.push_str(&self.src[self.pos..self.pos + ch_len]);
                    self.pos += ch_len;
                }
            }
        }
        Ok(Token {
            tok: Tok::StringLit(out),
            start,
            end: self.pos,
        })
    }
}

pub(crate) fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

pub(crate) fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

pub(crate) fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.') || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token().unwrap();
            let done = t.tok == Tok::Eof;
            out.push(t.tok);
            if done {
                break;
            }
        }
        out.pop();
        out
    }

    #[test]
    fn names_and_qnames() {
        assert_eq!(
            toks("for $x in browser:alert"),
            vec![
                Tok::Name("for".into()),
                Tok::Dollar,
                Tok::Name("x".into()),
                Tok::Name("in".into()),
                Tok::PrefixedName("browser".into(), "alert".into()),
            ]
        );
    }

    #[test]
    fn axis_not_confused_with_qname() {
        assert_eq!(
            toks("child::node"),
            vec![
                Tok::Name("child".into()),
                Tok::ColonColon,
                Tok::Name("node".into()),
            ]
        );
    }

    #[test]
    fn wildcards() {
        assert_eq!(toks("*"), vec![Tok::Star]);
        assert_eq!(toks("html:*"), vec![Tok::NsWildcard("html".into())]);
        assert_eq!(toks("*:div"), vec![Tok::LocalWildcard("div".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::IntegerLit(42)]);
        assert_eq!(toks("3.25"), vec![Tok::DecimalLit(3.25)]);
        assert_eq!(toks("1.5e2"), vec![Tok::DoubleLit(150.0)]);
        assert_eq!(toks(".5"), vec![Tok::DecimalLit(0.5)]);
        // range: 1 to 2 written `1 .. ` is not XQuery, but `(1,2)` etc.
        assert_eq!(
            toks("1..2"),
            vec![Tok::IntegerLit(1), Tok::DotDot, Tok::IntegerLit(2)]
        );
    }

    #[test]
    fn strings_with_escapes_and_entities() {
        assert_eq!(
            toks(r#""he said ""hi""""#),
            vec![Tok::StringLit("he said \"hi\"".into())]
        );
        assert_eq!(toks("'a''b'"), vec![Tok::StringLit("a'b".into())]);
        assert_eq!(toks(r#""x &amp; y""#), vec![Tok::StringLit("x & y".into())]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a << b >> c <= d >= e != f := g"),
            vec![
                Tok::Name("a".into()),
                Tok::LtLt,
                Tok::Name("b".into()),
                Tok::GtGt,
                Tok::Name("c".into()),
                Tok::LtEq,
                Tok::Name("d".into()),
                Tok::GtEq,
                Tok::Name("e".into()),
                Tok::NotEq,
                Tok::Name("f".into()),
                Tok::ColonEq,
                Tok::Name("g".into()),
            ]
        );
    }

    #[test]
    fn slashes_and_dots() {
        assert_eq!(
            toks("//div/.."),
            vec![
                Tok::SlashSlash,
                Tok::Name("div".into()),
                Tok::Slash,
                Tok::DotDot
            ]
        );
        assert_eq!(toks("."), vec![Tok::Dot]);
    }

    #[test]
    fn comments_skipped_and_nested() {
        assert_eq!(
            toks("1 (: outer (: inner :) still :) 2"),
            vec![Tok::IntegerLit(1), Tok::IntegerLit(2)]
        );
        let mut lx = Lexer::new("(: never ends");
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            toks("\"héllo wörld\""),
            vec![Tok::StringLit("héllo wörld".into())]
        );
    }
}
