//! Top-level compile & execute API.
//!
//! Mirrors the plug-in's processing model (§4.1/Figure 1): compile the
//! script (prolog + body program), execute the prolog's declarations, run
//! the body statements (registering listeners, updating the page), apply
//! the pending updates, and later re-enter via [`invoke`] when the browser
//! dispatches an event to a registered listener.

use std::collections::HashMap;
use std::rc::Rc;

use xqib_dom::QName;
use xqib_xdm::{Item, Sequence, XdmError, XdmResult};

use crate::ast::{LibraryModule, MainModule};
use crate::context::{DynamicContext, StaticContext};
use crate::eval::{self, EXIT_CODE};
use crate::parser;

/// A registry of library modules (paper §3.4: modules double as web-service
/// endpoints; the app server and the plug-in both register modules here).
#[derive(Default, Clone)]
pub struct ModuleRegistry {
    modules: HashMap<String, Rc<LibraryModule>>,
    /// FNV hash of each module's source, for the plan-cache fingerprint.
    source_hashes: std::collections::BTreeMap<String, u64>,
}

impl ModuleRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and registers a library module; returns its namespace URI.
    pub fn register_source(&mut self, src: &str) -> XdmResult<String> {
        let module = parser::parse_library(src)?;
        let uri = module.uri.clone();
        self.source_hashes
            .insert(uri.clone(), crate::plancache::hash_bytes(src.as_bytes()));
        self.modules.insert(uri.clone(), Rc::new(module));
        Ok(uri)
    }

    pub fn get(&self, uri: &str) -> Option<Rc<LibraryModule>> {
        self.modules.get(uri).cloned()
    }

    /// Deterministic digest of the registry's contents — every URI and
    /// the hash of the source registered under it, in URI order. Part of
    /// the plan-cache key: a compiled plan bakes in the imported function
    /// declarations, so it must not outlive them.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::plancache::hash_bytes(b"modules");
        for (uri, src_hash) in &self.source_hashes {
            h = crate::plancache::mix(h, crate::plancache::hash_bytes(uri.as_bytes()));
            h = crate::plancache::mix(h, *src_hash);
        }
        h
    }
}

/// A compiled query: parsed module plus resolved static context.
pub struct CompiledQuery {
    pub module: MainModule,
    pub sctx: Rc<StaticContext>,
}

/// Compiles a main module with no imports.
pub fn compile(src: &str) -> XdmResult<CompiledQuery> {
    compile_with(src, &ModuleRegistry::new(), false)
}

/// Compiles a main module, resolving `import module` against the registry.
/// `browser_profile` enables the §4.2.1 security restrictions.
pub fn compile_with(
    src: &str,
    registry: &ModuleRegistry,
    browser_profile: bool,
) -> XdmResult<CompiledQuery> {
    let module = parser::parse_main(src)?;
    let mut sctx = StaticContext {
        browser_profile,
        ..Default::default()
    };
    // import modules (transitively flat: imported modules may not import)
    for import in &module.prolog.module_imports {
        if let Some(lib) = registry.get(&import.uri) {
            for f in &lib.prolog.functions {
                sctx.declare_function(f.clone());
            }
        }
        // unresolvable imports are allowed if every call resolves to a
        // native function at runtime (web-service stubs) — XPST0017 is
        // raised lazily otherwise.
    }
    for f in &module.prolog.functions {
        sctx.declare_function(f.clone());
    }
    sctx.options = module.prolog.options.clone();
    Ok(CompiledQuery {
        module,
        sctx: Rc::new(sctx),
    })
}

impl CompiledQuery {
    /// Runs the prolog's global variable declarations.
    pub fn init_globals(&self, ctx: &mut DynamicContext) -> XdmResult<()> {
        for var in &self.module.prolog.variables {
            if let Some(init) = &var.init {
                let v = eval::eval_expr(ctx, init)?;
                ctx.bind_global(var.name.clone(), v);
            } else if ctx.lookup_var(&var.name).is_none() {
                return Err(XdmError::undefined(format!(
                    "external variable ${} was not provided",
                    var.name
                )));
            }
        }
        Ok(())
    }

    /// Executes the whole program: globals, body statements (with scripting
    /// visibility between statements), final update application. Returns the
    /// value of the last statement.
    pub fn execute(&self, ctx: &mut DynamicContext) -> XdmResult<Sequence> {
        self.init_globals(ctx)?;
        let result = eval::eval_statements(ctx, &self.module.body);
        let result = match result {
            Err(e) if e.code == EXIT_CODE => Ok(ctx.exit_value.take().unwrap_or_default()),
            other => other,
        }?;
        eval::apply_pending(ctx)?;
        Ok(result)
    }
}

/// Convenience: compile + execute against a fresh context built on `store`.
pub fn run_query(src: &str, store: xqib_dom::SharedStore) -> XdmResult<(Sequence, DynamicContext)> {
    let q = compile(src)?;
    let mut ctx = DynamicContext::new(store, q.sctx.clone());
    let r = q.execute(&mut ctx)?;
    Ok((r, ctx))
}

/// Convenience for tests: run a query and render the result sequence as a
/// whitespace-joined string (nodes serialise to markup).
pub fn run_to_string(src: &str, store: xqib_dom::SharedStore) -> XdmResult<String> {
    let (seq, ctx) = run_query(src, store)?;
    Ok(render_sequence(&ctx, &seq))
}

/// Renders a sequence for display: atomics via their lexical form, nodes as
/// serialised markup.
pub fn render_sequence(ctx: &DynamicContext, seq: &Sequence) -> String {
    let store = ctx.store.borrow();
    seq.iter()
        .map(|i| match i {
            Item::Atomic(a) => a.string_value(),
            Item::Node(n) => xqib_dom::serialize::serialize_node(store.doc(n.doc), n.node),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Invokes a (listener) function by name — the plug-in's re-entry point
/// when the browser dispatches an event (Figure 1's loop). Pending updates
/// raised by the listener are applied before returning, so the page reflects
/// the handler's effects.
pub fn invoke(ctx: &mut DynamicContext, name: &QName, args: Vec<Sequence>) -> XdmResult<Sequence> {
    let r = eval::call_function(ctx, name, args);
    let r = match r {
        Err(e) if e.code == EXIT_CODE => Ok(ctx.exit_value.take().unwrap_or_default()),
        other => other,
    }?;
    eval::apply_pending(ctx)?;
    Ok(r)
}
