//! Tokens produced by the XQuery lexer.
//!
//! XQuery keywords are *not* reserved: `for`, `event`, `style`, … are valid
//! element and variable names. The lexer therefore emits generic name tokens
//! and the parser decides keyword-hood from context, which is exactly how the
//! W3C grammar is written and what the paper's extensions (`on event …`,
//! `set style …`) require.

/// A token kind plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An NCName, e.g. `div`, `for`, `event`.
    Name(String),
    /// A lexical QName `prefix:local`.
    PrefixedName(String, String),
    /// `*` used where a wildcard/star is expected (also multiplication).
    Star,
    /// `prefix:*`
    NsWildcard(String),
    /// `*:local`
    LocalWildcard(String),
    StringLit(String),
    IntegerLit(i64),
    DecimalLit(f64),
    DoubleLit(f64),
    // Delimiters & operators
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    Dot,
    DotDot,
    Slash,
    SlashSlash,
    At,
    Dollar,
    Plus,
    Minus,
    Eq,
    NotEq,
    Lt,
    LtEq,
    LtLt,
    Gt,
    GtEq,
    GtGt,
    ColonColon,
    ColonEq,
    Pipe,
    Question,
    Eof,
}

impl Tok {
    /// Is this token the given (contextual) keyword?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Name(n) if n == kw)
    }

    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Name(n) => format!("`{n}`"),
            Tok::PrefixedName(p, l) => format!("`{p}:{l}`"),
            Tok::Star => "`*`".to_string(),
            Tok::NsWildcard(p) => format!("`{p}:*`"),
            Tok::LocalWildcard(l) => format!("`*:{l}`"),
            Tok::StringLit(_) => "string literal".to_string(),
            Tok::IntegerLit(_) | Tok::DecimalLit(_) | Tok::DoubleLit(_) => {
                "numeric literal".to_string()
            }
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::LBracket => "`[`".to_string(),
            Tok::RBracket => "`]`".to_string(),
            Tok::LBrace => "`{`".to_string(),
            Tok::RBrace => "`}`".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::Semicolon => "`;`".to_string(),
            Tok::Dot => "`.`".to_string(),
            Tok::DotDot => "`..`".to_string(),
            Tok::Slash => "`/`".to_string(),
            Tok::SlashSlash => "`//`".to_string(),
            Tok::At => "`@`".to_string(),
            Tok::Dollar => "`$`".to_string(),
            Tok::Plus => "`+`".to_string(),
            Tok::Minus => "`-`".to_string(),
            Tok::Eq => "`=`".to_string(),
            Tok::NotEq => "`!=`".to_string(),
            Tok::Lt => "`<`".to_string(),
            Tok::LtEq => "`<=`".to_string(),
            Tok::LtLt => "`<<`".to_string(),
            Tok::Gt => "`>`".to_string(),
            Tok::GtEq => "`>=`".to_string(),
            Tok::GtGt => "`>>`".to_string(),
            Tok::ColonColon => "`::`".to_string(),
            Tok::ColonEq => "`:=`".to_string(),
            Tok::Pipe => "`|`".to_string(),
            Tok::Question => "`?`".to_string(),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

/// A token with its source span (byte offsets).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub start: usize,
    pub end: usize,
}
