//! Wire encoding of pending update lists — the redo records of the
//! server tier's write-ahead log.
//!
//! A [`Pul`](crate::pul::Pul) holds `NodeRef`s: arena indices that depend on
//! allocation history and tombstones, so they are meaningless after a crash.
//! The codec therefore addresses **targets** by `(document URI, stable node
//! path)` — see [`Document::node_path`](xqib_dom::arena::Document::node_path)
//! — and carries **payload** nodes (insertions, replacements) structurally,
//! re-creating them in the recovered arena at decode time. Replaying the
//! same records in the same order against the same starting state therefore
//! reconstructs the same logical documents, which is the prefix-durability
//! contract the crash-restart suite checks.
//!
//! All integers are little-endian; strings are `u32` length + UTF-8 bytes.

use xqib_dom::{NodeKind, NodeRef, QName, Store};
use xqib_xdm::{XdmError, XdmResult};

use crate::pul::{Pul, UpdatePrimitive};

/// Error code for records that cannot be made durable or decoded.
pub const WIRE_ERR: &str = "XQIB0013";

fn err(msg: impl Into<String>) -> XdmError {
    XdmError::new(WIRE_ERR, msg)
}

// ---------------------------------------------------------------------------
// primitive writers/readers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> XdmResult<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| err("truncated record"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> XdmResult<u32> {
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| err("truncated record"))?;
        self.pos = end;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn str(&mut self) -> XdmResult<String> {
        let len = self.u32()? as usize;
        let end = self.pos + len;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| err("truncated record"))?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("record is not UTF-8"))
    }

    fn opt_str(&mut self) -> XdmResult<Option<String>> {
        Ok(if self.u8()? == 1 {
            Some(self.str()?)
        } else {
            None
        })
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes left — the honest ceiling for any length-prefixed
    /// pre-allocation, so a corrupt count can never trigger an
    /// out-of-memory abort where a typed error is expected.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_qname(out: &mut Vec<u8>, name: &QName) {
    put_opt_str(out, name.prefix.as_deref());
    put_opt_str(out, name.ns.as_deref());
    put_str(out, &name.local);
}

fn read_qname(r: &mut Reader) -> XdmResult<QName> {
    let prefix = r.opt_str()?;
    let ns = r.opt_str()?;
    let local = r.str()?;
    Ok(QName::full(prefix.as_deref(), ns.as_deref(), local))
}

// ---------------------------------------------------------------------------
// target addressing
// ---------------------------------------------------------------------------

fn put_target(out: &mut Vec<u8>, store: &Store, n: NodeRef) -> XdmResult<()> {
    let doc = store.doc(n.doc);
    let uri = doc
        .base_uri
        .as_deref()
        .ok_or_else(|| err("update target lives in a document with no URI — not durable"))?;
    let path = doc
        .node_path(n.node)
        .ok_or_else(|| err("update target is detached — not addressable"))?;
    put_str(out, uri);
    put_u32(out, path.len() as u32);
    for step in path {
        put_u32(out, step);
    }
    Ok(())
}

fn read_target(r: &mut Reader, store: &Store) -> XdmResult<NodeRef> {
    let uri = r.str()?;
    let len = r.u32()? as usize;
    // each path step is 4 bytes: a corrupt count cannot out-allocate the
    // buffer that is supposed to carry it
    let mut path = Vec::with_capacity(len.min(r.remaining() / 4));
    for _ in 0..len {
        path.push(r.u32()?);
    }
    let id = store
        .doc_by_uri(&uri)
        .ok_or_else(|| err(format!("no document {uri} in recovered store")))?;
    let node = store
        .doc(id)
        .resolve_path(&path)
        .ok_or_else(|| err(format!("path {path:?} does not resolve in {uri}")))?;
    Ok(NodeRef::new(id, node))
}

// ---------------------------------------------------------------------------
// payload trees
// ---------------------------------------------------------------------------

const K_ELEM: u8 = 0;
const K_TEXT: u8 = 1;
const K_COMMENT: u8 = 2;
const K_PI: u8 = 3;
const K_ATTR: u8 = 4;

fn put_tree(out: &mut Vec<u8>, store: &Store, n: NodeRef) -> XdmResult<()> {
    let doc = store.doc(n.doc);
    match doc.kind(n.node) {
        NodeKind::Element { name, .. } => {
            out.push(K_ELEM);
            put_qname(out, name);
            let decls = doc.ns_decls(n.node);
            put_u32(out, decls.len() as u32);
            for (p, u) in decls {
                put_str(out, p);
                put_str(out, u);
            }
            let attrs = doc.attributes(n.node);
            put_u32(out, attrs.len() as u32);
            for &a in attrs {
                put_tree(out, store, NodeRef::new(n.doc, a))?;
            }
            let children = doc.children(n.node);
            put_u32(out, children.len() as u32);
            for &c in children {
                put_tree(out, store, NodeRef::new(n.doc, c))?;
            }
        }
        NodeKind::Attribute { name, value } => {
            out.push(K_ATTR);
            put_qname(out, name);
            put_str(out, value);
        }
        NodeKind::Text { value } => {
            out.push(K_TEXT);
            put_str(out, value);
        }
        NodeKind::Comment { value } => {
            out.push(K_COMMENT);
            put_str(out, value);
        }
        NodeKind::ProcessingInstruction { target, value } => {
            out.push(K_PI);
            put_str(out, target);
            put_str(out, value);
        }
        NodeKind::Document { .. } => {
            return Err(err("document nodes cannot be update payloads"));
        }
    }
    Ok(())
}

/// Re-creates an encoded payload tree inside document `dst`.
fn read_tree(r: &mut Reader, store: &mut Store, dst: xqib_dom::DocId) -> XdmResult<NodeRef> {
    let map_err = |e: xqib_dom::DomError| err(e.to_string());
    let kind = r.u8()?;
    let node = match kind {
        K_ELEM => {
            let name = read_qname(r)?;
            let n_decls = r.u32()? as usize;
            // two length-prefixed strings per decl = at least 8 bytes each
            let mut decls = Vec::with_capacity(n_decls.min(r.remaining() / 8));
            for _ in 0..n_decls {
                let p = r.str()?;
                let u = r.str()?;
                decls.push((p, u));
            }
            let n_attrs = r.u32()? as usize;
            let elem = store.doc_mut(dst).create_element(name);
            for (p, u) in decls {
                store
                    .doc_mut(dst)
                    .add_ns_decl(elem, p, u)
                    .map_err(map_err)?;
            }
            for _ in 0..n_attrs {
                let a = read_tree(r, store, dst)?;
                store
                    .doc_mut(dst)
                    .put_attribute_node(elem, a.node)
                    .map_err(map_err)?;
            }
            let n_children = r.u32()? as usize;
            for _ in 0..n_children {
                let c = read_tree(r, store, dst)?;
                store
                    .doc_mut(dst)
                    .append_child(elem, c.node)
                    .map_err(map_err)?;
            }
            elem
        }
        K_ATTR => {
            let name = read_qname(r)?;
            let value = r.str()?;
            store.doc_mut(dst).create_attribute(name, value)
        }
        K_TEXT => {
            let value = r.str()?;
            store.doc_mut(dst).create_text(value)
        }
        K_COMMENT => {
            let value = r.str()?;
            store.doc_mut(dst).create_comment(value)
        }
        K_PI => {
            let target = r.str()?;
            let value = r.str()?;
            store.doc_mut(dst).create_pi(target, value)
        }
        other => return Err(err(format!("unknown payload node kind {other}"))),
    };
    Ok(NodeRef::new(dst, node))
}

fn put_trees(out: &mut Vec<u8>, store: &Store, nodes: &[NodeRef]) -> XdmResult<()> {
    put_u32(out, nodes.len() as u32);
    for &n in nodes {
        put_tree(out, store, n)?;
    }
    Ok(())
}

fn read_trees(r: &mut Reader, store: &mut Store, dst: xqib_dom::DocId) -> XdmResult<Vec<NodeRef>> {
    let n = r.u32()? as usize;
    // every encoded tree is at least one kind byte
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(read_tree(r, store, dst)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

const T_INSERT_INTO: u8 = 1;
const T_INSERT_FIRST: u8 = 2;
const T_INSERT_LAST: u8 = 3;
const T_INSERT_BEFORE: u8 = 4;
const T_INSERT_AFTER: u8 = 5;
const T_INSERT_ATTRS: u8 = 6;
const T_DELETE: u8 = 7;
const T_REPLACE_NODE: u8 = 8;
const T_REPLACE_VALUE: u8 = 9;
const T_REPLACE_CONTENT: u8 = 10;
const T_RENAME: u8 = 11;

/// Encodes a pending update list against the **pre-apply** store (targets
/// must still sit at the paths the records name). Fails with [`WIRE_ERR`]
/// when a target is detached or lives in a URI-less document.
pub fn encode_pul(store: &Store, pul: &Pul) -> XdmResult<Vec<u8>> {
    let mut out = Vec::new();
    let prims = pul.primitives();
    put_u32(&mut out, prims.len() as u32);
    for p in prims {
        match p {
            UpdatePrimitive::InsertInto { target, children } => {
                out.push(T_INSERT_INTO);
                put_target(&mut out, store, *target)?;
                put_trees(&mut out, store, children)?;
            }
            UpdatePrimitive::InsertFirst { target, children } => {
                out.push(T_INSERT_FIRST);
                put_target(&mut out, store, *target)?;
                put_trees(&mut out, store, children)?;
            }
            UpdatePrimitive::InsertLast { target, children } => {
                out.push(T_INSERT_LAST);
                put_target(&mut out, store, *target)?;
                put_trees(&mut out, store, children)?;
            }
            UpdatePrimitive::InsertBefore { anchor, children } => {
                out.push(T_INSERT_BEFORE);
                put_target(&mut out, store, *anchor)?;
                put_trees(&mut out, store, children)?;
            }
            UpdatePrimitive::InsertAfter { anchor, children } => {
                out.push(T_INSERT_AFTER);
                put_target(&mut out, store, *anchor)?;
                put_trees(&mut out, store, children)?;
            }
            UpdatePrimitive::InsertAttributes { target, attrs } => {
                out.push(T_INSERT_ATTRS);
                put_target(&mut out, store, *target)?;
                put_trees(&mut out, store, attrs)?;
            }
            UpdatePrimitive::Delete { target } => {
                out.push(T_DELETE);
                put_target(&mut out, store, *target)?;
            }
            UpdatePrimitive::ReplaceNode {
                target,
                replacements,
            } => {
                out.push(T_REPLACE_NODE);
                put_target(&mut out, store, *target)?;
                put_trees(&mut out, store, replacements)?;
            }
            UpdatePrimitive::ReplaceValue { target, value } => {
                out.push(T_REPLACE_VALUE);
                put_target(&mut out, store, *target)?;
                put_str(&mut out, value);
            }
            UpdatePrimitive::ReplaceElementContent { target, text } => {
                out.push(T_REPLACE_CONTENT);
                put_target(&mut out, store, *target)?;
                put_str(&mut out, text);
            }
            UpdatePrimitive::Rename { target, name } => {
                out.push(T_RENAME);
                put_target(&mut out, store, *target)?;
                put_qname(&mut out, name);
            }
        }
    }
    Ok(out)
}

/// Decodes a redo record against the recovered store, re-creating payload
/// nodes in the target's document. The returned list is ready for
/// [`Pul::apply`](crate::pul::Pul::apply).
pub fn decode_pul(store: &mut Store, bytes: &[u8]) -> XdmResult<Pul> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    let mut pul = Pul::new();
    for _ in 0..count {
        let tag = r.u8()?;
        let prim = match tag {
            T_INSERT_INTO | T_INSERT_FIRST | T_INSERT_LAST | T_INSERT_BEFORE | T_INSERT_AFTER
            | T_INSERT_ATTRS | T_REPLACE_NODE => {
                let target = read_target(&mut r, store)?;
                let nodes = read_trees(&mut r, store, target.doc)?;
                match tag {
                    T_INSERT_INTO => UpdatePrimitive::InsertInto {
                        target,
                        children: nodes,
                    },
                    T_INSERT_FIRST => UpdatePrimitive::InsertFirst {
                        target,
                        children: nodes,
                    },
                    T_INSERT_LAST => UpdatePrimitive::InsertLast {
                        target,
                        children: nodes,
                    },
                    T_INSERT_BEFORE => UpdatePrimitive::InsertBefore {
                        anchor: target,
                        children: nodes,
                    },
                    T_INSERT_AFTER => UpdatePrimitive::InsertAfter {
                        anchor: target,
                        children: nodes,
                    },
                    T_INSERT_ATTRS => UpdatePrimitive::InsertAttributes {
                        target,
                        attrs: nodes,
                    },
                    _ => UpdatePrimitive::ReplaceNode {
                        target,
                        replacements: nodes,
                    },
                }
            }
            T_DELETE => UpdatePrimitive::Delete {
                target: read_target(&mut r, store)?,
            },
            T_REPLACE_VALUE => UpdatePrimitive::ReplaceValue {
                target: read_target(&mut r, store)?,
                value: r.str()?,
            },
            T_REPLACE_CONTENT => UpdatePrimitive::ReplaceElementContent {
                target: read_target(&mut r, store)?,
                text: r.str()?,
            },
            T_RENAME => UpdatePrimitive::Rename {
                target: read_target(&mut r, store)?,
                name: read_qname(&mut r)?,
            },
            other => return Err(err(format!("unknown primitive tag {other}"))),
        };
        pul.push(prim);
    }
    if !r.done() {
        return Err(err("trailing bytes after the last primitive"));
    }
    Ok(pul)
}

// ---------------------------------------------------------------------------
// skimming: target URIs without a store
// ---------------------------------------------------------------------------

/// Skips an encoded payload tree without materialising it.
fn skim_tree(r: &mut Reader) -> XdmResult<()> {
    match r.u8()? {
        K_ELEM => {
            read_qname(r)?;
            let n_decls = r.u32()? as usize;
            for _ in 0..n_decls {
                r.str()?;
                r.str()?;
            }
            let n_attrs = r.u32()? as usize;
            for _ in 0..n_attrs {
                skim_tree(r)?;
            }
            let n_children = r.u32()? as usize;
            for _ in 0..n_children {
                skim_tree(r)?;
            }
        }
        K_ATTR => {
            read_qname(r)?;
            r.str()?;
        }
        K_TEXT | K_COMMENT => {
            r.str()?;
        }
        K_PI => {
            r.str()?;
            r.str()?;
        }
        other => return Err(err(format!("unknown payload node kind {other}"))),
    }
    Ok(())
}

fn skim_trees(r: &mut Reader) -> XdmResult<()> {
    let n = r.u32()? as usize;
    for _ in 0..n {
        skim_tree(r)?;
    }
    Ok(())
}

/// Skips a target, returning only its document URI.
fn skim_target(r: &mut Reader) -> XdmResult<String> {
    let uri = r.str()?;
    let len = r.u32()? as usize;
    for _ in 0..len {
        r.u32()?;
    }
    Ok(uri)
}

/// The distinct document URIs an encoded PUL touches, in first-touch
/// order, without resolving targets against any store. A replication
/// receiver uses this to refuse frames addressing documents its shard does
/// not own — the record cannot even be *decoded* against a store that
/// lacks the document, but the ownership check must fire before any decode
/// attempt and report the offending URI.
pub fn pul_doc_uris(bytes: &[u8]) -> XdmResult<Vec<String>> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    let mut uris: Vec<String> = Vec::new();
    for _ in 0..count {
        let tag = r.u8()?;
        let uri = skim_target(&mut r)?;
        match tag {
            T_INSERT_INTO | T_INSERT_FIRST | T_INSERT_LAST | T_INSERT_BEFORE | T_INSERT_AFTER
            | T_INSERT_ATTRS | T_REPLACE_NODE => skim_trees(&mut r)?,
            T_DELETE => {}
            T_REPLACE_VALUE | T_REPLACE_CONTENT => {
                r.str()?;
            }
            T_RENAME => {
                read_qname(&mut r)?;
            }
            other => return Err(err(format!("unknown primitive tag {other}"))),
        }
        if !uris.contains(&uri) {
            uris.push(uri);
        }
    }
    if !r.done() {
        return Err(err("trailing bytes after the last primitive"));
    }
    Ok(uris)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::serialize::serialize_document;
    use xqib_dom::DocId;

    fn store_with(xml: &str) -> (Store, DocId) {
        let mut s = Store::new();
        let doc = xqib_dom::parse_document(xml).unwrap();
        let id = s.add_document(doc, Some("db.xml"));
        (s, id)
    }

    #[test]
    fn round_trips_every_primitive_family() {
        let (mut s, d) = store_with("<r a=\"1\"><c>t</c><c2/></r>");
        let doc_root = s.doc(d).root();
        let root = s.doc(d).children(doc_root)[0];
        let c = s.doc(d).children(root)[0];
        let c2 = s.doc(d).children(root)[1];
        let t = s.doc(d).children(c)[0];
        let attr = s.doc(d).attributes(root)[0];

        let mut pul = Pul::new();
        let (new_elem, new_attr, new_text) = {
            let doc = s.doc_mut(d);
            let e = doc.create_element(QName::ns("urn:x", "nx"));
            let grand = doc.create_text("payload");
            doc.append_child(e, grand).unwrap();
            let a = doc.create_attribute(QName::local("k"), "v");
            let tx = doc.create_text("tail");
            (e, a, tx)
        };
        pul.push(UpdatePrimitive::InsertInto {
            target: NodeRef::new(d, root),
            children: vec![NodeRef::new(d, new_elem)],
        });
        pul.push(UpdatePrimitive::InsertAfter {
            anchor: NodeRef::new(d, c2),
            children: vec![NodeRef::new(d, new_text)],
        });
        pul.push(UpdatePrimitive::InsertAttributes {
            target: NodeRef::new(d, c2),
            attrs: vec![NodeRef::new(d, new_attr)],
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: NodeRef::new(d, t),
            value: "newval".into(),
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: NodeRef::new(d, attr),
            value: "2".into(),
        });
        pul.push(UpdatePrimitive::Rename {
            target: NodeRef::new(d, c),
            name: QName::local("renamed"),
        });

        let bytes = encode_pul(&s, &pul).unwrap();

        // decode against a structurally identical, freshly parsed store
        let (mut fresh, _) = store_with("<r a=\"1\"><c>t</c><c2/></r>");
        let decoded = decode_pul(&mut fresh, &bytes).unwrap();
        assert_eq!(decoded.len(), pul.len());

        let mut s1 = s.clone();
        pul.apply(&mut s1).unwrap();
        decoded.apply(&mut fresh).unwrap();
        assert_eq!(
            serialize_document(s1.doc(d)),
            serialize_document(fresh.doc(DocId(0))),
            "replayed apply must serialize identically"
        );
    }

    #[test]
    fn delete_and_replace_node_replay() {
        let (mut s, d) = store_with("<r><a/><b/><c/></r>");
        let doc_root = s.doc(d).root();
        let root = s.doc(d).children(doc_root)[0];
        let a = s.doc(d).children(root)[0];
        let b = s.doc(d).children(root)[1];
        let repl = {
            let doc = s.doc_mut(d);
            let e = doc.create_element(QName::local("swapped"));
            NodeRef::new(d, e)
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Delete {
            target: NodeRef::new(d, a),
        });
        pul.push(UpdatePrimitive::ReplaceNode {
            target: NodeRef::new(d, b),
            replacements: vec![repl],
        });
        let bytes = encode_pul(&s, &pul).unwrap();

        let (mut fresh, _) = store_with("<r><a/><b/><c/></r>");
        decode_pul(&mut fresh, &bytes)
            .unwrap()
            .apply(&mut fresh)
            .unwrap();
        assert_eq!(
            serialize_document(fresh.doc(DocId(0))),
            "<r><swapped/><c/></r>"
        );
    }

    #[test]
    fn unaddressable_targets_refuse_to_encode() {
        let (mut s, d) = store_with("<r/>");
        // a detached node is not addressable
        let loose = s.doc_mut(d).create_element(QName::local("x"));
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Delete {
            target: NodeRef::new(d, loose),
        });
        assert_eq!(encode_pul(&s, &pul).unwrap_err().code, WIRE_ERR);

        // a URI-less document is not durable
        let temp = s.new_document(None);
        let e = {
            let doc = s.doc_mut(temp);
            let e = doc.create_element(QName::local("y"));
            doc.append_child(doc.root(), e).unwrap();
            e
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Rename {
            target: NodeRef::new(temp, e),
            name: QName::local("z"),
        });
        assert_eq!(encode_pul(&s, &pul).unwrap_err().code, WIRE_ERR);
    }

    #[test]
    fn corrupt_records_error_cleanly() {
        let (mut s, _) = store_with("<r/>");
        assert!(decode_pul(&mut s, &[]).is_err());
        assert!(decode_pul(&mut s, &[1, 0, 0, 0, 99]).is_err());
        // trailing garbage after a valid empty list
        assert!(decode_pul(&mut s, &[0, 0, 0, 0, 7]).is_err());
    }

    #[test]
    fn pul_doc_uris_skims_targets_without_a_store() {
        let (mut s, d) = store_with("<r><c>t</c></r>");
        let doc_root = s.doc(d).root();
        let root = s.doc(d).children(doc_root)[0];
        let c = s.doc(d).children(root)[0];
        let payload = {
            let doc = s.doc_mut(d);
            let e = doc.create_element(QName::ns("urn:x", "nx"));
            let t = doc.create_text("inside");
            doc.append_child(e, t).unwrap();
            e
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::InsertInto {
            target: NodeRef::new(d, root),
            children: vec![NodeRef::new(d, payload)],
        });
        pul.push(UpdatePrimitive::Rename {
            target: NodeRef::new(d, c),
            name: QName::local("renamed"),
        });
        let bytes = encode_pul(&s, &pul).unwrap();
        // skim works without any store — the receiver-side ownership check
        assert_eq!(pul_doc_uris(&bytes).unwrap(), vec!["db.xml".to_string()]);
        // corrupt records skim to a clean error, never a panic
        assert!(pul_doc_uris(&bytes[..bytes.len() - 2]).is_err());
        assert!(pul_doc_uris(&[9, 0, 0, 0]).is_err());
    }
}
