//! The Pending Update List (XQuery Update Facility).
//!
//! §3.2 of the paper: "All modifications are performed once the expression
//! is entirely evaluated: there are no side effects until the end and
//! instructions do not see the side effects of former instructions." The
//! [`Pul`] accumulates update primitives during evaluation; [`Pul::apply`]
//! performs them against the store in the W3C-prescribed order with the
//! standard compatibility checks, and the Scripting Extension applies the
//! list between statements (making effects visible to subsequent ones).
//!
//! Applying is *transactional*: every mutation first records its inverse in
//! an undo log, and any mid-apply error rolls the store back to the exact
//! pre-apply state, so the live DOM is always all-or-nothing. A seeded
//! crash-point injector ([`CrashPoint`], `XQIB_CRASH_POINT`) forces failures
//! at arbitrary apply steps so tests can exercise every rollback path.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{HashMap, HashSet};

use xqib_dom::{NodeRef, QName, Store};
use xqib_xdm::{XdmError, XdmResult};

/// A single update primitive. Payload nodes (insertions, replacements) are
/// already *copies* living in the same document as their target.
#[derive(Debug, Clone)]
pub enum UpdatePrimitive {
    InsertInto {
        target: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertFirst {
        target: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertLast {
        target: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertBefore {
        anchor: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertAfter {
        anchor: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertAttributes {
        target: NodeRef,
        attrs: Vec<NodeRef>,
    },
    Delete {
        target: NodeRef,
    },
    ReplaceNode {
        target: NodeRef,
        replacements: Vec<NodeRef>,
    },
    ReplaceValue {
        target: NodeRef,
        value: String,
    },
    ReplaceElementContent {
        target: NodeRef,
        text: String,
    },
    Rename {
        target: NodeRef,
        name: QName,
    },
}

/// Deterministic crash injection for the apply path, mirroring the seeded
/// `FaultPlan` on the network side: a crash point forces [`Pul::apply`] to
/// fail with `XQIB0012` just before executing the given apply step, so every
/// prefix of a primitive sequence can be tested for all-or-nothing rollback.
/// `XQIB_CRASH_POINT=<n>` injects globally (CI crash matrix); tests inject
/// explicit points via [`Pul::apply_with_crash`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashPoint {
    at: Option<u64>,
}

impl CrashPoint {
    /// Never crashes.
    pub fn none() -> Self {
        CrashPoint { at: None }
    }

    /// Crashes just before apply step `step` (0-based).
    pub fn at(step: u64) -> Self {
        CrashPoint { at: Some(step) }
    }

    /// Parses an `XQIB_CRASH_POINT`-style value; anything non-numeric
    /// (including absence) disables injection.
    pub fn parse(value: Option<&str>) -> Self {
        CrashPoint {
            at: value.and_then(|s| s.trim().parse().ok()),
        }
    }

    /// The process-wide crash point from the environment.
    pub fn from_env() -> Self {
        Self::parse(std::env::var("XQIB_CRASH_POINT").ok().as_deref())
    }

    /// The injected step, if any.
    pub fn step(&self) -> Option<u64> {
        self.at
    }
}

/// One inverse operation captured *before* a mutation. Rolling back replays
/// the log in reverse; each entry restores a single piece of document state
/// (a child list, an attribute list, a simple value or a name) to its
/// pre-mutation snapshot. Nodes created during the failed apply stay in the
/// arena as unreachable tombstones — the arena never frees — which is
/// invisible to serialization and navigation.
#[derive(Debug, Clone)]
enum UndoOp {
    Children {
        parent: NodeRef,
        snapshot: Vec<xqib_dom::NodeId>,
    },
    Attributes {
        elem: NodeRef,
        snapshot: Vec<xqib_dom::NodeId>,
    },
    SimpleValue {
        node: NodeRef,
        value: String,
    },
    Name {
        node: NodeRef,
        name: QName,
    },
}

/// Transaction state threaded through one apply: the undo log, the crash
/// injector and the step counter. `track == false` (the bench baseline)
/// skips undo recording entirely.
struct Txn {
    undo: Vec<UndoOp>,
    track: bool,
    crash: CrashPoint,
    step: u64,
}

impl Txn {
    fn new(track: bool, crash: CrashPoint) -> Self {
        Txn {
            undo: Vec::new(),
            track,
            crash,
            step: 0,
        }
    }

    /// Pre-sizes the undo log: almost every primitive records exactly one
    /// inverse, so reserving up front avoids regrowth on large lists.
    fn reserve(&mut self, prims: usize) {
        if self.track {
            self.undo.reserve(prims);
        }
    }

    /// Advances the apply-step counter, failing with `XQIB0012` when the
    /// injected crash point is reached.
    fn step(&mut self) -> XdmResult<()> {
        if self.crash.at == Some(self.step) {
            return Err(XdmError::new(
                "XQIB0012",
                format!("injected crash at apply step {}", self.step),
            ));
        }
        self.step += 1;
        Ok(())
    }

    fn save_children(&mut self, store: &Store, parent: NodeRef) {
        if self.track {
            self.undo.push(UndoOp::Children {
                parent,
                snapshot: store.doc(parent.doc).children(parent.node).to_vec(),
            });
        }
    }

    fn save_attributes(&mut self, store: &Store, elem: NodeRef) {
        if self.track {
            self.undo.push(UndoOp::Attributes {
                elem,
                snapshot: store.doc(elem.doc).attributes(elem.node).to_vec(),
            });
        }
    }

    fn save_simple_value(&mut self, store: &Store, node: NodeRef) {
        if self.track {
            // nodes without a simple value (documents, elements) reject the
            // mutation itself, so there is nothing to undo for them
            if let Some(value) = store.doc(node.doc).simple_value(node.node) {
                let value = value.to_string();
                self.undo.push(UndoOp::SimpleValue { node, value });
            }
        }
    }

    fn save_name(&mut self, store: &Store, node: NodeRef) {
        if self.track {
            if let Some(name) = store.doc(node.doc).node_name(node.node) {
                self.undo.push(UndoOp::Name { node, name });
            }
        }
    }

    /// Replays the undo log in reverse, restoring the pre-apply state.
    /// Rollback replays snapshots of a previously consistent document, so
    /// the individual restores cannot fail; any error here would indicate
    /// arena corruption and is deliberately not propagated (there is no
    /// better state to return to).
    fn rollback(self, store: &mut Store) {
        for op in self.undo.into_iter().rev() {
            match op {
                UndoOp::Children { parent, snapshot } => {
                    let r = store
                        .doc_mut(parent.doc)
                        .restore_children(parent.node, &snapshot);
                    debug_assert!(r.is_ok(), "child-list rollback failed: {r:?}");
                }
                UndoOp::Attributes { elem, snapshot } => {
                    let r = store
                        .doc_mut(elem.doc)
                        .restore_attributes(elem.node, &snapshot);
                    debug_assert!(r.is_ok(), "attribute rollback failed: {r:?}");
                }
                UndoOp::SimpleValue { node, value } => {
                    let r = store.doc_mut(node.doc).set_simple_value(node.node, value);
                    debug_assert!(r.is_ok(), "value rollback failed: {r:?}");
                }
                UndoOp::Name { node, name } => {
                    let r = store.doc_mut(node.doc).rename(node.node, name);
                    debug_assert!(r.is_ok(), "name rollback failed: {r:?}");
                }
            }
        }
    }
}

/// The pending update list.
#[derive(Debug, Default, Clone)]
pub struct Pul {
    prims: Vec<UpdatePrimitive>,
}

impl Pul {
    pub fn new() -> Self {
        Pul::default()
    }

    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }

    pub fn len(&self) -> usize {
        self.prims.len()
    }

    pub fn push(&mut self, p: UpdatePrimitive) {
        self.prims.push(p);
    }

    /// The accumulated primitives, in accumulation order (the order the
    /// wire codec in [`crate::wire`] encodes and replays them in).
    pub fn primitives(&self) -> &[UpdatePrimitive] {
        &self.prims
    }

    /// Merges another PUL into this one (used when combining results of
    /// sub-expressions). Compatibility invariants are *not* re-checked here;
    /// [`Pul::apply`] runs the full `check()` over the merged list, so
    /// conflicts across merged sub-lists are still rejected.
    pub fn merge(&mut self, other: Pul) {
        self.prims.extend(other.prims);
    }

    pub fn take(&mut self) -> Pul {
        Pul {
            prims: std::mem::take(&mut self.prims),
        }
    }

    /// W3C compatibility checks performed before applying (`XUDY0015/16/17`
    /// for duplicate renames / value replaces / node replaces). Public so
    /// merged lists can be validated without attempting an apply.
    pub fn check(&self) -> XdmResult<()> {
        let mut renamed: HashSet<NodeRef> = HashSet::new();
        let mut value_replaced: HashSet<NodeRef> = HashSet::new();
        let mut node_replaced: HashSet<NodeRef> = HashSet::new();
        for p in &self.prims {
            match p {
                UpdatePrimitive::Rename { target, .. } if !renamed.insert(*target) => {
                    return Err(XdmError::new(
                        "XUDY0015",
                        "two rename operations target the same node",
                    ));
                }
                UpdatePrimitive::ReplaceValue { target, .. }
                | UpdatePrimitive::ReplaceElementContent { target, .. }
                    if !value_replaced.insert(*target) =>
                {
                    return Err(XdmError::new(
                        "XUDY0017",
                        "two replace-value operations target the same node",
                    ));
                }
                UpdatePrimitive::ReplaceNode { target, .. } if !node_replaced.insert(*target) => {
                    return Err(XdmError::new(
                        "XUDY0016",
                        "two replace-node operations target the same node",
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Applies the whole list to the store, all-or-nothing: on any mid-apply
    /// error the store is rolled back to its pre-apply state via the undo
    /// log. Honours a process-wide `XQIB_CRASH_POINT` for fault injection.
    pub fn apply(self, store: &mut Store) -> XdmResult<()> {
        self.apply_with_crash(store, CrashPoint::from_env())
    }

    /// Transactional apply with an explicit crash point (test hook).
    pub fn apply_with_crash(self, store: &mut Store, crash: CrashPoint) -> XdmResult<()> {
        self.check()?;
        let mut txn = Txn::new(true, crash);
        txn.reserve(self.prims.len());
        match self.apply_inner(store, &mut txn) {
            Ok(()) => Ok(()),
            Err(e) => {
                txn.rollback(store);
                Err(e)
            }
        }
    }

    /// Non-transactional apply: no undo log, no rollback. A mid-apply error
    /// leaves earlier primitives applied. Exists as the baseline for the
    /// undo-log overhead benchmark; engine code always goes through
    /// [`Pul::apply`].
    pub fn apply_untracked(self, store: &mut Store) -> XdmResult<()> {
        self.check()?;
        let mut txn = Txn::new(false, CrashPoint::none());
        self.apply_inner(store, &mut txn)
    }

    /// The apply phases, in the UF spec's `upd:applyUpdates` order:
    /// inserts/attributes first, then replaces, then renames, then deletes;
    /// adjacent text nodes are merged afterwards. Each primitive charges one
    /// apply step (the crash-injection granularity) and captures its inverse
    /// *before* mutating.
    fn apply_inner(&self, store: &mut Store, txn: &mut Txn) -> XdmResult<()> {
        let mut touched_parents: Vec<NodeRef> = Vec::new();

        let map_err = |e: xqib_dom::DomError| XdmError::new("XUDY9999", e.to_string());

        // Phase 1: insertions
        for p in &self.prims {
            match p {
                UpdatePrimitive::InsertInto { target, children }
                | UpdatePrimitive::InsertLast { target, children } => {
                    txn.step()?;
                    txn.save_children(store, *target);
                    let doc = store.doc_mut(target.doc);
                    for c in children {
                        doc.append_child(target.node, c.node).map_err(map_err)?;
                    }
                    touched_parents.push(*target);
                }
                UpdatePrimitive::InsertFirst { target, children } => {
                    txn.step()?;
                    txn.save_children(store, *target);
                    let doc = store.doc_mut(target.doc);
                    for (i, c) in children.iter().enumerate() {
                        doc.insert_child_at(target.node, i, c.node)
                            .map_err(map_err)?;
                    }
                    touched_parents.push(*target);
                }
                UpdatePrimitive::InsertBefore { anchor, children } => {
                    txn.step()?;
                    let parent = store.doc(anchor.doc).parent(anchor.node);
                    if let Some(parent) = parent {
                        txn.save_children(store, NodeRef::new(anchor.doc, parent));
                    }
                    let doc = store.doc_mut(anchor.doc);
                    for c in children {
                        doc.insert_before(c.node, anchor.node).map_err(map_err)?;
                    }
                    if let Some(parent) = parent {
                        touched_parents.push(NodeRef::new(anchor.doc, parent));
                    }
                }
                UpdatePrimitive::InsertAfter { anchor, children } => {
                    txn.step()?;
                    let parent = store.doc(anchor.doc).parent(anchor.node);
                    if let Some(parent) = parent {
                        txn.save_children(store, NodeRef::new(anchor.doc, parent));
                    }
                    let doc = store.doc_mut(anchor.doc);
                    let mut prev = anchor.node;
                    for c in children {
                        doc.insert_after(c.node, prev).map_err(map_err)?;
                        prev = c.node;
                    }
                    if let Some(parent) = parent {
                        touched_parents.push(NodeRef::new(anchor.doc, parent));
                    }
                }
                UpdatePrimitive::InsertAttributes { target, attrs } => {
                    txn.step()?;
                    // `put_attribute_node` implicitly detaches a same-name
                    // attribute; the list snapshot covers that too.
                    txn.save_attributes(store, *target);
                    let doc = store.doc_mut(target.doc);
                    for a in attrs {
                        doc.put_attribute_node(target.node, a.node)
                            .map_err(map_err)?;
                    }
                }
                _ => {}
            }
        }

        // Phase 2: replaces
        for p in &self.prims {
            match p {
                UpdatePrimitive::ReplaceNode {
                    target,
                    replacements,
                } => {
                    txn.step()?;
                    let doc = store.doc(target.doc);
                    if !doc.contains(target.node) {
                        return Err(XdmError::new(
                            "XUDY9999",
                            format!("replace-node target {:?} not in arena", target.node),
                        ));
                    }
                    let parent = doc.parent(target.node);
                    let target_is_attr = doc.kind(target.node).is_attribute();
                    if let Some(parent) = parent {
                        let parent_ref = NodeRef::new(target.doc, parent);
                        if target_is_attr {
                            txn.save_attributes(store, parent_ref);
                        } else {
                            txn.save_children(store, parent_ref);
                        }
                    }
                    let doc = store.doc_mut(target.doc);
                    if replacements.is_empty() {
                        doc.detach(target.node).map_err(map_err)?;
                    } else {
                        doc.replace_node(target.node, replacements[0].node)
                            .map_err(map_err)?;
                        let mut prev = replacements[0].node;
                        for r in &replacements[1..] {
                            doc.insert_after(r.node, prev).map_err(map_err)?;
                            prev = r.node;
                        }
                        if let Some(parent) = parent {
                            if !target_is_attr {
                                touched_parents.push(NodeRef::new(target.doc, parent));
                            }
                        }
                    }
                }
                UpdatePrimitive::ReplaceValue { target, value } => {
                    txn.step()?;
                    let doc = store.doc(target.doc);
                    if !doc.contains(target.node) {
                        return Err(XdmError::new(
                            "XUDY9999",
                            format!("replace-value target {:?} not in arena", target.node),
                        ));
                    }
                    if doc.kind(target.node).is_element() {
                        txn.save_children(store, *target);
                        store
                            .doc_mut(target.doc)
                            .replace_element_value(target.node, value)
                            .map_err(map_err)?;
                    } else {
                        txn.save_simple_value(store, *target);
                        store
                            .doc_mut(target.doc)
                            .set_simple_value(target.node, value.clone())
                            .map_err(map_err)?;
                    }
                }
                UpdatePrimitive::ReplaceElementContent { target, text } => {
                    txn.step()?;
                    txn.save_children(store, *target);
                    store
                        .doc_mut(target.doc)
                        .replace_element_value(target.node, text)
                        .map_err(map_err)?;
                }
                _ => {}
            }
        }

        // Phase 3: renames
        for p in &self.prims {
            if let UpdatePrimitive::Rename { target, name } = p {
                txn.step()?;
                txn.save_name(store, *target);
                store
                    .doc_mut(target.doc)
                    .rename(target.node, name.clone())
                    .map_err(map_err)?;
            }
        }

        // Phase 4: deletes
        // Deduplicate delete targets (deleting a node twice is fine per spec).
        let mut deleted: HashSet<NodeRef> = HashSet::new();
        for p in &self.prims {
            if let UpdatePrimitive::Delete { target } = p {
                if deleted.insert(*target) {
                    txn.step()?;
                    let doc = store.doc(target.doc);
                    if !doc.contains(target.node) {
                        return Err(XdmError::new(
                            "XUDY9999",
                            format!("delete target {:?} not in arena", target.node),
                        ));
                    }
                    if let Some(parent) = doc.parent(target.node) {
                        let parent_ref = NodeRef::new(target.doc, parent);
                        if doc.kind(target.node).is_attribute() {
                            txn.save_attributes(store, parent_ref);
                        } else {
                            txn.save_children(store, parent_ref);
                            touched_parents.push(parent_ref);
                        }
                    }
                    store
                        .doc_mut(target.doc)
                        .detach(target.node)
                        .map_err(map_err)?;
                }
            }
        }

        // Text-node coalescing on every touched parent. Merging rewrites the
        // child list *and* concatenates values into surviving text nodes, so
        // both inverses are captured.
        let mut seen: HashMap<NodeRef, ()> = HashMap::new();
        for parent in touched_parents {
            if seen.insert(parent, ()).is_none() {
                let doc = store.doc(parent.doc);
                if doc.kind(parent.node).is_attribute() {
                    continue;
                }
                // Merging only does anything when two text children are
                // adjacent; skip the step charge and the inverse snapshots
                // (a child-list clone plus a string per text node) otherwise.
                let will_merge = doc
                    .children(parent.node)
                    .windows(2)
                    .any(|w| doc.kind(w[0]).is_text() && doc.kind(w[1]).is_text());
                if !will_merge {
                    continue;
                }
                txn.step()?;
                txn.save_children(store, parent);
                if txn.track {
                    let texts: Vec<xqib_dom::NodeId> = doc
                        .children(parent.node)
                        .iter()
                        .copied()
                        .filter(|&k| doc.kind(k).is_text())
                        .collect();
                    for t in texts {
                        txn.save_simple_value(store, NodeRef::new(parent.doc, t));
                    }
                }
                store
                    .doc_mut(parent.doc)
                    .merge_adjacent_text(parent.node)
                    .map_err(map_err)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use xqib_dom::serialize::serialize_document;
    use xqib_dom::{DocId, NodeId, QName as Q};

    fn setup() -> (Store, NodeRef, NodeRef) {
        let mut s = Store::new();
        let d = s.new_document(None);
        let doc = s.doc_mut(d);
        let root = doc.create_element(Q::local("books"));
        doc.append_child(doc.root(), root).unwrap();
        let book = doc.create_element(Q::local("book"));
        doc.append_child(root, book).unwrap();
        (s, NodeRef::new(d, root), NodeRef::new(d, book))
    }

    fn snapshot(s: &Store) -> Vec<String> {
        (0..s.doc_count())
            .map(|i| serialize_document(s.doc(DocId(i as u32))))
            .collect()
    }

    #[test]
    fn insert_and_delete_apply_in_order() {
        let (mut s, root, book) = setup();
        let new = {
            let doc = s.doc_mut(root.doc);
            let e = doc.create_element(Q::local("book2"));
            NodeRef::new(root.doc, e)
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::InsertInto {
            target: root,
            children: vec![new],
        });
        pul.push(UpdatePrimitive::Delete { target: book });
        pul.apply(&mut s).unwrap();
        let doc = s.doc(root.doc);
        let names: Vec<String> = doc
            .children(root.node)
            .iter()
            .map(|&k| doc.element_name(k).unwrap().lexical())
            .collect();
        assert_eq!(names, ["book2"]);
    }

    #[test]
    fn snapshot_semantics_insert_then_delete_same_node() {
        // deleting the anchor of an insert is fine: inserts run first
        let (mut s, root, book) = setup();
        let new = {
            let doc = s.doc_mut(root.doc);
            NodeRef::new(root.doc, doc.create_element(Q::local("note")))
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::InsertAfter {
            anchor: book,
            children: vec![new],
        });
        pul.push(UpdatePrimitive::Delete { target: book });
        pul.apply(&mut s).unwrap();
        let doc = s.doc(root.doc);
        assert_eq!(doc.children(root.node).len(), 1);
        assert_eq!(
            doc.element_name(doc.children(root.node)[0])
                .unwrap()
                .lexical(),
            "note"
        );
    }

    #[test]
    fn conflicting_renames_rejected() {
        let (mut s, _root, book) = setup();
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Rename {
            target: book,
            name: Q::local("a"),
        });
        pul.push(UpdatePrimitive::Rename {
            target: book,
            name: Q::local("b"),
        });
        assert_eq!(pul.apply(&mut s).unwrap_err().code, "XUDY0015");
    }

    #[test]
    fn conflicting_replace_values_rejected() {
        let (mut s, _root, book) = setup();
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::ReplaceValue {
            target: book,
            value: "a".into(),
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: book,
            value: "b".into(),
        });
        assert_eq!(pul.apply(&mut s).unwrap_err().code, "XUDY0017");
    }

    #[test]
    fn conflicting_renames_across_merged_puls_rejected() {
        // `merge` defers checking to apply time: conflicts spread across two
        // merged sub-lists must still be caught.
        let (mut s, _root, book) = setup();
        let mut left = Pul::new();
        left.push(UpdatePrimitive::Rename {
            target: book,
            name: Q::local("a"),
        });
        let mut right = Pul::new();
        right.push(UpdatePrimitive::Rename {
            target: book,
            name: Q::local("b"),
        });
        left.merge(right);
        let before = snapshot(&s);
        assert_eq!(left.apply(&mut s).unwrap_err().code, "XUDY0015");
        assert_eq!(snapshot(&s), before, "failed check mutates nothing");
    }

    #[test]
    fn conflicting_replaces_across_take_and_merge_rejected() {
        let (mut s, _root, book) = setup();
        let mut staging = Pul::new();
        staging.push(UpdatePrimitive::ReplaceValue {
            target: book,
            value: "x".into(),
        });
        let taken = staging.take();
        assert!(staging.is_empty(), "take leaves the source empty");
        let mut combined = Pul::new();
        combined.push(UpdatePrimitive::ReplaceElementContent {
            target: book,
            text: "y".into(),
        });
        combined.merge(taken);
        assert_eq!(combined.apply(&mut s).unwrap_err().code, "XUDY0017");
    }

    #[test]
    fn replace_value_of_element_and_attribute() {
        let (mut s, _root, book) = setup();
        let attr = {
            let doc = s.doc_mut(book.doc);
            let a = doc.set_attribute(book.node, Q::local("id"), "1").unwrap();
            NodeRef::new(book.doc, a)
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::ReplaceValue {
            target: book,
            value: "1500".into(),
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: attr,
            value: "2".into(),
        });
        pul.apply(&mut s).unwrap();
        let doc = s.doc(book.doc);
        assert_eq!(doc.string_value(book.node), "1500");
        assert_eq!(doc.get_attribute(book.node, None, "id"), Some("2"));
    }

    #[test]
    fn double_delete_is_idempotent() {
        let (mut s, root, book) = setup();
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Delete { target: book });
        pul.push(UpdatePrimitive::Delete { target: book });
        pul.apply(&mut s).unwrap();
        assert!(s.doc(root.doc).children(root.node).is_empty());
    }

    #[test]
    fn text_merging_after_delete() {
        let mut s = Store::new();
        let d = s.new_document(None);
        let (p, _mid) = {
            let doc = s.doc_mut(d);
            let p = doc.create_element(Q::local("p"));
            doc.append_child(doc.root(), p).unwrap();
            let t1 = doc.create_text("a");
            let mid = doc.create_element(Q::local("b"));
            let t2 = doc.create_text("c");
            doc.append_child(p, t1).unwrap();
            doc.append_child(p, mid).unwrap();
            doc.append_child(p, t2).unwrap();
            (NodeRef::new(d, p), NodeRef::new(d, mid))
        };
        let mid = NodeRef::new(d, s.doc(d).children(p.node)[1]);
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Delete { target: mid });
        pul.apply(&mut s).unwrap();
        let doc = s.doc(d);
        assert_eq!(doc.children(p.node).len(), 1, "adjacent text merged");
        assert_eq!(doc.string_value(p.node), "ac");
    }

    #[test]
    fn failing_replace_mid_list_rolls_back_earlier_inserts() {
        // The partial-apply regression from the issue: a ReplaceValue on a
        // node that does not exist errors in phase 2, *after* phase 1 already
        // inserted — without the undo log the insert stuck around.
        let (mut s, root, _book) = setup();
        let new = {
            let doc = s.doc_mut(root.doc);
            NodeRef::new(root.doc, doc.create_element(Q::local("late")))
        };
        let before = snapshot(&s);
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::InsertInto {
            target: root,
            children: vec![new],
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: NodeRef::new(root.doc, NodeId(9999)),
            value: "boom".into(),
        });
        let err = pul.apply(&mut s).unwrap_err();
        assert_eq!(err.code, "XUDY9999");
        assert_eq!(snapshot(&s), before, "apply is all-or-nothing");
    }

    #[test]
    fn failing_replace_on_document_node_rolls_back() {
        // A document node has no simple value and is not an element: the
        // replace errors after earlier primitives already ran.
        let (mut s, root, book) = setup();
        let before = snapshot(&s);
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Rename {
            target: book,
            name: Q::local("renamed"),
        });
        pul.push(UpdatePrimitive::InsertAttributes {
            target: root,
            attrs: vec![{
                let doc = s.doc_mut(root.doc);
                NodeRef::new(root.doc, doc.create_attribute(Q::local("k"), "v"))
            }],
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: NodeRef::new(root.doc, NodeId(0)),
            value: "boom".into(),
        });
        // note: phase order puts the failing replace *between* the insert
        // (phase 1) and the rename (phase 3)
        assert!(pul.apply(&mut s).is_err());
        assert_eq!(snapshot(&s), before);
        let doc = s.doc(book.doc);
        assert_eq!(doc.element_name(book.node).unwrap().lexical(), "book");
        assert_eq!(doc.get_attribute(root.node, None, "k"), None);
    }

    #[test]
    fn crash_point_at_every_step_round_trips() {
        // Exhaustive sweep: crash before step 0, 1, 2, ... until the apply
        // survives; every failed attempt must leave the store byte-identical.
        for k in 0..32u64 {
            let (mut s, root, book) = setup();
            let (new, attr) = {
                let doc = s.doc_mut(root.doc);
                let e = doc.create_element(Q::local("extra"));
                let a = doc.create_attribute(Q::local("id"), "7");
                (NodeRef::new(root.doc, e), NodeRef::new(root.doc, a))
            };
            let before = snapshot(&s);
            let mut pul = Pul::new();
            pul.push(UpdatePrimitive::InsertInto {
                target: root,
                children: vec![new],
            });
            pul.push(UpdatePrimitive::InsertAttributes {
                target: book,
                attrs: vec![attr],
            });
            pul.push(UpdatePrimitive::ReplaceValue {
                target: book,
                value: "v".into(),
            });
            pul.push(UpdatePrimitive::Rename {
                target: book,
                name: Q::local("tome"),
            });
            pul.push(UpdatePrimitive::Delete { target: new });
            match pul.apply_with_crash(&mut s, CrashPoint::at(k)) {
                Err(e) => {
                    assert_eq!(e.code, "XQIB0012");
                    assert_eq!(snapshot(&s), before, "crash at step {k} not rolled back");
                }
                Ok(()) => {
                    assert_ne!(snapshot(&s), before, "the full apply does mutate");
                    return; // k exceeded the total number of steps
                }
            }
        }
        panic!("apply never completed within the step budget");
    }

    #[test]
    fn crash_point_env_parsing() {
        assert_eq!(CrashPoint::parse(None), CrashPoint::none());
        assert_eq!(CrashPoint::parse(Some("")), CrashPoint::none());
        assert_eq!(CrashPoint::parse(Some("nope")), CrashPoint::none());
        assert_eq!(CrashPoint::parse(Some("3")), CrashPoint::at(3));
        assert_eq!(CrashPoint::parse(Some(" 12 ")).step(), Some(12));
    }

    #[test]
    fn untracked_apply_matches_tracked_on_success() {
        let build = |s: &mut Store, root: NodeRef, book: NodeRef| {
            let new = {
                let doc = s.doc_mut(root.doc);
                NodeRef::new(root.doc, doc.create_element(Q::local("n")))
            };
            let mut pul = Pul::new();
            pul.push(UpdatePrimitive::InsertInto {
                target: root,
                children: vec![new],
            });
            pul.push(UpdatePrimitive::ReplaceValue {
                target: book,
                value: "z".into(),
            });
            pul
        };
        let (mut s1, root1, book1) = setup();
        build(&mut s1, root1, book1).apply(&mut s1).unwrap();
        let (mut s2, root2, book2) = setup();
        build(&mut s2, root2, book2)
            .apply_untracked(&mut s2)
            .unwrap();
        assert_eq!(snapshot(&s1), snapshot(&s2));
    }
}
