//! The Pending Update List (XQuery Update Facility).
//!
//! §3.2 of the paper: "All modifications are performed once the expression
//! is entirely evaluated: there are no side effects until the end and
//! instructions do not see the side effects of former instructions." The
//! [`Pul`] accumulates update primitives during evaluation; [`Pul::apply`]
//! performs them against the store in the W3C-prescribed order with the
//! standard compatibility checks, and the Scripting Extension applies the
//! list between statements (making effects visible to subsequent ones).

use std::collections::{HashMap, HashSet};

use xqib_dom::{NodeRef, QName, Store};
use xqib_xdm::{XdmError, XdmResult};

/// A single update primitive. Payload nodes (insertions, replacements) are
/// already *copies* living in the same document as their target.
#[derive(Debug, Clone)]
pub enum UpdatePrimitive {
    InsertInto {
        target: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertFirst {
        target: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertLast {
        target: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertBefore {
        anchor: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertAfter {
        anchor: NodeRef,
        children: Vec<NodeRef>,
    },
    InsertAttributes {
        target: NodeRef,
        attrs: Vec<NodeRef>,
    },
    Delete {
        target: NodeRef,
    },
    ReplaceNode {
        target: NodeRef,
        replacements: Vec<NodeRef>,
    },
    ReplaceValue {
        target: NodeRef,
        value: String,
    },
    ReplaceElementContent {
        target: NodeRef,
        text: String,
    },
    Rename {
        target: NodeRef,
        name: QName,
    },
}

/// The pending update list.
#[derive(Debug, Default)]
pub struct Pul {
    prims: Vec<UpdatePrimitive>,
}

impl Pul {
    pub fn new() -> Self {
        Pul::default()
    }

    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }

    pub fn len(&self) -> usize {
        self.prims.len()
    }

    pub fn push(&mut self, p: UpdatePrimitive) {
        self.prims.push(p);
    }

    /// Merges another PUL into this one (used when combining results of
    /// sub-expressions).
    pub fn merge(&mut self, other: Pul) {
        self.prims.extend(other.prims);
    }

    pub fn take(&mut self) -> Pul {
        Pul {
            prims: std::mem::take(&mut self.prims),
        }
    }

    /// W3C compatibility checks performed before applying.
    fn check(&self) -> XdmResult<()> {
        let mut renamed: HashSet<NodeRef> = HashSet::new();
        let mut value_replaced: HashSet<NodeRef> = HashSet::new();
        let mut node_replaced: HashSet<NodeRef> = HashSet::new();
        for p in &self.prims {
            match p {
                UpdatePrimitive::Rename { target, .. } if !renamed.insert(*target) => {
                    return Err(XdmError::new(
                        "XUDY0015",
                        "two rename operations target the same node",
                    ));
                }
                UpdatePrimitive::ReplaceValue { target, .. }
                | UpdatePrimitive::ReplaceElementContent { target, .. }
                    if !value_replaced.insert(*target) =>
                {
                    return Err(XdmError::new(
                        "XUDY0017",
                        "two replace-value operations target the same node",
                    ));
                }
                UpdatePrimitive::ReplaceNode { target, .. } if !node_replaced.insert(*target) => {
                    return Err(XdmError::new(
                        "XUDY0016",
                        "two replace-node operations target the same node",
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Applies the whole list to the store. Order (per the UF spec's
    /// `upd:applyUpdates`): inserts/attributes first, then replaces, then
    /// renames, then deletes; adjacent text nodes are merged afterwards.
    pub fn apply(self, store: &mut Store) -> XdmResult<()> {
        self.check()?;
        let mut touched_parents: Vec<NodeRef> = Vec::new();

        let map_err = |e: xqib_dom::DomError| XdmError::new("XUDY9999", e.to_string());

        // Phase 1: insertions
        for p in &self.prims {
            match p {
                UpdatePrimitive::InsertInto { target, children }
                | UpdatePrimitive::InsertLast { target, children } => {
                    let doc = store.doc_mut(target.doc);
                    for c in children {
                        doc.append_child(target.node, c.node).map_err(map_err)?;
                    }
                    touched_parents.push(*target);
                }
                UpdatePrimitive::InsertFirst { target, children } => {
                    let doc = store.doc_mut(target.doc);
                    for (i, c) in children.iter().enumerate() {
                        doc.insert_child_at(target.node, i, c.node)
                            .map_err(map_err)?;
                    }
                    touched_parents.push(*target);
                }
                UpdatePrimitive::InsertBefore { anchor, children } => {
                    let doc = store.doc_mut(anchor.doc);
                    for c in children {
                        doc.insert_before(c.node, anchor.node).map_err(map_err)?;
                    }
                    if let Some(parent) = doc.parent(anchor.node) {
                        touched_parents.push(NodeRef::new(anchor.doc, parent));
                    }
                }
                UpdatePrimitive::InsertAfter { anchor, children } => {
                    let doc = store.doc_mut(anchor.doc);
                    let mut prev = anchor.node;
                    for c in children {
                        doc.insert_after(c.node, prev).map_err(map_err)?;
                        prev = c.node;
                    }
                    if let Some(parent) = doc.parent(anchor.node) {
                        touched_parents.push(NodeRef::new(anchor.doc, parent));
                    }
                }
                UpdatePrimitive::InsertAttributes { target, attrs } => {
                    let doc = store.doc_mut(target.doc);
                    for a in attrs {
                        doc.put_attribute_node(target.node, a.node)
                            .map_err(map_err)?;
                    }
                }
                _ => {}
            }
        }

        // Phase 2: replaces
        for p in &self.prims {
            match p {
                UpdatePrimitive::ReplaceNode {
                    target,
                    replacements,
                } => {
                    let doc = store.doc_mut(target.doc);
                    if replacements.is_empty() {
                        doc.detach(target.node).map_err(map_err)?;
                    } else {
                        let parent = doc.parent(target.node);
                        doc.replace_node(target.node, replacements[0].node)
                            .map_err(map_err)?;
                        let mut prev = replacements[0].node;
                        for r in &replacements[1..] {
                            doc.insert_after(r.node, prev).map_err(map_err)?;
                            prev = r.node;
                        }
                        if let Some(parent) = parent {
                            touched_parents.push(NodeRef::new(target.doc, parent));
                        }
                    }
                }
                UpdatePrimitive::ReplaceValue { target, value } => {
                    let doc = store.doc_mut(target.doc);
                    if doc.kind(target.node).is_element() {
                        doc.replace_element_value(target.node, value)
                            .map_err(map_err)?;
                    } else {
                        doc.set_simple_value(target.node, value.clone())
                            .map_err(map_err)?;
                    }
                }
                UpdatePrimitive::ReplaceElementContent { target, text } => {
                    let doc = store.doc_mut(target.doc);
                    doc.replace_element_value(target.node, text)
                        .map_err(map_err)?;
                }
                _ => {}
            }
        }

        // Phase 3: renames
        for p in &self.prims {
            if let UpdatePrimitive::Rename { target, name } = p {
                store
                    .doc_mut(target.doc)
                    .rename(target.node, name.clone())
                    .map_err(map_err)?;
            }
        }

        // Phase 4: deletes
        // Deduplicate delete targets (deleting a node twice is fine per spec).
        let mut deleted: HashSet<NodeRef> = HashSet::new();
        for p in &self.prims {
            if let UpdatePrimitive::Delete { target } = p {
                if deleted.insert(*target) {
                    let doc = store.doc_mut(target.doc);
                    if let Some(parent) = doc.parent(target.node) {
                        touched_parents.push(NodeRef::new(target.doc, parent));
                    }
                    doc.detach(target.node).map_err(map_err)?;
                }
            }
        }

        // Text-node coalescing on every touched parent.
        let mut seen: HashMap<NodeRef, ()> = HashMap::new();
        for parent in touched_parents {
            if seen.insert(parent, ()).is_none() {
                let doc = store.doc_mut(parent.doc);
                if !doc.kind(parent.node).is_attribute() {
                    doc.merge_adjacent_text(parent.node).map_err(map_err)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::QName as Q;

    fn setup() -> (Store, NodeRef, NodeRef) {
        let mut s = Store::new();
        let d = s.new_document(None);
        let doc = s.doc_mut(d);
        let root = doc.create_element(Q::local("books"));
        doc.append_child(doc.root(), root).unwrap();
        let book = doc.create_element(Q::local("book"));
        doc.append_child(root, book).unwrap();
        (s, NodeRef::new(d, root), NodeRef::new(d, book))
    }

    #[test]
    fn insert_and_delete_apply_in_order() {
        let (mut s, root, book) = setup();
        let new = {
            let doc = s.doc_mut(root.doc);
            let e = doc.create_element(Q::local("book2"));
            NodeRef::new(root.doc, e)
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::InsertInto {
            target: root,
            children: vec![new],
        });
        pul.push(UpdatePrimitive::Delete { target: book });
        pul.apply(&mut s).unwrap();
        let doc = s.doc(root.doc);
        let names: Vec<String> = doc
            .children(root.node)
            .iter()
            .map(|&k| doc.element_name(k).unwrap().lexical())
            .collect();
        assert_eq!(names, ["book2"]);
    }

    #[test]
    fn snapshot_semantics_insert_then_delete_same_node() {
        // deleting the anchor of an insert is fine: inserts run first
        let (mut s, root, book) = setup();
        let new = {
            let doc = s.doc_mut(root.doc);
            NodeRef::new(root.doc, doc.create_element(Q::local("note")))
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::InsertAfter {
            anchor: book,
            children: vec![new],
        });
        pul.push(UpdatePrimitive::Delete { target: book });
        pul.apply(&mut s).unwrap();
        let doc = s.doc(root.doc);
        assert_eq!(doc.children(root.node).len(), 1);
        assert_eq!(
            doc.element_name(doc.children(root.node)[0])
                .unwrap()
                .lexical(),
            "note"
        );
    }

    #[test]
    fn conflicting_renames_rejected() {
        let (mut s, _root, book) = setup();
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Rename {
            target: book,
            name: Q::local("a"),
        });
        pul.push(UpdatePrimitive::Rename {
            target: book,
            name: Q::local("b"),
        });
        assert_eq!(pul.apply(&mut s).unwrap_err().code, "XUDY0015");
    }

    #[test]
    fn conflicting_replace_values_rejected() {
        let (mut s, _root, book) = setup();
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::ReplaceValue {
            target: book,
            value: "a".into(),
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: book,
            value: "b".into(),
        });
        assert_eq!(pul.apply(&mut s).unwrap_err().code, "XUDY0017");
    }

    #[test]
    fn replace_value_of_element_and_attribute() {
        let (mut s, _root, book) = setup();
        let attr = {
            let doc = s.doc_mut(book.doc);
            let a = doc.set_attribute(book.node, Q::local("id"), "1").unwrap();
            NodeRef::new(book.doc, a)
        };
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::ReplaceValue {
            target: book,
            value: "1500".into(),
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: attr,
            value: "2".into(),
        });
        pul.apply(&mut s).unwrap();
        let doc = s.doc(book.doc);
        assert_eq!(doc.string_value(book.node), "1500");
        assert_eq!(doc.get_attribute(book.node, None, "id"), Some("2"));
    }

    #[test]
    fn double_delete_is_idempotent() {
        let (mut s, root, book) = setup();
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Delete { target: book });
        pul.push(UpdatePrimitive::Delete { target: book });
        pul.apply(&mut s).unwrap();
        assert!(s.doc(root.doc).children(root.node).is_empty());
    }

    #[test]
    fn text_merging_after_delete() {
        let mut s = Store::new();
        let d = s.new_document(None);
        let (p, _mid) = {
            let doc = s.doc_mut(d);
            let p = doc.create_element(Q::local("p"));
            doc.append_child(doc.root(), p).unwrap();
            let t1 = doc.create_text("a");
            let mid = doc.create_element(Q::local("b"));
            let t2 = doc.create_text("c");
            doc.append_child(p, t1).unwrap();
            doc.append_child(p, mid).unwrap();
            doc.append_child(p, t2).unwrap();
            (NodeRef::new(d, p), NodeRef::new(d, mid))
        };
        let mid = NodeRef::new(d, s.doc(d).children(p.node)[1]);
        let mut pul = Pul::new();
        pul.push(UpdatePrimitive::Delete { target: mid });
        pul.apply(&mut s).unwrap();
        let doc = s.doc(d);
        assert_eq!(doc.children(p.node).len(), 1, "adjacent text merged");
        assert_eq!(doc.string_value(p.node), "ac");
    }
}
