//! Client-side recovery policy for the async network path: request
//! timeouts, bounded retries with deterministic-jitter exponential backoff,
//! per-host circuit breakers driven by virtual time, and a stale-response
//! cache for graceful degradation (the Figure 2 "survive server load from
//! the client cache" story).
//!
//! Everything here is pure state-machine code over the virtual clock — no
//! wall time, no ambient randomness — so any failure/recovery schedule is
//! reproducible byte-for-byte from the seeds involved. The plug-in layer
//! (`xqib-core`) owns the control flow: it schedules retry tasks on the
//! event loop, consults the breaker before touching the network, and turns
//! exhausted retries into `stale`/`error` DOM events.

use std::collections::HashMap;

use crate::net::Response;

/// How a `behind` call's fetches are retried and timed out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-request deadline: a lost request costs this much virtual time
    /// before the client gives up on it.
    pub timeout_ms: u64,
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry k (1-based failed attempt) starts from
    /// `backoff_base_ms * backoff_factor^(k-1)` …
    pub backoff_base_ms: u64,
    pub backoff_factor: u64,
    /// … capped here, before jitter.
    pub backoff_cap_ms: u64,
    /// Deterministic jitter in `0..=jitter_ms` added to every backoff,
    /// derived from `jitter_seed`, the call id and the attempt number.
    pub jitter_ms: u64,
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_ms: 1_000,
            max_attempts: 3,
            backoff_base_ms: 100,
            backoff_factor: 2,
            backoff_cap_ms: 10_000,
            jitter_ms: 50,
            jitter_seed: 0x5eed_5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy without jitter (exact, hand-computable timestamps).
    pub fn no_jitter(mut self) -> Self {
        self.jitter_ms = 0;
        self
    }

    /// The delay scheduled after `failed_attempt` (1-based) of call
    /// `call_id` fails. Pure: tests can predict every retry timestamp.
    pub fn backoff_delay(&self, failed_attempt: u32, call_id: u64) -> u64 {
        let exp = self
            .backoff_base_ms
            .saturating_mul(
                self.backoff_factor
                    .saturating_pow(failed_attempt.saturating_sub(1)),
            )
            .min(self.backoff_cap_ms);
        exp + self.jitter(failed_attempt, call_id)
    }

    fn jitter(&self, attempt: u32, call_id: u64) -> u64 {
        if self.jitter_ms == 0 {
            return 0;
        }
        let x = self.jitter_seed
            ^ call_id.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (attempt as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        mix64(x) % (self.jitter_ms + 1)
    }
}

fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Circuit-breaker states, per the classic closed → open → half-open
/// machine, with transitions driven by the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are refused without touching the network until `until`.
    Open { until: u64 },
    /// One probe request is allowed; its outcome closes or re-opens.
    HalfOpen,
}

/// A per-host circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    pub state: BreakerState,
    consecutive_failures: u32,
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long (virtual ms) the breaker stays open before a probe.
    pub open_ms: u64,
}

impl CircuitBreaker {
    pub fn new(failure_threshold: u32, open_ms: u64) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            failure_threshold: failure_threshold.max(1),
            open_ms,
        }
    }

    /// Whether a request may be issued at `now`. An expired open window
    /// transitions to half-open and admits the probe.
    pub fn allow(&mut self, now: u64, stats: &mut RecoveryStats) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                stats.breaker_half_opens += 1;
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    pub fn on_success(&mut self, stats: &mut RecoveryStats) {
        if self.state != BreakerState::Closed {
            stats.breaker_closes += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    pub fn on_failure(&mut self, now: u64, stats: &mut RecoveryStats) {
        match self.state {
            BreakerState::HalfOpen => {
                // failed probe: straight back to open
                self.state = BreakerState::Open {
                    until: now + self.open_ms,
                };
                stats.breaker_opens += 1;
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.state = BreakerState::Open {
                        until: now + self.open_ms,
                    };
                    stats.breaker_opens += 1;
                }
            }
            BreakerState::Open { .. } => {}
        }
    }
}

/// One cached response with its virtual-time birth and recency stamps.
#[derive(Debug, Clone)]
struct StaleEntry {
    resp: Response,
    stored_at: u64,
    used: u64,
}

/// Last-good responses for degradation: exact-URL entries first, with a
/// per-host "most recent good response" fallback (the suggest-page case:
/// serve the hints for the previous query when the current one is down).
///
/// The per-URL map is **bounded**: at most `capacity` entries, evicted
/// least-recently-used first, and entries older than `ttl_ms` of virtual
/// time are invisible to `lookup` (an entry stored at `t` expires at
/// exactly `t + ttl_ms`). Without the bound a long-lived client fetching
/// many distinct URLs grows without limit — fatal for a simulated fleet of
/// thousands of browsers. The host fallback keeps one entry per host (one
/// of the bounded URL entries can vanish under it; the host copy is its
/// own clone, refreshed on every successful fetch to the host).
#[derive(Debug)]
pub struct StaleCache {
    by_url: HashMap<String, StaleEntry>,
    by_host: HashMap<String, StaleEntry>,
    capacity: usize,
    ttl_ms: u64,
    tick: u64,
}

impl Default for StaleCache {
    fn default() -> Self {
        StaleCache::bounded(StaleCache::DEFAULT_CAPACITY, u64::MAX)
    }
}

impl StaleCache {
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A cache holding at most `capacity` URL entries (min 1), each valid
    /// for `ttl_ms` of virtual time after it was stored.
    pub fn bounded(capacity: usize, ttl_ms: u64) -> Self {
        StaleCache {
            by_url: HashMap::new(),
            by_host: HashMap::new(),
            capacity: capacity.max(1),
            ttl_ms,
            tick: 0,
        }
    }

    /// Records a successful response as the last-good for its URL and host
    /// at virtual time `now`. Returns how many entries were evicted to
    /// respect the capacity bound (the caller accounts them in
    /// [`RecoveryStats::evictions`]).
    pub fn store(&mut self, url: &str, host: &str, resp: &Response, now: u64) -> u64 {
        self.tick += 1;
        let entry = StaleEntry {
            resp: resp.clone(),
            stored_at: now,
            used: self.tick,
        };
        self.by_host.insert(host.to_string(), entry.clone());
        self.by_url.insert(url.to_string(), entry);
        let mut evicted = 0;
        while self.by_url.len() > self.capacity {
            // LRU victim; `used` stamps are unique, so this is
            // deterministic regardless of hash iteration order
            let Some(victim) = self
                .by_url
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(u, _)| u.clone())
            else {
                break;
            };
            self.by_url.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    fn fresh(&self, entry: &StaleEntry, now: u64) -> bool {
        now.saturating_sub(entry.stored_at) < self.ttl_ms
    }

    /// The freshest applicable last-good response at `now`, URL match
    /// preferred; expired entries are invisible. A URL hit refreshes the
    /// entry's LRU recency.
    pub fn lookup(&mut self, url: &str, host: &str, now: u64) -> Option<&Response> {
        self.tick += 1;
        let tick = self.tick;
        let url_fresh = self.by_url.get(url).is_some_and(|e| self.fresh(e, now));
        if url_fresh {
            let e = self.by_url.get_mut(url)?;
            e.used = tick;
            return Some(&e.resp);
        }
        let host_fresh = self.by_host.get(host).is_some_and(|e| self.fresh(e, now));
        if host_fresh {
            return self.by_host.get(host).map(|e| &e.resp);
        }
        None
    }

    pub fn len(&self) -> usize {
        self.by_url.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_url.is_empty()
    }
}

/// Counters for the whole fault/recovery path (mirrored into the app
/// server's `ServerMetrics` next to the PR 1 engine counters).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    /// `behind` attempts executed (first tries + retries).
    pub attempts: u64,
    /// Retry tasks scheduled on the event loop.
    pub retries: u64,
    /// Fetches that hit the client-side deadline (lost requests).
    pub timeouts: u64,
    /// Non-200 or unparsable replies observed.
    pub fetch_errors: u64,
    pub breaker_opens: u64,
    pub breaker_half_opens: u64,
    pub breaker_closes: u64,
    /// Requests refused without touching the network (breaker open).
    pub breaker_fast_fails: u64,
    /// Degraded fetches answered from the stale cache.
    pub stale_served: u64,
    /// `behind` calls that delivered a fresh result.
    pub completions: u64,
    /// `stale` DOM events delivered.
    pub stale_events: u64,
    /// `error` DOM events delivered.
    pub error_events: u64,
    /// Stale-cache entries evicted to respect the capacity bound.
    pub evictions: u64,
}

/// Knobs for [`RecoveryState`] (what the plug-in config carries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryConfig {
    pub retry: RetryPolicy,
    pub breaker_failure_threshold: u32,
    pub breaker_open_ms: u64,
    /// Max URL entries the stale cache holds (LRU-evicted beyond this).
    pub stale_capacity: usize,
    /// Virtual-time TTL of a stale-cache entry (`u64::MAX` = never expires).
    pub stale_ttl_ms: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            retry: RetryPolicy::default(),
            breaker_failure_threshold: 3,
            breaker_open_ms: 5_000,
            stale_capacity: StaleCache::DEFAULT_CAPACITY,
            stale_ttl_ms: u64::MAX,
        }
    }
}

/// The whole client-side recovery state a host environment owns.
#[derive(Debug, Default)]
pub struct RecoveryState {
    pub policy: RetryPolicy,
    breaker_failure_threshold: u32,
    breaker_open_ms: u64,
    breakers: HashMap<String, CircuitBreaker>,
    pub stale: StaleCache,
    pub stats: RecoveryStats,
    /// Degraded mode for the current attempt: failed fetches may fall back
    /// to the stale cache.
    pub serve_stale: bool,
    /// URL a stale response was served for during the current attempt.
    pub stale_url: Option<String>,
}

impl RecoveryState {
    pub fn new(config: RecoveryConfig) -> Self {
        RecoveryState {
            policy: config.retry,
            breaker_failure_threshold: config.breaker_failure_threshold,
            breaker_open_ms: config.breaker_open_ms,
            stale: StaleCache::bounded(config.stale_capacity, config.stale_ttl_ms),
            ..Default::default()
        }
    }

    /// Stores a last-good response in the stale cache at `now`, accounting
    /// any LRU evictions in [`RecoveryStats::evictions`].
    pub fn store_stale(&mut self, url: &str, host: &str, resp: &Response, now: u64) {
        self.stats.evictions += self.stale.store(url, host, resp, now);
    }

    /// Whether `host` may be contacted at `now` (open-breaker fast-fails
    /// are counted here).
    pub fn breaker_allow(&mut self, host: &str, now: u64) -> bool {
        let (threshold, open_ms) = (self.breaker_failure_threshold, self.breaker_open_ms);
        let breaker = self
            .breakers
            .entry(host.to_string())
            .or_insert_with(|| CircuitBreaker::new(threshold, open_ms));
        let allowed = breaker.allow(now, &mut self.stats);
        if !allowed {
            self.stats.breaker_fast_fails += 1;
        }
        allowed
    }

    pub fn breaker_success(&mut self, host: &str) {
        if let Some(b) = self.breakers.get_mut(host) {
            b.on_success(&mut self.stats);
        }
    }

    pub fn breaker_failure(&mut self, host: &str, now: u64) {
        let (threshold, open_ms) = (self.breaker_failure_threshold, self.breaker_open_ms);
        self.breakers
            .entry(host.to_string())
            .or_insert_with(|| CircuitBreaker::new(threshold, open_ms))
            .on_failure(now, &mut self.stats);
    }

    /// The breaker state for a host (closed if never contacted).
    pub fn breaker_state(&self, host: &str) -> BreakerState {
        self.breakers
            .get(host)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Hosts with a breaker, with their states (for introspection).
    pub fn breaker_states(&self) -> Vec<(String, BreakerState)> {
        let mut v: Vec<(String, BreakerState)> = self
            .breakers
            .iter()
            .map(|(h, b)| (h.clone(), b.state))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_pure() {
        let p = RetryPolicy {
            backoff_base_ms: 100,
            backoff_factor: 2,
            backoff_cap_ms: 350,
            jitter_ms: 0,
            ..Default::default()
        };
        assert_eq!(p.backoff_delay(1, 7), 100);
        assert_eq!(p.backoff_delay(2, 7), 200);
        assert_eq!(p.backoff_delay(3, 7), 350, "capped");
        assert_eq!(p.backoff_delay(10, 7), 350);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_spread() {
        let p = RetryPolicy {
            jitter_ms: 40,
            ..Default::default()
        };
        let a: Vec<u64> = (1..20).map(|k| p.backoff_delay(k, 1)).collect();
        let b: Vec<u64> = (1..20).map(|k| p.backoff_delay(k, 1)).collect();
        assert_eq!(a, b, "pure function of (policy, attempt, call)");
        for k in 1..20u32 {
            let base = p
                .backoff_base_ms
                .saturating_mul(p.backoff_factor.saturating_pow(k - 1))
                .min(p.backoff_cap_ms);
            let d = p.backoff_delay(k, 1);
            assert!(d >= base && d <= base + p.jitter_ms);
        }
        // different calls decorrelate
        assert_ne!(
            (1..20).map(|k| p.backoff_delay(k, 1)).collect::<Vec<_>>(),
            (1..20).map(|k| p.backoff_delay(k, 2)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn breaker_trips_after_threshold_and_half_opens() {
        let mut stats = RecoveryStats::default();
        let mut b = CircuitBreaker::new(3, 1000);
        assert!(b.allow(0, &mut stats));
        b.on_failure(10, &mut stats);
        b.on_failure(20, &mut stats);
        assert_eq!(b.state, BreakerState::Closed);
        b.on_failure(30, &mut stats);
        assert_eq!(b.state, BreakerState::Open { until: 1030 });
        assert_eq!(stats.breaker_opens, 1);
        assert!(!b.allow(500, &mut stats), "open: refuse");
        assert!(b.allow(1030, &mut stats), "window over: probe");
        assert_eq!(b.state, BreakerState::HalfOpen);
        assert_eq!(stats.breaker_half_opens, 1);
        // failed probe re-opens immediately
        b.on_failure(1040, &mut stats);
        assert_eq!(b.state, BreakerState::Open { until: 2040 });
        assert_eq!(stats.breaker_opens, 2);
        // successful probe closes
        assert!(b.allow(2040, &mut stats));
        b.on_success(&mut stats);
        assert_eq!(b.state, BreakerState::Closed);
        assert_eq!(stats.breaker_closes, 1);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut stats = RecoveryStats::default();
        let mut b = CircuitBreaker::new(2, 100);
        b.on_failure(0, &mut stats);
        b.on_success(&mut stats);
        b.on_failure(1, &mut stats);
        assert_eq!(b.state, BreakerState::Closed, "counter was reset");
        b.on_failure(2, &mut stats);
        assert!(matches!(b.state, BreakerState::Open { .. }));
    }

    #[test]
    fn stale_cache_prefers_exact_url_then_host() {
        let mut c = StaleCache::default();
        c.store("http://h/a", "h", &Response::ok("<a/>"), 0);
        c.store("http://h/b", "h", &Response::ok("<b/>"), 0);
        assert_eq!(c.lookup("http://h/a", "h", 0).unwrap().body, "<a/>");
        // unseen URL on a known host: the host's most recent good response
        assert_eq!(c.lookup("http://h/zzz", "h", 0).unwrap().body, "<b/>");
        assert!(c.lookup("http://other/x", "other", 0).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stale_cache_same_path_on_two_hosts_stays_separate() {
        let mut c = StaleCache::default();
        c.store("http://a/x", "a", &Response::ok("<from-a/>"), 0);
        c.store("http://b/x", "b", &Response::ok("<from-b/>"), 0);
        assert_eq!(c.lookup("http://a/x", "a", 0).unwrap().body, "<from-a/>");
        assert_eq!(c.lookup("http://b/x", "b", 0).unwrap().body, "<from-b/>");
        // host fallback never crosses hosts
        assert_eq!(c.lookup("http://a/zzz", "a", 0).unwrap().body, "<from-a/>");
        assert_eq!(c.lookup("http://b/zzz", "b", 0).unwrap().body, "<from-b/>");
    }

    #[test]
    fn stale_cache_entry_expires_at_exactly_now() {
        let mut c = StaleCache::bounded(8, 100);
        c.store("http://h/a", "h", &Response::ok("<a/>"), 50);
        // one tick before the deadline the entry is still served …
        assert!(c.lookup("http://h/a", "h", 149).is_some());
        // … at exactly stored_at + ttl it is expired, URL and host alike
        assert!(c.lookup("http://h/a", "h", 150).is_none());
        assert!(c.lookup("http://h/zzz", "h", 150).is_none());
    }

    #[test]
    fn stale_cache_capacity_one_thrash_evicts_every_store() {
        let mut c = StaleCache::bounded(1, u64::MAX);
        let mut evicted = 0;
        for i in 0..5 {
            evicted += c.store(&format!("http://h/{i}"), "h", &Response::ok("<x/>"), i);
            assert_eq!(c.len(), 1, "capacity bound holds");
        }
        assert_eq!(evicted, 4, "every store after the first evicted one");
        // only the newest URL survives; the host fallback still answers
        assert!(c.lookup("http://h/0", "h", 10).is_some(), "host fallback");
        assert_eq!(c.lookup("http://h/4", "h", 10).unwrap().body, "<x/>");
    }

    #[test]
    fn stale_cache_evicts_least_recently_used_not_oldest_stored() {
        let mut c = StaleCache::bounded(2, u64::MAX);
        c.store("http://h/a", "h", &Response::ok("<a/>"), 0);
        c.store("http://h/b", "h", &Response::ok("<b/>"), 1);
        // touch `a`, making `b` the LRU victim
        assert!(c.lookup("http://h/a", "h", 2).is_some());
        c.store("http://h/c", "h", &Response::ok("<c/>"), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("http://h/a", "h", 4).unwrap().body, "<a/>");
        // `b` was evicted: the URL now answers via the host fallback (`c`)
        assert_eq!(c.lookup("http://h/b", "h", 4).unwrap().body, "<c/>");
    }

    #[test]
    fn recovery_state_counts_evictions_in_stats() {
        let mut r = RecoveryState::new(RecoveryConfig {
            stale_capacity: 1,
            ..Default::default()
        });
        r.store_stale("http://h/a", "h", &Response::ok("<a/>"), 0);
        r.store_stale("http://h/b", "h", &Response::ok("<b/>"), 1);
        r.store_stale("http://h/c", "h", &Response::ok("<c/>"), 2);
        assert_eq!(r.stats.evictions, 2);
        assert_eq!(r.stale.len(), 1);
    }

    #[test]
    fn backoff_base_is_monotone_and_jitter_bounded_across_call_ids() {
        let p = RetryPolicy::default();
        for call_id in 0..200u64 {
            for k in 1..12u32 {
                let base = |k: u32| {
                    p.backoff_base_ms
                        .saturating_mul(p.backoff_factor.saturating_pow(k - 1))
                        .min(p.backoff_cap_ms)
                };
                let d = p.backoff_delay(k, call_id);
                assert!(
                    d >= base(k) && d <= base(k) + p.jitter_ms,
                    "call {call_id} attempt {k}: delay {d} outside envelope"
                );
                // the jitter-free envelope is monotone in the attempt, so
                // consecutive delays can regress by at most the jitter span
                let next = p.backoff_delay(k + 1, call_id);
                assert!(
                    next + p.jitter_ms >= d,
                    "call {call_id}: delay dropped {d} -> {next}"
                );
                assert!(base(k + 1) >= base(k));
            }
        }
    }

    #[test]
    fn recovery_state_tracks_fast_fails() {
        let mut r = RecoveryState::new(RecoveryConfig {
            breaker_failure_threshold: 1,
            breaker_open_ms: 500,
            ..Default::default()
        });
        assert!(r.breaker_allow("h", 0));
        r.breaker_failure("h", 0);
        assert_eq!(r.breaker_state("h"), BreakerState::Open { until: 500 });
        assert!(!r.breaker_allow("h", 10));
        assert_eq!(r.stats.breaker_fast_fails, 1);
        assert!(r.breaker_allow("h", 500));
        r.breaker_success("h");
        assert_eq!(r.breaker_state("h"), BreakerState::Closed);
        assert_eq!(r.breaker_states(), vec![("h".into(), BreakerState::Closed)]);
    }
}
