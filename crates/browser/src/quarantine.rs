//! Per-listener fault quarantine: the listener-side sibling of the network
//! circuit breaker in [`crate::recovery`]. A listener that keeps panicking
//! or erroring is detached from dispatch for a cool-down window instead of
//! being invoked (and failing) on every event — one bad handler cannot
//! monopolise the single event loop of the paper's Figure 1.
//!
//! The state machine mirrors the breaker's closed → open → half-open shape
//! under listener-flavoured names: `Healthy` → `Quarantined { until }` →
//! `Probation`. While quarantined, dispatch skips the listener entirely;
//! once the (virtual-time) window expires the next matching event is a
//! probation trial — success fully heals the listener, another failure
//! re-quarantines it immediately.

use std::collections::HashMap;

use crate::events::ListenerId;

/// Health states of one listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineState {
    /// Invoked normally; consecutive failures are counted.
    Healthy,
    /// Skipped by dispatch until the virtual clock reaches `until`.
    Quarantined { until: u64 },
    /// The cool-down expired: the next invocation is the probe. Success
    /// heals, failure re-quarantines without needing a fresh streak.
    Probation,
}

impl QuarantineState {
    /// Stable lowercase label for introspection (`browser:listenerStatus()`).
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineState::Healthy => "healthy",
            QuarantineState::Quarantined { .. } => "quarantined",
            QuarantineState::Probation => "probation",
        }
    }
}

/// The guard tracking one listener's failure streak.
#[derive(Debug, Clone)]
pub struct ListenerGuard {
    pub state: QuarantineState,
    consecutive_failures: u32,
    failure_threshold: u32,
    quarantine_ms: u64,
    /// Lifetime totals, for introspection.
    pub failures: u64,
    pub invocations: u64,
}

impl ListenerGuard {
    fn new(failure_threshold: u32, quarantine_ms: u64) -> Self {
        ListenerGuard {
            state: QuarantineState::Healthy,
            consecutive_failures: 0,
            failure_threshold: failure_threshold.max(1),
            quarantine_ms,
            failures: 0,
            invocations: 0,
        }
    }

    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Whether the listener may run at `now`. An expired quarantine window
    /// moves to probation and admits the probe invocation.
    fn allow(&mut self, now: u64, stats: &mut QuarantineStats) -> bool {
        match self.state {
            QuarantineState::Healthy | QuarantineState::Probation => true,
            QuarantineState::Quarantined { until } if now >= until => {
                self.state = QuarantineState::Probation;
                stats.probes += 1;
                true
            }
            QuarantineState::Quarantined { .. } => false,
        }
    }

    fn on_success(&mut self, stats: &mut QuarantineStats) {
        if self.state != QuarantineState::Healthy {
            stats.recoveries += 1;
        }
        self.state = QuarantineState::Healthy;
        self.consecutive_failures = 0;
    }

    fn on_failure(&mut self, now: u64, stats: &mut QuarantineStats) {
        self.failures += 1;
        match self.state {
            QuarantineState::Probation => {
                // failed probe: straight back into quarantine
                self.state = QuarantineState::Quarantined {
                    until: now + self.quarantine_ms,
                };
                stats.trips += 1;
            }
            QuarantineState::Healthy => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.state = QuarantineState::Quarantined {
                        until: now + self.quarantine_ms,
                    };
                    stats.trips += 1;
                }
            }
            QuarantineState::Quarantined { .. } => {}
        }
    }
}

/// Counters over all listeners (mirrored into `ServerMetrics`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct QuarantineStats {
    /// Listener invocations that returned a dynamic error.
    pub listener_errors: u64,
    /// Listener invocations that panicked (caught at the dispatch boundary).
    pub listener_panics: u64,
    /// Listeners that ran out of evaluation fuel (`XQIB0011`); these also
    /// count as `listener_errors`.
    pub fuel_exhausted: u64,
    /// Transitions into quarantine.
    pub trips: u64,
    /// Probation probes admitted after a cool-down.
    pub probes: u64,
    /// Listeners restored to healthy after probation.
    pub recoveries: u64,
    /// Invocations skipped because the listener was quarantined.
    pub skipped: u64,
}

/// Isolation knobs (what the plug-in config carries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationConfig {
    /// Consecutive failures that quarantine a listener.
    pub failure_threshold: u32,
    /// Virtual-time cool-down before a probation probe.
    pub quarantine_ms: u64,
    /// Per-invocation evaluation fuel budget for listeners (`None` = no
    /// preemption).
    pub listener_fuel: Option<u64>,
}

impl Default for IsolationConfig {
    fn default() -> Self {
        IsolationConfig {
            failure_threshold: 3,
            quarantine_ms: 5_000,
            listener_fuel: None,
        }
    }
}

/// All listener guards owned by one host environment.
#[derive(Debug, Default)]
pub struct ListenerQuarantine {
    guards: HashMap<ListenerId, ListenerGuard>,
    failure_threshold: u32,
    quarantine_ms: u64,
    pub stats: QuarantineStats,
}

impl ListenerQuarantine {
    pub fn new(config: &IsolationConfig) -> Self {
        ListenerQuarantine {
            guards: HashMap::new(),
            failure_threshold: config.failure_threshold,
            quarantine_ms: config.quarantine_ms,
            stats: QuarantineStats::default(),
        }
    }

    fn guard(&mut self, id: ListenerId) -> &mut ListenerGuard {
        let (threshold, window) = (self.failure_threshold, self.quarantine_ms);
        self.guards
            .entry(id)
            .or_insert_with(|| ListenerGuard::new(threshold, window))
    }

    /// Whether listener `id` may be invoked at `now`. Skips are counted.
    pub fn allow(&mut self, id: ListenerId, now: u64) -> bool {
        let mut stats = std::mem::take(&mut self.stats);
        let allowed = self.guard(id).allow(now, &mut stats);
        if allowed {
            self.guard(id).invocations += 1;
        } else {
            stats.skipped += 1;
        }
        self.stats = stats;
        allowed
    }

    /// Records a normal return.
    pub fn on_success(&mut self, id: ListenerId) {
        let mut stats = std::mem::take(&mut self.stats);
        self.guard(id).on_success(&mut stats);
        self.stats = stats;
    }

    /// Records a failed invocation (error or panic) at `now`.
    pub fn on_failure(&mut self, id: ListenerId, now: u64) {
        let mut stats = std::mem::take(&mut self.stats);
        self.guard(id).on_failure(now, &mut stats);
        self.stats = stats;
    }

    /// The state of one listener (healthy if never seen).
    pub fn state(&self, id: ListenerId) -> QuarantineState {
        self.guards
            .get(&id)
            .map(|g| g.state)
            .unwrap_or(QuarantineState::Healthy)
    }

    /// Every tracked listener with its guard, sorted by listener id (for
    /// deterministic introspection output).
    pub fn guards(&self) -> Vec<(ListenerId, &ListenerGuard)> {
        let mut v: Vec<(ListenerId, &ListenerGuard)> =
            self.guards.iter().map(|(&id, g)| (id, g)).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(threshold: u32, window: u64) -> ListenerQuarantine {
        ListenerQuarantine::new(&IsolationConfig {
            failure_threshold: threshold,
            quarantine_ms: window,
            listener_fuel: None,
        })
    }

    #[test]
    fn trips_exactly_at_threshold() {
        let mut quar = q(3, 1000);
        let id = ListenerId(1);
        quar.on_failure(id, 0);
        quar.on_failure(id, 10);
        assert_eq!(quar.state(id), QuarantineState::Healthy, "below threshold");
        assert_eq!(quar.stats.trips, 0);
        quar.on_failure(id, 20);
        assert_eq!(quar.state(id), QuarantineState::Quarantined { until: 1020 });
        assert_eq!(quar.stats.trips, 1);
    }

    #[test]
    fn quarantined_listener_is_skipped_then_probed() {
        let mut quar = q(1, 500);
        let id = ListenerId(2);
        assert!(quar.allow(id, 0));
        quar.on_failure(id, 0);
        assert!(!quar.allow(id, 100), "inside the window: skipped");
        assert_eq!(quar.stats.skipped, 1);
        assert!(quar.allow(id, 500), "window over: probe admitted");
        assert_eq!(quar.state(id), QuarantineState::Probation);
        assert_eq!(quar.stats.probes, 1);
        // failed probe: re-quarantined immediately, no fresh streak needed
        quar.on_failure(id, 510);
        assert_eq!(quar.state(id), QuarantineState::Quarantined { until: 1010 });
        assert_eq!(quar.stats.trips, 2);
        // successful probe after the second window heals fully
        assert!(quar.allow(id, 1010));
        quar.on_success(id);
        assert_eq!(quar.state(id), QuarantineState::Healthy);
        assert_eq!(quar.stats.recoveries, 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut quar = q(2, 100);
        let id = ListenerId(3);
        quar.on_failure(id, 0);
        quar.on_success(id);
        quar.on_failure(id, 1);
        assert_eq!(quar.state(id), QuarantineState::Healthy, "streak was reset");
        quar.on_failure(id, 2);
        assert!(matches!(
            quar.state(id),
            QuarantineState::Quarantined { .. }
        ));
    }

    #[test]
    fn guards_are_per_listener() {
        let mut quar = q(1, 100);
        quar.on_failure(ListenerId(1), 0);
        assert!(!quar.allow(ListenerId(1), 10));
        assert!(quar.allow(ListenerId(2), 10), "other listeners unaffected");
        let ids: Vec<u64> = quar.guards().iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2], "sorted introspection order");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(QuarantineState::Healthy.label(), "healthy");
        assert_eq!(
            QuarantineState::Quarantined { until: 9 }.label(),
            "quarantined"
        );
        assert_eq!(QuarantineState::Probation.label(), "probation");
    }
}
