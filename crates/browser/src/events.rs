//! DOM Level 3 event dispatch (§4.3): listener registration, the
//! capture → target → bubble propagation path, `stopPropagation` and
//! `preventDefault`.
//!
//! Listeners are opaque handles (`ListenerId` → host callback key): the
//! event system is host-agnostic, so the XQIB plug-in registers XQuery
//! listener QNames and the minijs baseline registers JS functions against
//! the *same* dispatch machinery — the co-existence claim of §6.2.

use std::collections::HashMap;

use xqib_dom::{NodeRef, Store};

/// An opaque listener handle. The host maps it to executable code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ListenerId(pub u64);

/// Dispatch phases, per DOM Level 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    Capture,
    Target,
    Bubble,
}

/// An event instance travelling the propagation path.
#[derive(Debug, Clone)]
pub struct DomEvent {
    /// The event type, e.g. `"onclick"` (the paper keeps IE's `on…` names).
    pub event_type: String,
    pub target: NodeRef,
    /// Modifier/button state, exposed to listeners as the event node's
    /// children (§4.3.2: `$evt/altKey`, `$evt/button`, …).
    pub alt_key: bool,
    pub ctrl_key: bool,
    pub shift_key: bool,
    /// 0 = none, 1 = left, 2 = right (the §4.3.2 listener example).
    pub button: u8,
    /// Free-form payload (readyState notifications, custom events).
    pub detail: String,
    /// Optional document payload: for synthetic events that carry data
    /// (e.g. a stale-cache response), the host deep-copies this subtree
    /// into the event node as a `<payload>` child, so XQuery listeners can
    /// read it as `$evt/payload/*`.
    pub payload: Option<NodeRef>,
}

impl DomEvent {
    pub fn new(event_type: &str, target: NodeRef) -> Self {
        DomEvent {
            event_type: event_type.to_string(),
            target,
            alt_key: false,
            ctrl_key: false,
            shift_key: false,
            button: 1,
            detail: String::new(),
            payload: None,
        }
    }

    pub fn with_button(mut self, button: u8) -> Self {
        self.button = button;
        self
    }

    pub fn with_detail(mut self, detail: &str) -> Self {
        self.detail = detail.to_string();
        self
    }
}

/// One registration.
#[derive(Debug, Clone)]
struct Registration {
    listener: ListenerId,
    capture: bool,
}

/// A single dispatch step handed to the host: run `listener` with the event
/// at `current_target` in `phase`.
#[derive(Debug, Clone)]
pub struct DispatchStep {
    pub listener: ListenerId,
    pub current_target: NodeRef,
    pub phase: EventPhase,
}

/// Outcome flags a listener can set.
#[derive(Debug, Clone, Copy, Default)]
pub struct ListenerOutcome {
    pub stop_propagation: bool,
    pub prevent_default: bool,
}

/// The listener registry + propagation-path computation.
#[derive(Debug, Default)]
pub struct EventSystem {
    /// (node, event type) → registrations, in registration order.
    listeners: HashMap<(NodeRef, String), Vec<Registration>>,
    next_id: u64,
    /// total dispatches performed (experiment counters)
    pub dispatch_count: u64,
}

impl EventSystem {
    pub fn new() -> Self {
        EventSystem::default()
    }

    /// Allocates a listener handle for the host to map to real code.
    pub fn fresh_listener_id(&mut self) -> ListenerId {
        self.next_id += 1;
        ListenerId(self.next_id)
    }

    /// `addEventListener(type, listener, capture)`.
    pub fn add_listener(
        &mut self,
        target: NodeRef,
        event_type: &str,
        listener: ListenerId,
        capture: bool,
    ) {
        let regs = self
            .listeners
            .entry((target, event_type.to_string()))
            .or_default();
        // duplicate registration of the same listener/phase is a no-op
        if !regs
            .iter()
            .any(|r| r.listener == listener && r.capture == capture)
        {
            regs.push(Registration { listener, capture });
        }
    }

    /// `removeEventListener`.
    pub fn remove_listener(&mut self, target: NodeRef, event_type: &str, listener: ListenerId) {
        if let Some(regs) = self.listeners.get_mut(&(target, event_type.to_string())) {
            regs.retain(|r| r.listener != listener);
        }
    }

    /// Count of live registrations (tests/experiments).
    pub fn listener_count(&self) -> usize {
        self.listeners.values().map(|v| v.len()).sum()
    }

    pub fn listeners_at(&self, target: NodeRef, event_type: &str) -> Vec<ListenerId> {
        self.listeners
            .get(&(target, event_type.to_string()))
            .map(|v| v.iter().map(|r| r.listener).collect())
            .unwrap_or_default()
    }

    /// Computes the full dispatch plan for an event: the ordered list of
    /// listener invocations along capture → target → bubble. The host runs
    /// the steps, honouring `stop_propagation` by cutting the remainder at
    /// the first step whose *target differs* from the stopping step's.
    pub fn dispatch_plan(&mut self, store: &Store, event: &DomEvent) -> Vec<DispatchStep> {
        self.dispatch_count += 1;
        // propagation path: ancestors from root down to target's parent
        let mut ancestors: Vec<NodeRef> = Vec::new();
        {
            let doc = store.doc(event.target.doc);
            let mut cur = doc.parent(event.target.node);
            while let Some(p) = cur {
                ancestors.push(NodeRef::new(event.target.doc, p));
                cur = doc.parent(p);
            }
        }
        ancestors.reverse(); // root first

        let mut plan = Vec::new();
        // capture phase: root → parent, capture listeners only
        for &a in &ancestors {
            for r in self.regs(a, &event.event_type) {
                if r.capture {
                    plan.push(DispatchStep {
                        listener: r.listener,
                        current_target: a,
                        phase: EventPhase::Capture,
                    });
                }
            }
        }
        // target phase: all listeners at the target, registration order
        for r in self.regs(event.target, &event.event_type) {
            plan.push(DispatchStep {
                listener: r.listener,
                current_target: event.target,
                phase: EventPhase::Target,
            });
        }
        // bubble phase: parent → root, non-capture listeners
        for &a in ancestors.iter().rev() {
            for r in self.regs(a, &event.event_type) {
                if !r.capture {
                    plan.push(DispatchStep {
                        listener: r.listener,
                        current_target: a,
                        phase: EventPhase::Bubble,
                    });
                }
            }
        }
        plan
    }

    fn regs(&self, target: NodeRef, event_type: &str) -> Vec<Registration> {
        self.listeners
            .get(&(target, event_type.to_string()))
            .cloned()
            .unwrap_or_default()
    }
}

/// Applies `stopPropagation` semantics to a dispatch plan: given the index
/// of the step whose listener stopped propagation, returns how many steps
/// should still run (steps at the *same* current target in the same phase
/// still fire; deeper propagation is cancelled).
pub fn truncate_after_stop(plan: &[DispatchStep], stopped_at: usize) -> usize {
    let stop_target = plan[stopped_at].current_target;
    let stop_phase = plan[stopped_at].phase;
    let mut end = stopped_at + 1;
    while end < plan.len()
        && plan[end].current_target == stop_target
        && plan[end].phase == stop_phase
    {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::{QName, Store};

    /// <html><body><div><button/></div></body></html>
    fn tree() -> (Store, NodeRef, NodeRef, NodeRef, NodeRef) {
        let mut s = Store::new();
        let d = s.new_document(None);
        let doc = s.doc_mut(d);
        let html = doc.create_element(QName::local("html"));
        doc.append_child(doc.root(), html).unwrap();
        let body = doc.create_element(QName::local("body"));
        doc.append_child(html, body).unwrap();
        let div = doc.create_element(QName::local("div"));
        doc.append_child(body, div).unwrap();
        let button = doc.create_element(QName::local("button"));
        doc.append_child(div, button).unwrap();
        (
            s,
            NodeRef::new(d, html),
            NodeRef::new(d, body),
            NodeRef::new(d, div),
            NodeRef::new(d, button),
        )
    }

    #[test]
    fn capture_target_bubble_order() {
        let (s, html, body, div, button) = tree();
        let mut ev = EventSystem::new();
        let l_html_cap = ev.fresh_listener_id();
        let l_div = ev.fresh_listener_id();
        let l_btn = ev.fresh_listener_id();
        let l_body = ev.fresh_listener_id();
        ev.add_listener(html, "onclick", l_html_cap, true);
        ev.add_listener(div, "onclick", l_div, false);
        ev.add_listener(button, "onclick", l_btn, false);
        ev.add_listener(body, "onclick", l_body, false);
        let plan = ev.dispatch_plan(&s, &DomEvent::new("onclick", button));
        let seq: Vec<(ListenerId, EventPhase)> =
            plan.iter().map(|p| (p.listener, p.phase)).collect();
        assert_eq!(
            seq,
            vec![
                (l_html_cap, EventPhase::Capture),
                (l_btn, EventPhase::Target),
                (l_div, EventPhase::Bubble),
                (l_body, EventPhase::Bubble),
            ]
        );
    }

    #[test]
    fn multiple_listeners_fire_in_registration_order() {
        let (s, _, _, _, button) = tree();
        let mut ev = EventSystem::new();
        let a = ev.fresh_listener_id();
        let b = ev.fresh_listener_id();
        ev.add_listener(button, "onclick", a, false);
        ev.add_listener(button, "onclick", b, false);
        let plan = ev.dispatch_plan(&s, &DomEvent::new("onclick", button));
        assert_eq!(
            plan.iter().map(|p| p.listener).collect::<Vec<_>>(),
            vec![a, b]
        );
    }

    #[test]
    fn event_types_are_independent() {
        let (s, _, _, _, button) = tree();
        let mut ev = EventSystem::new();
        let a = ev.fresh_listener_id();
        ev.add_listener(button, "onclick", a, false);
        let plan = ev.dispatch_plan(&s, &DomEvent::new("onkeyup", button));
        assert!(plan.is_empty());
    }

    #[test]
    fn remove_listener_detaches() {
        let (s, _, _, _, button) = tree();
        let mut ev = EventSystem::new();
        let a = ev.fresh_listener_id();
        ev.add_listener(button, "onclick", a, false);
        assert_eq!(ev.listener_count(), 1);
        ev.remove_listener(button, "onclick", a);
        assert_eq!(ev.listener_count(), 0);
        assert!(ev
            .dispatch_plan(&s, &DomEvent::new("onclick", button))
            .is_empty());
    }

    #[test]
    fn duplicate_registration_ignored() {
        let (_s, _, _, _, button) = tree();
        let mut ev = EventSystem::new();
        let a = ev.fresh_listener_id();
        ev.add_listener(button, "onclick", a, false);
        ev.add_listener(button, "onclick", a, false);
        assert_eq!(ev.listener_count(), 1);
    }

    #[test]
    fn stop_propagation_truncates() {
        let (s, _, body, div, button) = tree();
        let mut ev = EventSystem::new();
        let l_btn1 = ev.fresh_listener_id();
        let l_btn2 = ev.fresh_listener_id();
        let l_div = ev.fresh_listener_id();
        let l_body = ev.fresh_listener_id();
        ev.add_listener(button, "onclick", l_btn1, false);
        ev.add_listener(button, "onclick", l_btn2, false);
        ev.add_listener(div, "onclick", l_div, false);
        ev.add_listener(body, "onclick", l_body, false);
        let plan = ev.dispatch_plan(&s, &DomEvent::new("onclick", button));
        // listener 0 (btn1) stops propagation: btn2 (same target) still
        // runs, div/body do not
        let end = truncate_after_stop(&plan, 0);
        assert_eq!(end, 2);
        assert_eq!(
            plan[..end].iter().map(|p| p.listener).collect::<Vec<_>>(),
            vec![l_btn1, l_btn2]
        );
    }

    #[test]
    fn dispatch_counter() {
        let (s, _, _, _, button) = tree();
        let mut ev = EventSystem::new();
        for _ in 0..5 {
            ev.dispatch_plan(&s, &DomEvent::new("onclick", button));
        }
        assert_eq!(ev.dispatch_count, 5);
    }
}
