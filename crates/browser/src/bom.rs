//! The Browser Object Model: window tree, locations, history, navigator,
//! screen, and the UI primitives (`alert`/`confirm`/`prompt`) — everything
//! §4.2 of the paper materialises as XML window nodes.

use xqib_dom::DocId;

use crate::security::Origin;

/// Identifier of a window (or frame) in the browser's window tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u32);

/// A parsed location, mirroring the JavaScript `location` object's
/// properties (`href`, `protocol`, `host`, `port`, `pathname`, `search`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    pub href: String,
}

impl Location {
    pub fn new(href: &str) -> Self {
        Location {
            href: href.to_string(),
        }
    }

    pub fn origin(&self) -> Origin {
        Origin::from_url(&self.href)
    }

    pub fn protocol(&self) -> String {
        match self.href.split_once("://") {
            Some((s, _)) => format!("{s}:"),
            None => String::new(),
        }
    }

    pub fn host(&self) -> String {
        self.origin().host
    }

    pub fn port(&self) -> u16 {
        self.origin().port
    }

    pub fn pathname(&self) -> String {
        match self.href.split_once("://") {
            Some((_, rest)) => match rest.find('/') {
                Some(i) => rest[i..]
                    .split(['?', '#'])
                    .next()
                    .unwrap_or("/")
                    .to_string(),
                None => "/".to_string(),
            },
            None => self.href.clone(),
        }
    }

    pub fn search(&self) -> String {
        match self.href.find('?') {
            Some(i) => self.href[i..].split('#').next().unwrap_or("").to_string(),
            None => String::new(),
        }
    }
}

/// The `navigator` object (§4.2.2). Defaults identify the simulated host
/// browser — Internet Explorer, as in the paper's plug-in.
#[derive(Debug, Clone)]
pub struct Navigator {
    pub app_name: String,
    pub app_version: String,
    pub user_agent: String,
    pub platform: String,
    pub language: String,
}

impl Default for Navigator {
    fn default() -> Self {
        Navigator {
            app_name: "Microsoft Internet Explorer".to_string(),
            app_version: "7.0".to_string(),
            user_agent: "Mozilla/4.0 (compatible; MSIE 7.0; XQIB/1.0)".to_string(),
            platform: "Win32".to_string(),
            language: "en".to_string(),
        }
    }
}

/// The `screen` object (§4.2.2).
#[derive(Debug, Clone)]
pub struct Screen {
    pub width: u32,
    pub height: u32,
    pub avail_width: u32,
    pub avail_height: u32,
    pub color_depth: u32,
}

impl Default for Screen {
    fn default() -> Self {
        Screen {
            width: 1280,
            height: 1024,
            avail_width: 1280,
            avail_height: 994,
            color_depth: 32,
        }
    }
}

/// Session history of one window.
#[derive(Debug, Clone, Default)]
pub struct History {
    entries: Vec<String>,
    pos: usize,
}

impl History {
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    pub fn current(&self) -> Option<&str> {
        self.entries.get(self.pos).map(|s| s.as_str())
    }
    fn push(&mut self, url: String) {
        if !self.entries.is_empty() {
            self.entries.truncate(self.pos + 1);
        }
        self.entries.push(url);
        self.pos = self.entries.len() - 1;
    }
    fn go(&mut self, delta: i64) -> Option<&str> {
        let target = self.pos as i64 + delta;
        if target < 0 || target as usize >= self.entries.len() {
            return None;
        }
        self.pos = target as usize;
        self.current()
    }
}

/// Geometry of a top-level window (moveBy/moveTo/resize targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowGeometry {
    pub x: i32,
    pub y: i32,
    pub width: u32,
    pub height: u32,
}

impl Default for WindowGeometry {
    fn default() -> Self {
        WindowGeometry {
            x: 0,
            y: 0,
            width: 1024,
            height: 768,
        }
    }
}

/// One window or frame.
#[derive(Debug, Clone)]
pub struct WindowData {
    pub name: String,
    pub status: String,
    pub location: Location,
    pub parent: Option<WindowId>,
    pub frames: Vec<WindowId>,
    /// The DOM document shown in this window (absent until loaded).
    pub document: Option<DocId>,
    pub history: History,
    pub geometry: WindowGeometry,
    pub closed: bool,
    /// `document.lastModified` (§4.2.1's `$win/lastModified` example).
    pub last_modified: String,
}

/// A recorded UI interaction (alert/confirm/prompt/status), so tests and
/// experiments can assert what the user would have seen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UiEvent {
    Alert(String),
    Confirm(String),
    Prompt(String),
    WriteLn(String),
}

/// The browser: window tree + shared navigator/screen + UI log.
#[derive(Debug)]
pub struct Browser {
    windows: Vec<WindowData>,
    top: WindowId,
    pub navigator: Navigator,
    pub screen: Screen,
    pub ui_log: Vec<UiEvent>,
    /// Scripted answers for `confirm` (true/false) and `prompt` (strings).
    pub confirm_answers: Vec<bool>,
    pub prompt_answers: Vec<String>,
}

impl Browser {
    /// Creates a browser with a single top window at `url`.
    pub fn new(name: &str, url: &str) -> Self {
        let mut history = History::default();
        history.push(url.to_string());
        let win = WindowData {
            name: name.to_string(),
            status: String::new(),
            location: Location::new(url),
            parent: None,
            frames: Vec::new(),
            document: None,
            history,
            geometry: WindowGeometry::default(),
            closed: false,
            last_modified: "2009-04-20T08:00:00".to_string(),
        };
        Browser {
            windows: vec![win],
            top: WindowId(0),
            navigator: Navigator::default(),
            screen: Screen::default(),
            ui_log: Vec::new(),
            confirm_answers: Vec::new(),
            prompt_answers: Vec::new(),
        }
    }

    pub fn top(&self) -> WindowId {
        self.top
    }

    pub fn window(&self, id: WindowId) -> &WindowData {
        &self.windows[id.0 as usize]
    }

    pub fn window_mut(&mut self, id: WindowId) -> &mut WindowData {
        &mut self.windows[id.0 as usize]
    }

    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// All windows in creation order (including closed ones).
    pub fn window_ids(&self) -> impl Iterator<Item = WindowId> + '_ {
        (0..self.windows.len() as u32).map(WindowId)
    }

    /// Creates a child frame of `parent`.
    pub fn create_frame(&mut self, parent: WindowId, name: &str, url: &str) -> WindowId {
        let id = WindowId(self.windows.len() as u32);
        let mut history = History::default();
        history.push(url.to_string());
        self.windows.push(WindowData {
            name: name.to_string(),
            status: String::new(),
            location: Location::new(url),
            parent: Some(parent),
            frames: Vec::new(),
            document: None,
            history,
            geometry: WindowGeometry::default(),
            closed: false,
            last_modified: "2009-04-20T08:00:00".to_string(),
        });
        self.window_mut(parent).frames.push(id);
        id
    }

    /// `window.open` (§4.2.4): a fresh top-level window.
    pub fn window_open(&mut self, name: &str, url: &str) -> WindowId {
        let id = WindowId(self.windows.len() as u32);
        let mut history = History::default();
        history.push(url.to_string());
        self.windows.push(WindowData {
            name: name.to_string(),
            status: String::new(),
            location: Location::new(url),
            parent: None,
            frames: Vec::new(),
            document: None,
            history,
            geometry: WindowGeometry::default(),
            closed: false,
            last_modified: "2009-04-20T08:00:00".to_string(),
        });
        id
    }

    /// `window.close`.
    pub fn window_close(&mut self, id: WindowId) {
        self.window_mut(id).closed = true;
    }

    /// Navigates a window: replaces the location, pushes history, clears the
    /// document (a loader will attach the new one).
    pub fn navigate(&mut self, id: WindowId, url: &str) {
        let w = self.window_mut(id);
        w.location = Location::new(url);
        w.history.push(url.to_string());
        w.document = None;
    }

    /// `history.back()` / `forward()` / `go(n)`. Returns the URL navigated
    /// to, if any.
    pub fn history_go(&mut self, id: WindowId, delta: i64) -> Option<String> {
        let w = self.window_mut(id);
        let url = w.history.go(delta)?.to_string();
        w.location = Location::new(&url);
        w.document = None;
        Some(url)
    }

    /// Attaches a loaded document to a window.
    pub fn set_document(&mut self, id: WindowId, doc: DocId) {
        self.window_mut(id).document = Some(doc);
    }

    /// Origin of the code running in a window.
    pub fn origin_of(&self, id: WindowId) -> Origin {
        self.window(id).location.origin()
    }

    /// Finds a window anywhere in the tree by name (the
    /// `browser:top()//window[@name="myframe"]` pattern).
    pub fn find_by_name(&self, name: &str) -> Option<WindowId> {
        self.window_ids().find(|&id| self.window(id).name == name)
    }

    /// Depth-first list of `root` and all its descendant frames.
    pub fn subtree(&self, root: WindowId) -> Vec<WindowId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &f in self.window(id).frames.iter().rev() {
                stack.push(f);
            }
        }
        out
    }

    // ----- UI primitives ------------------------------------------------------

    pub fn alert(&mut self, message: &str) {
        self.ui_log.push(UiEvent::Alert(message.to_string()));
    }

    pub fn confirm(&mut self, message: &str) -> bool {
        self.ui_log.push(UiEvent::Confirm(message.to_string()));
        if self.confirm_answers.is_empty() {
            true
        } else {
            self.confirm_answers.remove(0)
        }
    }

    pub fn prompt(&mut self, message: &str) -> String {
        self.ui_log.push(UiEvent::Prompt(message.to_string()));
        if self.prompt_answers.is_empty() {
            String::new()
        } else {
            self.prompt_answers.remove(0)
        }
    }

    pub fn writeln(&mut self, text: &str) {
        self.ui_log.push(UiEvent::WriteLn(text.to_string()));
    }

    /// All alert messages recorded so far (most assertions use this).
    pub fn alerts(&self) -> Vec<&str> {
        self.ui_log
            .iter()
            .filter_map(|e| match e {
                UiEvent::Alert(m) => Some(m.as_str()),
                _ => None,
            })
            .collect()
    }

    pub fn window_move_to(&mut self, id: WindowId, x: i32, y: i32) {
        let g = &mut self.window_mut(id).geometry;
        g.x = x;
        g.y = y;
    }

    pub fn window_move_by(&mut self, id: WindowId, dx: i32, dy: i32) {
        let g = &mut self.window_mut(id).geometry;
        g.x += dx;
        g.y += dy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn browser() -> Browser {
        Browser::new("top_window", "http://www.dbis.ethz.ch/index.html")
    }

    #[test]
    fn location_components() {
        let l = Location::new("http://example.com:8080/a/b?q=1#frag");
        assert_eq!(l.protocol(), "http:");
        assert_eq!(l.host(), "example.com");
        assert_eq!(l.port(), 8080);
        assert_eq!(l.pathname(), "/a/b");
        assert_eq!(l.search(), "?q=1");
        let bare = Location::new("http://example.com");
        assert_eq!(bare.pathname(), "/");
    }

    #[test]
    fn frame_tree() {
        let mut b = browser();
        let top = b.top();
        let left = b.create_frame(top, "leftframe", "http://www.dbis.ethz.ch/left");
        let right = b.create_frame(top, "rightframe", "http://www.dbis.ethz.ch/right");
        let nested = b.create_frame(left, "inner", "http://www.dbis.ethz.ch/inner");
        assert_eq!(b.window(top).frames, vec![left, right]);
        assert_eq!(b.subtree(top), vec![top, left, nested, right]);
        assert_eq!(b.find_by_name("inner"), Some(nested));
        assert_eq!(b.find_by_name("nosuch"), None);
        assert_eq!(b.window(nested).parent, Some(left));
    }

    #[test]
    fn navigation_and_history() {
        let mut b = browser();
        let top = b.top();
        b.navigate(top, "http://www.dbis.ethz.ch/page2");
        b.navigate(top, "http://other.org/x");
        assert_eq!(b.window(top).location.href, "http://other.org/x");
        assert_eq!(b.window(top).history.len(), 3);
        let back = b.history_go(top, -1).unwrap();
        assert_eq!(back, "http://www.dbis.ethz.ch/page2");
        assert!(b.history_go(top, -5).is_none());
        let fwd = b.history_go(top, 1).unwrap();
        assert_eq!(fwd, "http://other.org/x");
        // navigating after going back truncates forward history
        b.history_go(top, -1).unwrap();
        b.navigate(top, "http://branch.example/");
        assert!(b.history_go(top, 1).is_none());
    }

    #[test]
    fn origin_changes_with_navigation() {
        let mut b = browser();
        let top = b.top();
        let o1 = b.origin_of(top);
        b.navigate(top, "http://evil.example/");
        let o2 = b.origin_of(top);
        assert!(!o1.same_origin(&o2));
    }

    #[test]
    fn ui_primitives_record_and_answer() {
        let mut b = browser();
        b.alert("Hello, World!");
        b.confirm_answers.push(false);
        assert!(!b.confirm("sure?"));
        assert!(b.confirm("default answer"), "defaults to true");
        b.prompt_answers.push("Bob".to_string());
        assert_eq!(b.prompt("name?"), "Bob");
        assert_eq!(b.alerts(), vec!["Hello, World!"]);
        assert_eq!(b.ui_log.len(), 4);
    }

    #[test]
    fn window_open_close_and_geometry() {
        let mut b = browser();
        let w = b.window_open("popup", "http://www.dbis.ethz.ch/pop");
        assert!(!b.window(w).closed);
        b.window_move_to(w, 10, 20);
        b.window_move_by(w, 5, -5);
        assert_eq!(b.window(w).geometry.x, 15);
        assert_eq!(b.window(w).geometry.y, 15);
        b.window_close(w);
        assert!(b.window(w).closed);
    }
}
