//! The single-threaded event loop with a virtual clock.
//!
//! Figure 1 of the paper: "the plugin then listens for IE events. When an
//! event occurs, Zorba is called … and the plugin loops between listening
//! for IE events and executing the corresponding listeners." The loop here
//! is that arbiter: tasks (user events, async completions, timers) are
//! queued with virtual timestamps and drained in deterministic order.

use std::collections::BinaryHeap;

/// A queued task: virtual due-time plus a host-defined payload.
#[derive(Debug)]
pub struct Task<T> {
    pub due: u64,
    seq: u64,
    pub payload: T,
}

impl<T> PartialEq for Task<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Task<T> {}
impl<T> PartialOrd for Task<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Task<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap: earlier due-time first; FIFO within a tick
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// A deterministic, virtual-time task queue.
#[derive(Debug)]
pub struct EventLoop<T> {
    queue: BinaryHeap<Task<T>>,
    now: u64,
    seq: u64,
    pub processed: u64,
}

impl<T> Default for EventLoop<T> {
    fn default() -> Self {
        EventLoop {
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }
}

impl<T> EventLoop<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// The virtual clock, in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules a task `delay_ms` from now. Equal delays preserve FIFO
    /// order — the determinism the experiments rely on.
    pub fn schedule(&mut self, delay_ms: u64, payload: T) {
        self.seq += 1;
        self.queue.push(Task {
            due: self.now + delay_ms,
            seq: self.seq,
            payload,
        });
    }

    /// Advances the virtual clock by `ms` without running a task — the cost
    /// of synchronous waits that happen *inside* a task (network round
    /// trips, client-side request timeouts). Already-queued tasks keep
    /// their due times; `pop` stays monotonic.
    pub fn advance(&mut self, ms: u64) {
        self.now += ms;
    }

    /// Pops the next task, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<T> {
        let task = self.queue.pop()?;
        self.now = self.now.max(task.due);
        self.processed += 1;
        Some(task.payload)
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_tick() {
        let mut el: EventLoop<&str> = EventLoop::new();
        el.schedule(0, "a");
        el.schedule(0, "b");
        el.schedule(0, "c");
        assert_eq!(el.pop(), Some("a"));
        assert_eq!(el.pop(), Some("b"));
        assert_eq!(el.pop(), Some("c"));
        assert_eq!(el.pop(), None);
    }

    #[test]
    fn ordered_by_due_time() {
        let mut el: EventLoop<u32> = EventLoop::new();
        el.schedule(50, 2);
        el.schedule(10, 1);
        el.schedule(100, 3);
        assert_eq!(el.pop(), Some(1));
        assert_eq!(el.now(), 10);
        assert_eq!(el.pop(), Some(2));
        assert_eq!(el.now(), 50);
        assert_eq!(el.pop(), Some(3));
        assert_eq!(el.now(), 100);
    }

    #[test]
    fn clock_is_monotonic_for_tasks_scheduled_mid_run() {
        let mut el: EventLoop<&str> = EventLoop::new();
        el.schedule(100, "late");
        assert_eq!(el.pop(), Some("late"));
        // a zero-delay task scheduled now lands at t=100, not t=0
        el.schedule(0, "after");
        assert_eq!(el.pop(), Some("after"));
        assert_eq!(el.now(), 100);
    }

    #[test]
    fn counters() {
        let mut el: EventLoop<u8> = EventLoop::new();
        el.schedule(1, 1);
        el.schedule(2, 2);
        assert_eq!(el.len(), 2);
        el.pop();
        el.pop();
        assert_eq!(el.processed, 2);
        assert!(el.is_empty());
    }
}
