//! # xqib-browser
//!
//! A deterministic **browser substrate** standing in for Internet Explorer
//! in the XQIB reproduction (DESIGN.md substitution table). It implements
//! the observable surface the paper's plug-in programs against:
//!
//! * a **Browser Object Model** — a window/frame tree with `location`,
//!   `status`, `history`, shared `navigator` and `screen` objects (§4.2);
//! * **DOM Level 3 events** — capture → target → bubble dispatch with
//!   listener registration, `stopPropagation` and `preventDefault` (§4.3);
//! * a **CSS style store** keeping style properties out of the XML tree,
//!   exactly the §4.5 design argument for `set style`/`get style`;
//! * a **same-origin security policy** (§4.2.1) whose failed checks yield
//!   "empty" answers rather than errors;
//! * a **virtual network**: registered REST services, deterministic
//!   latency, byte accounting — the measurement substrate for the Figure 2
//!   and Figure 3 experiments;
//! * a single-threaded **event loop** with a virtual clock, like a real
//!   browser's main thread;
//! * **fault injection & recovery**: seeded per-host failure schedules
//!   ([`net::FaultPlan`]) and the client-side counterpart — retry policies,
//!   circuit breakers and a stale-response cache ([`recovery`]).
//!
//! Everything is deterministic: no wall clock, no ambient randomness.

pub mod bom;
pub mod css;
pub mod event_loop;
pub mod events;
pub mod net;
pub mod quarantine;
pub mod recovery;
pub mod security;

pub use bom::{Browser, Location, Navigator, Screen, WindowId};
pub use css::CssStore;
pub use event_loop::{EventLoop, Task};
pub use events::{DomEvent, EventPhase, EventSystem, ListenerId};
pub use net::{Fault, FaultPlan, NetOutcome, Request, Response, VirtualNetwork};
pub use quarantine::{
    IsolationConfig, ListenerGuard, ListenerQuarantine, QuarantineState, QuarantineStats,
};
pub use recovery::{
    BreakerState, CircuitBreaker, RecoveryConfig, RecoveryState, RecoveryStats, RetryPolicy,
    StaleCache,
};
pub use security::Origin;
