//! The virtual network: registered REST services with deterministic latency
//! and byte accounting.
//!
//! This substrate replaces the live services of the paper's applications
//! (weather services, web cams, the Elsevier/MarkLogic REST interface) and
//! doubles as the measurement instrument for the Figure 2 experiment
//! (requests and bytes saved by server-to-client migration).
//!
//! Hosts can carry a seeded [`FaultPlan`]: error responses, lost requests,
//! latency jitter, truncated payloads and down-time windows in virtual
//! time, all reproducible from a `u64` seed. The plan decides per request;
//! the client-side recovery policy (retries, circuit breakers, stale
//! serving) lives in [`crate::recovery`].

use std::collections::HashMap;

/// An HTTP-ish request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub url: String,
    pub body: Option<String>,
}

impl Request {
    pub fn get(url: &str) -> Self {
        Request {
            method: "GET".to_string(),
            url: url.to_string(),
            body: None,
        }
    }

    pub fn post(url: &str, body: &str) -> Self {
        Request {
            method: "POST".to_string(),
            url: url.to_string(),
            body: Some(body.to_string()),
        }
    }

    /// The query parameter `name` from the URL, if any. Pairs without `=`
    /// are skipped rather than aborting the scan, and values are decoded
    /// (`+` → space, `%xx` → byte).
    pub fn query_param(&self, name: &str) -> Option<String> {
        let q = self.url.split_once('?')?.1;
        for pair in q.split('&') {
            let Some((k, v)) = pair.split_once('=') else {
                continue;
            };
            if k == name {
                return Some(percent_decode(v));
            }
        }
        None
    }

    /// The path portion (no scheme/host/query).
    pub fn path(&self) -> &str {
        let rest = match self.url.split_once("://") {
            Some((_, r)) => r,
            None => &self.url,
        };
        let path_start = rest.find('/').unwrap_or(rest.len());
        let path = &rest[path_start..];
        path.split(['?', '#']).next().unwrap_or("/")
    }
}

/// A response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub content_type: String,
}

impl Response {
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            status: 200,
            body: body.into(),
            content_type: "application/xml".to_string(),
        }
    }

    pub fn not_found() -> Self {
        Response {
            status: 404,
            body: "<error>not found</error>".to_string(),
            content_type: "application/xml".to_string(),
        }
    }
}

type Handler = Box<dyn FnMut(&Request, u64) -> Response>;

/// One injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The service replies with this HTTP status (the request never reaches
    /// the handler).
    Error(u16),
    /// The request is lost: no reply ever arrives; the client observes its
    /// own deadline.
    Timeout,
    /// The reply arrives, but the payload is cut off mid-transfer.
    Truncate,
    /// The request reaches the service and is processed, but the *reply*
    /// is lost in flight: the client observes its own deadline while the
    /// side effects stand. The failure mode that makes idempotent resend
    /// (WAL seq-skip on the replication receiver) load-bearing.
    ReplyLost,
}

/// A deterministic failure schedule for one host, reproducible from `seed`.
///
/// Decision order per request: scripted faults are consumed first, then the
/// flap windows are checked against virtual time, then one probabilistic
/// draw (seeded, per-request-index) partitions into timeout / error /
/// truncation / none. Latency jitter is an independent seeded draw.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    /// Outcomes forced onto the host's first requests, in order
    /// (`None` = deliberate success), before any probabilistic draw.
    pub scripted: Vec<Option<Fault>>,
    /// ‰ of requests lost ([`Fault::Timeout`]).
    pub timeout_permille: u16,
    /// ‰ of requests answered with a 503 ([`Fault::Error`]).
    pub error_permille: u16,
    /// ‰ of requests with truncated payloads ([`Fault::Truncate`]).
    pub truncate_permille: u16,
    /// ‰ of requests processed whose reply is lost ([`Fault::ReplyLost`]).
    pub reply_lost_permille: u16,
    /// Uniform extra round-trip latency in `0..=jitter_ms`, per request.
    pub jitter_ms: u64,
    /// Virtual-time windows `[from, to)` during which the host is down
    /// (every request in the window is lost).
    pub flaps: Vec<(u64, u64)>,
}

impl FaultPlan {
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Forces the host's first `n` requests to fail with `fault`.
    pub fn fail_first(mut self, n: usize, fault: Fault) -> Self {
        self.scripted.extend((0..n).map(|_| Some(fault)));
        self
    }

    pub fn with_timeout_permille(mut self, permille: u16) -> Self {
        self.timeout_permille = permille;
        self
    }

    pub fn with_error_permille(mut self, permille: u16) -> Self {
        self.error_permille = permille;
        self
    }

    pub fn with_truncate_permille(mut self, permille: u16) -> Self {
        self.truncate_permille = permille;
        self
    }

    pub fn with_reply_lost_permille(mut self, permille: u16) -> Self {
        self.reply_lost_permille = permille;
        self
    }

    pub fn with_jitter_ms(mut self, jitter_ms: u64) -> Self {
        self.jitter_ms = jitter_ms;
        self
    }

    /// The host is down (all requests lost) while `from <= now < to`.
    pub fn down_between(mut self, from: u64, to: u64) -> Self {
        self.flaps.push((from, to));
        self
    }

    /// Every request fails: the permanently-dead-host plan.
    pub fn always_down(seed: u64) -> Self {
        FaultPlan::seeded(seed).with_timeout_permille(1000)
    }

    /// The fault (if any) and latency jitter for the host's `index`-th
    /// request issued at virtual time `now`. Pure: same plan, index and
    /// time give the same answer on every run. Public so other deterministic
    /// harnesses (the app-server overload simulator) can reuse the exact
    /// fault model without routing through a [`VirtualNetwork`].
    pub fn decide(&self, index: u64, now: u64) -> (Option<Fault>, u64) {
        let jitter = if self.jitter_ms == 0 {
            0
        } else {
            mix64(self.seed ^ 0x6a09_e667_f3bc_c909 ^ index.wrapping_mul(0x9e37))
                % (self.jitter_ms + 1)
        };
        if let Some(&f) = self.scripted.get(index as usize) {
            return (f, jitter);
        }
        if self.flaps.iter().any(|&(from, to)| now >= from && now < to) {
            return (Some(Fault::Timeout), jitter);
        }
        let draw = (mix64(self.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 1000) as u16;
        let fault = if draw < self.timeout_permille {
            Some(Fault::Timeout)
        } else if draw < self.timeout_permille + self.error_permille {
            Some(Fault::Error(503))
        } else if draw < self.timeout_permille + self.error_permille + self.truncate_permille {
            Some(Fault::Truncate)
        } else if draw
            < self.timeout_permille
                + self.error_permille
                + self.truncate_permille
                + self.reply_lost_permille
        {
            Some(Fault::ReplyLost)
        } else {
            None
        };
        (fault, jitter)
    }
}

/// SplitMix64 finaliser: one deterministic draw per distinct input.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What a fault-aware fetch produced.
#[derive(Debug, Clone)]
pub enum NetOutcome {
    /// A reply — possibly an injected error status or a truncated payload —
    /// after `latency_ms` of round-trip time.
    Reply { resp: Response, latency_ms: u64 },
    /// The request was lost; no reply will ever arrive. The client must
    /// apply its own deadline.
    Lost,
}

/// Per-host traffic counters.
#[derive(Debug, Default, Clone)]
pub struct HostStats {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Requests on which the host's fault plan injected a failure.
    pub faults: u64,
}

/// Aggregate network statistics.
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub injected_timeouts: u64,
    pub injected_errors: u64,
    pub injected_truncations: u64,
    pub injected_reply_losses: u64,
    pub per_host: HashMap<String, HostStats>,
}

/// The virtual network: URL-prefix-routed services.
#[derive(Default)]
pub struct VirtualNetwork {
    services: Vec<(String, u64, Handler)>,
    /// host → (plan, requests issued to the host so far)
    faults: HashMap<String, (FaultPlan, u64)>,
    pub stats: NetStats,
}

impl VirtualNetwork {
    pub fn new() -> Self {
        VirtualNetwork::default()
    }

    /// Registers a service handling every URL starting with `prefix`, with a
    /// deterministic round-trip `latency_ms`.
    pub fn register(
        &mut self,
        prefix: &str,
        latency_ms: u64,
        mut handler: impl FnMut(&Request) -> Response + 'static,
    ) {
        self.register_with_now(prefix, latency_ms, move |req, _now| handler(req));
    }

    /// Like [`register`](Self::register), but the handler also receives the
    /// virtual time of the request — for services whose behaviour depends on
    /// the clock (a simulated cluster resolving replication acks).
    pub fn register_with_now(
        &mut self,
        prefix: &str,
        latency_ms: u64,
        handler: impl FnMut(&Request, u64) -> Response + 'static,
    ) {
        self.services
            .push((prefix.to_string(), latency_ms, Box::new(handler)));
        // longest-prefix match wins: keep sorted by descending length
        self.services
            .sort_by_key(|(prefix, _, _)| std::cmp::Reverse(prefix.len()));
    }

    /// Installs (or replaces) the fault plan for a host. The per-host
    /// request index restarts at zero, so scripted faults apply from the
    /// next request.
    pub fn set_fault_plan(&mut self, host: &str, plan: FaultPlan) {
        self.faults.insert(host.to_string(), (plan, 0));
    }

    /// Removes the fault plan for a host (the host heals).
    pub fn clear_fault_plan(&mut self, host: &str) {
        self.faults.remove(host);
    }

    /// Performs a request at virtual time `now`, applying the target host's
    /// fault plan. Unroutable URLs get a 404 with zero latency (connection
    /// refused) and, as before, don't count as service traffic.
    pub fn fetch_at(&mut self, req: &Request, now: u64) -> NetOutcome {
        let host = host_of(&req.url);
        let sent = req.url.len() as u64 + req.body.as_ref().map_or(0, |b| b.len() as u64);
        let Some(svc) = self
            .services
            .iter()
            .position(|(prefix, _, _)| req.url.starts_with(prefix.as_str()))
        else {
            return NetOutcome::Reply {
                resp: Response::not_found(),
                latency_ms: 0,
            };
        };
        let (fault, jitter) = match self.faults.get_mut(&host) {
            Some((plan, index)) => {
                let d = plan.decide(*index, now);
                *index += 1;
                d
            }
            None => (None, 0),
        };
        self.stats.requests += 1;
        self.stats.bytes_sent += sent;
        let hs = self.stats.per_host.entry(host).or_default();
        hs.requests += 1;
        hs.bytes_sent += sent;
        if fault.is_some() {
            hs.faults += 1;
        }
        let base_latency = self.services[svc].1;
        let latency_ms = base_latency + jitter;
        match fault {
            Some(Fault::Timeout) => {
                self.stats.injected_timeouts += 1;
                NetOutcome::Lost
            }
            Some(Fault::Error(status)) => {
                self.stats.injected_errors += 1;
                NetOutcome::Reply {
                    resp: Response {
                        status,
                        body: "<error>injected service fault</error>".to_string(),
                        content_type: "application/xml".to_string(),
                    },
                    latency_ms,
                }
            }
            Some(Fault::ReplyLost) => {
                // the handler runs — side effects stand — but the reply
                // never reaches the caller
                self.stats.injected_reply_losses += 1;
                let _ = (self.services[svc].2)(req, now);
                NetOutcome::Lost
            }
            Some(Fault::Truncate) => {
                self.stats.injected_truncations += 1;
                let mut resp = (self.services[svc].2)(req, now);
                resp.body.truncate(resp.body.len() / 2);
                let received = resp.body.len() as u64;
                self.stats.bytes_received += received;
                let host = host_of(&req.url);
                let hs = self.stats.per_host.entry(host).or_default();
                hs.bytes_received += received;
                NetOutcome::Reply { resp, latency_ms }
            }
            None => {
                let resp = (self.services[svc].2)(req, now);
                let received = resp.body.len() as u64;
                self.stats.bytes_received += received;
                let host = host_of(&req.url);
                let hs = self.stats.per_host.entry(host).or_default();
                hs.bytes_received += received;
                NetOutcome::Reply { resp, latency_ms }
            }
        }
    }

    /// Performs a request at virtual time 0 with the legacy reply shape.
    /// Lost requests surface as status-0 responses (the browser convention
    /// for "no response at all").
    pub fn fetch(&mut self, req: &Request) -> (Response, u64) {
        match self.fetch_at(req, 0) {
            NetOutcome::Reply { resp, latency_ms } => (resp, latency_ms),
            NetOutcome::Lost => (
                Response {
                    status: 0,
                    body: "<error>request lost</error>".to_string(),
                    content_type: "application/xml".to_string(),
                },
                0,
            ),
        }
    }

    /// Convenience GET.
    pub fn get(&mut self, url: &str) -> (Response, u64) {
        self.fetch(&Request::get(url))
    }

    /// Resets counters (between experiment configurations).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }
}

/// Decodes `+` as space and `%xx` escapes (malformed escapes pass through
/// verbatim); invalid UTF-8 becomes replacement characters.
pub fn percent_decode(s: &str) -> String {
    fn hex(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                (Some(hi), Some(lo)) => {
                    out.push(hi << 4 | lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn host_of(url: &str) -> String {
    crate::security::Origin::from_url(url).host
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_and_stats() {
        let mut net = VirtualNetwork::new();
        net.register("http://weather.example/", 20, |req| {
            let loc = req.query_param("q").unwrap_or_default();
            Response::ok(format!("<weather loc=\"{loc}\">sunny</weather>"))
        });
        net.register("http://maps.example/", 30, |_req| Response::ok("<map/>"));
        let (resp, lat) = net.get("http://weather.example/api?q=Madrid");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("Madrid"));
        assert_eq!(lat, 20);
        let (resp, lat) = net.get("http://nowhere.example/");
        assert_eq!(resp.status, 404);
        assert_eq!(lat, 0);
        assert_eq!(net.stats.requests, 1, "404s don't count as service traffic");
        assert_eq!(
            net.stats.per_host.get("weather.example").unwrap().requests,
            1
        );
        assert!(net.stats.bytes_received > 0);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut net = VirtualNetwork::new();
        net.register("http://api.example/", 10, |_| Response::ok("<general/>"));
        net.register("http://api.example/special/", 10, |_| {
            Response::ok("<special/>")
        });
        let (resp, _) = net.get("http://api.example/special/x");
        assert_eq!(resp.body, "<special/>");
        let (resp, _) = net.get("http://api.example/other");
        assert_eq!(resp.body, "<general/>");
    }

    #[test]
    fn stateful_handler() {
        let mut net = VirtualNetwork::new();
        let mut hits = 0u32;
        net.register("http://counter.example/", 5, move |_| {
            hits += 1;
            Response::ok(format!("<hits>{hits}</hits>"))
        });
        let (r1, _) = net.get("http://counter.example/");
        let (r2, _) = net.get("http://counter.example/");
        assert_eq!(r1.body, "<hits>1</hits>");
        assert_eq!(r2.body, "<hits>2</hits>");
    }

    #[test]
    fn request_helpers() {
        let r = Request::get("http://h.example:99/a/b?q=New+York&x=1");
        assert_eq!(r.path(), "/a/b");
        assert_eq!(r.query_param("q").as_deref(), Some("New York"));
        assert_eq!(r.query_param("x").as_deref(), Some("1"));
        assert_eq!(r.query_param("nope"), None);
        let p = Request::post("http://h/", "body");
        assert_eq!(p.method, "POST");
    }

    #[test]
    fn reset_stats() {
        let mut net = VirtualNetwork::new();
        net.register("http://a/", 1, |_| Response::ok("x"));
        net.get("http://a/1");
        net.reset_stats();
        assert_eq!(net.stats.requests, 0);
    }

    #[test]
    fn malformed_query_pairs_are_skipped() {
        let r = Request::get("http://h/p?flag&q=ok&alsoflag");
        assert_eq!(r.query_param("q").as_deref(), Some("ok"));
        assert_eq!(r.query_param("flag"), None);
    }

    #[test]
    fn percent_escapes_decode() {
        let r = Request::get("http://h/p?q=New%20York%2C+NY&bad=100%");
        assert_eq!(r.query_param("q").as_deref(), Some("New York, NY"));
        // malformed escape passes through verbatim
        assert_eq!(r.query_param("bad").as_deref(), Some("100%"));
    }

    fn faulty_net() -> VirtualNetwork {
        let mut net = VirtualNetwork::new();
        net.register("http://svc.example/", 10, |_| {
            Response::ok("<payload>0123456789</payload>")
        });
        net
    }

    #[test]
    fn scripted_faults_fire_in_order_then_recover() {
        let mut net = faulty_net();
        net.set_fault_plan(
            "svc.example",
            FaultPlan::seeded(1).fail_first(2, Fault::Timeout),
        );
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/a"), 0),
            NetOutcome::Lost
        ));
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/b"), 0),
            NetOutcome::Lost
        ));
        match net.fetch_at(&Request::get("http://svc.example/c"), 0) {
            NetOutcome::Reply { resp, .. } => assert_eq!(resp.status, 200),
            NetOutcome::Lost => panic!("third request should succeed"),
        }
        assert_eq!(net.stats.injected_timeouts, 2);
        assert_eq!(net.stats.per_host.get("svc.example").unwrap().faults, 2);
    }

    #[test]
    fn flap_window_downs_the_host_in_virtual_time() {
        let mut net = faulty_net();
        net.set_fault_plan("svc.example", FaultPlan::seeded(2).down_between(100, 200));
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/a"), 50),
            NetOutcome::Reply { .. }
        ));
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/a"), 150),
            NetOutcome::Lost
        ));
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/a"), 200),
            NetOutcome::Reply { .. }
        ));
    }

    #[test]
    fn injected_error_and_truncation() {
        let mut net = faulty_net();
        net.set_fault_plan(
            "svc.example",
            FaultPlan {
                seed: 3,
                scripted: vec![Some(Fault::Error(503)), Some(Fault::Truncate)],
                ..Default::default()
            },
        );
        match net.fetch_at(&Request::get("http://svc.example/a"), 0) {
            NetOutcome::Reply { resp, .. } => {
                assert_eq!(resp.status, 503);
                assert!(resp.body.contains("injected"));
            }
            NetOutcome::Lost => panic!("error fault replies"),
        }
        match net.fetch_at(&Request::get("http://svc.example/a"), 0) {
            NetOutcome::Reply { resp, .. } => {
                assert_eq!(resp.status, 200);
                assert_eq!(resp.body.len(), "<payload>0123456789</payload>".len() / 2);
            }
            NetOutcome::Lost => panic!("truncation replies"),
        }
        assert_eq!(net.stats.injected_errors, 1);
        assert_eq!(net.stats.injected_truncations, 1);
    }

    #[test]
    fn reply_lost_runs_the_handler_but_loses_the_reply() {
        use std::cell::Cell;
        use std::rc::Rc;
        let served = Rc::new(Cell::new(0u32));
        let mut net = VirtualNetwork::new();
        let s = served.clone();
        net.register("http://svc.example/", 5, move |_req| {
            s.set(s.get() + 1);
            Response::ok("<done/>")
        });
        net.set_fault_plan(
            "svc.example",
            FaultPlan {
                seed: 4,
                scripted: vec![Some(Fault::ReplyLost), None],
                ..Default::default()
            },
        );
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/a"), 0),
            NetOutcome::Lost
        ));
        assert_eq!(served.get(), 1, "the service processed the request");
        assert_eq!(net.stats.injected_reply_losses, 1);
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/a"), 0),
            NetOutcome::Reply { .. }
        ));
        assert_eq!(served.get(), 2);
    }

    #[test]
    fn fault_schedule_is_reproducible_from_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut net = faulty_net();
            net.set_fault_plan(
                "svc.example",
                FaultPlan::seeded(seed)
                    .with_timeout_permille(300)
                    .with_jitter_ms(7),
            );
            (0..64)
                .map(|i| {
                    matches!(
                        net.fetch_at(&Request::get(&format!("http://svc.example/{i}")), i),
                        NetOutcome::Lost
                    )
                })
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seeds diverge");
        let lost = run(42).iter().filter(|&&l| l).count();
        assert!((5..60).contains(&lost), "≈30% loss, got {lost}/64");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let latencies = |seed: u64| -> Vec<u64> {
            let mut net = faulty_net();
            net.set_fault_plan("svc.example", FaultPlan::seeded(seed).with_jitter_ms(5));
            (0..32)
                .map(
                    |i| match net.fetch_at(&Request::get(&format!("http://svc.example/{i}")), 0) {
                        NetOutcome::Reply { latency_ms, .. } => latency_ms,
                        NetOutcome::Lost => panic!("no loss configured"),
                    },
                )
                .collect()
        };
        let a = latencies(9);
        assert_eq!(a, latencies(9));
        assert!(a.iter().all(|&l| (10..=15).contains(&l)));
        assert!(a.iter().any(|&l| l != a[0]), "jitter actually varies");
    }

    #[test]
    fn legacy_fetch_maps_lost_to_status_zero() {
        let mut net = faulty_net();
        net.set_fault_plan(
            "svc.example",
            FaultPlan::seeded(4).fail_first(1, Fault::Timeout),
        );
        let (resp, lat) = net.get("http://svc.example/a");
        assert_eq!(resp.status, 0);
        assert_eq!(lat, 0);
        // the plan heals after the scripted prefix
        let (resp, _) = net.get("http://svc.example/a");
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn clear_fault_plan_heals_host() {
        let mut net = faulty_net();
        net.set_fault_plan("svc.example", FaultPlan::always_down(5));
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/a"), 0),
            NetOutcome::Lost
        ));
        net.clear_fault_plan("svc.example");
        assert!(matches!(
            net.fetch_at(&Request::get("http://svc.example/a"), 0),
            NetOutcome::Reply { .. }
        ));
    }
}
