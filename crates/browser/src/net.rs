//! The virtual network: registered REST services with deterministic latency
//! and byte accounting.
//!
//! This substrate replaces the live services of the paper's applications
//! (weather services, web cams, the Elsevier/MarkLogic REST interface) and
//! doubles as the measurement instrument for the Figure 2 experiment
//! (requests and bytes saved by server-to-client migration).

use std::collections::HashMap;

/// An HTTP-ish request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub url: String,
    pub body: Option<String>,
}

impl Request {
    pub fn get(url: &str) -> Self {
        Request {
            method: "GET".to_string(),
            url: url.to_string(),
            body: None,
        }
    }

    pub fn post(url: &str, body: &str) -> Self {
        Request {
            method: "POST".to_string(),
            url: url.to_string(),
            body: Some(body.to_string()),
        }
    }

    /// The query parameter `name` from the URL, if any.
    pub fn query_param(&self, name: &str) -> Option<String> {
        let q = self.url.split_once('?')?.1;
        for pair in q.split('&') {
            let (k, v) = pair.split_once('=')?;
            if k == name {
                return Some(v.replace('+', " "));
            }
        }
        None
    }

    /// The path portion (no scheme/host/query).
    pub fn path(&self) -> &str {
        let rest = match self.url.split_once("://") {
            Some((_, r)) => r,
            None => &self.url,
        };
        let path_start = rest.find('/').unwrap_or(rest.len());
        let path = &rest[path_start..];
        path.split(['?', '#']).next().unwrap_or("/")
    }
}

/// A response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub content_type: String,
}

impl Response {
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            status: 200,
            body: body.into(),
            content_type: "application/xml".to_string(),
        }
    }

    pub fn not_found() -> Self {
        Response {
            status: 404,
            body: "<error>not found</error>".to_string(),
            content_type: "application/xml".to_string(),
        }
    }
}

type Handler = Box<dyn FnMut(&Request) -> Response>;

/// Per-host traffic counters.
#[derive(Debug, Default, Clone)]
pub struct HostStats {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
}

/// Aggregate network statistics.
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub per_host: HashMap<String, HostStats>,
}

/// The virtual network: URL-prefix-routed services.
#[derive(Default)]
pub struct VirtualNetwork {
    services: Vec<(String, u64, Handler)>,
    pub stats: NetStats,
}

impl VirtualNetwork {
    pub fn new() -> Self {
        VirtualNetwork::default()
    }

    /// Registers a service handling every URL starting with `prefix`, with a
    /// deterministic round-trip `latency_ms`.
    pub fn register(
        &mut self,
        prefix: &str,
        latency_ms: u64,
        handler: impl FnMut(&Request) -> Response + 'static,
    ) {
        self.services
            .push((prefix.to_string(), latency_ms, Box::new(handler)));
        // longest-prefix match wins: keep sorted by descending length
        self.services
            .sort_by_key(|(prefix, _, _)| std::cmp::Reverse(prefix.len()));
    }

    /// Performs a request. Returns the response plus the simulated latency.
    /// Unroutable URLs get a 404 with zero latency (connection refused).
    pub fn fetch(&mut self, req: &Request) -> (Response, u64) {
        let host = host_of(&req.url);
        let sent = req.url.len() as u64 + req.body.as_ref().map_or(0, |b| b.len() as u64);
        for (prefix, latency, handler) in self.services.iter_mut() {
            if req.url.starts_with(prefix.as_str()) {
                let resp = handler(req);
                let received = resp.body.len() as u64;
                self.stats.requests += 1;
                self.stats.bytes_sent += sent;
                self.stats.bytes_received += received;
                let hs = self.stats.per_host.entry(host).or_default();
                hs.requests += 1;
                hs.bytes_sent += sent;
                hs.bytes_received += received;
                return (resp, *latency);
            }
        }
        (Response::not_found(), 0)
    }

    /// Convenience GET.
    pub fn get(&mut self, url: &str) -> (Response, u64) {
        self.fetch(&Request::get(url))
    }

    /// Resets counters (between experiment configurations).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }
}

fn host_of(url: &str) -> String {
    crate::security::Origin::from_url(url).host
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_and_stats() {
        let mut net = VirtualNetwork::new();
        net.register("http://weather.example/", 20, |req| {
            let loc = req.query_param("q").unwrap_or_default();
            Response::ok(format!("<weather loc=\"{loc}\">sunny</weather>"))
        });
        net.register("http://maps.example/", 30, |_req| Response::ok("<map/>"));
        let (resp, lat) = net.get("http://weather.example/api?q=Madrid");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("Madrid"));
        assert_eq!(lat, 20);
        let (resp, lat) = net.get("http://nowhere.example/");
        assert_eq!(resp.status, 404);
        assert_eq!(lat, 0);
        assert_eq!(net.stats.requests, 1, "404s don't count as service traffic");
        assert_eq!(
            net.stats.per_host.get("weather.example").unwrap().requests,
            1
        );
        assert!(net.stats.bytes_received > 0);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut net = VirtualNetwork::new();
        net.register("http://api.example/", 10, |_| Response::ok("<general/>"));
        net.register("http://api.example/special/", 10, |_| {
            Response::ok("<special/>")
        });
        let (resp, _) = net.get("http://api.example/special/x");
        assert_eq!(resp.body, "<special/>");
        let (resp, _) = net.get("http://api.example/other");
        assert_eq!(resp.body, "<general/>");
    }

    #[test]
    fn stateful_handler() {
        let mut net = VirtualNetwork::new();
        let mut hits = 0u32;
        net.register("http://counter.example/", 5, move |_| {
            hits += 1;
            Response::ok(format!("<hits>{hits}</hits>"))
        });
        let (r1, _) = net.get("http://counter.example/");
        let (r2, _) = net.get("http://counter.example/");
        assert_eq!(r1.body, "<hits>1</hits>");
        assert_eq!(r2.body, "<hits>2</hits>");
    }

    #[test]
    fn request_helpers() {
        let r = Request::get("http://h.example:99/a/b?q=New+York&x=1");
        assert_eq!(r.path(), "/a/b");
        assert_eq!(r.query_param("q").as_deref(), Some("New York"));
        assert_eq!(r.query_param("x").as_deref(), Some("1"));
        assert_eq!(r.query_param("nope"), None);
        let p = Request::post("http://h/", "body");
        assert_eq!(p.method, "POST");
    }

    #[test]
    fn reset_stats() {
        let mut net = VirtualNetwork::new();
        net.register("http://a/", 1, |_| Response::ok("x"));
        net.get("http://a/1");
        net.reset_stats();
        assert_eq!(net.stats.requests, 0);
    }
}
