//! Origins and the same-origin policy (§4.2.1).
//!
//! "a malicious Web site could tamper with documents in other windows, or
//! learn about the location of other windows. To avoid this, we suggest to
//! implement window nodes using pull … and to perform checks in the
//! implementation of all accessors … If the check is not successful, an
//! empty sequence is returned." — the policy here implements exactly that
//! contract: checks answer a boolean; callers translate failure into
//! emptiness, never into an error a page could observe and probe.

use std::fmt;

/// A web origin: scheme + host + port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Origin {
    pub scheme: String,
    pub host: String,
    pub port: u16,
}

impl Origin {
    pub fn new(scheme: &str, host: &str, port: u16) -> Self {
        Origin {
            scheme: scheme.to_string(),
            host: host.to_string(),
            port,
        }
    }

    /// Parses an origin out of a URL. Unparseable URLs yield an opaque
    /// origin that equals nothing (not even itself semantically, but we use
    /// a sentinel host so comparisons are still cheap).
    pub fn from_url(url: &str) -> Origin {
        let (scheme, rest) = match url.split_once("://") {
            Some((s, r)) => (s, r),
            None => return Origin::new("opaque", "", 0),
        };
        let authority = rest.split(['/', '?', '#']).next().unwrap_or("");
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => match p.parse::<u16>() {
                Ok(port) => (h, port),
                Err(_) => (authority, default_port(scheme)),
            },
            None => (authority, default_port(scheme)),
        };
        Origin::new(scheme, host, port)
    }

    /// The same-origin check.
    pub fn same_origin(&self, other: &Origin) -> bool {
        self.scheme == other.scheme && self.host == other.host && self.port == other.port
    }
}

fn default_port(scheme: &str) -> u16 {
    match scheme {
        "https" => 443,
        "http" => 80,
        _ => 0,
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}:{}", self.scheme, self.host, self.port)
    }
}

/// The pluggable access policy (§4.2.1 — "this could be based on a
/// same-origin policy like in JavaScript, or on any other suitable policy").
pub trait AccessPolicy {
    /// May code running under `actor` access a window/document at `target`?
    fn allows(&self, actor: &Origin, target: &Origin) -> bool;
}

/// The default, JavaScript-like same-origin policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct SameOriginPolicy;

impl AccessPolicy for SameOriginPolicy {
    fn allows(&self, actor: &Origin, target: &Origin) -> bool {
        actor.same_origin(target)
    }
}

/// A permissive policy for trusted/testing scenarios.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllowAllPolicy;

impl AccessPolicy for AllowAllPolicy {
    fn allows(&self, _actor: &Origin, _target: &Origin) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_urls() {
        let o = Origin::from_url("http://www.dbis.ethz.ch/page?q=1");
        assert_eq!(o, Origin::new("http", "www.dbis.ethz.ch", 80));
        let o = Origin::from_url("https://example.com:8443/x");
        assert_eq!(o, Origin::new("https", "example.com", 8443));
        let o = Origin::from_url("not a url");
        assert_eq!(o.scheme, "opaque");
    }

    #[test]
    fn same_origin_rules() {
        let a = Origin::from_url("http://a.com/x");
        let b = Origin::from_url("http://a.com/y");
        let c = Origin::from_url("https://a.com/x");
        let d = Origin::from_url("http://b.com/x");
        let e = Origin::from_url("http://a.com:8080/");
        assert!(a.same_origin(&b));
        assert!(!a.same_origin(&c), "scheme differs");
        assert!(!a.same_origin(&d), "host differs");
        assert!(!a.same_origin(&e), "port differs");
    }

    #[test]
    fn policies() {
        let a = Origin::from_url("http://a.com");
        let b = Origin::from_url("http://b.com");
        assert!(!SameOriginPolicy.allows(&a, &b));
        assert!(SameOriginPolicy.allows(&a, &a));
        assert!(AllowAllPolicy.allows(&a, &b));
    }
}
