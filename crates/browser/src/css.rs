//! The CSS style store (§4.5).
//!
//! "This has the additional advantage of not integrating the style
//! properties in the XML tree as children of the style attribute, which
//! would not be correct XML." — styles live *beside* the DOM, keyed by node,
//! exactly as the paper recommends. The XQIB plug-in routes `set style` /
//! `get style` here; without a plug-in, the engine falls back to the
//! `style` attribute (both paths are exercised by the ablation bench).

use std::collections::HashMap;

use xqib_dom::NodeRef;

/// Per-node style property map.
#[derive(Debug, Default)]
pub struct CssStore {
    props: HashMap<NodeRef, Vec<(String, String)>>,
    /// write counter (experiment instrumentation)
    pub writes: u64,
}

impl CssStore {
    pub fn new() -> Self {
        CssStore::default()
    }

    /// Sets one property of one element.
    pub fn set(&mut self, node: NodeRef, prop: &str, value: &str) {
        self.writes += 1;
        let list = self.props.entry(node).or_default();
        match list.iter_mut().find(|(p, _)| p == prop) {
            Some(slot) => slot.1 = value.to_string(),
            None => list.push((prop.to_string(), value.to_string())),
        }
    }

    /// Reads one property.
    pub fn get(&self, node: NodeRef, prop: &str) -> Option<&str> {
        self.props
            .get(&node)?
            .iter()
            .find(|(p, _)| p == prop)
            .map(|(_, v)| v.as_str())
    }

    /// All properties of a node (stable insertion order).
    pub fn all(&self, node: NodeRef) -> &[(String, String)] {
        self.props.get(&node).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Removes one property; true if it existed.
    pub fn remove(&mut self, node: NodeRef, prop: &str) -> bool {
        if let Some(list) = self.props.get_mut(&node) {
            let before = list.len();
            list.retain(|(p, _)| p != prop);
            return list.len() != before;
        }
        false
    }

    /// Drops all styles of a node (element removed from the page).
    pub fn clear_node(&mut self, node: NodeRef) {
        self.props.remove(&node);
    }

    /// Number of styled nodes.
    pub fn styled_nodes(&self) -> usize {
        self.props.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::{DocId, NodeId};

    fn n(i: u32) -> NodeRef {
        NodeRef::new(DocId(0), NodeId(i))
    }

    #[test]
    fn set_get_overwrite() {
        let mut css = CssStore::new();
        css.set(n(1), "border-margin", "2px");
        assert_eq!(css.get(n(1), "border-margin"), Some("2px"));
        css.set(n(1), "border-margin", "4px");
        assert_eq!(css.get(n(1), "border-margin"), Some("4px"));
        assert_eq!(css.all(n(1)).len(), 1);
        assert_eq!(css.writes, 2);
    }

    #[test]
    fn independent_nodes_and_props() {
        let mut css = CssStore::new();
        css.set(n(1), "color", "red");
        css.set(n(2), "color", "blue");
        css.set(n(1), "font-size", "12px");
        assert_eq!(css.get(n(1), "color"), Some("red"));
        assert_eq!(css.get(n(2), "color"), Some("blue"));
        assert_eq!(css.get(n(2), "font-size"), None);
        assert_eq!(css.styled_nodes(), 2);
    }

    #[test]
    fn remove_and_clear() {
        let mut css = CssStore::new();
        css.set(n(1), "color", "red");
        css.set(n(1), "width", "10px");
        assert!(css.remove(n(1), "color"));
        assert!(!css.remove(n(1), "color"));
        assert_eq!(css.all(n(1)).len(), 1);
        css.clear_node(n(1));
        assert_eq!(css.all(n(1)).len(), 0);
    }
}
