//! # xqib-bench
//!
//! Shared helpers for the benchmark harness. Each bench target regenerates
//! one figure/table of the paper (see DESIGN.md's experiment index) — it
//! first prints the table the paper-shaped experiment produces, then runs
//! Criterion timings for the same workload.

use std::cell::RefCell;
use std::rc::Rc;

use xqib_appserver::corpus::{generate_corpus, CorpusSpec};
use xqib_appserver::{migrate, AppServer};
use xqib_browser::net::Response;
use xqib_core::plugin::{Plugin, PluginConfig};

/// A plug-in with `n` buttons, each covered by one XQuery click listener,
/// used by the Figure 1 (event loop) experiment.
pub fn plugin_with_listeners(n: usize) -> Plugin {
    let mut buttons = String::new();
    for i in 0..n {
        buttons.push_str(&format!("<input id=\"b{i}\" type=\"button\"/>"));
    }
    let page = format!(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:onclick($evt, $obj) {{
            replace value of node //span[@id="n"]
            with (number(//span[@id="n"]) + 1)
        }};
        on event "onclick" at //input attach listener local:onclick
        ]]></script></head>
        <body>{buttons}<span id="n">0</span></body></html>"#
    );
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(&page).expect("bench page loads");
    p
}

/// Criterion defaults tuned so the whole suite stays minutes, not hours.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .configure_from_args()
}

/// Builds the migrated-deployment plug-in wired to an app server over the
/// virtual network (Figure 2 experiment fixture).
pub fn migrated_plugin(spec: &CorpusSpec) -> (Plugin, Rc<RefCell<AppServer>>) {
    let xml = generate_corpus(spec);
    let server = Rc::new(RefCell::new(AppServer::new(&xml).expect("server")));
    let mut plugin = Plugin::new(PluginConfig {
        url: format!("{}/app", migrate::SERVER_BASE),
        ..Default::default()
    });
    {
        let server = server.clone();
        plugin
            .host
            .borrow_mut()
            .net
            .register(migrate::SERVER_BASE, 40, move |req| {
                let r = server.borrow_mut().handle(&req.url);
                Response {
                    status: r.status,
                    body: r.body,
                    content_type: "application/xml".into(),
                }
            });
    }
    plugin
        .load_page(&migrate::migrated_page())
        .expect("migrated page loads");
    (plugin, server)
}

/// Prints a Markdown-ish table row (the harness output format).
pub fn row(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
}
