//! Online resharding experiment: the same steady update/read workload on
//! a replicated 2-shard deployment, replayed with no topology change
//! (baseline), a mid-run grow, a grow + ring reseed, and a mid-run
//! decommission — all in deterministic virtual time. The interesting
//! numbers — what a live migration costs in acked-update latency, how
//! many stale-route requests hit the 421 cutover fences and were chased,
//! and how much data moved — come out of the simulator itself, so the
//! binary writes `BENCH_reshard.json` directly.
//!
//! What the arms show: resharding is paid for in fence-chases and a
//! bounded ack-latency delta, never in durability — no arm is allowed to
//! lose an acked update or let two shards accept updates for one
//! document in one epoch.

use xqib_appserver::simulate::{run_cluster_sim, ClusterReport, ClusterSimConfig};
use xqib_appserver::TopologyChange;

fn arm_config(seed: u64, topology: Vec<(u64, TopologyChange)>) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::steady(seed, 6_000);
    cfg.docs = 16;
    cfg.cluster.shards = 2;
    cfg.cluster.followers = 1;
    cfg.cluster.ack_replicas = 1;
    // routes are cached long enough that every cutover fence is hit by
    // at least one stale client before the periodic refresh catches up
    cfg.route_refresh_ms = 500;
    cfg.update_rps = 40;
    cfg.read_rps = 40;
    cfg.topology = topology;
    cfg
}

fn arm_json(name: &str, r: &ClusterReport) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"issued_updates\": {},\n",
            "      \"acked_updates\": {},\n",
            "      \"ack_latency_p50_ms\": {},\n",
            "      \"ack_latency_p99_ms\": {},\n",
            "      \"fence_refusals\": {},\n",
            "      \"reroutes\": {},\n",
            "      \"epoch_bumps\": {},\n",
            "      \"final_epoch\": {},\n",
            "      \"migrations_started\": {},\n",
            "      \"migrations_completed\": {},\n",
            "      \"migrations_aborted\": {},\n",
            "      \"docs_moved\": {},\n",
            "      \"tail_frames_forwarded\": {},\n",
            "      \"cutover_fences\": {},\n",
            "      \"drains\": {}\n",
            "    }}"
        ),
        name,
        r.issued_updates,
        r.acked_updates,
        r.ack_latency_p50,
        r.ack_latency_p99,
        r.fence_refusals,
        r.reroutes,
        r.reshard.epoch_bumps,
        r.final_epoch,
        r.reshard.migrations_started,
        r.reshard.migrations_completed,
        r.reshard.migrations_aborted,
        r.reshard.docs_moved,
        r.reshard.tail_frames_forwarded,
        r.reshard.cutover_fences,
        r.reshard.drains,
    )
}

fn main() {
    // `cargo bench` passes harness flags we don't use
    let _ = std::env::args();

    let seed = 0x4E5A;
    let arms_spec: [(&str, Vec<(u64, TopologyChange)>); 4] = [
        ("quiet", vec![]),
        ("grow", vec![(2_000, TopologyChange::AddShard)]),
        (
            "grow_rebalance",
            vec![
                (2_000, TopologyChange::AddShard),
                (4_000, TopologyChange::Rebalance(7)),
            ],
        ),
        (
            "decommission",
            vec![(2_000, TopologyChange::Decommission(1))],
        ),
    ];

    let mut arms = Vec::new();
    for (name, topology) in arms_spec {
        let changes = topology.len() as u64;
        let cfg = arm_config(seed, topology);
        let (report, cluster) = run_cluster_sim(&cfg);
        // the headline invariants must hold in the benchmarked runs too
        assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "{name}: acked updates lost"
        );
        assert_eq!(
            report.dual_owner_violations(),
            Vec::<String>::new(),
            "{name}: dual ownership within an epoch"
        );
        assert!(report.acked_updates > 0, "{name}: no acked updates");
        assert_eq!(
            report.reshard.epoch_bumps, changes,
            "{name}: wrong number of topology installs"
        );
        assert_eq!(
            cluster.migrations_in_flight(),
            0,
            "{name}: migrations left in flight"
        );
        if changes > 0 {
            assert!(report.reshard.docs_moved > 0, "{name}: nothing migrated");
            assert_eq!(
                report.reroutes, report.fence_refusals,
                "{name}: a fence was hit but never chased"
            );
        }
        arms.push(arm_json(name, &report));
    }

    let json = format!("{{\n  \"reshard\": {{\n{}\n  }}\n}}\n", arms.join(",\n"));
    // cargo runs benches with the package as CWD; the report belongs at
    // the repo root next to the harvested BENCH_*.json files
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reshard.json");
    std::fs::write(out, &json).expect("write BENCH_reshard.json");
    println!("wrote BENCH_reshard.json:\n{json}");
}
