//! Fleet offload experiment (§6.1 at fleet scale): 100+ real XQIB
//! clients browsing the Elsevier corpus against the replicated cluster,
//! in deterministic virtual time. Two arms isolate the paper's central
//! claim — whole-document caching offloads the origin — and a third
//! replays the full chaos menu to price degradation:
//!
//! - `whole_document_cache`: every client re-fetches the same corpus URL,
//!   so repeat visits are answered from the client cache;
//! - `no_cache`: cache-busting URLs force every interaction to the
//!   origin (the server-rendered baseline's traffic shape);
//! - `chaos`: the full menu (lossy links, disk faults, a partition, two
//!   leader crashes) over a mixed fleet — the invariants must still hold.
//!
//! The interesting numbers come out of the simulator itself, so the
//! binary writes `BENCH_fleet.json` directly (same pattern as the
//! overload and cluster-failover benches).

use xqib_appserver::fleet::{run_fleet, FleetConfig, FleetReport};

fn elsevier_arm(seed: u64, caching: usize, nocache: usize) -> FleetConfig {
    let mut cfg = FleetConfig::quiet(seed);
    cfg.elsevier_clients = caching;
    cfg.elsevier_nocache_clients = nocache;
    cfg.mashup_clients = 0;
    cfg.cart_clients = 0;
    cfg.interactions_per_client = 5;
    cfg
}

fn arm_json(name: &str, r: &FleetReport) -> String {
    let t = &r.totals;
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"clients\": {},\n",
            "      \"interactions\": {},\n",
            "      \"behind_calls\": {},\n",
            "      \"origin_requests\": {},\n",
            "      \"cache_hit_permille\": {},\n",
            "      \"completions\": {},\n",
            "      \"stale_events\": {},\n",
            "      \"error_events\": {},\n",
            "      \"retries\": {},\n",
            "      \"breaker_opens\": {},\n",
            "      \"retry_after_honored\": {},\n",
            "      \"degraded_observed\": {},\n",
            "      \"failovers\": {},\n",
            "      \"blackout_ms\": {},\n",
            "      \"converged\": {},\n",
            "      \"duration_ms\": {}\n",
            "    }}"
        ),
        name,
        t.clients,
        t.interactions,
        t.behind_calls,
        t.origin_requests,
        t.cache_hit_permille,
        t.completions,
        t.stale_events,
        t.error_events,
        t.retries,
        t.breaker_opens,
        t.retry_after_honored,
        t.degraded_observed,
        r.replication.failovers,
        r.replication.blackout_ms,
        r.converged,
        r.duration_ms,
    )
}

fn main() {
    // `cargo bench` passes harness flags we don't use
    let _ = std::env::args();

    let seed = 0xF1EE7;
    let mut arms = Vec::new();

    // ≥100 Elsevier clients, whole-document caching on
    let (cached, _) = run_fleet(&elsevier_arm(seed, 100, 0)).expect("cached arm");
    assert!(cached.converged, "cached arm must converge");
    assert_eq!(cached.outcome_mismatches, vec![]);
    assert!(
        cached.totals.cache_hit_permille > 500,
        "repeat visits must be mostly cache hits (got {}‰)",
        cached.totals.cache_hit_permille
    );
    arms.push(arm_json("whole_document_cache", &cached));

    // the same fleet size with cache-busting URLs: the origin baseline
    let (uncached, _) = run_fleet(&elsevier_arm(seed, 0, 100)).expect("no-cache arm");
    assert!(uncached.converged, "no-cache arm must converge");
    assert_eq!(
        uncached.totals.cache_hit_permille, 0,
        "cache-busting URLs must always hit the origin"
    );
    assert!(
        uncached.totals.origin_requests > cached.totals.origin_requests,
        "offload must show up as origin-traffic reduction"
    );
    arms.push(arm_json("no_cache", &uncached));

    // the full chaos menu over the mixed fleet: invariants still hold
    let (chaos, _) = run_fleet(&FleetConfig::chaotic(seed)).expect("chaos arm");
    assert_eq!(chaos.missing_acked, vec![], "acked cart ops lost");
    assert_eq!(chaos.outcome_mismatches, vec![]);
    assert!(chaos.converged, "chaos arm must converge post-recovery");
    assert!(chaos.replication.failovers >= 2);
    arms.push(arm_json("chaos", &chaos));

    let json = format!("{{\n  \"fleet\": {{\n{}\n  }}\n}}\n", arms.join(",\n"));
    // cargo runs benches with the package as CWD; the report belongs at
    // the repo root next to the harvested BENCH_*.json files
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(out, &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json:\n{json}");
}
