//! Experiment E8 (ablation): the paper's grammar extension
//! (`on event … attach listener`) vs the high-order-function registration
//! (`browser:addEventListener`) that the real Zorba-based plug-in had to
//! ship (§5.1). Also `set style` syntax vs `browser:setStyle`.

use criterion::{BenchmarkId, Criterion};

use xqib_bench::{criterion as crit, row};
use xqib_core::plugin::{Plugin, PluginConfig};

fn page_with_buttons(n: usize) -> String {
    let mut buttons = String::new();
    for i in 0..n {
        buttons.push_str(&format!("<input id=\"b{i}\"/>"));
    }
    format!(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:l($evt, $obj) {{ () }};
        1
        ]]></script></head><body>{buttons}</body></html>"#
    )
}

fn print_table() {
    println!("\n== E8 ablation: grammar extension vs high-order functions (§5.1) ==");
    row(&["registrations", "path", "listeners registered"]);
    for n in [100usize, 1000] {
        let mut p = Plugin::new(PluginConfig::default());
        p.load_page(&page_with_buttons(n)).expect("page");
        p.eval("on event \"onclick\" at //input attach listener local:l")
            .expect("syntax attach");
        let syntax_count = p.host.borrow().events.listener_count();
        row(&[&n.to_string(), "syntax", &syntax_count.to_string()]);

        let mut p = Plugin::new(PluginConfig::default());
        p.load_page(&page_with_buttons(n)).expect("page");
        p.eval("browser:addEventListener(//input, \"onclick\", \"local:l\")")
            .expect("hof attach");
        let hof_count = p.host.borrow().events.listener_count();
        row(&[&n.to_string(), "high-order fn", &hof_count.to_string()]);
        assert_eq!(syntax_count, hof_count, "both paths register identically");
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_event_registration");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("syntax", n), &n, |b, &n| {
            let mut p = Plugin::new(PluginConfig::default());
            p.load_page(&page_with_buttons(n)).expect("page");
            b.iter(|| {
                p.eval("on event \"onclick\" at //input attach listener local:l")
                    .expect("attach");
                p.eval("on event \"onclick\" at //input detach listener local:l")
                    .expect("detach");
            })
        });
        group.bench_with_input(BenchmarkId::new("hof", n), &n, |b, &n| {
            let mut p = Plugin::new(PluginConfig::default());
            p.load_page(&page_with_buttons(n)).expect("page");
            b.iter(|| {
                p.eval("browser:addEventListener(//input, \"onclick\", \"local:l\")")
                    .expect("attach");
                p.eval("browser:removeEventListener(//input, \"onclick\", \"local:l\")")
                    .expect("detach");
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("abl_style_path");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("set_style_syntax", n), &n, |b, &n| {
            let mut p = Plugin::new(PluginConfig::default());
            p.load_page(&page_with_buttons(n)).expect("page");
            b.iter(|| {
                p.eval("set style \"color\" of //input to \"red\"")
                    .expect("style");
            })
        });
        group.bench_with_input(BenchmarkId::new("setStyle_hof", n), &n, |b, &n| {
            let mut p = Plugin::new(PluginConfig::default());
            p.load_page(&page_with_buttons(n)).expect("page");
            b.iter(|| {
                p.eval("browser:setStyle(//input, \"color\", \"red\")")
                    .expect("style");
            })
        });
        // the style-attribute fallback (no CSS store): DOM-write cost
        group.bench_with_input(
            BenchmarkId::new("style_attribute_fallback", n),
            &n,
            |b, &n| {
                let mut p = Plugin::new(PluginConfig {
                    use_css_store: false,
                    ..Default::default()
                });
                p.load_page(&page_with_buttons(n)).expect("page");
                b.iter(|| {
                    p.eval("set style \"color\" of //input to \"red\"")
                        .expect("style");
                })
            },
        );
    }
    group.finish();
}

fn main() {
    print_table();
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
