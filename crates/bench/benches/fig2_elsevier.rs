//! Experiment E2 (Figure 2): Elsevier Reference 2.0 — server-rendered vs
//! migrated-to-client deployment.
//!
//! Regenerates the figure's claim as a table: server requests, server
//! XQuery evaluations and bytes over the wire per browse session, for
//! session lengths K ∈ {5, 20, 50}, with and without the client-side
//! whole-document cache.

use criterion::{BenchmarkId, Criterion};

use xqib_appserver::corpus::{article_ids, generate_corpus, CorpusSpec};
use xqib_appserver::{migrate, AppServer};
use xqib_bench::{criterion as crit, migrated_plugin, row};

fn spec() -> CorpusSpec {
    CorpusSpec::default()
}

fn session(k: usize) -> Vec<String> {
    let ids = article_ids(&spec());
    (0..k).map(|i| ids[i % ids.len()].clone()).collect()
}

fn print_table() {
    println!("\n== E2 / Figure 2: server-to-client migration ==");
    row(&[
        "deployment",
        "session K",
        "server requests",
        "server XQuery evals",
        "bytes over wire",
    ]);
    let xml = generate_corpus(&spec());
    for k in [5usize, 20, 50] {
        // deployment A: server-rendered
        let mut server = AppServer::new(&xml).expect("server");
        server.handle("/index");
        for id in session(k) {
            server.handle(&format!("/page?article={id}"));
        }
        row(&[
            "server-rendered",
            &k.to_string(),
            &server.metrics.requests.to_string(),
            &server.metrics.xquery_evals.to_string(),
            &server.metrics.bytes_out.to_string(),
        ]);

        // deployment B: migrated with the cache (the paper's design)
        let (mut plugin, server) = migrated_plugin(&spec());
        plugin.eval("local:showIndex()").expect("index");
        for id in session(k) {
            plugin.eval(&migrate::interaction(&id)).expect("article");
        }
        row(&[
            "migrated+cache",
            &k.to_string(),
            &server.borrow().metrics.requests.to_string(),
            &server.borrow().metrics.xquery_evals.to_string(),
            &server.borrow().metrics.bytes_out.to_string(),
        ]);

        // deployment B': migrated but cache disabled (ablation) — every
        // interaction re-fetches the document
        let (mut plugin, server) = migrated_plugin(&spec());
        plugin.eval("local:showIndex()").expect("index");
        for id in session(k) {
            // evict the cached corpus document before each interaction
            let uri = format!("{}/doc?uri=corpus.xml", migrate::SERVER_BASE);
            plugin.store.borrow_mut().unregister_uri(&uri);
            plugin.eval(&migrate::interaction(&id)).expect("article");
        }
        row(&[
            "migrated-nocache",
            &k.to_string(),
            &server.borrow().metrics.requests.to_string(),
            &server.borrow().metrics.xquery_evals.to_string(),
            &server.borrow().metrics.bytes_out.to_string(),
        ]);
    }
    println!(
        "(shape check: migrated+cache needs 1 server request per session; \
         server-rendered needs K+1 and K+1 XQuery evaluations)"
    );
}

fn bench(c: &mut Criterion) {
    let xml = generate_corpus(&spec());
    let ids = article_ids(&spec());

    let mut group = c.benchmark_group("fig2_interaction_cost");
    // server-side render of one article page
    let mut server = AppServer::new(&xml).expect("server");
    group.bench_function("server_rendered_page", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let id = &ids[i % ids.len()];
            i += 1;
            server.handle(&format!("/page?article={id}"));
        })
    });
    // client-side render of one article (cache warm — the common case)
    let (mut plugin, _server) = migrated_plugin(&spec());
    plugin
        .eval(&migrate::interaction(&ids[0]))
        .expect("warm the cache");
    group.bench_function("migrated_client_page_cached", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let id = &ids[i % ids.len()];
            i += 1;
            plugin.eval(&migrate::interaction(id)).expect("render");
        })
    });
    group.finish();

    // scaling with corpus size
    let mut group = c.benchmark_group("fig2_corpus_scaling");
    for journals in [1usize, 2, 4] {
        let spec = CorpusSpec {
            journals,
            ..CorpusSpec::default()
        };
        let (mut plugin, _server) = migrated_plugin(&spec);
        let ids = article_ids(&spec);
        plugin.eval(&migrate::interaction(&ids[0])).expect("warm");
        group.bench_with_input(
            BenchmarkId::new("client_render", journals),
            &journals,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let id = &ids[i % ids.len()];
                    i += 1;
                    plugin.eval(&migrate::interaction(id)).expect("render");
                })
            },
        );
    }
    group.finish();
}

fn main() {
    print_table();
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
