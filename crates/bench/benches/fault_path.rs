//! Retry-overhead benchmark: throughput of the asynchronous `behind`
//! pipeline fault-free vs under a 10% injected-fault plan — what the
//! recovery machinery (retries, breaker checks, stale-cache bookkeeping)
//! costs per call, and what a lossy host costs on top.

use std::cell::Cell;

use criterion::{BenchmarkId, Criterion};

use xqib_bench::criterion as crit;
use xqib_browser::net::{FaultPlan, Response};
use xqib_browser::{RecoveryConfig, RetryPolicy};
use xqib_core::plugin::{Plugin, PluginConfig};

const PAGE: &str = r#"<html><head><script type="text/xquery"><![CDATA[
declare function local:onResult($readyState, $result) { () };
declare function local:onStale($evt, $obj) { () };
declare function local:onError($evt, $obj) { () };
on event "stale" at //body attach listener local:onStale;
on event "error" at //body attach listener local:onError
]]></script></head><body><p/></body></html>"#;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_path");
    // 50‰ timeouts + 50‰ error responses = 10% of requests faulted
    let faulty = FaultPlan::seeded(0xfa17)
        .with_timeout_permille(50)
        .with_error_permille(50);
    for (label, plan) in [("fault_free", None), ("ten_pct_faults", Some(faulty))] {
        let mut p = Plugin::new(PluginConfig {
            recovery: RecoveryConfig {
                retry: RetryPolicy {
                    timeout_ms: 50,
                    max_attempts: 3,
                    backoff_base_ms: 10,
                    backoff_factor: 2,
                    backoff_cap_ms: 100,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        });
        p.host
            .borrow_mut()
            .net
            .register("http://api.test/", 5, |_req| Response::ok("<ok/>"));
        if let Some(plan) = plan {
            p.host.borrow_mut().net.set_fault_plan("api.test", plan);
        }
        p.load_page(PAGE).expect("bench page loads");
        // distinct URLs per call: successful XML fetches are cached by URL
        // and a cache hit would bypass the network (and the fault plan)
        let n = Cell::new(0u64);
        group.bench_with_input(BenchmarkId::new("behind_call", label), &label, |b, _| {
            b.iter(|| {
                let i = n.get();
                n.set(i + 1);
                p.eval(&format!(
                    r#"on event "sc" behind browser:httpGet("http://api.test/{label}-{i}.xml")
                       attach listener local:onResult"#
                ))
                .expect("attach");
                p.run_until_idle().expect("drain")
            });
        });
    }
    group.finish();
}

fn main() {
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
