//! Compiled-pipeline benchmarks: what the plan IR, streaming evaluator,
//! and plan cache buy over the tree-walking interpreter.
//!
//! Four groups:
//!
//! * `plan_render_route` — the §6.1 server's render route end to end:
//!   interpreted (plan mode off) vs compiled-cold (cache invalidated every
//!   request) vs compiled-cached. The cached row is the headline number —
//!   it elides the per-request parse + lowering entirely.
//! * `plan_paths` — §7-style path/FLWOR/exists workloads, interpreted vs
//!   compiled, over a 1000-book library.
//! * `plan_early_exit` — `exists(//…)` and fused positional predicates
//!   over 1k- vs 12k-node documents: the streamed cursor should be close
//!   to size-independent while the interpreter scales with the document.
//! * `plan_governed` — the render route under a governor-style deadline
//!   budget, interpreted vs cached-compiled: the capacity delta a governed
//!   server gains from the cache.

use criterion::{BenchmarkId, Criterion};

use xqib_appserver::corpus::{generate_corpus, CorpusSpec};
use xqib_appserver::AppServer;
use xqib_bench::criterion as crit;
use xqib_dom::store::shared_store;
use xqib_xquery::plan::lower;
use xqib_xquery::runtime::{self, render_sequence};
use xqib_xquery::DynamicContext;

fn library_xml(books: usize) -> String {
    let mut out = String::from("<books>");
    for i in 0..books {
        out.push_str(&format!(
            "<book year=\"{}\"><title>Title {i}</title>\
             <author>Author{}</author><price>{}</price></book>",
            2000 + (i % 10),
            i % 7,
            10 + (i % 90)
        ));
    }
    out.push_str("</books>");
    out
}

fn deep_xml(width: usize, depth: usize, paras: usize) -> String {
    fn rec(out: &mut String, width: usize, depth: usize, paras: usize) {
        if depth == 0 {
            for i in 0..paras {
                out.push_str(&format!("<p>para {i}</p>"));
            }
            return;
        }
        for _ in 0..width {
            out.push_str("<section>");
            rec(out, width, depth - 1, paras);
            out.push_str("</section>");
        }
    }
    let mut out = String::from("<doc>");
    rec(&mut out, width, depth, paras);
    out.push_str("</doc>");
    out
}

fn store_with(uri: &str, xml: &str) -> xqib_dom::SharedStore {
    let store = shared_store();
    let doc = xqib_dom::parse_document(xml).unwrap();
    store.borrow_mut().add_document(doc, Some(uri));
    store
}

/// One interpreter evaluation: compile + execute (what the server did per
/// request before the cache).
fn run_interp(src: &str, store: &xqib_dom::SharedStore) -> String {
    let q = runtime::compile(src).unwrap();
    let mut ctx = DynamicContext::new(store.clone(), q.sctx.clone());
    let out = q.execute(&mut ctx).unwrap();
    render_sequence(&ctx, &out)
}

/// One cached-plan evaluation: execute a pre-lowered plan.
fn run_plan(plan: &xqib_xquery::plan::CompiledPlan, store: &xqib_dom::SharedStore) -> String {
    let mut ctx = DynamicContext::new(store.clone(), plan.static_context().clone());
    let out = plan.execute(&mut ctx).unwrap();
    render_sequence(&ctx, &out)
}

fn bench(c: &mut Criterion) {
    let spec = CorpusSpec::default();
    let corpus = generate_corpus(&spec);
    let article = "j0-v0-i0-a1";
    let route = format!("/page?article={article}");

    // ----- the render route, three ways -------------------------------------
    let mut group = c.benchmark_group("plan_render_route");
    {
        let mut server = AppServer::new(&corpus).expect("server");
        server.db.plan_mode = false;
        group.bench_function("interpreted", |b| {
            b.iter(|| {
                let r = server.handle(&route);
                assert_eq!(r.status, 200);
            })
        });
    }
    {
        let mut server = AppServer::new(&corpus).expect("server");
        group.bench_function("compiled_cold", |b| {
            b.iter(|| {
                // a fresh epoch per request: compile + lower every time
                server.db.invalidate_plans();
                let r = server.handle(&route);
                assert_eq!(r.status, 200);
            })
        });
    }
    {
        let mut server = AppServer::new(&corpus).expect("server");
        server.handle(&route); // warm the cache
        group.bench_function("compiled_cached", |b| {
            b.iter(|| {
                let r = server.handle(&route);
                assert_eq!(r.status, 200);
            })
        });
    }
    group.finish();

    // ----- §7-style workloads, interpreted vs compiled ----------------------
    let mut group = c.benchmark_group("plan_paths");
    let store = store_with("lib.xml", &library_xml(1000));
    for (name, q) in [
        ("descendant", "count(doc('lib.xml')//book)"),
        ("attr_eq", "count(doc('lib.xml')//book[@year = '2005'])"),
        (
            "flwor",
            "for $b in doc('lib.xml')//book where $b/@year = '2007' return $b/title",
        ),
        ("exists", "exists(doc('lib.xml')//book[@year = '2003'])"),
    ] {
        group.bench_with_input(BenchmarkId::new("interpreted", name), &name, |b, _| {
            b.iter(|| run_interp(q, &store))
        });
        let plan = lower(&runtime::compile(q).unwrap());
        group.bench_with_input(BenchmarkId::new("compiled", name), &name, |b, _| {
            b.iter(|| run_plan(&plan, &store))
        });
    }
    group.finish();

    // ----- early exits: 1k vs 12k nodes -------------------------------------
    let mut group = c.benchmark_group("plan_early_exit");
    for (label, width, depth, paras) in [("1k", 4usize, 3usize, 8usize), ("12k", 6, 4, 8)] {
        let store = store_with("deep.xml", &deep_xml(width, depth, paras));
        for (name, q) in [
            ("exists", "exists(doc('deep.xml')//p)"),
            ("first", "string((doc('deep.xml')//section/p)[1])"),
            (
                "positional",
                "string(doc('deep.xml')/doc/section[1]/section[1]//p[1])",
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("interpreted_{name}"), label),
                &label,
                |b, _| b.iter(|| run_interp(q, &store)),
            );
            let plan = lower(&runtime::compile(q).unwrap());
            group.bench_with_input(
                BenchmarkId::new(format!("compiled_{name}"), label),
                &label,
                |b, _| b.iter(|| run_plan(&plan, &store)),
            );
        }
    }
    group.finish();

    // ----- governed capacity: the render route under a deadline budget ------
    let mut group = c.benchmark_group("plan_governed");
    let budget = 200_000u64;
    {
        let mut server = AppServer::new(&corpus).expect("server");
        server.db.plan_mode = false;
        group.bench_function("interpreted", |b| {
            b.iter(|| {
                let (r, _fuel) = server.handle_budgeted(&route, Some(budget));
                assert_eq!(r.status, 200);
            })
        });
    }
    {
        let mut server = AppServer::new(&corpus).expect("server");
        server.handle(&route);
        group.bench_function("compiled_cached", |b| {
            b.iter(|| {
                let (r, _fuel) = server.handle_budgeted(&route, Some(budget));
                assert_eq!(r.status, 200);
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
