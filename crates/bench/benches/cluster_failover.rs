//! Cluster failover experiment: the same steady update/read workload with
//! one mid-run leader crash, replayed against three deployments — leader
//! only (K=0), one follower (K=1, ack_replicas=1) and two followers (K=2,
//! ack_replicas=2) — in deterministic virtual time. As with the overload
//! experiment the interesting numbers (acked-update throughput, ack
//! latency, failover blackout) come out of the simulator itself, so the
//! binary writes `BENCH_cluster.json` directly.
//!
//! What the arms show: replication buys crash-survivable acks at the cost
//! of ack latency (each extra required replica adds a WAL-shipping round
//! trip), while the failover blackout stays bounded by the detection
//! window + probe/promotion time.

use xqib_appserver::simulate::{run_cluster_sim, ClusterReport, ClusterSimConfig};

fn arm_config(seed: u64, followers: usize) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::steady(seed, 6_000);
    cfg.cluster.shards = 1;
    cfg.cluster.followers = followers;
    cfg.cluster.ack_replicas = followers; // every follower must ack
    cfg.leader_crashes = vec![(2_000, 0)]; // one mid-run power loss
    cfg
}

fn arm_json(name: &str, r: &ClusterReport, duration_ms: u64) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"issued_updates\": {},\n",
            "      \"acked_updates\": {},\n",
            "      \"acked_rps\": {},\n",
            "      \"ack_latency_p50_ms\": {},\n",
            "      \"ack_latency_p99_ms\": {},\n",
            "      \"ack_timeouts\": {},\n",
            "      \"lost_in_failover\": {},\n",
            "      \"no_leader\": {},\n",
            "      \"failovers\": {},\n",
            "      \"blackout_ms\": {},\n",
            "      \"follower_reads\": {},\n",
            "      \"degraded_reads\": {},\n",
            "      \"frames_shipped\": {},\n",
            "      \"snapshots_shipped\": {}\n",
            "    }}"
        ),
        name,
        r.issued_updates,
        r.acked_updates,
        r.acked_updates * 1_000 / duration_ms.max(1),
        r.ack_latency_p50,
        r.ack_latency_p99,
        r.ack_timeouts,
        r.lost_in_failover,
        r.no_leader,
        r.stats.failovers,
        r.stats.blackout_ms,
        r.follower_reads,
        r.degraded_reads,
        r.stats.frames_shipped,
        r.stats.snapshots_shipped,
    )
}

fn main() {
    // `cargo bench` passes harness flags we don't use
    let _ = std::env::args();

    let seed = 0xC105;
    let duration = 6_000;
    let mut arms = Vec::new();
    for (name, followers) in [
        ("leader_only", 0),
        ("one_follower", 1),
        ("two_followers", 2),
    ] {
        let cfg = arm_config(seed, followers);
        let (report, cluster) = run_cluster_sim(&cfg);
        // the headline invariant must hold in the benchmarked runs too
        assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "{name}: acked updates lost"
        );
        assert!(report.acked_updates > 0, "{name}: no acked updates");
        assert_eq!(report.stats.failovers, 1, "{name}: expected one failover");
        assert!(
            report.stats.blackout_ms > 0,
            "{name}: crash must cost a blackout"
        );
        arms.push(arm_json(name, &report, duration));
    }

    let json = format!(
        "{{\n  \"cluster_failover\": {{\n{}\n  }}\n}}\n",
        arms.join(",\n")
    );
    // cargo runs benches with the package as CWD; the report belongs at
    // the repo root next to the harvested BENCH_*.json files
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(out, &json).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json:\n{json}");
}
