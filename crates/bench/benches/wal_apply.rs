//! Durability overhead and recovery speed. Three arms:
//!
//! * `ephemeral` — a batch of updating queries against an in-memory
//!   `XmlDb` (the baseline);
//! * `durable` — the same batch with WAL journaling and per-op group
//!   commit (the full price of wire-encoding + append + fsync);
//! * `recover` — replaying the resulting image (checkpoint + WAL suffix)
//!   back into a fresh store, i.e. restart latency per journaled op.

use criterion::{BenchmarkId, Criterion};

use xqib_appserver::xmldb::{DurabilityConfig, XmlDb};
use xqib_bench::criterion as crit;
use xqib_storage::VirtualDisk;

const OPS: usize = 200;

fn corpus() -> String {
    let items: String = (0..50)
        .map(|i| format!("<item id=\"i{i}\"><v>t{i}</v></item>"))
        .collect();
    format!("<db>{items}</db>")
}

fn queries() -> Vec<String> {
    (0..OPS)
        .map(|k| match k % 3 {
            0 => format!("insert node <e{k}>x{k}</e{k}> into (doc('db.xml')/*)[1]"),
            1 => format!(
                "replace value of node (doc('db.xml')//item[@id='i{}']/v)[1] with 'w{k}'",
                k % 50
            ),
            _ => format!("insert node attribute a{k} {{'v{k}'}} into (doc('db.xml')/*)[1]"),
        })
        .collect()
}

fn run_batch(db: &mut XmlDb, queries: &[String]) {
    for q in queries {
        db.query(q).unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_apply");
    let corpus = corpus();
    let queries = queries();
    // no auto-checkpoint: the log keeps all 200 ops, so `recover` replays
    // a real suffix rather than reading one snapshot
    let cfg = DurabilityConfig {
        group_commit: 1,
        checkpoint_threshold: 0,
    };

    group.bench_with_input(BenchmarkId::new("200_ops", "ephemeral"), &(), |b, _| {
        b.iter(|| {
            let mut db = XmlDb::new();
            db.load("db.xml", &corpus).unwrap();
            run_batch(&mut db, &queries);
            db.evals
        });
    });

    group.bench_with_input(BenchmarkId::new("200_ops", "durable"), &(), |b, _| {
        b.iter(|| {
            let mut db = XmlDb::durable(VirtualDisk::new(), cfg);
            db.load("db.xml", &corpus).unwrap();
            run_batch(&mut db, &queries);
            db.committed_seq()
        });
    });

    // a fully committed image to recover from, built once
    let disk = VirtualDisk::new();
    let mut db = XmlDb::durable(disk.clone(), cfg);
    db.load("db.xml", &corpus).unwrap();
    run_batch(&mut db, &queries);
    db.commit().unwrap();
    drop(db);
    group.bench_with_input(BenchmarkId::new("200_ops", "recover"), &(), |b, _| {
        b.iter(|| {
            let image = disk.clone_image();
            let recovered = XmlDb::recover(image, cfg).unwrap();
            // each op journals a record frame plus a digest frame
            assert_eq!(recovered.committed_seq(), 2 * (OPS + 1) as u64);
            recovered.committed_seq()
        });
    });
    group.finish();
}

fn main() {
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
