//! Transactional-apply overhead: what the undo log costs on the PUL hot
//! path. A 1 000-primitive update list is applied to a fresh clone of the
//! same store with full undo tracking (`apply`) and with tracking disabled
//! (`apply_untracked`); the gap between the two is the price of crash
//! consistency (target: <15%). A third arm measures a near-complete apply
//! that crashes on the last step and rolls everything back — the worst
//! case for the undo log.

use criterion::{BenchmarkId, Criterion};

use xqib_bench::criterion as crit;
use xqib_dom::{NodeRef, QName, Store};
use xqib_xquery::pul::{CrashPoint, Pul, UpdatePrimitive};

const PRIMS: usize = 1_000;

/// A flat `<r>` with one `<c{i}>t{i}</c{i}>` child per primitive, and a
/// conflict-free PUL cycling through the four primitive families that
/// dominate listener updates.
fn setup() -> (Store, Pul) {
    let mut s = Store::new();
    let d = s.new_document(None);
    let doc = s.doc_mut(d);
    let root = doc.create_element(QName::local("r"));
    doc.append_child(doc.root(), root).unwrap();
    let mut pul = Pul::new();
    for i in 0..PRIMS {
        let c = doc.create_element(QName::local(format!("c{i}")));
        doc.append_child(root, c).unwrap();
        let t = doc.create_text(format!("t{i}"));
        doc.append_child(c, t).unwrap();
        let elem = NodeRef::new(d, c);
        pul.push(match i % 4 {
            0 => {
                let n = doc.create_element(QName::local(format!("new{i}")));
                UpdatePrimitive::InsertInto {
                    target: elem,
                    children: vec![NodeRef::new(d, n)],
                }
            }
            1 => UpdatePrimitive::ReplaceValue {
                target: NodeRef::new(d, t),
                value: format!("v{i}"),
            },
            2 => UpdatePrimitive::Rename {
                target: elem,
                name: QName::local(format!("ren{i}")),
            },
            _ => {
                let a = doc.create_attribute(QName::local("k"), format!("v{i}"));
                UpdatePrimitive::InsertAttributes {
                    target: elem,
                    attrs: vec![NodeRef::new(d, a)],
                }
            }
        });
    }
    (s, pul)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_apply");
    let (store, pul) = setup();
    group.bench_with_input(BenchmarkId::new("1k_prims", "tracked"), &(), |b, _| {
        b.iter(|| {
            let mut s = store.clone();
            pul.clone().apply(&mut s).unwrap();
            s
        });
    });
    group.bench_with_input(BenchmarkId::new("1k_prims", "untracked"), &(), |b, _| {
        b.iter(|| {
            let mut s = store.clone();
            pul.clone().apply_untracked(&mut s).unwrap();
            s
        });
    });
    // crash on the last primitive: build the full undo log, then replay it
    let last = (PRIMS - 1) as u64;
    group.bench_with_input(
        BenchmarkId::new("1k_prims", "crash_rollback"),
        &(),
        |b, _| {
            b.iter(|| {
                let mut s = store.clone();
                pul.clone()
                    .apply_with_crash(&mut s, CrashPoint::at(last))
                    .unwrap_err();
                s
            });
        },
    );
    group.finish();
}

fn main() {
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
