//! Experiment E4 (the §6.3 lines-of-code comparison): 77 lines of
//! JavaScript vs 29 lines of XQuery for the multiplication table, and the
//! shopping cart's technology-stack collapse.
//!
//! Prints the LoC table, verifies both implementations produce the same
//! DOM, then times building the table in each language.

use criterion::Criterion;

use xqib_bench::{criterion as crit, row};
use xqib_browser::net::Response;
use xqib_core::plugin::{Plugin, PluginConfig};
use xqib_core::samples;
use xqib_minijs::JsEngine;

fn xquery_table() -> Plugin {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(samples::MULTIPLICATION_TABLE_XQUERY)
        .expect("xquery page");
    p
}

fn js_table() -> JsEngine {
    let store = xqib_dom::store::shared_store();
    let doc = xqib_dom::parse_document("<html><body></body></html>").unwrap();
    let id = store.borrow_mut().add_document(doc, None);
    let mut js = JsEngine::new(store, id);
    js.run(samples::MULTIPLICATION_TABLE_JS).expect("js runs");
    js
}

fn print_table() {
    println!("\n== E4 / §6.3: lines-of-code comparison ==");
    row(&["program", "language(s)", "LoC", "paper says"]);
    row(&[
        "multiplication table",
        "JavaScript",
        &samples::count_loc(samples::MULTIPLICATION_TABLE_JS).to_string(),
        "77",
    ]);
    row(&[
        "multiplication table",
        "XQuery",
        &samples::count_loc(samples::MULTIPLICATION_TABLE_XQUERY).to_string(),
        "29",
    ]);
    row(&[
        "shopping cart (client)",
        "JavaScript+XPath",
        &samples::count_loc(samples::SHOPPING_CART_JS).to_string(),
        "(plus JSP+SQL server code)",
    ]);
    row(&[
        "shopping cart (whole app)",
        "XQuery only",
        &samples::count_loc(samples::SHOPPING_CART_XQUERY).to_string(),
        "one language, one tier fewer",
    ]);
    let js = samples::count_loc(samples::MULTIPLICATION_TABLE_JS) as f64;
    let xq = samples::count_loc(samples::MULTIPLICATION_TABLE_XQUERY) as f64;
    println!(
        "factor: {:.2}x fewer lines in XQuery (paper: 77/29 = 2.66x)",
        js / xq
    );

    // behavioural equivalence: both render the same 10x10 table
    let p = xquery_table();
    let xq_page = p.serialize_page();
    let js = js_table();
    let js_page = {
        let s = js.store.borrow();
        xqib_dom::serialize::serialize_document(s.doc(js.doc))
    };
    for (i, j) in [(1, 1), (5, 7), (10, 10)] {
        let cell = format!("<td id=\"c{i}-{j}\">{}</td>", i * j);
        assert!(xq_page.contains(&cell), "XQuery renders {cell}");
        assert!(js_page.contains(&cell), "JS renders {cell}");
    }
    println!("equivalence check: both languages render identical cells ✓");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab1_build_table");
    group.bench_function("xquery_page_load", |b| b.iter(xquery_table));
    group.bench_function("js_page_load", |b| b.iter(js_table));
    group.finish();

    // the shopping-cart page load, XQuery-only
    let mut group = c.benchmark_group("tab1_shopping_cart");
    group.bench_function("xquery_only_load", |b| {
        b.iter(|| {
            let mut p = Plugin::new(PluginConfig::default());
            p.host
                .borrow_mut()
                .net
                .register("http://shop.example/", 10, |_| {
                    Response::ok(
                        "<products><product><name>Laptop</name><price>999</price></product>\
                     <product><name>Mouse</name><price>10</price></product></products>",
                    )
                });
            p.load_page(samples::SHOPPING_CART_XQUERY).expect("page");
            p
        })
    });
    group.finish();
}

fn main() {
    print_table();
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
