//! Anti-entropy scrubbing experiment: the same steady update/read workload
//! with one mid-run leader crash, replayed across rising latent-decay
//! intensities (no rot, mild rot, heavy rot) on a 1-shard/2-follower
//! deployment, in deterministic virtual time. The interesting numbers —
//! how much corruption landed, how much the scrubber caught and repaired,
//! how often reads had to be refused, and whether any acked update was
//! lost — come out of the simulator itself, so the binary writes
//! `BENCH_scrub.json` directly.
//!
//! What the arms show: detection and repair scale with the rot rate while
//! the durability invariant stays flat — no arm is allowed to lose an
//! acked update, whatever the decay intensity.

use xqib_appserver::simulate::{run_cluster_sim, ClusterReport, ClusterSimConfig};
use xqib_storage::StorageFaultPlan;

fn arm_config(seed: u64, decay_permille: u16) -> ClusterSimConfig {
    let mut cfg = ClusterSimConfig::steady(seed, 6_000);
    cfg.cluster.shards = 1;
    cfg.cluster.followers = 2;
    cfg.cluster.ack_replicas = 1;
    cfg.leader_crashes = vec![(2_000, 0)]; // one mid-run power loss
    if decay_permille > 0 {
        cfg.cluster.disk_fault = Some(
            StorageFaultPlan::seeded(seed ^ 0x5C2B)
                .with_decay_permille(decay_permille)
                .with_decay_period_ms(100),
        );
    }
    cfg
}

fn arm_json(name: &str, r: &ClusterReport) -> String {
    let i = &r.integrity;
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"issued_updates\": {},\n",
            "      \"acked_updates\": {},\n",
            "      \"lost_in_failover\": {},\n",
            "      \"failovers\": {},\n",
            "      \"decay_sweeps\": {},\n",
            "      \"sectors_decayed\": {},\n",
            "      \"scrub_cycles\": {},\n",
            "      \"scrub_docs_checked\": {},\n",
            "      \"scrub_wal_corruptions\": {},\n",
            "      \"scrub_ckpt_corruptions\": {},\n",
            "      \"scrub_digest_mismatches\": {},\n",
            "      \"quarantines\": {},\n",
            "      \"repairs_started\": {},\n",
            "      \"repairs_verified\": {},\n",
            "      \"leader_demotions\": {},\n",
            "      \"promote_heals\": {},\n",
            "      \"reads_verified\": {},\n",
            "      \"reads_refused\": {}\n",
            "    }}"
        ),
        name,
        r.issued_updates,
        r.acked_updates,
        r.lost_in_failover,
        r.stats.failovers,
        i.decay_sweeps,
        i.sectors_decayed,
        i.scrub_cycles,
        i.scrub_docs_checked,
        i.scrub_wal_corruptions,
        i.scrub_ckpt_corruptions,
        i.scrub_digest_mismatches,
        i.quarantines,
        i.repairs_started,
        i.repairs_verified,
        i.leader_demotions,
        i.promote_heals,
        i.reads_verified,
        i.reads_refused,
    )
}

fn main() {
    // `cargo bench` passes harness flags we don't use
    let _ = std::env::args();

    let seed = 0x5C2B;
    let mut arms = Vec::new();
    for (name, decay_permille) in [("no_rot", 0u16), ("mild_rot", 5), ("heavy_rot", 40)] {
        let cfg = arm_config(seed, decay_permille);
        let (report, cluster) = run_cluster_sim(&cfg);
        // the headline invariant must hold in the benchmarked runs too
        assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "{name}: acked updates lost"
        );
        assert!(report.acked_updates > 0, "{name}: no acked updates");
        assert!(report.integrity.scrub_cycles > 0, "{name}: scrubber idle");
        if decay_permille == 0 {
            assert_eq!(report.integrity.sectors_decayed, 0, "rot without a plan");
        } else {
            assert!(report.integrity.decay_sweeps > 0, "{name}: decay idle");
        }
        arms.push(arm_json(name, &report));
    }

    let json = format!("{{\n  \"scrub\": {{\n{}\n  }}\n}}\n", arms.join(",\n"));
    // cargo runs benches with the package as CWD; the report belongs at
    // the repo root next to the harvested BENCH_*.json files
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scrub.json");
    std::fs::write(out, &json).expect("write BENCH_scrub.json");
    println!("wrote BENCH_scrub.json:\n{json}");
}
