//! Overload experiment: the same 2× overload burst replayed against the
//! ungoverned baseline and the governed server, in deterministic virtual
//! time. Unlike the Criterion microbenches this is not a wall-clock
//! measurement — the interesting numbers (goodput, p99 latency, shed and
//! degraded counts) come out of the simulator itself — so the binary
//! writes `BENCH_overload.json` directly.
//!
//! Workload: a steady 20 req/s trickle with a 2-second burst at 120 req/s
//! (≈2× the ≈60 req/s mixed-workload capacity measured for the default
//! corpus at 100 fuel/ms), mixed render/query/update traffic, no
//! injected faults — overload is the only adversary.

use xqib_appserver::governor::Class;
use xqib_appserver::simulate::{run_sim, ArrivalPattern, SimConfig, SimReport};

fn burst_config(seed: u64, governed: bool) -> SimConfig {
    let mut cfg = SimConfig::steady(seed, 20, 6_000);
    cfg.clients[0].pattern = ArrivalPattern::Burst {
        base_rps: 20,
        burst_rps: 120,
        from_ms: 1_000,
        to_ms: 3_000,
    };
    if !governed {
        cfg.governor = None;
    }
    cfg
}

fn arm_json(name: &str, r: &SimReport) -> String {
    let render = r.class(Class::Render);
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"issued\": {},\n",
            "      \"goodput\": {},\n",
            "      \"goodput_rps\": {},\n",
            "      \"shed\": {},\n",
            "      \"degraded\": {},\n",
            "      \"deadline_exceeded\": {},\n",
            "      \"latency_p99_ms\": {},\n",
            "      \"render_latency_p50_ms\": {},\n",
            "      \"render_latency_p99_ms\": {},\n",
            "      \"queue_delay_p99_ms\": {}\n",
            "    }}"
        ),
        name,
        r.issued(),
        r.goodput(),
        r.goodput_rps(),
        r.shed(),
        r.metrics.degraded,
        r.metrics.deadline_exceeded,
        r.latency_p99(),
        render.latency_percentile(50),
        render.latency_percentile(99),
        r.metrics.queue_delay_p99_ms,
    )
}

fn main() {
    // `cargo bench` passes harness flags we don't use
    let _ = std::env::args();

    let seed = 0xB02D;
    let baseline = run_sim(&burst_config(seed, false)).expect("corpus load");
    let governed = run_sim(&burst_config(seed, true)).expect("corpus load");

    let json = format!(
        "{{\n  \"overload_burst_2x\": {{\n{},\n{}\n  }}\n}}\n",
        arm_json("baseline", &baseline),
        arm_json("governed", &governed),
    );
    // cargo runs benches with the package as CWD; the report belongs at
    // the repo root next to the harvested BENCH_*.json files
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
    std::fs::write(out, &json).expect("write BENCH_overload.json");
    println!("wrote BENCH_overload.json:\n{json}");

    // sanity: governance must actually tame tail latency under the burst
    assert!(
        governed.latency_p99() < baseline.latency_p99(),
        "governed p99 {} ms should beat baseline p99 {} ms",
        governed.latency_p99(),
        baseline.latency_p99()
    );
}
