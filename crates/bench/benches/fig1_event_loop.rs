//! Experiment E1 (Figure 1): the plug-in architecture's event loop.
//!
//! Measures the full lifecycle cost: browser event → DOM L3 dispatch plan →
//! XQuery listener invocation → pending updates applied to the live DOM.
//! Parameters: L = number of registered listeners/buttons on the page.

use criterion::{BenchmarkId, Criterion};

use xqib_bench::{criterion as crit, plugin_with_listeners, row};

fn print_table() {
    println!("\n== E1 / Figure 1: plug-in event loop ==");
    row(&[
        "listeners",
        "events dispatched",
        "counter value",
        "net effect",
    ]);
    for listeners in [1usize, 10, 100] {
        let mut p = plugin_with_listeners(listeners);
        let events = 100usize;
        for i in 0..events {
            let b = p
                .element_by_id(&format!("b{}", i % listeners))
                .expect("button");
            p.click(b).expect("dispatch");
        }
        let count = p
            .eval("string(//span[@id='n'])")
            .map(|s| p.render(&s))
            .unwrap_or_default();
        row(&[
            &listeners.to_string(),
            &events.to_string(),
            &count,
            "each event ran exactly one listener",
        ]);
        assert_eq!(count, events.to_string());
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_event_dispatch");
    for listeners in [1usize, 10, 100] {
        let mut p = plugin_with_listeners(listeners);
        let button = p.element_by_id("b0").expect("button");
        group.bench_with_input(
            BenchmarkId::new("click_through_plugin", listeners),
            &listeners,
            |b, _| {
                b.iter(|| {
                    p.click(button).expect("dispatch");
                })
            },
        );
    }
    group.finish();

    // page-load cost (parse + compile + run main + register listeners)
    let mut group = c.benchmark_group("fig1_page_load");
    for listeners in [1usize, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("load_page", listeners),
            &listeners,
            |b, &l| {
                b.iter(|| plugin_with_listeners(l));
            },
        );
    }
    group.finish();
}

fn main() {
    print_table();
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
