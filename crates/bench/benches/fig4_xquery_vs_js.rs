//! Experiment E5 — the §7 future-work study: "the performance of XQuery in
//! the browser as compared to JavaScript", on identical DOM tasks run by
//! both engines over the same DOM substrate:
//!
//! * build an N×N table;
//! * search-and-annotate (`//div[contains(., w)]` + insert, §2.2's example);
//! * bulk attribute update over D elements.

use criterion::{BenchmarkId, Criterion};

use xqib_bench::{criterion as crit, row};
use xqib_core::plugin::{Plugin, PluginConfig};
use xqib_minijs::JsEngine;

fn xq_build_table(n: usize) -> Plugin {
    let page = format!(
        r#"<html><head><script type="text/xqueryp"><![CDATA[
        insert node
          <table>{{
            for $i in 1 to {n}
            return <tr>{{ for $j in 1 to {n} return <td>{{$i * $j}}</td> }}</tr>
          }}</table>
        into //body[1]
        ]]></script></head><body></body></html>"#
    );
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(&page).expect("xq table page");
    p
}

fn js_build_table(n: usize) -> JsEngine {
    let store = xqib_dom::store::shared_store();
    let doc = xqib_dom::parse_document("<html><body></body></html>").unwrap();
    let id = store.borrow_mut().add_document(doc, None);
    let mut js = JsEngine::new(store, id);
    js.run(&format!(
        "var n = {n};
         var table = document.createElement('table');
         var i = 1;
         while (i <= n) {{
             var tr = document.createElement('tr');
             var j = 1;
             while (j <= n) {{
                 var td = document.createElement('td');
                 td.appendChild(document.createTextNode('' + (i * j)));
                 tr.appendChild(td);
                 j = j + 1;
             }}
             table.appendChild(tr);
             i = i + 1;
         }}
         document.body.appendChild(table);"
    ))
    .expect("js table");
    js
}

fn divs_page(d: usize) -> String {
    let mut body = String::new();
    for i in 0..d {
        let word = if i % 10 == 0 { "love" } else { "filler" };
        body.push_str(&format!("<div id=\"d{i}\">some {word} text {i}</div>"));
    }
    format!("<html><body>{body}</body></html>")
}

fn print_table() {
    println!("\n== E5 / §7 future work: XQuery vs JavaScript on identical DOM tasks ==");
    row(&["task", "engine", "result check"]);
    let p = xq_build_table(10);
    assert!(p.serialize_page().matches("<td>").count() == 100);
    row(&["build 10x10 table", "XQuery", "100 cells ✓"]);
    let js = js_build_table(10);
    let page = {
        let s = js.store.borrow();
        xqib_dom::serialize::serialize_document(s.doc(js.doc))
    };
    assert!(page.matches("<td>").count() == 100);
    row(&["build 10x10 table", "JavaScript", "100 cells ✓"]);
    println!("(timings below; the point is shape, not absolute numbers)");
}

fn bench(c: &mut Criterion) {
    // task 1: table building
    let mut group = c.benchmark_group("fig4_build_table");
    for n in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("xquery", n), &n, |b, &n| {
            b.iter(|| xq_build_table(n));
        });
        group.bench_with_input(BenchmarkId::new("javascript", n), &n, |b, &n| {
            b.iter(|| js_build_table(n));
        });
    }
    group.finish();

    // task 2: search-and-annotate (§2.2's heart.gif example)
    let mut group = c.benchmark_group("fig4_search_annotate");
    for d in [100usize, 1000] {
        let page = divs_page(d);
        group.bench_with_input(BenchmarkId::new("xquery", d), &d, |b, _| {
            let mut p = Plugin::new(PluginConfig::default());
            p.load_page(&page).expect("page");
            b.iter(|| {
                p.eval(
                    "if (count(//div[contains(., 'love')]) > 0)
                     then insert node <img src=\"heart.gif\"/> as first into //body[1]
                     else ()",
                )
                .expect("annotate")
            });
        });
        group.bench_with_input(BenchmarkId::new("javascript", d), &d, |b, _| {
            let store = xqib_dom::store::shared_store();
            let doc = xqib_dom::parse_document(&page).unwrap();
            let id = store.borrow_mut().add_document(doc, None);
            let mut js = JsEngine::new(store, id);
            b.iter(|| {
                js.run(
                    "var res = document.evaluate(\"//div[contains(., 'love')]\", document, null, 7, null);
                     if (res.snapshotLength > 0) {
                         var img = document.createElement('img');
                         img.setAttribute('src', 'heart.gif');
                         document.body.insertBefore(img, document.body.firstChild);
                     }",
                )
                .expect("annotate")
            });
        });
    }
    group.finish();

    // task 3: bulk attribute update
    let mut group = c.benchmark_group("fig4_bulk_update");
    for d in [100usize, 1000] {
        let page = divs_page(d);
        group.bench_with_input(BenchmarkId::new("xquery", d), &d, |b, _| {
            let mut p = Plugin::new(PluginConfig::default());
            p.load_page(&page).expect("page");
            b.iter(|| {
                p.eval("for $d in //div return replace value of node $d/@id with 'x'")
                    .expect("update")
            });
        });
        group.bench_with_input(BenchmarkId::new("javascript", d), &d, |b, _| {
            let store = xqib_dom::store::shared_store();
            let doc = xqib_dom::parse_document(&page).unwrap();
            let id = store.borrow_mut().add_document(doc, None);
            let mut js = JsEngine::new(store, id);
            b.iter(|| {
                js.run(
                    "var res = document.evaluate('//div', document, null, 7, null);
                     var i = 0;
                     while (i < res.snapshotLength) {
                         res.snapshotItem(i).setAttribute('id', 'x');
                         i = i + 1;
                     }",
                )
                .expect("update")
            });
        });
    }
    group.finish();
}

fn main() {
    print_table();
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
