//! Experiment E3 (Figure 3): the mash-up — one click event handled by both
//! JavaScript and XQuery, with XQuery fanning out to S weather services.

use std::cell::RefCell;
use std::rc::Rc;

use criterion::{BenchmarkId, Criterion};

use xqib_bench::{criterion as crit, row};
use xqib_browser::net::Response;
use xqib_core::plugin::{Plugin, PluginConfig};
use xqib_minijs::JsEngine;

fn mashup_page(services: usize) -> String {
    let urls: Vec<String> = (0..services)
        .map(|i| format!("\"http://weather-{i}.example\""))
        .collect();
    format!(
        r#"<html><head>
<script type="text/javascript">
function onSearch(e) {{
    var map = document.createElement("div");
    map.setAttribute("class", "map");
    document.getElementById("mappanel").appendChild(map);
}}
document.getElementById("searchbutton").addEventListener("onclick", onSearch, false);
</script>
<script type="text/xqueryp"><![CDATA[
declare variable $services := ({services_list});
declare updating function local:onSearch($evt, $obj) {{
  let $loc := string(//input[@id="searchbox"]/@value)
  return {{
    delete node //div[@id="weatherpanel"]/*;
    for $s in $services
    return
      insert node <div class="forecast">{{
        data(browser:httpGet(concat($s, "/api?q=", $loc))//summary)
      }}</div>
      into //div[@id="weatherpanel"];
  }}
}};
on event "onclick" at //input[@id="searchbutton"] attach listener local:onSearch
]]></script>
</head><body>
<input id="searchbox" type="text" value="Madrid"/>
<input id="searchbutton" type="button" value="Search"/>
<div id="mappanel"/>
<div id="weatherpanel"/>
</body></html>"#,
        services_list = urls.join(", ")
    )
}

fn build(services: usize) -> (Plugin, Rc<RefCell<JsEngine>>) {
    let mut plugin = Plugin::new(PluginConfig::default());
    {
        let mut host = plugin.host.borrow_mut();
        for i in 0..services {
            host.net
                .register(&format!("http://weather-{i}.example"), 20, move |req| {
                    let loc = req.query_param("q").unwrap_or_default();
                    Response::ok(format!(
                        "<weather><summary>forecast-{i} for {loc}</summary></weather>"
                    ))
                });
        }
    }
    let js_sources = plugin.load_page(&mashup_page(services)).expect("page");
    let engine = Rc::new(RefCell::new(JsEngine::new(
        plugin.store.clone(),
        plugin.page_doc(),
    )));
    engine.borrow_mut().run(&js_sources[0]).expect("JS runs");
    for (target, event_type, f) in engine.borrow_mut().take_registrations() {
        let engine = engine.clone();
        plugin.register_external_listener(target, &event_type, move |ev| {
            engine
                .borrow_mut()
                .dispatch_to(&f, &ev.event_type, ev.target, ev.button)
                .expect("JS listener");
        });
    }
    (plugin, engine)
}

fn print_table() {
    println!("\n== E3 / Figure 3: mash-up fan-out ==");
    row(&[
        "services S",
        "requests per click",
        "forecasts shown",
        "JS maps drawn",
    ]);
    for services in [1usize, 2, 3, 4] {
        let (mut plugin, _engine) = build(services);
        let button = plugin.element_by_id("searchbutton").expect("button");
        plugin.host.borrow_mut().net.reset_stats();
        plugin.click(button).expect("dispatch");
        let page = plugin.serialize_page();
        // count only rendered results (the script source also contains the
        // literal markup)
        let panel_start = page.find("<div id=\"weatherpanel\">").unwrap_or(0);
        let panel = &page[panel_start..];
        let forecasts = panel.matches("class=\"forecast\"").count();
        let maps =
            page.matches("class=\"map\"/>").count() + page.matches("class=\"map\"></div>").count();
        let requests = plugin.host.borrow().net.stats.requests;
        row(&[
            &services.to_string(),
            &requests.to_string(),
            &forecasts.to_string(),
            &maps.to_string(),
        ]);
        assert_eq!(forecasts, services);
        assert_eq!(maps, 1);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_search_click");
    for services in [1usize, 2, 4] {
        let (mut plugin, _engine) = build(services);
        let button = plugin.element_by_id("searchbutton").expect("button");
        group.bench_with_input(
            BenchmarkId::new("click_both_languages", services),
            &services,
            |b, _| {
                b.iter(|| {
                    plugin.click(button).expect("dispatch");
                })
            },
        );
    }
    group.finish();
}

fn main() {
    print_table();
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
