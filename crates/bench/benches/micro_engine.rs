//! Engine microbenchmarks: the substrate costs underneath every
//! experiment — XML parsing, XPath navigation, FLWOR, updates (PUL apply),
//! full-text search, regex functions, query compilation, and the
//! security-check overhead of window materialisation (E6).

use criterion::{BenchmarkId, Criterion};

use xqib_bench::criterion as crit;
use xqib_core::plugin::{Plugin, PluginConfig};
use xqib_dom::store::shared_store;
use xqib_xquery::runtime::run_to_string;

fn library_xml(books: usize) -> String {
    let mut out = String::from("<books>");
    for i in 0..books {
        out.push_str(&format!(
            "<book year=\"{}\"><title>Title {i} dogs</title>\
             <author>Author{}</author><price>{}</price></book>",
            2000 + (i % 10),
            i % 7,
            10 + (i % 90)
        ));
    }
    out.push_str("</books>");
    out
}

fn store_with_library(books: usize) -> xqib_dom::SharedStore {
    let store = shared_store();
    let doc = xqib_dom::parse_document(&library_xml(books)).unwrap();
    store.borrow_mut().add_document(doc, Some("lib.xml"));
    store
}

fn bench(c: &mut Criterion) {
    // XML parsing throughput
    let mut group = c.benchmark_group("micro_xml_parse");
    for books in [100usize, 1000] {
        let xml = library_xml(books);
        group.bench_with_input(BenchmarkId::new("parse", books), &books, |b, _| {
            b.iter(|| xqib_dom::parse_document(&xml).unwrap());
        });
    }
    group.finish();

    // path navigation
    let mut group = c.benchmark_group("micro_paths");
    for books in [100usize, 1000] {
        let store = store_with_library(books);
        for (name, q) in [
            ("descendant", "count(doc('lib.xml')//book)"),
            ("predicate", "count(doc('lib.xml')//book[price > 50])"),
            ("positional", "string(doc('lib.xml')//book[last()]/title)"),
            ("attribute", "count(doc('lib.xml')//book[@year = '2005'])"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, books),
                &books,
                |b, _| {
                    b.iter(|| run_to_string(q, store.clone()).unwrap());
                },
            );
        }
    }
    group.finish();

    // FLWOR with ordering
    let mut group = c.benchmark_group("micro_flwor");
    for books in [100usize, 1000] {
        let store = store_with_library(books);
        group.bench_with_input(BenchmarkId::new("order_by", books), &books, |b, _| {
            b.iter(|| {
                run_to_string(
                    "count(for $b in doc('lib.xml')//book \
                     order by number($b/price) descending return $b)",
                    store.clone(),
                )
                .unwrap()
            });
        });
    }
    group.finish();

    // updates: insert+delete round trip through the PUL
    let mut group = c.benchmark_group("micro_updates");
    for books in [100usize, 1000] {
        let store = store_with_library(books);
        group.bench_with_input(BenchmarkId::new("insert_delete", books), &books, |b, _| {
            b.iter(|| {
                run_to_string(
                    "insert node <book year=\"2009\"><title>New</title></book> \
                     into doc('lib.xml')/books",
                    store.clone(),
                )
                .unwrap();
                run_to_string(
                    "delete node doc('lib.xml')//book[title = 'New']",
                    store.clone(),
                )
                .unwrap();
            });
        });
    }
    group.finish();

    // full-text with stemming
    let mut group = c.benchmark_group("micro_fulltext");
    for books in [100usize, 1000] {
        let store = store_with_library(books);
        group.bench_with_input(BenchmarkId::new("ftcontains_stemming", books), &books, |b, _| {
            b.iter(|| {
                run_to_string(
                    "count(for $b in doc('lib.xml')//book \
                     where $b/title ftcontains (\"dog\" with stemming) return $b)",
                    store.clone(),
                )
                .unwrap()
            });
        });
    }
    group.finish();

    // regex functions
    let mut group = c.benchmark_group("micro_regex");
    group.bench_function("matches", |b| {
        let store = shared_store();
        b.iter(|| {
            run_to_string(
                "matches('the quick brown fox jumps', '(q[a-z]+).*(j[a-z]+)')",
                store.clone(),
            )
            .unwrap()
        });
    });
    group.bench_function("replace", |b| {
        let store = shared_store();
        b.iter(|| {
            run_to_string(
                "replace('2009-04-20 2008-12-31', '(\\d+)-(\\d+)-(\\d+)', '$3/$2/$1')",
                store.clone(),
            )
            .unwrap()
        });
    });
    group.finish();

    // compilation cost (the per-page-load parser work)
    let mut group = c.benchmark_group("micro_compile");
    let src = r#"declare updating function local:f($evt, $obj) {
        for $x in //div[@class = "item"]
        where $x/@price > 10
        order by number($x/@price)
        return insert node <li>{data($x)}</li> into //ul[1]
    };
    on event "onclick" at //input attach listener local:f"#;
    group.bench_function("compile_listener_script", |b| {
        b.iter(|| xqib_xquery::compile(src).unwrap());
    });
    group.finish();

    // E6: security-check overhead of window materialisation
    let mut group = c.benchmark_group("micro_window_views");
    for frames in [1usize, 10, 50] {
        let mut p = Plugin::new(PluginConfig::default());
        {
            let mut host = p.host.borrow_mut();
            let top = host.browser.top();
            for i in 0..frames {
                // half same-origin, half cross-origin: both paths costed
                let url = if i % 2 == 0 {
                    format!("http://www.xqib.org/f{i}")
                } else {
                    format!("http://other{i}.example/")
                };
                host.browser.create_frame(top, &format!("f{i}"), &url);
            }
        }
        p.load_page("<html><body/></html>").expect("page");
        group.bench_with_input(
            BenchmarkId::new("browser_top_with_checks", frames),
            &frames,
            |b, _| {
                b.iter(|| p.eval("count(browser:top()//window)").expect("view"));
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
