//! Engine microbenchmarks: the substrate costs underneath every
//! experiment — XML parsing, XPath navigation, FLWOR, updates (PUL apply),
//! full-text search, regex functions, query compilation, and the
//! security-check overhead of window materialisation (E6).

use criterion::{BenchmarkId, Criterion};

use xqib_bench::criterion as crit;
use xqib_core::plugin::{Plugin, PluginConfig};
use xqib_dom::store::shared_store;
use xqib_xquery::runtime::run_to_string;

/// Nested `<section>` tree, `width` sections per level down to `depth`,
/// with `paras` paragraphs in every leaf section: the deep-document shape
/// that stresses document-order normalisation (`width = 6, depth = 4,
/// paras = 8` is ≈ 12k nodes).
fn deep_xml(width: usize, depth: usize, paras: usize) -> String {
    fn rec(out: &mut String, width: usize, depth: usize, paras: usize) {
        if depth == 0 {
            for i in 0..paras {
                out.push_str(&format!("<p>para {i}</p>"));
            }
            return;
        }
        for _ in 0..width {
            out.push_str("<section>");
            rec(out, width, depth - 1, paras);
            out.push_str("</section>");
        }
    }
    let mut out = String::from("<doc>");
    rec(&mut out, width, depth, paras);
    out.push_str("</doc>");
    out
}

fn store_with_deep(width: usize, depth: usize, paras: usize) -> xqib_dom::SharedStore {
    let store = shared_store();
    let doc = xqib_dom::parse_document(&deep_xml(width, depth, paras)).unwrap();
    store.borrow_mut().add_document(doc, Some("deep.xml"));
    store
}

fn library_xml(books: usize) -> String {
    let mut out = String::from("<books>");
    for i in 0..books {
        out.push_str(&format!(
            "<book year=\"{}\"><title>Title {i} dogs</title>\
             <author>Author{}</author><price>{}</price></book>",
            2000 + (i % 10),
            i % 7,
            10 + (i % 90)
        ));
    }
    out.push_str("</books>");
    out
}

fn store_with_library(books: usize) -> xqib_dom::SharedStore {
    let store = shared_store();
    let doc = xqib_dom::parse_document(&library_xml(books)).unwrap();
    store.borrow_mut().add_document(doc, Some("lib.xml"));
    store
}

fn bench(c: &mut Criterion) {
    // XML parsing throughput
    let mut group = c.benchmark_group("micro_xml_parse");
    for books in [100usize, 1000] {
        let xml = library_xml(books);
        group.bench_with_input(BenchmarkId::new("parse", books), &books, |b, _| {
            b.iter(|| xqib_dom::parse_document(&xml).unwrap());
        });
    }
    group.finish();

    // path navigation
    let mut group = c.benchmark_group("micro_paths");
    for books in [100usize, 1000] {
        let store = store_with_library(books);
        for (name, q) in [
            ("descendant", "count(doc('lib.xml')//book)"),
            ("predicate", "count(doc('lib.xml')//book[price > 50])"),
            ("positional", "string(doc('lib.xml')//book[last()]/title)"),
            ("attribute", "count(doc('lib.xml')//book[@year = '2005'])"),
        ] {
            group.bench_with_input(BenchmarkId::new(name, books), &books, |b, _| {
                b.iter(|| run_to_string(q, store.clone()).unwrap());
            });
        }
    }
    group.finish();

    // deep-document paths: where the order index and sort-elision pay off
    let mut group = c.benchmark_group("micro_deep_paths");
    for (label, width, depth, paras) in [("1k", 4usize, 3usize, 8usize), ("12k", 6, 4, 8)] {
        let store = store_with_deep(width, depth, paras);
        for (name, q) in [
            // the headline nested-descendant query
            ("section_section_p", "count(doc('deep.xml')//section//p)"),
            // a long child-step chain over already-sorted input
            (
                "child_chain",
                "count(doc('deep.xml')/doc/section/section/section/*)",
            ),
            // interval-query axes over the whole document
            ("following", "count((doc('deep.xml')//p)[1]/following::p)"),
            (
                "preceding",
                "count((doc('deep.xml')//p)[last()]/preceding::p)",
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &label, |b, _| {
                b.iter(|| run_to_string(q, store.clone()).unwrap());
            });
        }
    }
    group.finish();

    // the normalisation primitive itself: indexed interval-label sort vs
    // the naive child-index-path comparison it replaced
    let mut group = c.benchmark_group("micro_order_normalise");
    for (label, width, depth, paras) in [("1k", 4usize, 3usize, 8usize), ("12k", 6, 4, 8)] {
        let store = store_with_deep(width, depth, paras);
        let store = store.borrow();
        let id = store.doc_by_uri("deep.xml").unwrap();
        let n = store.doc(id).len() as u64;
        // deterministic pseudo-shuffled node multiset
        let nodes: Vec<xqib_dom::NodeRef> = (0..n)
            .map(|i| {
                let slot = (i.wrapping_mul(2654435761) ^ 0x9e3779b9) % n;
                xqib_dom::NodeRef::new(id, xqib_dom::NodeId(slot as u32))
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("sort_dedup_indexed", label),
            &label,
            |b, _| {
                b.iter(|| {
                    let mut v = nodes.clone();
                    xqib_dom::sort_dedup(&store, &mut v);
                    v.len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sort_naive_order_keys", label),
            &label,
            |b, _| {
                b.iter(|| {
                    let mut v = nodes.clone();
                    let doc = store.doc(id);
                    v.sort_by(|a, b| {
                        xqib_dom::order::cmp_doc_order_local_naive(doc, a.node, b.node)
                    });
                    v.dedup();
                    v.len()
                });
            },
        );
    }
    group.finish();

    // event retrigger: every click mutates the page (bumping the document
    // epoch) and the next listener run re-queries it, so each iteration
    // pays one index invalidation + lazy rebuild on a deep DOM
    let mut group = c.benchmark_group("micro_event_retrigger");
    for (label, width, depth) in [("shallow", 2usize, 2usize), ("deep", 6, 4)] {
        let page = format!(
            r#"<html><head><script type="text/xquery"><![CDATA[
            declare updating function local:onclick($evt, $obj) {{
                replace value of node //span[@id="n"]
                with (number(//span[@id="n"]) + count(//section//p))
            }};
            on event "onclick" at //input attach listener local:onclick
            ]]></script></head>
            <body><input id="b0" type="button"/>{}<span id="n">0</span></body></html>"#,
            deep_xml(width, depth, 8)
        );
        let mut p = Plugin::new(PluginConfig::default());
        p.load_page(&page).expect("bench page loads");
        let button = p.element_by_id("b0").expect("button");
        group.bench_with_input(
            BenchmarkId::new("click_query_update", label),
            &label,
            |b, _| {
                b.iter(|| p.click(button).expect("dispatch"));
            },
        );
    }
    group.finish();

    // FLWOR with ordering
    let mut group = c.benchmark_group("micro_flwor");
    for books in [100usize, 1000] {
        let store = store_with_library(books);
        group.bench_with_input(BenchmarkId::new("order_by", books), &books, |b, _| {
            b.iter(|| {
                run_to_string(
                    "count(for $b in doc('lib.xml')//book \
                     order by number($b/price) descending return $b)",
                    store.clone(),
                )
                .unwrap()
            });
        });
    }
    group.finish();

    // updates: insert+delete round trip through the PUL
    let mut group = c.benchmark_group("micro_updates");
    for books in [100usize, 1000] {
        let store = store_with_library(books);
        group.bench_with_input(BenchmarkId::new("insert_delete", books), &books, |b, _| {
            b.iter(|| {
                run_to_string(
                    "insert node <book year=\"2009\"><title>New</title></book> \
                     into doc('lib.xml')/books",
                    store.clone(),
                )
                .unwrap();
                run_to_string(
                    "delete node doc('lib.xml')//book[title = 'New']",
                    store.clone(),
                )
                .unwrap();
            });
        });
    }
    group.finish();

    // full-text with stemming
    let mut group = c.benchmark_group("micro_fulltext");
    for books in [100usize, 1000] {
        let store = store_with_library(books);
        group.bench_with_input(
            BenchmarkId::new("ftcontains_stemming", books),
            &books,
            |b, _| {
                b.iter(|| {
                    run_to_string(
                        "count(for $b in doc('lib.xml')//book \
                     where $b/title ftcontains (\"dog\" with stemming) return $b)",
                        store.clone(),
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();

    // regex functions
    let mut group = c.benchmark_group("micro_regex");
    group.bench_function("matches", |b| {
        let store = shared_store();
        b.iter(|| {
            run_to_string(
                "matches('the quick brown fox jumps', '(q[a-z]+).*(j[a-z]+)')",
                store.clone(),
            )
            .unwrap()
        });
    });
    group.bench_function("replace", |b| {
        let store = shared_store();
        b.iter(|| {
            run_to_string(
                "replace('2009-04-20 2008-12-31', '(\\d+)-(\\d+)-(\\d+)', '$3/$2/$1')",
                store.clone(),
            )
            .unwrap()
        });
    });
    group.finish();

    // compilation cost (the per-page-load parser work)
    let mut group = c.benchmark_group("micro_compile");
    let src = r#"declare updating function local:f($evt, $obj) {
        for $x in //div[@class = "item"]
        where $x/@price > 10
        order by number($x/@price)
        return insert node <li>{data($x)}</li> into //ul[1]
    };
    on event "onclick" at //input attach listener local:f"#;
    group.bench_function("compile_listener_script", |b| {
        b.iter(|| xqib_xquery::compile(src).unwrap());
    });
    group.finish();

    // E6: security-check overhead of window materialisation
    let mut group = c.benchmark_group("micro_window_views");
    for frames in [1usize, 10, 50] {
        let mut p = Plugin::new(PluginConfig::default());
        {
            let mut host = p.host.borrow_mut();
            let top = host.browser.top();
            for i in 0..frames {
                // half same-origin, half cross-origin: both paths costed
                let url = if i % 2 == 0 {
                    format!("http://www.xqib.org/f{i}")
                } else {
                    format!("http://other{i}.example/")
                };
                host.browser.create_frame(top, &format!("f{i}"), &url);
            }
        }
        p.load_page("<html><body/></html>").expect("page");
        group.bench_with_input(
            BenchmarkId::new("browser_top_with_checks", frames),
            &frames,
            |b, _| {
                b.iter(|| p.eval("count(browser:top()//window)").expect("view"));
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = crit();
    bench(&mut c);
    c.final_summary();
}
