//! WAL streaming property tests: the replication receiver's accept rule.
//!
//! A follower receives batches of shipped frames over a faulty network
//! (`xqib_browser::net`): payloads can arrive truncated mid-frame, with
//! duplicated frames (leader resend after a lost ack) or with reordered
//! frames (stream built from a reordered send queue). The shared helper
//! `Wal::scan_bytes` must accept **exactly the longest intact monotone
//! prefix**: every frame before the first torn/corrupt/duplicate/reordered
//! unit, and nothing after it.
//!
//! The reference model walks the generated unit list (each unit = one
//! frame image, possibly mutated) and predicts the accepted records,
//! `valid_bytes`, and the torn-tail flag; the scanner must agree
//! byte-for-byte. `XQIB_CLUSTER_SEED` is mixed into every generated case
//! so the CI matrix explores disjoint regions reproducibly.

use proptest::prelude::*;
use xqib_storage::wal::ShippedFrame;
use xqib_storage::{VirtualDisk, Wal, WalBreak, WalRecord, WAL_FILE};

fn env_seed() -> u64 {
    std::env::var("XQIB_CLUSTER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// splitmix64, the workspace's standard seeded generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// Builds `n` intact frames (seqs 1..=n) and returns each frame's exact
/// byte image alongside its decoded record.
fn build_frames(rng: &mut Rng, n: usize) -> Vec<(u64, WalRecord, Vec<u8>)> {
    let disk = VirtualDisk::new();
    let mut wal = Wal::create(disk.clone(), WAL_FILE);
    for k in 0..n {
        let pad = "x".repeat(rng.below(40) as usize);
        let record = if rng.below(3) == 0 {
            WalRecord::Pul(format!("pul-{k}-{pad}").into_bytes())
        } else {
            WalRecord::Load {
                uri: format!("d{k}.xml"),
                xml: format!("<r{k}>{pad}</r{k}>"),
            }
        };
        wal.append(&record);
    }
    wal.sync().expect("fault-free disk");
    let data = disk.read(WAL_FILE).unwrap_or_default();
    Wal::frames_in(&data, 0, u64::MAX)
        .into_iter()
        .map(|f| (f.seq, f.record, f.bytes))
        .collect()
}

/// One unit of the shipped stream and whether the scanner can accept it.
struct Unit {
    seq: u64,
    record: WalRecord,
    bytes: Vec<u8>,
    intact: bool,
}

/// Assembles a stream of frame units with seeded mutations: duplicates,
/// swaps (reordering), truncation, bit flips, and optional trailing
/// garbage.
fn build_stream(rng: &mut Rng, frames: &[(u64, WalRecord, Vec<u8>)]) -> Vec<Unit> {
    // start from the in-order frame list, then mutate the *unit list*
    let mut units: Vec<Unit> = frames
        .iter()
        .map(|(seq, rec, bytes)| Unit {
            seq: *seq,
            record: rec.clone(),
            bytes: bytes.clone(),
            intact: true,
        })
        .collect();
    // duplicate some frames in place (a resend landing mid-stream)
    for _ in 0..rng.below(3) {
        if units.is_empty() {
            break;
        }
        let i = rng.below(units.len() as u64) as usize;
        let dup = Unit {
            seq: units[i].seq,
            record: units[i].record.clone(),
            bytes: units[i].bytes.clone(),
            intact: true,
        };
        let at = rng.below(units.len() as u64 + 1) as usize;
        units.insert(at, dup);
    }
    // swap adjacent units (reordering)
    for _ in 0..rng.below(3) {
        if units.len() >= 2 {
            let i = rng.below(units.len() as u64 - 1) as usize;
            units.swap(i, i + 1);
        }
    }
    // corrupt some units: truncate or flip a bit
    for _ in 0..rng.below(3) {
        if units.is_empty() {
            break;
        }
        let i = rng.below(units.len() as u64) as usize;
        let u = &mut units[i];
        if !u.intact {
            continue; // corrupt each unit at most once: a second bit flip
                      // could cancel the first and desync the model
        }
        if rng.below(2) == 0 {
            let cut = rng.below(u.bytes.len() as u64) as usize;
            u.bytes.truncate(cut.max(1));
        } else {
            let pos = rng.below(u.bytes.len() as u64) as usize;
            u.bytes[pos] ^= 1 << rng.below(8);
        }
        u.intact = false;
    }
    // trailing garbage after everything (a torn tail that is not even a
    // frame header)
    if rng.below(2) == 0 {
        units.push(Unit {
            seq: 0,
            record: WalRecord::Pul(vec![]),
            bytes: (0..rng.below(12)).map(|i| (i * 37 + 5) as u8).collect(),
            intact: false,
        });
    }
    units
}

/// The reference model: accept units while intact and strictly monotone.
fn expected_prefix(units: &[Unit]) -> (Vec<(u64, WalRecord)>, usize) {
    let mut accepted = Vec::new();
    let mut valid_bytes = 0usize;
    let mut prev_seq = 0u64;
    for u in units {
        if !u.intact || u.seq <= prev_seq {
            break;
        }
        accepted.push((u.seq, u.record.clone()));
        prev_seq = u.seq;
        valid_bytes += u.bytes.len();
    }
    (accepted, valid_bytes)
}

proptest! {
    /// `scan_bytes` over a mutated stream accepts exactly the model's
    /// longest intact monotone prefix — same records, same byte count,
    /// torn-tail flag iff bytes remain past the prefix.
    #[test]
    fn scan_accepts_exactly_the_longest_intact_monotone_prefix(
        seed in 0u64..1u64 << 48,
        n_frames in 1usize..12,
    ) {
        let mut rng = Rng(seed ^ env_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let frames = build_frames(&mut rng, n_frames);
        let units = build_stream(&mut rng, &frames);
        let stream: Vec<u8> = units.iter().flat_map(|u| u.bytes.clone()).collect();

        let (want, want_bytes) = expected_prefix(&units);
        let replay = Wal::scan_bytes(&stream);

        let got: Vec<(u64, WalRecord)> = replay
            .records
            .iter()
            .map(|(seq, rec, _)| (*seq, rec.clone()))
            .collect();
        prop_assert_eq!(&got, &want, "accepted records differ from model");
        prop_assert_eq!(replay.valid_bytes, want_bytes);
        prop_assert_eq!(
            replay.torn_tail_dropped,
            want_bytes < stream.len(),
            "torn-tail flag must reflect bytes past the prefix"
        );

        // receiver-side reuse: frames_in over the same stream yields frames
        // whose concatenated bytes rescan to the identical record list
        let shipped = Wal::frames_in(&stream, 0, u64::MAX);
        let reship: Vec<u8> = shipped.iter().flat_map(|f| f.bytes.clone()).collect();
        let rescanned = Wal::scan_bytes(&reship);
        let again: Vec<(u64, WalRecord)> = rescanned
            .records
            .iter()
            .map(|(seq, rec, _)| (*seq, rec.clone()))
            .collect();
        prop_assert_eq!(again, want, "shipped frames must rescan identically");
        prop_assert!(!rescanned.torn_tail_dropped);
    }

    /// Filtering: `frames_in(data, after, upto)` returns exactly the
    /// accepted frames with `after < seq <= upto` — the leader's batch cut.
    #[test]
    fn frames_in_cuts_the_requested_window(
        seed in 0u64..1u64 << 48,
        n_frames in 1usize..10,
    ) {
        let mut rng = Rng(seed.wrapping_add(env_seed()));
        let frames = build_frames(&mut rng, n_frames);
        let stream: Vec<u8> = frames.iter().flat_map(|(_, _, b)| b.clone()).collect();
        let after = rng.below(n_frames as u64 + 1);
        let upto = after + rng.below(n_frames as u64 + 1);
        let got = Wal::frames_in(&stream, after, upto);
        let want_seqs: Vec<u64> = frames
            .iter()
            .map(|(s, _, _)| *s)
            .filter(|s| *s > after && *s <= upto)
            .collect();
        prop_assert_eq!(
            got.iter().map(|f| f.seq).collect::<Vec<_>>(),
            want_seqs
        );
        for f in &got {
            let single = Wal::scan_bytes(&f.bytes);
            prop_assert_eq!(single.records.len(), 1, "each frame stands alone");
            prop_assert_eq!(&single.records[0].1, &f.record);
        }
    }
}

// ---------------------------------------------------------------------
// Decoder fuzz-hardening: arbitrary damage must yield typed errors,
// never a panic, an abort, or a silently mis-accepted record.
// ---------------------------------------------------------------------

/// A small store plus a valid encoded PUL touching `db.xml`, covering
/// targets, strings and qnames — the fuzz corpus the mutation tests chew
/// on.
fn sample_wire_encoding() -> (xqib_dom::Store, Vec<u8>) {
    let mut s = xqib_dom::Store::new();
    let doc = xqib_dom::parse_document("<r a=\"1\"><c>t</c><c2/></r>").expect("static xml");
    let d = s.add_document(doc, Some("db.xml"));
    let doc_root = s.doc(d).root();
    let root = s.doc(d).children(doc_root)[0];
    let c = s.doc(d).children(root)[0];
    let c2 = s.doc(d).children(root)[1];
    let mut pul = xqib_xquery::pul::Pul::new();
    pul.push(xqib_xquery::pul::UpdatePrimitive::ReplaceValue {
        target: xqib_dom::NodeRef::new(d, c),
        value: "vv".to_string(),
    });
    pul.push(xqib_xquery::pul::UpdatePrimitive::Rename {
        target: xqib_dom::NodeRef::new(d, root),
        name: xqib_dom::QName::full(None, None, "rn"),
    });
    pul.push(xqib_xquery::pul::UpdatePrimitive::Delete {
        target: xqib_dom::NodeRef::new(d, c2),
    });
    let bytes = xqib_xquery::wire::encode_pul(&s, &pul).expect("attached targets encode");
    (s, bytes)
}

proptest! {
    /// Any single bit flip inside a valid WAL image stops the scan exactly
    /// at the damaged frame: everything before it is accepted verbatim,
    /// nothing after it, and the break is typed as either a CRC mismatch
    /// or (for a length-field flip that runs past the end) a torn tail.
    #[test]
    fn scan_classifies_any_single_bit_flip_without_misaccepting(
        seed in 0u64..1u64 << 48,
        n_frames in 1usize..10,
        flip_sel in 0u64..1u64 << 32,
    ) {
        let mut rng = Rng(seed ^ env_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let frames = build_frames(&mut rng, n_frames);
        let mut stream: Vec<u8> = frames.iter().flat_map(|(_, _, b)| b.clone()).collect();
        let bit = (flip_sel % (stream.len() as u64 * 8)) as usize;
        stream[bit / 8] ^= 1 << (bit % 8);

        // which frame holds the flipped byte?
        let mut k = 0usize;
        let mut off = 0usize;
        while off + frames[k].2.len() <= bit / 8 {
            off += frames[k].2.len();
            k += 1;
        }

        let replay = Wal::scan_bytes(&stream);
        let got: Vec<(u64, WalRecord)> = replay
            .records
            .iter()
            .map(|(seq, rec, _)| (*seq, rec.clone()))
            .collect();
        let want: Vec<(u64, WalRecord)> = frames[..k]
            .iter()
            .map(|(seq, rec, _)| (*seq, rec.clone()))
            .collect();
        prop_assert_eq!(&got, &want, "flip in frame {} must stop the scan there", k + 1);
        prop_assert_eq!(replay.valid_bytes, off);
        prop_assert!(replay.torn_tail_dropped);
        let reason = replay.break_reason.expect("damage must be classified");
        prop_assert!(
            matches!(reason, WalBreak::CrcMismatch | WalBreak::TornTail),
            "unexpected break class {reason:?}"
        );
        prop_assert!(replay.integrity_error().is_some());
        // a flip strictly inside the prefix that still CRC-fails is the
        // alarm shape; only a length-field flip can masquerade as a tear
        if replay.mid_prefix_damage() {
            prop_assert!(matches!(reason, WalBreak::CrcMismatch));
        }
    }

    /// Truncating a valid WAL image at any point is always the *expected*
    /// crash shape: the scan accepts every frame wholly inside the cut and
    /// classifies the remainder as a torn tail — never as mid-prefix
    /// damage, so a scrubber never alarms on an ordinary crash.
    #[test]
    fn truncation_is_a_torn_tail_never_an_alarm(
        seed in 0u64..1u64 << 48,
        n_frames in 1usize..10,
        cut_sel in 0u64..1u64 << 32,
    ) {
        let mut rng = Rng(seed.wrapping_add(env_seed()) ^ 0xfeed);
        let frames = build_frames(&mut rng, n_frames);
        let stream: Vec<u8> = frames.iter().flat_map(|(_, _, b)| b.clone()).collect();
        let cut = (cut_sel % stream.len() as u64) as usize; // strictly short
        let replay = Wal::scan_bytes(&stream[..cut]);

        let mut whole = 0usize;
        let mut boundary = 0usize;
        for (_, _, b) in &frames {
            if boundary + b.len() > cut {
                break;
            }
            boundary += b.len();
            whole += 1;
        }
        prop_assert_eq!(replay.records.len(), whole);
        prop_assert_eq!(replay.valid_bytes, boundary);
        prop_assert!(!replay.mid_prefix_damage(), "a tear is not an alarm");
        if cut > boundary {
            prop_assert!(replay.torn_tail_dropped);
            prop_assert!(matches!(replay.break_reason, Some(WalBreak::TornTail)));
        } else {
            prop_assert!(!replay.torn_tail_dropped);
            prop_assert!(replay.break_reason.is_none());
        }
    }

    /// Every strict truncation of a valid wire-encoded PUL is refused with
    /// the typed wire error — by the full decoder and the URI skimmer
    /// alike. Nothing panics, nothing half-applies.
    #[test]
    fn wire_decode_refuses_any_truncation_with_a_typed_error(cut_sel in 0u64..1u64 << 32) {
        let (mut store, bytes) = sample_wire_encoding();
        let cut = (cut_sel % bytes.len() as u64) as usize;
        let err = xqib_xquery::wire::decode_pul(&mut store, &bytes[..cut])
            .expect_err("strict truncation must not decode");
        prop_assert_eq!(err.code.as_str(), xqib_xquery::wire::WIRE_ERR);
        let err = xqib_xquery::wire::pul_doc_uris(&bytes[..cut])
            .expect_err("strict truncation must not skim");
        prop_assert_eq!(err.code.as_str(), xqib_xquery::wire::WIRE_ERR);
    }

    /// Arbitrary byte mutations of a valid wire-encoded PUL either decode
    /// cleanly (the flip landed in free payload text) or fail with the
    /// typed wire error — never a panic or an unbounded allocation.
    #[test]
    fn wire_decode_survives_arbitrary_mutations(
        seed in 0u64..1u64 << 48,
        n_mutations in 1usize..6,
    ) {
        let (mut store, mut bytes) = sample_wire_encoding();
        let mut rng = Rng(seed ^ env_seed().rotate_left(17));
        for _ in 0..n_mutations {
            let pos = rng.below(bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << rng.below(8);
        }
        if let Err(e) = xqib_xquery::wire::decode_pul(&mut store, &bytes) {
            prop_assert_eq!(e.code.as_str(), xqib_xquery::wire::WIRE_ERR);
        }
        if let Err(e) = xqib_xquery::wire::pul_doc_uris(&bytes) {
            prop_assert_eq!(e.code.as_str(), xqib_xquery::wire::WIRE_ERR);
        }
    }
}

/// Regression for the length-bomb: a corrupt count field claiming four
/// billion path steps must produce the typed truncation error, not an
/// out-of-memory abort from a pre-allocation the buffer cannot back.
#[test]
fn wire_decode_rejects_a_length_bomb_without_allocating() {
    let (mut store, mut bytes) = sample_wire_encoding();
    // layout: prim count u32 | tag u8 | uri len u32 | "db.xml" | path len u32
    let path_len_at = 4 + 1 + 4 + "db.xml".len();
    bytes[path_len_at..path_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = xqib_xquery::wire::decode_pul(&mut store, &bytes)
        .expect_err("a length bomb must not decode");
    assert_eq!(err.code.as_str(), xqib_xquery::wire::WIRE_ERR);
    let err = xqib_xquery::wire::pul_doc_uris(&bytes).expect_err("nor skim");
    assert_eq!(err.code.as_str(), xqib_xquery::wire::WIRE_ERR);
}

/// A resent batch appended after the live log (duplicate seqs) must not
/// extend the accepted prefix — the duplicate stops the scan at the
/// resend boundary.
#[test]
fn duplicate_resend_does_not_extend_the_prefix() {
    let mut rng = Rng(7);
    let frames = build_frames(&mut rng, 5);
    let mut stream: Vec<u8> = frames.iter().flat_map(|(_, _, b)| b.clone()).collect();
    let live_len = stream.len();
    for (_, _, b) in &frames[2..] {
        stream.extend_from_slice(b); // resend of seqs 3..=5
    }
    let replay = Wal::scan_bytes(&stream);
    assert_eq!(replay.records.len(), 5);
    assert_eq!(replay.valid_bytes, live_len);
    assert!(replay.torn_tail_dropped);
}

/// `ShippedFrame` byte images survive a round trip through a follower-side
/// append: concatenating received frames after an existing prefix scans as
/// one contiguous log.
#[test]
fn shipped_frames_append_onto_an_existing_prefix() {
    let mut rng = Rng(13);
    let frames = build_frames(&mut rng, 6);
    let follower: Vec<u8> = frames[..2].iter().flat_map(|(_, _, b)| b.clone()).collect();
    let all: Vec<u8> = frames.iter().flat_map(|(_, _, b)| b.clone()).collect();
    let batch = Wal::frames_in(&all, 2, u64::MAX);
    assert_eq!(batch.len(), 4);
    assert_eq!(batch[0].seq, 3);
    let _ = ShippedFrame {
        seq: batch[0].seq,
        record: batch[0].record.clone(),
        bytes: batch[0].bytes.clone(),
    };
    let mut joined = follower;
    for f in &batch {
        joined.extend_from_slice(&f.bytes);
    }
    let replay = Wal::scan_bytes(&joined);
    assert_eq!(replay.records.len(), 6);
    assert!(!replay.torn_tail_dropped);
}
