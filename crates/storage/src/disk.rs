//! The virtual storage device: named in-memory files with explicit sync
//! semantics and seeded crash faults.
//!
//! The model mirrors what a journaling store can actually rely on from a
//! POSIX file system:
//!
//! * bytes **synced** by a successful `fsync` survive a crash intact;
//! * bytes written but not yet synced survive only as an arbitrary *torn*
//!   prefix, possibly with flipped bits (in-flight sectors);
//! * `fsync` itself can fail after persisting only part of the outstanding
//!   data (a *partial fsync*) — the caller must not treat the batch as
//!   committed.
//!
//! All fault draws come from one SplitMix64 stream seeded by
//! [`StorageFaultPlan::seed`], so a whole crash-restart schedule is
//! reproducible from a single `u64`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Sector granularity for corruption draws (one draw per sector).
const SECTOR: usize = 64;

/// A storage-layer failure surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// `fsync` failed; only `persisted` of the outstanding bytes reached
    /// the platter. The batch must not be acknowledged as committed.
    SyncFailed { file: String, persisted: usize },
    /// The named file does not exist.
    NoSuchFile(String),
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::SyncFailed { file, persisted } => {
                write!(f, "fsync({file}) failed after persisting {persisted} bytes")
            }
            DiskError::NoSuchFile(name) => write!(f, "no such file: {name}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A deterministic storage-fault schedule, reproducible from `seed`.
#[derive(Debug, Clone, Default)]
pub struct StorageFaultPlan {
    pub seed: u64,
    /// ‰ of `sync` calls that fail after persisting a random prefix of the
    /// outstanding bytes (partial fsync).
    pub sync_fail_permille: u16,
    /// ‰ of *unsynced* surviving sectors that take a bit flip on crash.
    /// Safe with respect to the prefix-durability contract: the WAL CRC
    /// rejects the frame and replay stops there.
    pub corrupt_permille: u16,
    /// ‰ of **synced** sectors corrupted on crash. This violates the fsync
    /// contract (a failing platter), so it is off by default; recovery
    /// degrades to the longest valid prefix instead of crashing.
    pub corrupt_synced_permille: u16,
    /// ‰ of at-rest **synced** sectors that take a latent bit flip per
    /// elapsed decay period (see [`decay_period_ms`](Self::decay_period_ms))
    /// when [`VirtualDisk::decay_at`] is driven on the virtual clock. This
    /// is silent bit rot: corruption appears *without* a crash, which is
    /// what scrubbing exists to catch. Off by default.
    pub decay_permille: u16,
    /// Virtual-time length of one decay period; `0` means the default
    /// (100 ms). Each elapsed period rolls one independent seeded draw per
    /// synced sector, so decay is a pure function of (seed, file layout,
    /// elapsed periods) — independent of the crash/sync draw stream.
    pub decay_period_ms: u64,
}

impl StorageFaultPlan {
    pub fn seeded(seed: u64) -> Self {
        StorageFaultPlan {
            seed,
            ..Default::default()
        }
    }

    pub fn with_sync_fail_permille(mut self, permille: u16) -> Self {
        self.sync_fail_permille = permille;
        self
    }

    pub fn with_corrupt_permille(mut self, permille: u16) -> Self {
        self.corrupt_permille = permille;
        self
    }

    pub fn with_corrupt_synced_permille(mut self, permille: u16) -> Self {
        self.corrupt_synced_permille = permille;
        self
    }

    pub fn with_decay_permille(mut self, permille: u16) -> Self {
        self.decay_permille = permille;
        self
    }

    pub fn with_decay_period_ms(mut self, period_ms: u64) -> Self {
        self.decay_period_ms = period_ms;
        self
    }
}

/// Device counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DiskStats {
    pub writes: u64,
    pub bytes_written: u64,
    pub syncs: u64,
    pub sync_failures: u64,
    pub crashes: u64,
    /// Unsynced bytes lost to tearing across all crashes.
    pub torn_bytes_dropped: u64,
    /// Sectors hit by a corruption draw across all crashes.
    pub sectors_corrupted: u64,
    /// Decay periods swept by [`VirtualDisk::decay_at`].
    pub decay_sweeps: u64,
    /// Synced at-rest sectors hit by a latent decay flip.
    pub sectors_decayed: u64,
}

#[derive(Debug, Default, Clone)]
struct File {
    data: Vec<u8>,
    /// Bytes guaranteed durable (covered by a successful or partial fsync).
    synced_len: usize,
}

#[derive(Debug, Default, Clone)]
struct Inner {
    files: BTreeMap<String, File>,
    plan: StorageFaultPlan,
    /// Monotone fault-draw counter: each decision consumes one draw.
    draws: u64,
    /// Last decay period applied by `decay_at` (periods are cumulative).
    last_decay_bucket: u64,
    stats: DiskStats,
}

impl Inner {
    fn draw(&mut self) -> u64 {
        let x = self.plan.seed ^ self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.draws += 1;
        mix64(x)
    }

    fn permille_hit(&mut self, permille: u16) -> bool {
        permille > 0 && (self.draw() % 1000) < permille as u64
    }
}

/// SplitMix64 finaliser (same mixer as the network fault plan).
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cheaply clonable handle to one virtual device (all clones share state,
/// like file descriptors onto one disk).
#[derive(Debug, Clone, Default)]
pub struct VirtualDisk {
    inner: Rc<RefCell<Inner>>,
}

impl VirtualDisk {
    /// A fault-free disk (still crash-able: unsynced tails are torn).
    pub fn new() -> Self {
        VirtualDisk::default()
    }

    pub fn with_plan(plan: StorageFaultPlan) -> Self {
        let disk = VirtualDisk::new();
        disk.inner.borrow_mut().plan = plan;
        disk
    }

    pub fn set_plan(&self, plan: StorageFaultPlan) {
        self.inner.borrow_mut().plan = plan;
    }

    /// A deep copy of the device (independent state, unlike [`Clone`],
    /// which shares it) — probe the same pre-crash image under many fault
    /// seeds.
    pub fn clone_image(&self) -> VirtualDisk {
        VirtualDisk {
            inner: Rc::new(RefCell::new(self.inner.borrow().clone())),
        }
    }

    /// Appends bytes to a file (created on first write). Appended bytes are
    /// *not* durable until [`sync`](Self::sync) succeeds.
    pub fn append(&self, name: &str, bytes: &[u8]) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        inner
            .files
            .entry(name.to_string())
            .or_default()
            .data
            .extend_from_slice(bytes);
    }

    /// Replaces a file's contents entirely. Nothing of the new content is
    /// durable until the next successful [`sync`](Self::sync).
    pub fn write_file(&self, name: &str, bytes: &[u8]) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        let file = inner.files.entry(name.to_string()).or_default();
        file.data = bytes.to_vec();
        file.synced_len = 0;
    }

    /// Flushes a file to the platter. On a seeded partial-fsync fault, a
    /// random prefix of the outstanding bytes persists and the call fails —
    /// the caller must not acknowledge the batch.
    pub fn sync(&self, name: &str) -> Result<(), DiskError> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.syncs += 1;
        let sync_fail_permille = inner.plan.sync_fail_permille;
        let fail = inner.permille_hit(sync_fail_permille);
        let partial_draw = inner.draw();
        let Some(file) = inner.files.get_mut(name) else {
            return Err(DiskError::NoSuchFile(name.to_string()));
        };
        let outstanding = file.data.len() - file.synced_len;
        if fail {
            let kept = if outstanding == 0 {
                0
            } else {
                (partial_draw % (outstanding as u64 + 1)) as usize
            };
            file.synced_len += kept;
            let persisted = file.synced_len;
            inner.stats.sync_failures += 1;
            Err(DiskError::SyncFailed {
                file: name.to_string(),
                persisted,
            })
        } else {
            file.synced_len = file.data.len();
            Ok(())
        }
    }

    /// Current contents (what a reader sees *before* any crash).
    pub fn read(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.borrow().files.get(name).map(|f| f.data.clone())
    }

    pub fn len(&self, name: &str) -> usize {
        self.inner
            .borrow()
            .files
            .get(name)
            .map_or(0, |f| f.data.len())
    }

    pub fn is_empty(&self, name: &str) -> bool {
        self.len(name) == 0
    }

    pub fn exists(&self, name: &str) -> bool {
        self.inner.borrow().files.contains_key(name)
    }

    /// Shrinks a file to `len` bytes (dropping a scanned-off torn tail).
    /// Modeled as atomic, like `ftruncate` on a journaling file system.
    pub fn truncate_to(&self, name: &str, len: usize) {
        let mut inner = self.inner.borrow_mut();
        if let Some(file) = inner.files.get_mut(name) {
            file.data.truncate(len);
            file.synced_len = file.synced_len.min(len);
        }
    }

    /// Empties a file (WAL truncation after a checkpoint).
    pub fn truncate(&self, name: &str) {
        self.truncate_to(name, 0);
    }

    pub fn delete(&self, name: &str) {
        self.inner.borrow_mut().files.remove(name);
    }

    /// All file names on the device, sorted.
    pub fn files(&self) -> Vec<String> {
        self.inner.borrow().files.keys().cloned().collect()
    }

    /// Simulates power loss. For every file: the unsynced tail survives
    /// only as a torn prefix of seeded length, surviving unsynced sectors
    /// take seeded bit flips, and (only if `corrupt_synced_permille` is
    /// set) synced sectors may be corrupted too. Afterwards everything on
    /// the device *is* the durable image.
    pub fn crash(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.crashes += 1;
        let names: Vec<String> = inner.files.keys().cloned().collect();
        for name in names {
            let (synced_len, data_len) = {
                let f = &inner.files[&name];
                (f.synced_len, f.data.len())
            };
            // torn write: a random prefix of the unsynced tail survives
            let tail = data_len - synced_len;
            let keep = if tail == 0 {
                0
            } else {
                (inner.draw() % (tail as u64 + 1)) as usize
            };
            let new_len = synced_len + keep;
            inner.stats.torn_bytes_dropped += (tail - keep) as u64;
            // corruption draws, one per surviving sector
            let unsynced_p = inner.plan.corrupt_permille;
            let synced_p = inner.plan.corrupt_synced_permille;
            let mut flips: Vec<(usize, u8)> = Vec::new();
            let mut sector = 0;
            while sector * SECTOR < new_len {
                let start = sector * SECTOR;
                let end = ((sector + 1) * SECTOR).min(new_len);
                // a sector straddling the sync boundary counts as unsynced,
                // but its flip is confined to the unsynced bytes — synced
                // data is sacred unless corrupt_synced_permille says so
                let (permille, flip_from) = if end > synced_len {
                    (unsynced_p, start.max(synced_len))
                } else {
                    (synced_p, start)
                };
                if inner.permille_hit(permille) {
                    let pick = inner.draw();
                    let offset = flip_from + (pick % (end - flip_from) as u64) as usize;
                    let bit = 1u8 << (pick % 8);
                    flips.push((offset, bit));
                    inner.stats.sectors_corrupted += 1;
                }
                sector += 1;
            }
            let file = inner.files.get_mut(&name).unwrap();
            file.data.truncate(new_len);
            for (offset, bit) in flips {
                file.data[offset] ^= bit;
            }
            file.synced_len = new_len;
        }
    }

    /// Advances latent bit rot to virtual time `now`. For every decay
    /// period elapsed since the last call, every **synced** at-rest sector
    /// of every file rolls one seeded draw; a hit flips one bit inside the
    /// sector's synced bytes. Unsynced tails are spared — they are already
    /// covered by the crash model, and decay is strictly an at-rest
    /// phenomenon. Deterministic: the flips are a pure function of
    /// (seed, file name, period index, sector index), independent of the
    /// crash/sync draw stream, so interleaving decay with other faults
    /// never perturbs their schedules.
    pub fn decay_at(&self, now: u64) {
        let mut inner = self.inner.borrow_mut();
        let permille = inner.plan.decay_permille;
        if permille == 0 {
            return;
        }
        let period = match inner.plan.decay_period_ms {
            0 => 100,
            p => p,
        };
        let bucket = now / period;
        let seed = inner.plan.seed;
        while inner.last_decay_bucket < bucket {
            inner.last_decay_bucket += 1;
            let b = inner.last_decay_bucket;
            inner.stats.decay_sweeps += 1;
            let names: Vec<String> = inner.files.keys().cloned().collect();
            for name in names {
                let fh = crate::fnv1a(name.as_bytes());
                let synced_len = inner.files[&name].synced_len;
                let mut flips: Vec<(usize, u8)> = Vec::new();
                let mut sector = 0usize;
                while sector * SECTOR < synced_len {
                    let start = sector * SECTOR;
                    let end = ((sector + 1) * SECTOR).min(synced_len);
                    let draw = mix64(
                        seed ^ 0xDECA
                            ^ fh.rotate_left(17)
                            ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ (sector as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                    );
                    if (draw % 1000) < permille as u64 {
                        let offset = start + ((draw >> 10) % (end - start) as u64) as usize;
                        let bit = 1u8 << ((draw >> 32) % 8);
                        flips.push((offset, bit));
                        inner.stats.sectors_decayed += 1;
                    }
                    sector += 1;
                }
                if let Some(file) = inner.files.get_mut(&name) {
                    for (offset, bit) in flips {
                        file.data[offset] ^= bit;
                    }
                }
            }
        }
    }

    pub fn stats(&self) -> DiskStats {
        self.inner.borrow().stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_bytes_survive_a_crash_unsynced_tail_is_torn() {
        let disk = VirtualDisk::new();
        disk.append("f", b"committed");
        disk.sync("f").unwrap();
        disk.append("f", b"-unsynced-tail");
        disk.crash();
        let data = disk.read("f").unwrap();
        assert!(data.starts_with(b"committed"), "synced prefix intact");
        assert!(data.len() <= b"committed-unsynced-tail".len());
        assert_eq!(disk.stats().crashes, 1);
    }

    #[test]
    fn crash_outcome_is_reproducible_from_the_seed() {
        let run = |seed: u64| {
            let disk =
                VirtualDisk::with_plan(StorageFaultPlan::seeded(seed).with_corrupt_permille(500));
            disk.append("f", &[0xAA; 4096]);
            disk.sync("f").unwrap();
            disk.append("f", &[0xBB; 4096]);
            disk.crash();
            disk.read("f").unwrap()
        };
        assert_eq!(run(7), run(7), "same seed, same surviving image");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn partial_fsync_fails_and_persists_a_prefix() {
        let disk =
            VirtualDisk::with_plan(StorageFaultPlan::seeded(3).with_sync_fail_permille(1000));
        disk.append("f", b"0123456789");
        let err = disk.sync("f").unwrap_err();
        match err {
            DiskError::SyncFailed { persisted, .. } => assert!(persisted <= 10),
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(disk.stats().sync_failures, 1);
        // a later, healthy sync still makes everything durable
        disk.set_plan(StorageFaultPlan::seeded(3));
        disk.sync("f").unwrap();
        disk.crash();
        assert_eq!(disk.read("f").unwrap(), b"0123456789");
    }

    #[test]
    fn write_file_replaces_and_truncate_clears() {
        let disk = VirtualDisk::new();
        disk.append("f", b"old");
        disk.sync("f").unwrap();
        disk.write_file("f", b"new-content");
        assert_eq!(disk.read("f").unwrap(), b"new-content");
        disk.truncate("f");
        assert_eq!(disk.len("f"), 0);
        assert!(disk.exists("f"));
        disk.delete("f");
        assert!(!disk.exists("f"));
        assert!(disk.read("f").is_none());
        assert_eq!(disk.sync("f"), Err(DiskError::NoSuchFile("f".into())));
    }

    #[test]
    fn corruption_hits_only_the_unsynced_region_by_default() {
        // Synced prefix must come back bit-exact even under a heavy
        // unsynced-corruption plan.
        for seed in 0..32u64 {
            let disk =
                VirtualDisk::with_plan(StorageFaultPlan::seeded(seed).with_corrupt_permille(1000));
            let synced: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
            disk.append("f", &synced);
            disk.sync("f").unwrap();
            disk.append("f", &[0xCC; 1024]);
            disk.crash();
            let data = disk.read("f").unwrap();
            assert_eq!(&data[..1024], &synced[..], "seed {seed}");
        }
    }

    #[test]
    fn clones_share_one_device() {
        let a = VirtualDisk::new();
        let b = a.clone();
        a.append("f", b"x");
        assert_eq!(b.read("f").unwrap(), b"x");
    }

    #[test]
    fn decay_corrupts_only_synced_bytes_without_a_crash() {
        let disk = VirtualDisk::with_plan(
            StorageFaultPlan::seeded(5)
                .with_decay_permille(400)
                .with_decay_period_ms(100),
        );
        let synced: Vec<u8> = (0..2048u32).map(|i| (i * 7) as u8).collect();
        disk.append("f", &synced);
        disk.sync("f").unwrap();
        let tail = [0xEE; 512];
        disk.append("f", &tail);
        disk.decay_at(1_000);
        let data = disk.read("f").unwrap();
        assert_ne!(&data[..2048], &synced[..], "synced region decayed");
        assert_eq!(&data[2048..], &tail[..], "unsynced tail untouched");
        assert_eq!(data.len(), 2048 + 512, "decay never tears");
        let stats = disk.stats();
        assert_eq!(stats.crashes, 0);
        assert_eq!(stats.decay_sweeps, 10);
        assert!(stats.sectors_decayed > 0);
    }

    #[test]
    fn decay_is_reproducible_and_cumulative_across_calls() {
        let run = |steps: &[u64]| {
            let disk = VirtualDisk::with_plan(
                StorageFaultPlan::seeded(9)
                    .with_decay_permille(200)
                    .with_decay_period_ms(50),
            );
            disk.append("f", &[0x5A; 4096]);
            disk.sync("f").unwrap();
            for &t in steps {
                disk.decay_at(t);
            }
            disk.read("f").unwrap()
        };
        // one jump to t=500 equals many small advances to the same time
        assert_eq!(run(&[500]), run(&[50, 120, 300, 499, 500]));
        // and a different seed diverges
        let other = {
            let disk = VirtualDisk::with_plan(
                StorageFaultPlan::seeded(10)
                    .with_decay_permille(200)
                    .with_decay_period_ms(50),
            );
            disk.append("f", &[0x5A; 4096]);
            disk.sync("f").unwrap();
            disk.decay_at(500);
            disk.read("f").unwrap()
        };
        assert_ne!(run(&[500]), other);
    }

    #[test]
    fn decay_draws_do_not_perturb_the_crash_schedule() {
        // The same crash must tear identically whether or not decay ran
        // in between: decay uses its own draw function, not the shared
        // draw counter.
        let image = |with_decay: bool| {
            let disk = VirtualDisk::with_plan(
                StorageFaultPlan::seeded(21)
                    .with_corrupt_permille(300)
                    .with_decay_permille(0),
            );
            disk.append("f", &[1; 256]);
            disk.sync("f").unwrap();
            disk.append("f", &[2; 256]);
            if with_decay {
                // permille 0: decay_at is a no-op even when driven
                disk.decay_at(10_000);
            }
            disk.crash();
            disk.read("f").unwrap()
        };
        assert_eq!(image(false), image(true));
    }

    #[test]
    fn zero_decay_permille_never_touches_data() {
        let disk = VirtualDisk::new();
        disk.append("f", &[7; 1024]);
        disk.sync("f").unwrap();
        disk.decay_at(1_000_000);
        assert_eq!(disk.read("f").unwrap(), vec![7; 1024]);
        assert_eq!(disk.stats().decay_sweeps, 0);
    }
}
