//! Dual-slot document snapshots.
//!
//! A checkpoint is a full serialization of every bound document plus the
//! WAL sequence number it covers. Two slots (`ckpt.0` / `ckpt.1`) are
//! written alternately by generation parity, so a crash mid-write can
//! only destroy the slot being replaced — the previous generation stays
//! intact in the other slot. [`Checkpoint::read_latest`] picks the valid
//! slot with the highest generation, verifying magic and CRC.
//!
//! Slot layout (little-endian):
//!
//! ```text
//! ┌───────────────┬─────────┬─────────┬─────────┬───────────┬────────────────────────────┐
//! │ magic 8 bytes │ crc u32 │ gen u64 │ seq u64 │ count u32 │ count × (uri, xml, digest) │
//! └───────────────┴─────────┴─────────┴─────────┴───────────┴────────────────────────────┘
//! ```
//!
//! Strings are u32-length-prefixed UTF-8; `crc` covers everything after
//! itself. Each document entry carries its [`content_digest`] (format v2),
//! an end-to-end check independent of the slot CRC: decode recomputes the
//! digest of the decoded body and refuses the slot on a mismatch, and the
//! scrubber compares recorded digests across replicas without re-reading
//! bodies.

use crate::crc32;
use crate::disk::{DiskError, VirtualDisk};
use crate::{content_digest, IntegrityError};

const MAGIC: &[u8; 8] = b"XQCKPT2\0";

/// The two alternating snapshot slots.
pub const CKPT_SLOTS: [&str; 2] = ["ckpt.0", "ckpt.1"];

/// A document-store snapshot covering WAL records with `seq <=` [`Checkpoint::seq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotone generation; the slot written is `gen % 2`.
    pub gen: u64,
    /// Highest WAL sequence number absorbed by this snapshot.
    pub seq: u64,
    /// `(uri, serialized xml)` for every bound document, sorted by URI.
    pub docs: Vec<(String, String)>,
}

impl Checkpoint {
    /// Encodes this snapshot into the self-checking slot format (magic +
    /// CRC + body). Also the unit of snapshot shipping: a replica that has
    /// fallen off the leader's WAL receives these bytes and installs them
    /// as its own checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.gen.to_le_bytes());
        body.extend_from_slice(&self.seq.to_le_bytes());
        body.extend_from_slice(&(self.docs.len() as u32).to_le_bytes());
        for (uri, xml) in &self.docs {
            body.extend_from_slice(&(uri.len() as u32).to_le_bytes());
            body.extend_from_slice(uri.as_bytes());
            body.extend_from_slice(&(xml.len() as u32).to_le_bytes());
            body.extend_from_slice(xml.as_bytes());
            body.extend_from_slice(&content_digest(uri, xml).to_le_bytes());
        }
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a snapshot, verifying magic and CRC. `None` means the bytes
    /// are torn, corrupt or not a checkpoint — never a panic.
    pub fn decode(data: &[u8]) -> Option<Checkpoint> {
        if data.len() < 12 || &data[..8] != MAGIC {
            return None;
        }
        let crc = u32::from_le_bytes(data[8..12].try_into().ok()?);
        let body = &data[12..];
        if crc32(body) != crc {
            return None;
        }
        let gen = u64::from_le_bytes(body.get(0..8)?.try_into().ok()?);
        let seq = u64::from_le_bytes(body.get(8..16)?.try_into().ok()?);
        let count = u32::from_le_bytes(body.get(16..20)?.try_into().ok()?) as usize;
        let mut pos = 20;
        let mut docs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let ulen = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let uri = String::from_utf8(body.get(pos..pos + ulen)?.to_vec()).ok()?;
            pos += ulen;
            let xlen = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let xml = String::from_utf8(body.get(pos..pos + xlen)?.to_vec()).ok()?;
            pos += xlen;
            let recorded = u64::from_le_bytes(body.get(pos..pos + 8)?.try_into().ok()?);
            pos += 8;
            if recorded != content_digest(&uri, &xml) {
                return None; // end-to-end digest disagrees with the body
            }
            docs.push((uri, xml));
        }
        if pos != body.len() {
            return None;
        }
        Some(Checkpoint { gen, seq, docs })
    }

    /// Writes this snapshot to its generation's slot and fsyncs it.
    pub fn write(&self, disk: &VirtualDisk) -> Result<(), DiskError> {
        let out = self.encode();
        let slot = CKPT_SLOTS[(self.gen % 2) as usize];
        disk.write_file(slot, &out);
        disk.sync(slot)
    }

    /// Reads the newest intact snapshot, if any slot holds one.
    pub fn read_latest(disk: &VirtualDisk) -> Option<Checkpoint> {
        Self::read_latest_verified(disk).0
    }

    /// Reads the newest intact snapshot and reports a typed verdict for
    /// every slot that held bytes but failed verification. When *every*
    /// written slot is corrupt the verdicts end with
    /// [`IntegrityError::AllCheckpointSlotsCorrupt`] — the alarm case a
    /// recovery path must surface rather than silently starting empty.
    pub fn read_latest_verified(disk: &VirtualDisk) -> (Option<Checkpoint>, Vec<IntegrityError>) {
        let mut best: Option<Checkpoint> = None;
        let mut verdicts = Vec::new();
        let mut written = 0usize;
        for (i, slot) in CKPT_SLOTS.iter().enumerate() {
            let Some(data) = disk.read(slot) else {
                continue;
            };
            if data.is_empty() {
                continue;
            }
            written += 1;
            match Self::decode(&data) {
                Some(ckpt) => {
                    if best.as_ref().is_none_or(|b| ckpt.gen > b.gen) {
                        best = Some(ckpt);
                    }
                }
                None => verdicts.push(IntegrityError::CheckpointSlotCorrupt { slot: i }),
            }
        }
        if best.is_none() && written > 0 && verdicts.len() == written {
            verdicts.push(IntegrityError::AllCheckpointSlotsCorrupt);
        }
        (best, verdicts)
    }

    /// The recorded `(uri, digest)` pairs — what the scrubber compares
    /// across replicas without shipping bodies.
    pub fn digests(&self) -> Vec<(String, u64)> {
        self.docs
            .iter()
            .map(|(uri, xml)| (uri.clone(), content_digest(uri, xml)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(gen: u64, seq: u64, docs: &[(&str, &str)]) -> Checkpoint {
        Checkpoint {
            gen,
            seq,
            docs: docs
                .iter()
                .map(|(u, x)| (u.to_string(), x.to_string()))
                .collect(),
        }
    }

    #[test]
    fn write_read_round_trips() {
        let disk = VirtualDisk::new();
        let c = ckpt(1, 7, &[("a.xml", "<a/>"), ("b.xml", "<b>hi</b>")]);
        c.write(&disk).unwrap();
        assert_eq!(Checkpoint::read_latest(&disk), Some(c));
    }

    #[test]
    fn empty_disk_has_no_checkpoint() {
        assert_eq!(Checkpoint::read_latest(&VirtualDisk::new()), None);
    }

    #[test]
    fn newer_generation_wins_across_slots() {
        let disk = VirtualDisk::new();
        ckpt(1, 3, &[("a.xml", "<a/>")]).write(&disk).unwrap(); // slot 1
        ckpt(2, 9, &[("a.xml", "<a2/>")]).write(&disk).unwrap(); // slot 0
        let latest = Checkpoint::read_latest(&disk).unwrap();
        assert_eq!((latest.gen, latest.seq), (2, 9));
        assert_eq!(latest.docs[0].1, "<a2/>");
    }

    #[test]
    fn corrupt_newer_slot_falls_back_to_the_older_one() {
        let disk = VirtualDisk::new();
        ckpt(1, 3, &[("a.xml", "<a/>")]).write(&disk).unwrap();
        ckpt(2, 9, &[("a.xml", "<a2/>")]).write(&disk).unwrap();
        // corrupt gen-2's slot (slot 0) mid-body
        let slot = CKPT_SLOTS[0];
        let mut data = disk.read(slot).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        disk.write_file(slot, &data);
        let latest = Checkpoint::read_latest(&disk).unwrap();
        assert_eq!((latest.gen, latest.seq), (1, 3), "falls back to gen 1");
    }

    #[test]
    fn both_slots_corrupt_is_a_clean_none_never_a_panic() {
        let disk = VirtualDisk::new();
        ckpt(1, 3, &[("a.xml", "<a/>")]).write(&disk).unwrap();
        ckpt(2, 9, &[("a.xml", "<a2/>")]).write(&disk).unwrap();
        for slot in CKPT_SLOTS {
            let mut data = disk.read(slot).unwrap();
            let mid = data.len() / 2;
            data[mid] ^= 0xff;
            disk.write_file(slot, &data);
        }
        assert_eq!(
            Checkpoint::read_latest(&disk),
            None,
            "two corrupt slots recover to an empty store, not a panic"
        );
    }

    #[test]
    fn garbage_slots_of_every_shape_decode_to_none() {
        // torn magic, short file, truncated body, bogus interior lengths:
        // none of these may panic or return a checkpoint
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"XQ".to_vec(),
            b"XQCKPT2\0".to_vec(),
            b"XQCKPT2\0\x01\x02\x03".to_vec(),
            b"NOTMAGIC________________".to_vec(),
            {
                // valid frame truncated mid-body
                let full = ckpt(4, 2, &[("a.xml", "<a/>")]).encode();
                full[..full.len() - 3].to_vec()
            },
            {
                // CRC fixed up over a body whose doc length points past
                // the end: decode must refuse the lengths, not overread
                let mut body = Vec::new();
                body.extend_from_slice(&7u64.to_le_bytes());
                body.extend_from_slice(&7u64.to_le_bytes());
                body.extend_from_slice(&1u32.to_le_bytes());
                body.extend_from_slice(&999u32.to_le_bytes());
                body.extend_from_slice(b"short");
                let mut out = b"XQCKPT2\0".to_vec();
                out.extend_from_slice(&crate::crc32(&body).to_le_bytes());
                out.extend_from_slice(&body);
                out
            },
        ];
        for (i, data) in cases.iter().enumerate() {
            assert_eq!(Checkpoint::decode(data), None, "case {i} must be None");
            let disk = VirtualDisk::new();
            disk.write_file(CKPT_SLOTS[0], data);
            assert_eq!(Checkpoint::read_latest(&disk), None, "case {i} via slot");
        }
    }

    #[test]
    fn generation_tie_picks_slot_zero_deterministically() {
        // Two slots claiming the same generation cannot arise from the
        // alternating writer (gen parity picks the slot), but a byte-copied
        // disk image can produce one. The reader must stay deterministic:
        // strict `>` keeps the first intact slot scanned, i.e. slot 0.
        let disk = VirtualDisk::new();
        let in_slot0 = ckpt(2, 9, &[("a.xml", "<from-slot-0/>")]);
        let in_slot1 = ckpt(2, 9, &[("a.xml", "<from-slot-1/>")]);
        in_slot0.write(&disk).unwrap(); // gen 2 -> slot 0
                                        // forge the same generation into slot 1
        disk.write_file(CKPT_SLOTS[1], &in_slot1.encode());
        disk.sync(CKPT_SLOTS[1]).unwrap();
        let picked = Checkpoint::read_latest(&disk).unwrap();
        assert_eq!(picked.docs[0].1, "<from-slot-0/>", "ties keep slot 0");
        // and the tie-break is stable across repeated reads
        assert_eq!(Checkpoint::read_latest(&disk).unwrap(), picked);
    }

    #[test]
    fn encode_decode_round_trips_for_snapshot_shipping() {
        let c = ckpt(5, 42, &[("a.xml", "<a/>"), ("b.xml", "<b>x</b>")]);
        assert_eq!(Checkpoint::decode(&c.encode()), Some(c));
    }

    #[test]
    fn recorded_digests_match_the_shared_content_digest() {
        let c = ckpt(1, 2, &[("a.xml", "<a/>"), ("b.xml", "<b>x</b>")]);
        let digests = c.digests();
        assert_eq!(digests.len(), 2);
        for ((uri, xml), (duri, d)) in c.docs.iter().zip(&digests) {
            assert_eq!(uri, duri);
            assert_eq!(*d, content_digest(uri, xml));
        }
    }

    #[test]
    fn forged_digest_with_fixed_crc_is_refused() {
        // A slot whose CRC was recomputed over a tampered body still fails
        // the per-document digest: the end-to-end check is independent of
        // the transport CRC.
        let c = ckpt(1, 2, &[("a.xml", "<aaaa/>")]);
        let encoded = c.encode();
        let mut body = encoded[12..].to_vec();
        // flip a byte inside the xml ("<aaaa/>" starts after gen+seq+count
        // +ulen+uri+xlen = 8+8+4+4+5+4 = 33)
        body[34] ^= 0x08;
        let mut forged = encoded[..8].to_vec();
        forged.extend_from_slice(&crate::crc32(&body).to_le_bytes());
        forged.extend_from_slice(&body);
        assert_eq!(Checkpoint::decode(&forged), None, "digest must refuse");
    }

    #[test]
    fn verified_read_reports_slot_verdicts() {
        let disk = VirtualDisk::new();
        // nothing written: no checkpoint, no verdicts
        let (none, verdicts) = Checkpoint::read_latest_verified(&disk);
        assert_eq!(none, None);
        assert!(verdicts.is_empty());
        // one good slot, one corrupt: the good one wins, the bad one is named
        ckpt(1, 3, &[("a.xml", "<a/>")]).write(&disk).unwrap(); // slot 1
        ckpt(2, 9, &[("a.xml", "<a2/>")]).write(&disk).unwrap(); // slot 0
        let mut data = disk.read(CKPT_SLOTS[0]).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        disk.write_file(CKPT_SLOTS[0], &data);
        let (best, verdicts) = Checkpoint::read_latest_verified(&disk);
        assert_eq!(best.unwrap().gen, 1);
        assert_eq!(
            verdicts,
            vec![IntegrityError::CheckpointSlotCorrupt { slot: 0 }]
        );
        // both corrupt: the verdicts end with the alarm
        let mut data = disk.read(CKPT_SLOTS[1]).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        disk.write_file(CKPT_SLOTS[1], &data);
        let (best, verdicts) = Checkpoint::read_latest_verified(&disk);
        assert_eq!(best, None);
        assert_eq!(
            verdicts,
            vec![
                IntegrityError::CheckpointSlotCorrupt { slot: 0 },
                IntegrityError::CheckpointSlotCorrupt { slot: 1 },
                IntegrityError::AllCheckpointSlotsCorrupt,
            ]
        );
    }

    #[test]
    fn torn_snapshot_write_keeps_the_previous_generation() {
        let disk = VirtualDisk::new();
        // gen 2 lands in slot 0; then simulate a crash mid-write of gen 3
        // into slot 1: write without sync
        ckpt(2, 5, &[("a.xml", "<a/>")]).write(&disk).unwrap();
        let c3 = ckpt(3, 11, &[("a.xml", "<a3/>"), ("b.xml", "<b/>")]);
        let slot = CKPT_SLOTS[1];
        disk.write_file(slot, b"XQCKPT1\0garbage-that-never-synced");
        disk.crash();
        let _ = c3; // never durably written
        let latest = Checkpoint::read_latest(&disk).unwrap();
        assert_eq!(latest.gen, 2, "prior generation survives the torn write");
    }
}
