//! # xqib-storage
//!
//! Crash-consistent persistence for the server tier, in the same
//! deterministic-simulation style as the virtual network (PR 2) and the
//! engine crash points (PR 3): everything here is reproducible from a
//! single `u64` seed.
//!
//! * [`VirtualDisk`] — an in-memory file device that distinguishes written
//!   from *synced* bytes and simulates power loss: on [`VirtualDisk::crash`]
//!   the unsynced tail of every file survives only as a torn prefix, with
//!   seeded bit corruption, per the installed [`StorageFaultPlan`].
//! * [`Wal`] — an append-only redo log of length-prefixed, CRC-checked,
//!   sequence-numbered frames. Replay stops at the first bad frame (torn
//!   tail, CRC mismatch, sequence break): the **prefix-durability
//!   contract** — recovery yields exactly the state of some frame boundary,
//!   never a torn or corrupted state.
//! * [`Checkpoint`] — dual-slot, generation-numbered, CRC-guarded document
//!   snapshots. A checkpoint records the WAL sequence it covers so the log
//!   can be truncated afterwards, and so that replay after a crash between
//!   checkpoint and truncate skips already-absorbed records (idempotent
//!   recovery).

pub mod checkpoint;
pub mod disk;
pub mod wal;

pub use checkpoint::{Checkpoint, CKPT_SLOTS};
pub use disk::{DiskError, DiskStats, StorageFaultPlan, VirtualDisk};
pub use wal::{ShippedFrame, Wal, WalBreak, WalRecord, WalReplay, WAL_FILE};

/// CRC-32 (IEEE 802.3, reflected) — the frame and snapshot checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a over a byte string — the workspace's standard content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finaliser — the workspace's standard bit mixer.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// End-to-end content digest of one document binding: FNV-1a over the URI
/// chained with FNV-1a over the canonical serialization, finished with the
/// splitmix64 mixer. Recorded in WAL digest frames and checkpoint entries
/// so replicas can cross-check state without shipping bodies, and so a
/// read path can refuse to serve bytes that no longer hash to what was
/// acknowledged.
pub fn content_digest(uri: &str, xml: &str) -> u64 {
    mix64(fnv1a(uri.as_bytes()) ^ mix64(fnv1a(xml.as_bytes())))
}

/// Typed verdict of an integrity check over a WAL or checkpoint read.
/// Distinguishes the *expected* crash shape (a torn tail, which replay
/// truncates) from silent damage inside the durable prefix (an alarm: no
/// legal crash produces it, so a platter or replication fault did).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// Bytes past the last intact frame that never formed one — the
    /// expected shape after a crash mid-append.
    TornWalTail { at: usize },
    /// Damage strictly inside the durable prefix: a fully-present frame
    /// failed its CRC, re-used a sequence number, or carried a payload
    /// that no longer decodes.
    WalCorruption { at: usize, reason: WalBreak },
    /// A checkpoint slot was present but failed magic/CRC/digest checks.
    CheckpointSlotCorrupt { slot: usize },
    /// Every written checkpoint slot is corrupt — recovery has no snapshot
    /// to stand on and degrades to the WAL alone.
    AllCheckpointSlotsCorrupt,
    /// A document's content digest did not match its recorded value.
    DigestMismatch { uri: String, want: u64, got: u64 },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::TornWalTail { at } => {
                write!(f, "torn WAL tail past byte {at}")
            }
            IntegrityError::WalCorruption { at, reason } => {
                write!(f, "WAL corruption at byte {at}: {reason:?}")
            }
            IntegrityError::CheckpointSlotCorrupt { slot } => {
                write!(f, "checkpoint slot {slot} is corrupt")
            }
            IntegrityError::AllCheckpointSlotsCorrupt => {
                write!(f, "every checkpoint slot is corrupt")
            }
            IntegrityError::DigestMismatch { uri, want, got } => {
                write!(
                    f,
                    "digest mismatch for {uri}: want {want:016x}, got {got:016x}"
                )
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Durability counters the server tier surfaces through `ServerMetrics`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Redo records appended to the WAL.
    pub wal_appends: u64,
    /// Successful WAL fsyncs (group commits).
    pub fsyncs: u64,
    /// Checkpoints written (each truncates the WAL).
    pub checkpoints: u64,
    /// Recoveries performed over the disk image.
    pub recoveries: u64,
    /// Recoveries that dropped a torn/corrupt WAL tail.
    pub torn_tails_dropped: u64,
    /// Recoveries that found every written checkpoint slot corrupt and had
    /// to rebuild from the WAL alone.
    pub ckpt_slots_lost: u64,
    /// Mid-prefix WAL damage (CRC/decode failure on a fully-present frame)
    /// seen during recovery — never a legal crash shape.
    pub wal_corruptions: u64,
    /// Recovered documents whose content digest disagreed with the digest
    /// recorded in the WAL.
    pub recovery_digest_mismatches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
