//! # xqib-storage
//!
//! Crash-consistent persistence for the server tier, in the same
//! deterministic-simulation style as the virtual network (PR 2) and the
//! engine crash points (PR 3): everything here is reproducible from a
//! single `u64` seed.
//!
//! * [`VirtualDisk`] — an in-memory file device that distinguishes written
//!   from *synced* bytes and simulates power loss: on [`VirtualDisk::crash`]
//!   the unsynced tail of every file survives only as a torn prefix, with
//!   seeded bit corruption, per the installed [`StorageFaultPlan`].
//! * [`Wal`] — an append-only redo log of length-prefixed, CRC-checked,
//!   sequence-numbered frames. Replay stops at the first bad frame (torn
//!   tail, CRC mismatch, sequence break): the **prefix-durability
//!   contract** — recovery yields exactly the state of some frame boundary,
//!   never a torn or corrupted state.
//! * [`Checkpoint`] — dual-slot, generation-numbered, CRC-guarded document
//!   snapshots. A checkpoint records the WAL sequence it covers so the log
//!   can be truncated afterwards, and so that replay after a crash between
//!   checkpoint and truncate skips already-absorbed records (idempotent
//!   recovery).

pub mod checkpoint;
pub mod disk;
pub mod wal;

pub use checkpoint::{Checkpoint, CKPT_SLOTS};
pub use disk::{DiskError, DiskStats, StorageFaultPlan, VirtualDisk};
pub use wal::{ShippedFrame, Wal, WalRecord, WalReplay, WAL_FILE};

/// CRC-32 (IEEE 802.3, reflected) — the frame and snapshot checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Durability counters the server tier surfaces through `ServerMetrics`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Redo records appended to the WAL.
    pub wal_appends: u64,
    /// Successful WAL fsyncs (group commits).
    pub fsyncs: u64,
    /// Checkpoints written (each truncates the WAL).
    pub checkpoints: u64,
    /// Recoveries performed over the disk image.
    pub recoveries: u64,
    /// Recoveries that dropped a torn/corrupt WAL tail.
    pub torn_tails_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
