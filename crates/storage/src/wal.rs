//! The write-ahead log: an append-only redo stream over a [`VirtualDisk`]
//! file.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬───────┬──────────────┐
//! │ len u32 │ crc u32 │ seq u64 │ tag u8│ payload[len] │
//! └─────────┴─────────┴─────────┴───────┴──────────────┘
//! ```
//!
//! `crc` covers `seq ‖ tag ‖ payload`. [`Wal::scan`] accepts the longest
//! prefix of intact frames with strictly increasing sequence numbers and
//! stops at the first bad frame — a torn tail (partial write lost in a
//! crash), a CRC mismatch (bit rot in an in-flight sector), an unknown tag
//! or a sequence break all end replay at the previous frame boundary.
//! Appended frames become durable only when [`Wal::sync`] succeeds; callers
//! batch appends per group commit.

use crate::crc32;
use crate::disk::{DiskError, VirtualDisk};
use crate::IntegrityError;

/// Default WAL file name on the device.
pub const WAL_FILE: &str = "wal.log";

const HEADER: usize = 4 + 4 + 8 + 1;

const TAG_LOAD: u8 = 1;
const TAG_PUL: u8 = 2;
const TAG_DIGEST: u8 = 3;

/// One redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A document (re)load: on replay, bind `xml` under `uri`, replacing
    /// any existing binding.
    Load { uri: String, xml: String },
    /// A wire-encoded pending update list (see `xqib_xquery::wire`),
    /// opaque to the storage layer.
    Pul(Vec<u8>),
    /// An end-to-end integrity assertion: after applying every record up
    /// to this point, the document bound at `uri` must hash to `digest`
    /// (see [`crate::content_digest`]). Replayers verify and stop at the
    /// record if the recovered state disagrees; replicas use it to detect
    /// divergence at apply time.
    Digest { uri: String, digest: u64 },
}

/// Why a WAL scan stopped before the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalBreak {
    /// The stream ended mid-frame — a torn write, the expected crash shape.
    TornTail,
    /// A fully-present frame failed its CRC: bit rot inside the prefix.
    CrcMismatch,
    /// A frame re-used an old sequence number (stale bytes or a resend).
    StaleSeq,
    /// The CRC held but the tag/payload did not decode.
    Malformed,
}

/// One raw WAL frame as shipped to a replica: the sequence number, the
/// decoded record, and the exact frame bytes (header included, CRC
/// intact), so a follower can append what it received verbatim and its
/// log stays a byte-prefix of the leader's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedFrame {
    pub seq: u64,
    pub record: WalRecord,
    pub bytes: Vec<u8>,
}

/// Result of scanning a WAL file.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Intact frames, in order: `(seq, record, end_offset_in_file)`.
    pub records: Vec<(u64, WalRecord, usize)>,
    /// Bytes covered by intact frames; anything beyond is a torn/corrupt
    /// tail.
    pub valid_bytes: usize,
    /// True when the file held bytes past the last intact frame.
    pub torn_tail_dropped: bool,
    /// Why the scan stopped, when it stopped before the end of the stream.
    pub break_reason: Option<WalBreak>,
}

impl WalReplay {
    /// Classifies the scan outcome as a typed integrity verdict: `None`
    /// when the stream scanned clean to its last byte; a torn-tail error
    /// (expected — the caller truncates it) when the stream ended
    /// mid-frame; a corruption error (alarm — no legal crash produces it)
    /// when a fully-present frame was damaged.
    pub fn integrity_error(&self) -> Option<IntegrityError> {
        match self.break_reason? {
            WalBreak::TornTail => Some(IntegrityError::TornWalTail {
                at: self.valid_bytes,
            }),
            reason => Some(IntegrityError::WalCorruption {
                at: self.valid_bytes,
                reason,
            }),
        }
    }

    /// True when the scan hit damage *inside* the durable prefix — the
    /// alarm case a scrubber must repair or escalate.
    pub fn mid_prefix_damage(&self) -> bool {
        matches!(
            self.break_reason,
            Some(WalBreak::CrcMismatch) | Some(WalBreak::StaleSeq) | Some(WalBreak::Malformed)
        )
    }
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    disk: VirtualDisk,
    file: String,
    next_seq: u64,
    /// Appends since the last successful sync.
    unsynced: u64,
}

impl Wal {
    /// Creates a fresh, empty log (truncating any leftover file).
    pub fn create(disk: VirtualDisk, file: &str) -> Wal {
        disk.write_file(file, &[]);
        Wal {
            disk,
            file: file.to_string(),
            next_seq: 1,
            unsynced: 0,
        }
    }

    /// Opens an existing log after [`scan`](Self::scan): physically drops
    /// the torn tail (so new appends start at a frame boundary) and
    /// continues the sequence after the last intact frame.
    pub fn open_after(disk: VirtualDisk, file: &str, replay: &WalReplay) -> Wal {
        disk.truncate_to(file, replay.valid_bytes);
        let last_seq = replay.records.last().map_or(0, |(seq, _, _)| *seq);
        Wal {
            disk,
            file: file.to_string(),
            next_seq: last_seq + 1,
            unsynced: 0,
        }
    }

    /// Scans a WAL file into the longest intact frame prefix.
    pub fn scan(disk: &VirtualDisk, file: &str) -> WalReplay {
        let data = disk.read(file).unwrap_or_default();
        Self::scan_bytes(&data)
    }

    /// Scans an in-memory frame stream — the same accept rule as
    /// [`scan`](Self::scan), shared with the replication receiver: the
    /// longest prefix of intact frames with strictly increasing sequence
    /// numbers, stopping at the first torn, corrupt, unknown-tag or
    /// sequence-breaking frame.
    pub fn scan_bytes(data: &[u8]) -> WalReplay {
        let mut replay = WalReplay::default();
        let mut pos = 0usize;
        let mut prev_seq = 0u64;
        while pos + HEADER <= data.len() {
            let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]])
                as usize;
            let end = pos + HEADER + len;
            if end > data.len() {
                replay.break_reason = Some(WalBreak::TornTail);
                break;
            }
            let crc =
                u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
            let body = &data[pos + 8..end];
            if crc32(body) != crc {
                replay.break_reason = Some(WalBreak::CrcMismatch);
                break;
            }
            let seq = u64::from_le_bytes([
                body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
            ]);
            if seq <= prev_seq {
                replay.break_reason = Some(WalBreak::StaleSeq);
                break;
            }
            let Some(record) = decode_record(body[8], &body[9..]) else {
                replay.break_reason = Some(WalBreak::Malformed);
                break;
            };
            replay.records.push((seq, record, end));
            replay.valid_bytes = end;
            prev_seq = seq;
            pos = end;
        }
        replay.torn_tail_dropped = replay.valid_bytes < data.len();
        if replay.torn_tail_dropped && replay.break_reason.is_none() {
            // leftover bytes too short to even form a header
            replay.break_reason = Some(WalBreak::TornTail);
        }
        replay
    }

    /// Extracts shippable frames from a raw WAL image: the intact prefix
    /// per [`scan_bytes`](Self::scan_bytes), filtered to
    /// `after < seq <= upto`. The leader uses this to cut a replication
    /// batch of committed frames; each [`ShippedFrame`] carries the exact
    /// on-disk bytes so the follower's log stays a byte-prefix of the
    /// leader's.
    pub fn frames_in(data: &[u8], after: u64, upto: u64) -> Vec<ShippedFrame> {
        let replay = Self::scan_bytes(data);
        let mut start = 0usize;
        let mut out = Vec::new();
        for (seq, record, end) in replay.records {
            if seq > after && seq <= upto {
                out.push(ShippedFrame {
                    seq,
                    record,
                    bytes: data[start..end].to_vec(),
                });
            }
            start = end;
        }
        out
    }

    /// Appends a record, returning its sequence number. Not durable until
    /// [`sync`](Self::sync) succeeds.
    pub fn append(&mut self, record: &WalRecord) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = encode_record(record);
        let mut body = Vec::with_capacity(9 + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.push(match record {
            WalRecord::Load { .. } => TAG_LOAD,
            WalRecord::Pul(_) => TAG_PUL,
            WalRecord::Digest { .. } => TAG_DIGEST,
        });
        body.extend_from_slice(&payload);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.disk.append(&self.file, &frame);
        self.unsynced += 1;
        seq
    }

    /// Group commit: fsync the log. On success every appended frame is
    /// durable; on failure the caller must keep the batch unacknowledged.
    pub fn sync(&mut self) -> Result<(), DiskError> {
        self.disk.sync(&self.file)?;
        self.unsynced = 0;
        Ok(())
    }

    /// Truncates the log after a checkpoint. Sequence numbers keep
    /// counting — replay uses them to skip records a checkpoint absorbed.
    pub fn truncate(&mut self) {
        self.disk.truncate(&self.file);
        self.unsynced = 0;
    }

    pub fn size_bytes(&self) -> usize {
        self.disk.len(&self.file)
    }

    pub fn unsynced_appends(&self) -> u64 {
        self.unsynced
    }

    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Continues the sequence from a checkpoint that is ahead of the log
    /// (an empty WAL right after truncation).
    pub fn fast_forward(&mut self, seq: u64) {
        if self.next_seq <= seq {
            self.next_seq = seq + 1;
        }
    }
}

fn encode_record(record: &WalRecord) -> Vec<u8> {
    match record {
        WalRecord::Load { uri, xml } => {
            let mut out = Vec::with_capacity(8 + uri.len() + xml.len());
            out.extend_from_slice(&(uri.len() as u32).to_le_bytes());
            out.extend_from_slice(uri.as_bytes());
            out.extend_from_slice(&(xml.len() as u32).to_le_bytes());
            out.extend_from_slice(xml.as_bytes());
            out
        }
        WalRecord::Pul(bytes) => bytes.clone(),
        WalRecord::Digest { uri, digest } => {
            let mut out = Vec::with_capacity(12 + uri.len());
            out.extend_from_slice(&(uri.len() as u32).to_le_bytes());
            out.extend_from_slice(uri.as_bytes());
            out.extend_from_slice(&digest.to_le_bytes());
            out
        }
    }
}

fn decode_record(tag: u8, payload: &[u8]) -> Option<WalRecord> {
    match tag {
        TAG_LOAD => {
            let ulen = u32::from_le_bytes(payload.get(0..4)?.try_into().ok()?) as usize;
            let uri = String::from_utf8(payload.get(4..4 + ulen)?.to_vec()).ok()?;
            let xoff = 4 + ulen;
            let xlen = u32::from_le_bytes(payload.get(xoff..xoff + 4)?.try_into().ok()?) as usize;
            let xml = String::from_utf8(payload.get(xoff + 4..xoff + 4 + xlen)?.to_vec()).ok()?;
            if xoff + 4 + xlen != payload.len() {
                return None;
            }
            Some(WalRecord::Load { uri, xml })
        }
        TAG_PUL => Some(WalRecord::Pul(payload.to_vec())),
        TAG_DIGEST => {
            let ulen = u32::from_le_bytes(payload.get(0..4)?.try_into().ok()?) as usize;
            let uri = String::from_utf8(payload.get(4..4 + ulen)?.to_vec()).ok()?;
            let doff = 4 + ulen;
            let digest = u64::from_le_bytes(payload.get(doff..doff + 8)?.try_into().ok()?);
            if doff + 8 != payload.len() {
                return None;
            }
            Some(WalRecord::Digest { uri, digest })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::StorageFaultPlan;

    fn load(uri: &str, xml: &str) -> WalRecord {
        WalRecord::Load {
            uri: uri.to_string(),
            xml: xml.to_string(),
        }
    }

    #[test]
    fn append_sync_scan_round_trips() {
        let disk = VirtualDisk::new();
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        assert_eq!(wal.append(&load("a.xml", "<a/>")), 1);
        assert_eq!(wal.append(&WalRecord::Pul(vec![1, 2, 3])), 2);
        wal.sync().unwrap();
        let replay = Wal::scan(&disk, WAL_FILE);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].0, 1);
        assert_eq!(replay.records[0].1, load("a.xml", "<a/>"));
        assert_eq!(replay.records[1].1, WalRecord::Pul(vec![1, 2, 3]));
        assert!(!replay.torn_tail_dropped);
        assert_eq!(replay.valid_bytes, disk.len(WAL_FILE));
    }

    #[test]
    fn unsynced_tail_is_dropped_after_a_crash() {
        let disk = VirtualDisk::with_plan(StorageFaultPlan::seeded(11));
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        wal.append(&load("a.xml", "<a/>"));
        wal.sync().unwrap();
        // a large unsynced record: the crash tears it
        wal.append(&load("b.xml", &format!("<b>{}</b>", "x".repeat(500))));
        disk.crash();
        let replay = Wal::scan(&disk, WAL_FILE);
        assert_eq!(replay.records.len(), 1, "only the synced frame survives");
        assert_eq!(replay.records[0].1, load("a.xml", "<a/>"));
    }

    #[test]
    fn corrupt_frame_stops_replay_at_the_previous_boundary() {
        let disk = VirtualDisk::new();
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        wal.append(&load("a.xml", "<a/>"));
        wal.append(&load("b.xml", "<b/>"));
        wal.sync().unwrap();
        // flip a bit inside the second frame's payload
        let mut data = disk.read(WAL_FILE).unwrap();
        let first_end = Wal::scan(&disk, WAL_FILE).records[0].2;
        data[first_end + HEADER] ^= 0x40;
        disk.write_file(WAL_FILE, &data);
        let replay = Wal::scan(&disk, WAL_FILE);
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn_tail_dropped);
        assert_eq!(replay.valid_bytes, first_end);
    }

    #[test]
    fn open_after_drops_the_tail_and_continues_the_sequence() {
        let disk = VirtualDisk::new();
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        wal.append(&load("a.xml", "<a/>"));
        wal.sync().unwrap();
        wal.append(&load("b.xml", "<b/>"));
        disk.crash(); // tears the unsynced second frame
        let replay = Wal::scan(&disk, WAL_FILE);
        let mut wal = Wal::open_after(disk.clone(), WAL_FILE, &replay);
        assert_eq!(disk.len(WAL_FILE), replay.valid_bytes, "tail dropped");
        let seq = wal.append(&load("c.xml", "<c/>"));
        assert_eq!(seq, replay.records.last().unwrap().0 + 1);
        wal.sync().unwrap();
        let again = Wal::scan(&disk, WAL_FILE);
        assert_eq!(again.records.len(), replay.records.len() + 1);
    }

    #[test]
    fn truncate_then_fast_forward_keeps_seq_monotone() {
        let disk = VirtualDisk::new();
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        wal.append(&load("a.xml", "<a/>"));
        wal.append(&load("b.xml", "<b/>"));
        wal.sync().unwrap();
        wal.truncate();
        assert_eq!(wal.size_bytes(), 0);
        let seq = wal.append(&load("c.xml", "<c/>"));
        assert_eq!(seq, 3, "sequence survives truncation");

        let mut fresh = Wal::create(VirtualDisk::new(), WAL_FILE);
        fresh.fast_forward(9);
        assert_eq!(fresh.append(&load("d.xml", "<d/>")), 10);
    }

    #[test]
    fn digest_records_round_trip() {
        let disk = VirtualDisk::new();
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        let rec = WalRecord::Digest {
            uri: "a.xml".to_string(),
            digest: 0xDEAD_BEEF_0123_4567,
        };
        wal.append(&load("a.xml", "<a/>"));
        wal.append(&rec);
        wal.sync().unwrap();
        let replay = Wal::scan(&disk, WAL_FILE);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].1, rec);
        assert_eq!(replay.break_reason, None);
        assert_eq!(replay.integrity_error(), None);
    }

    #[test]
    fn torn_tail_classifies_as_expected_not_alarm() {
        let disk = VirtualDisk::with_plan(StorageFaultPlan::seeded(11));
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        wal.append(&load("a.xml", "<a/>"));
        wal.sync().unwrap();
        wal.append(&load("b.xml", &format!("<b>{}</b>", "x".repeat(500))));
        disk.crash();
        let replay = Wal::scan(&disk, WAL_FILE);
        if replay.torn_tail_dropped {
            assert_eq!(replay.break_reason, Some(WalBreak::TornTail));
            assert!(!replay.mid_prefix_damage());
            assert_eq!(
                replay.integrity_error(),
                Some(crate::IntegrityError::TornWalTail {
                    at: replay.valid_bytes
                })
            );
        }
    }

    #[test]
    fn mid_prefix_bit_flip_classifies_as_corruption_alarm() {
        let disk = VirtualDisk::new();
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        wal.append(&load("a.xml", "<a/>"));
        wal.append(&load("b.xml", "<b/>"));
        wal.append(&load("c.xml", "<c/>"));
        wal.sync().unwrap();
        // flip one bit inside the *second* frame: frames exist beyond it
        let mut data = disk.read(WAL_FILE).unwrap();
        let first_end = Wal::scan(&disk, WAL_FILE).records[0].2;
        data[first_end + HEADER] ^= 0x40;
        disk.write_file(WAL_FILE, &data);
        let replay = Wal::scan(&disk, WAL_FILE);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.break_reason, Some(WalBreak::CrcMismatch));
        assert!(replay.mid_prefix_damage());
        assert_eq!(
            replay.integrity_error(),
            Some(crate::IntegrityError::WalCorruption {
                at: first_end,
                reason: WalBreak::CrcMismatch
            })
        );
    }

    #[test]
    fn decay_on_a_synced_wal_is_caught_by_the_crc() {
        // Latent decay flips a bit somewhere in the synced log with no
        // crash at all: the scan must stop at (or before) the flipped
        // frame and classify the damage, never return flipped bytes.
        let disk = VirtualDisk::with_plan(
            StorageFaultPlan::seeded(3)
                .with_decay_permille(60)
                .with_decay_period_ms(100),
        );
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        for k in 0..40 {
            wal.append(&load(
                &format!("d{k}.xml"),
                &format!("<d>{}</d>", "y".repeat(50)),
            ));
        }
        wal.sync().unwrap();
        let clean = Wal::scan(&disk, WAL_FILE);
        assert_eq!(clean.records.len(), 40);
        disk.decay_at(2_000);
        assert!(disk.stats().sectors_decayed > 0, "decay must have struck");
        let replay = Wal::scan(&disk, WAL_FILE);
        assert!(replay.records.len() < 40, "damage truncates the scan");
        assert!(replay.mid_prefix_damage());
        for (seq, rec, _) in &replay.records {
            // every record the scan *does* accept is bit-exact
            assert_eq!((rec, *seq), (&clean.records[*seq as usize - 1].1, *seq));
        }
    }

    #[test]
    fn stale_bytes_with_old_seq_do_not_replay() {
        // a truncate that "came back" with stale frames: the sequence
        // check refuses to replay them after newer frames
        let disk = VirtualDisk::new();
        let mut wal = Wal::create(disk.clone(), WAL_FILE);
        wal.append(&load("new.xml", "<new/>")); // seq 1
        wal.sync().unwrap();
        let newer = disk.read(WAL_FILE).unwrap();
        let mut stale = Wal::create(disk.clone(), WAL_FILE);
        stale.append(&load("old.xml", "<old/>")); // seq 1 again
        disk.sync(WAL_FILE).unwrap();
        let mut combined = disk.read(WAL_FILE).unwrap();
        combined.extend_from_slice(&newer); // stale frame followed by seq 1
        disk.write_file(WAL_FILE, &combined);
        let replay = Wal::scan(&disk, WAL_FILE);
        assert_eq!(replay.records.len(), 1, "duplicate seq stops the scan");
    }
}
