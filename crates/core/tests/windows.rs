//! Window-management and BOM-function tests (§4.2.4's function list):
//! windowOpen/Close/MoveBy/MoveTo, history functions, write/writeln,
//! and the queued-event path of the event loop.

use xqib_browser::events::DomEvent;
use xqib_core::plugin::{Plugin, PluginConfig, PluginTask};
use xqib_dom::QName;

fn plugin() -> Plugin {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page("<html><body><input id=\"b\"/></body></html>")
        .unwrap();
    p
}

#[test]
fn window_open_and_close() {
    let mut p = plugin();
    p.eval(r#"browser:windowOpen("popup", "http://www.xqib.org/pop")"#)
        .unwrap();
    {
        let host = p.host.borrow();
        let w = host.browser.find_by_name("popup").expect("popup exists");
        assert!(!host.browser.window(w).closed);
        assert_eq!(
            host.browser.window(w).location.href,
            "http://www.xqib.org/pop"
        );
    }
    p.eval(
        r#"{ declare variable $w := browser:windowOpen("popup2", "http://www.xqib.org/2");
             browser:windowClose($w) }"#,
    )
    .unwrap();
    let host = p.host.borrow();
    let w = host.browser.find_by_name("popup2").unwrap();
    assert!(host.browser.window(w).closed);
}

#[test]
fn window_move_functions() {
    let mut p = plugin();
    p.eval(
        r#"{ declare variable $w := browser:windowOpen("m", "http://www.xqib.org/m");
             browser:windowMoveTo($w, 100, 50);
             browser:windowMoveBy($w, -10, 25) }"#,
    )
    .unwrap();
    let host = p.host.borrow();
    let w = host.browser.find_by_name("m").unwrap();
    assert_eq!(host.browser.window(w).geometry.x, 90);
    assert_eq!(host.browser.window(w).geometry.y, 75);
}

#[test]
fn cross_origin_popup_cannot_be_closed() {
    // the window element for a cross-origin popup is opaque; windowClose
    // refuses to act on it
    let mut p = plugin();
    p.eval(
        r#"{ declare variable $w := browser:windowOpen("ext", "http://other.example/");
             browser:windowClose($w) }"#,
    )
    .unwrap();
    let host = p.host.borrow();
    let w = host.browser.find_by_name("ext").unwrap();
    assert!(!host.browser.window(w).closed, "close was denied");
}

#[test]
fn history_go_with_offset() {
    let mut p = plugin();
    {
        let mut host = p.host.borrow_mut();
        let w = host.page_window;
        host.browser.navigate(w, "http://www.xqib.org/2");
        host.browser.navigate(w, "http://www.xqib.org/3");
    }
    p.eval("browser:historyGo(-2)").unwrap();
    assert_eq!(
        p.host
            .borrow()
            .browser
            .window(p.page_window())
            .location
            .href,
        "http://www.xqib.org/index.html"
    );
    p.eval("browser:historyGo(2)").unwrap();
    assert_eq!(
        p.host
            .borrow()
            .browser
            .window(p.page_window())
            .location
            .href,
        "http://www.xqib.org/3"
    );
}

#[test]
fn write_and_writeln_record() {
    let mut p = plugin();
    p.eval("browser:writeln('line one'), browser:write('line two')")
        .unwrap();
    let host = p.host.borrow();
    let writes: Vec<_> = host
        .browser
        .ui_log
        .iter()
        .filter_map(|e| match e {
            xqib_browser::bom::UiEvent::WriteLn(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(writes, vec!["line one".to_string(), "line two".to_string()]);
}

#[test]
fn queued_events_drain_in_order() {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:log($evt, $obj) {
            insert node <li>{data($evt/detail)}</li> into //ul[1]
        };
        on event "custom" at //input attach listener local:log
        ]]></script></head><body><input id="b"/><ul/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    // queue three events with different delays; drain honours virtual time
    {
        let mut host = p.host.borrow_mut();
        host.tasks.schedule(
            30,
            PluginTask::Dispatch(DomEvent::new("custom", b).with_detail("third")),
        );
        host.tasks.schedule(
            10,
            PluginTask::Dispatch(DomEvent::new("custom", b).with_detail("first")),
        );
        host.tasks.schedule(
            20,
            PluginTask::Dispatch(DomEvent::new("custom", b).with_detail("second")),
        );
    }
    let n = p.run_until_idle().unwrap();
    assert_eq!(n, 3);
    let page = p.serialize_page();
    let first = page.find("first").unwrap();
    let second = page.find("second").unwrap();
    let third = page.find("third").unwrap();
    assert!(
        first < second && second < third,
        "virtual-time order: {page}"
    );
    assert_eq!(p.host.borrow().tasks.now(), 30);
}

#[test]
fn listener_errors_are_contained_and_counted() {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:bad($evt, $obj) { 1 div 0 };
        on event "onclick" at //input attach listener local:bad
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    // contained at the dispatch boundary: the click itself succeeds
    p.click(b).unwrap();
    let stats = p.host.borrow().quarantine.stats.clone();
    assert_eq!(stats.listener_errors, 1);
    assert_eq!(stats.listener_panics, 0);
}

#[test]
fn multiple_scripts_share_functions() {
    // functions of one <script> are callable from the next (merged context)
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head>
        <script type="text/xquery"><![CDATA[
        declare function local:square($x) { $x * $x };
        1
        ]]></script>
        <script type="text/xquery"><![CDATA[
        insert node <p>{local:square(7)}</p> into //body[1]
        ]]></script>
        </head><body/></html>"#,
    )
    .unwrap();
    assert!(p.serialize_page().contains("<p>49</p>"));
}

#[test]
fn page_reload_resets_document_but_keeps_browser_state() {
    let mut p = plugin();
    p.eval("insert node <p id='x'/> into //body[1]").unwrap();
    assert!(p.element_by_id("x").is_some());
    {
        let mut host = p.host.borrow_mut();
        let w = host.page_window;
        host.browser.navigate(w, "http://www.xqib.org/next");
    }
    p.load_page("<html><body>fresh</body></html>").unwrap();
    assert!(p.element_by_id("x").is_none(), "new document");
    assert_eq!(
        p.host
            .borrow()
            .browser
            .window(p.page_window())
            .history
            .len(),
        2,
        "history survives"
    );
}

#[test]
fn inline_listener_value_updates_between_events() {
    // $value rebinds on every dispatch
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:echo($v) {
            insert node <li>{$v}</li> into //ul[1]
        };
        1
        ]]></script></head>
        <body><input id="t" value="" onkeyup="local:echo($value)"/><ul/></body></html>"#,
    )
    .unwrap();
    let t = p.element_by_id("t").unwrap();
    for v in ["a", "ab", "abc"] {
        p.store
            .borrow_mut()
            .doc_mut(t.doc)
            .set_attribute(t.node, QName::local("value"), v)
            .unwrap();
        p.keyup(t).unwrap();
    }
    let page = p.serialize_page();
    assert!(page.contains("<li>a</li><li>ab</li><li>abc</li>"), "{page}");
}
