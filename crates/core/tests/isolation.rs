//! Listener fault isolation: a panicking or erroring listener is contained
//! at the dispatch boundary (ISSUE 3 tentpole). Other listeners still fire,
//! repeated failures quarantine the listener, a synthetic `error` event is
//! raised, and runaway listeners are preempted by the fuel budget — all
//! observable through `browser:listenerStatus()`.

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;
use xqib_browser::events::ListenerId;
use xqib_browser::{IsolationConfig, ListenerQuarantine, QuarantineState};
use xqib_core::plugin::{Plugin, PluginConfig};

fn plugin_with(isolation: IsolationConfig) -> Plugin {
    let mut p = Plugin::new(PluginConfig {
        isolation,
        ..Default::default()
    });
    p.load_page("<html><body><input id=\"b\"/></body></html>")
        .unwrap();
    p
}

fn status_attr(p: &mut Plugin, attr: &str) -> String {
    let out = p
        .eval(&format!("string(browser:listenerStatus()/@{attr})"))
        .unwrap();
    p.render(&out)
}

#[test]
fn panicking_listener_never_unwinds_and_others_still_fire() {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:ok($evt, $obj) {
            insert node <p>survived</p> into //body[1]
        };
        on event "onclick" at //input attach listener local:ok
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    p.register_external_listener(b, "onclick", |_| panic!("listener bomb"));
    // the panic is caught at the dispatch boundary; the click succeeds
    p.click(b).unwrap();
    assert!(
        p.serialize_page().contains("<p>survived</p>"),
        "the healthy listener on the same event still ran"
    );
    let stats = p.host.borrow().quarantine.stats.clone();
    assert_eq!(stats.listener_panics, 1);
    assert_eq!(stats.listener_errors, 0);
    // visible through the introspection function
    assert_eq!(status_attr(&mut p, "listener-panics"), "1");
}

#[test]
fn failed_listener_raises_a_synthetic_error_event() {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:bad($evt, $obj) { 1 div 0 };
        declare updating function local:onerr($evt, $obj) {
            insert node <p class="err">caught</p> into //body[1]
        };
        on event "onclick" at //input attach listener local:bad,
        on event "error" at //body attach listener local:onerr
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    p.click(b).unwrap();
    // the error event is queued, not dispatched re-entrantly
    assert!(!p.serialize_page().contains("<p class=\"err\">caught</p>"));
    p.run_until_idle().unwrap();
    assert!(
        p.serialize_page().contains("<p class=\"err\">caught</p>"),
        "error listener observed the contained failure: {}",
        p.serialize_page()
    );
}

#[test]
fn repeated_failures_quarantine_then_probation_heals() {
    let mut p = plugin_with(IsolationConfig {
        failure_threshold: 2,
        quarantine_ms: 100,
        listener_fuel: None,
    });
    let b = p.element_by_id("b").unwrap();
    let calls = Rc::new(Cell::new(0u32));
    let seen = calls.clone();
    p.register_external_listener(b, "onclick", move |_| {
        let n = seen.get() + 1;
        seen.set(n);
        if n <= 2 {
            panic!("flaky listener, call {n}");
        }
    });
    p.click(b).unwrap();
    p.click(b).unwrap(); // second consecutive failure: trips the quarantine
    assert_eq!(calls.get(), 2);
    assert_eq!(status_attr(&mut p, "trips"), "1");
    assert_eq!(
        p.eval(r#"string(browser:listenerStatus()/listener[1]/@state)"#)
            .map(|out| p.render(&out))
            .unwrap(),
        "quarantined"
    );
    // inside the cool-down window the listener is skipped, not invoked
    p.click(b).unwrap();
    assert_eq!(calls.get(), 2, "quarantined listener was not invoked");
    assert_eq!(status_attr(&mut p, "skipped"), "1");
    // after the (virtual-time) window the next click is the probation probe
    p.host.borrow_mut().tasks.advance(100);
    p.click(b).unwrap();
    assert_eq!(calls.get(), 3, "probe admitted after cool-down");
    assert_eq!(status_attr(&mut p, "probes"), "1");
    assert_eq!(status_attr(&mut p, "recoveries"), "1");
    assert_eq!(
        p.eval(r#"string(browser:listenerStatus()/listener[1]/@state)"#)
            .map(|out| p.render(&out))
            .unwrap(),
        "healthy"
    );
}

#[test]
fn fuel_budget_preempts_runaway_listener() {
    let mut p = Plugin::new(PluginConfig {
        isolation: IsolationConfig {
            listener_fuel: Some(2_000),
            ..Default::default()
        },
        ..Default::default()
    });
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:spin($evt, $obj) {
            for $i in (1 to 1000000) return ()
        };
        on event "onclick" at //input attach listener local:spin
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    // preempted with XQIB0011, contained like any other listener error
    p.click(b).unwrap();
    let stats = p.host.borrow().quarantine.stats.clone();
    assert_eq!(stats.fuel_exhausted, 1);
    assert_eq!(stats.listener_errors, 1);
    assert_eq!(status_attr(&mut p, "fuel-exhausted"), "1");
    // the budget applies per listener invocation only: top-level evaluation
    // afterwards is unmetered and the engine is fully usable
    let out = p.eval("count(1 to 100000)").unwrap();
    assert_eq!(p.render(&out), "100000");
}

proptest! {
    /// The guard trips into quarantine exactly at the configured threshold
    /// (never one failure early), and half-opens exactly when the virtual
    /// clock reaches the end of the cool-down window.
    #[test]
    fn quarantine_trips_exactly_at_threshold_and_half_opens(
        threshold in 1u32..6,
        window in 1u64..1_000,
        probe_fails in proptest::arbitrary::any::<bool>(),
    ) {
        let mut quar = ListenerQuarantine::new(&IsolationConfig {
            failure_threshold: threshold,
            quarantine_ms: window,
            listener_fuel: None,
        });
        let id = ListenerId(42);
        for i in 0..threshold - 1 {
            prop_assert!(quar.allow(id, u64::from(i)));
            quar.on_failure(id, u64::from(i));
            prop_assert_eq!(
                quar.state(id), QuarantineState::Healthy,
                "tripped one failure early at {}", i
            );
        }
        let trip_now = u64::from(threshold);
        quar.on_failure(id, trip_now);
        let until = trip_now + window;
        prop_assert_eq!(quar.state(id), QuarantineState::Quarantined { until });
        prop_assert_eq!(quar.stats.trips, 1);
        // one tick before the window ends: still fully closed
        if window > 0 {
            prop_assert!(!quar.allow(id, until - 1));
        }
        // exactly at the window boundary: half-open probe admitted
        prop_assert!(quar.allow(id, until));
        prop_assert_eq!(quar.state(id), QuarantineState::Probation);
        if probe_fails {
            quar.on_failure(id, until);
            prop_assert_eq!(
                quar.state(id),
                QuarantineState::Quarantined { until: until + window },
                "failed probe re-quarantines immediately"
            );
        } else {
            quar.on_success(id);
            prop_assert_eq!(quar.state(id), QuarantineState::Healthy);
            prop_assert_eq!(quar.stats.recoveries, 1);
        }
    }
}
