//! The fault/recovery path end to end: seeded fault injection on the
//! virtual network, retries with deterministic backoff on the event loop,
//! circuit breakers in virtual time, and stale-cache degradation delivered
//! as synthetic `stale`/`error` DOM events XQuery listeners can observe.

use proptest::prelude::*;
use xqib_browser::net::{Fault, FaultPlan, Response};
use xqib_browser::{BreakerState, RecoveryConfig, RecoveryStats, RetryPolicy};
use xqib_core::plugin::{Plugin, PluginConfig};

/// Deterministic CI matrix hook: `XQIB_FAULT_SEED` is mixed into every
/// fault-plan seed, so the same suite explores different schedules per job.
fn env_seed() -> u64 {
    std::env::var("XQIB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A page with a completion log and listeners for the degradation events.
const PAGE: &str = r#"<html><head><script type="text/xquery"><![CDATA[
declare updating function local:onResult($readyState, $result) {
  if ($readyState eq 4)
  then insert node <li class="done">done</li> into //ul[@id="log"]
  else ()
};
declare updating function local:onStale($evt, $obj) {
  replace value of node //span[@id="flag"]
  with concat("stale:", data($evt/detail), ":", string-join($evt/payload//item, "+"))
};
declare updating function local:onError($evt, $obj) {
  replace value of node //span[@id="flag"] with concat("error:", data($evt/detail))
};
on event "stale" at //body attach listener local:onStale;
on event "error" at //body attach listener local:onError
]]></script></head>
<body><ul id="log"/><span id="flag"/></body></html>"#;

fn plugin_with(recovery: RecoveryConfig) -> Plugin {
    let mut p = Plugin::new(PluginConfig {
        recovery,
        ..Default::default()
    });
    p.host
        .borrow_mut()
        .net
        .register("http://api.test/", 25, |req| {
            let n = req.url.rsplit('/').next().unwrap_or("").to_string();
            Response::ok(format!("<items><item>{n}</item></items>"))
        });
    p.load_page(PAGE).unwrap();
    p
}

fn behind_fetch(p: &mut Plugin, url: &str) {
    p.eval(&format!(
        r#"on event "stateChanged" behind browser:httpGet("{url}")
           attach listener local:onResult"#
    ))
    .unwrap();
}

fn stats(p: &Plugin) -> RecoveryStats {
    p.host.borrow().recovery.stats.clone()
}

#[test]
fn two_failures_then_success_completes_on_the_third_attempt() {
    let policy = RetryPolicy::default();
    let mut p = plugin_with(RecoveryConfig {
        retry: policy.clone(),
        ..Default::default()
    });
    p.host.borrow_mut().net.set_fault_plan(
        "api.test",
        FaultPlan::seeded(42).fail_first(2, Fault::Timeout),
    );
    behind_fetch(&mut p, "http://api.test/a.xml");
    p.run_until_idle().unwrap();

    let s = stats(&p);
    assert_eq!(s.attempts, 3, "exactly three attempts");
    assert_eq!(s.retries, 2);
    assert_eq!(s.timeouts, 2);
    assert_eq!(s.completions, 1);
    assert_eq!(s.stale_events + s.error_events, 0);
    assert_eq!(
        p.serialize_page().matches("<li class=\"done\">").count(),
        1,
        "one readyState-4 delivery"
    );

    // the backoff function is pure, so the final virtual timestamp is
    // predictable to the millisecond: two 1000 ms client deadlines, the two
    // backoff delays for call #1, and the 25 ms latency of the success
    let expected = 1000 + policy.backoff_delay(1, 1) + 1000 + policy.backoff_delay(2, 1) + 25;
    assert_eq!(p.host.borrow().tasks.now(), expected);
}

/// Runs the permanently-down scenario and returns everything observable.
fn stale_scenario() -> (String, String, u64) {
    let mut p = plugin_with(RecoveryConfig::default());
    // prime the stale cache with one good fetch on the host
    p.eval(r#"browser:httpGet("http://api.test/data.xml")"#)
        .unwrap();
    // then the host goes down for good
    p.host
        .borrow_mut()
        .net
        .set_fault_plan("api.test", FaultPlan::always_down(7));
    behind_fetch(&mut p, "http://api.test/live.xml");
    p.run_until_idle().unwrap();
    let now = p.host.borrow().tasks.now();
    (p.serialize_page(), format!("{:?}", stats(&p)), now)
}

#[test]
fn down_host_serves_stale_and_the_listener_observes_it() {
    let (page, stats_dbg, _now) = stale_scenario();
    // the stale event carried the URL and the cached payload (host-level
    // fallback: data.xml's body answers for live.xml)
    assert!(
        page.contains("stale:http://api.test/live.xml:data.xml"),
        "{page}"
    );
    assert!(
        !page.contains("<li class=\"done\">"),
        "no completion was delivered"
    );
    assert!(stats_dbg.contains("stale_served: 1"), "{stats_dbg}");
    assert!(stats_dbg.contains("stale_events: 1"), "{stats_dbg}");
    assert!(stats_dbg.contains("breaker_opens: 1"), "{stats_dbg}");
}

#[test]
fn failure_schedules_are_reproducible_byte_for_byte() {
    assert_eq!(stale_scenario(), stale_scenario());
}

#[test]
fn breaker_fast_fails_then_half_opens_and_heals() {
    let mut p = plugin_with(RecoveryConfig {
        retry: RetryPolicy {
            timeout_ms: 100,
            max_attempts: 2,
            backoff_base_ms: 10,
            backoff_factor: 2,
            backoff_cap_ms: 100,
            ..Default::default()
        }
        .no_jitter(),
        breaker_failure_threshold: 1,
        breaker_open_ms: 500,
        ..Default::default()
    });
    p.host
        .borrow_mut()
        .net
        .set_fault_plan("api.test", FaultPlan::always_down(3));
    behind_fetch(&mut p, "http://api.test/x.xml");
    p.run_until_idle().unwrap();
    let s = stats(&p);
    assert_eq!(s.timeouts, 1, "only the first attempt touched the network");
    assert!(
        s.breaker_fast_fails >= 1,
        "retry was refused without a fetch: {s:?}"
    );
    assert_eq!(s.error_events, 1, "no stale data: the error event fired");
    assert!(
        p.serialize_page().contains("error:"),
        "listener observed it"
    );
    assert!(matches!(
        p.host.borrow().recovery.breaker_state("api.test"),
        BreakerState::Open { .. }
    ));
    let out = p.eval(r#"browser:breakerState("api.test")"#).unwrap();
    assert_eq!(p.render(&out), "open");

    // the host heals; once the open window expires the next call is the
    // half-open probe, and its success closes the breaker
    p.host.borrow_mut().net.clear_fault_plan("api.test");
    p.host.borrow_mut().tasks.advance(600);
    behind_fetch(&mut p, "http://api.test/y.xml");
    p.run_until_idle().unwrap();
    let s = stats(&p);
    assert_eq!(s.breaker_half_opens, 1);
    assert_eq!(s.breaker_closes, 1);
    assert_eq!(s.completions, 1);
    let out = p.eval(r#"browser:breakerState("api.test")"#).unwrap();
    assert_eq!(p.render(&out), "closed");
}

#[test]
fn fetch_status_exposes_the_counters() {
    let mut p = plugin_with(RecoveryConfig::default());
    p.host.borrow_mut().net.set_fault_plan(
        "api.test",
        FaultPlan::seeded(1).fail_first(1, Fault::Timeout),
    );
    behind_fetch(&mut p, "http://api.test/s.xml");
    p.run_until_idle().unwrap();
    let get = |p: &mut Plugin, attr: &str| {
        let out = p
            .eval(&format!("string(browser:fetchStatus()/@{attr})"))
            .unwrap();
        p.render(&out)
    };
    assert_eq!(get(&mut p, "attempts"), "2");
    assert_eq!(get(&mut p, "retries"), "1");
    assert_eq!(get(&mut p, "timeouts"), "1");
    assert_eq!(get(&mut p, "completions"), "1");
    let out = p
        .eval(r#"string(browser:fetchStatus()/host[@name="api.test"]/@breaker)"#)
        .unwrap();
    assert_eq!(p.render(&out), "closed");
}

proptest! {
    /// Under ANY seeded fault plan, every `behind` call delivers exactly one
    /// outcome — a completion, a stale event or an error event — never both
    /// and never duplicates, and the event-loop drain always terminates.
    #[test]
    fn every_behind_call_delivers_exactly_one_outcome(
        seed in 0u64..1_000_000,
        timeout_permille in 0u16..500,
        error_permille in 0u16..400,
        truncate_permille in 0u16..300,
    ) {
        let mut p = plugin_with(RecoveryConfig {
            retry: RetryPolicy {
                timeout_ms: 50,
                max_attempts: 3,
                backoff_base_ms: 10,
                backoff_factor: 2,
                backoff_cap_ms: 200,
                ..Default::default()
            },
            ..Default::default()
        });
        p.host.borrow_mut().net.set_fault_plan(
            "api.test",
            FaultPlan::seeded(seed ^ env_seed())
                .with_timeout_permille(timeout_permille)
                .with_error_permille(error_permille)
                .with_truncate_permille(truncate_permille),
        );
        for i in 0..5u32 {
            let before = stats(&p);
            // distinct URLs: successful XML fetches are cached forever by
            // URL, and a cache hit would bypass the network entirely
            behind_fetch(&mut p, &format!("http://api.test/r{i}.xml"));
            let drained = p.run_until_idle();
            prop_assert!(drained.is_ok(), "drain failed: {:?}", drained);
            let after = stats(&p);
            let outcomes = (after.completions - before.completions)
                + (after.stale_events - before.stale_events)
                + (after.error_events - before.error_events);
            prop_assert_eq!(
                outcomes, 1,
                "call {} delivered {} outcomes: {:?}",
                i, outcomes, after
            );
        }
    }
}
