//! Plug-in integration tests: whole pages loaded and driven through the
//! Figure 1 lifecycle.

use xqib_browser::events::DomEvent;
use xqib_browser::net::Response;
use xqib_core::plugin::{Plugin, PluginConfig};
use xqib_core::samples;
use xqib_dom::QName;
use xqib_xdm::Item;
use xqib_xquery::functions::native;

fn plugin() -> Plugin {
    Plugin::new(PluginConfig::default())
}

#[test]
fn hello_world_alerts_on_load() {
    let mut p = plugin();
    p.load_page(samples::HELLO_WORLD).unwrap();
    assert_eq!(p.alerts(), vec!["Hello, World!".to_string()]);
}

#[test]
fn script_extraction_ignores_javascript() {
    let mut p = plugin();
    let js = p
        .load_page(
            r#"<html><head>
            <script type="text/javascript">var x = 1;</script>
            <script type="text/xquery">browser:alert("xq ran")</script>
            </head><body/></html>"#,
        )
        .unwrap();
    assert_eq!(js, vec!["var x = 1;".to_string()]);
    assert_eq!(p.alerts().len(), 1);
}

#[test]
fn page_updates_apply_to_live_dom() {
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery">
        insert node <p id="new">inserted</p> into //body[1]
        </script></head><body/></html>"#,
    )
    .unwrap();
    assert!(p.serialize_page().contains("<p id=\"new\">inserted</p>"));
    assert!(p.element_by_id("new").is_some());
}

#[test]
fn click_event_runs_xquery_listener() {
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:onclick($evt, $obj) {
            insert node <li>clicked: {data($evt/type)} button {data($evt/button)}</li>
            into //ul[@id="log"]
        };
        on event "onclick" at //input[@id="b"] attach listener local:onclick
        ]]></script></head>
        <body><input id="b" type="button"/><ul id="log"/></body></html>"#,
    )
    .unwrap();
    let button = p.element_by_id("b").unwrap();
    p.click(button).unwrap();
    p.click(button).unwrap();
    let page = p.serialize_page();
    assert_eq!(page.matches("clicked: onclick button 1").count(), 2);
}

#[test]
fn listener_receives_button_info() {
    // §4.3.2: left vs right mouse button
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:l($evt, $obj) {
            if ($evt/button = 1)
            then insert node <p>left</p> into //body[1]
            else insert node <p>right</p> into //body[1]
        };
        on event "onclick" at //input attach listener local:l
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    p.dispatch(&DomEvent::new("onclick", b).with_button(1))
        .unwrap();
    p.dispatch(&DomEvent::new("onclick", b).with_button(2))
        .unwrap();
    let page = p.serialize_page();
    assert!(page.contains("<p>left</p>"));
    assert!(page.contains("<p>right</p>"));
}

#[test]
fn detach_listener_stops_invocations() {
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:l($evt, $obj) {
            insert node <p>hit</p> into //body[1]
        };
        on event "onclick" at //input attach listener local:l
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    p.click(b).unwrap();
    p.eval("on event \"onclick\" at //input detach listener local:l")
        .unwrap();
    p.click(b).unwrap();
    assert_eq!(p.serialize_page().matches("<p>hit</p>").count(), 1);
}

#[test]
fn trigger_event_simulates_click() {
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:l($evt, $obj) {
            insert node <p>triggered</p> into //body[1]
        };
        on event "onclick" at //input[@id="myButton"] attach listener local:l;
        trigger event "onclick" at //input[@id="myButton"]
        ]]></script></head><body><input id="myButton"/></body></html>"#,
    )
    .unwrap();
    assert!(p.serialize_page().contains("<p>triggered</p>"));
}

#[test]
fn attribute_listener_with_value_binding() {
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:echo($v) {
            replace value of node //span[@id="out"] with $v
        };
        1
        ]]></script></head>
        <body><input id="t" value="" onkeyup="local:echo($value)"/>
        <span id="out"/></body></html>"#,
    )
    .unwrap();
    let input = p.element_by_id("t").unwrap();
    // the host (user typing) updates the value attribute, then fires keyup
    {
        let store = p.store.clone();
        let mut s = store.borrow_mut();
        s.doc_mut(input.doc)
            .set_attribute(input.node, QName::local("value"), "Mad")
            .unwrap();
    }
    p.keyup(input).unwrap();
    assert!(p.serialize_page().contains("<span id=\"out\">Mad</span>"));
}

#[test]
fn hof_registration_works_like_syntax() {
    // §5.1: the Zorba-era workaround via browser:addEventListener
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:l($evt, $obj) {
            insert node <p>hof</p> into //body[1]
        };
        browser:addEventListener(//input, "onclick", "local:l")
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    p.click(b).unwrap();
    assert!(p.serialize_page().contains("<p>hof</p>"));
}

#[test]
fn window_view_and_status_writeback() {
    // §4.2.1: replace value of node browser:self()/status with "Welcome"
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery">
        replace value of node browser:self()/status with "Welcome"
        </script></head><body/></html>"#,
    )
    .unwrap();
    let host = p.host.borrow();
    let w = host.page_window;
    assert_eq!(host.browser.window(w).status, "Welcome");
}

#[test]
fn href_writeback_navigates() {
    let mut p = plugin();
    p.load_page("<html><body/></html>").unwrap();
    p.eval(
        r#"replace value of node browser:self()/location/href
           with "http://www.dbis.ethz.ch""#,
    )
    .unwrap();
    let host = p.host.borrow();
    let w = host.page_window;
    assert_eq!(
        host.browser.window(w).location.href,
        "http://www.dbis.ethz.ch"
    );
}

#[test]
fn navigator_and_screen_accessible() {
    let mut p = plugin();
    p.load_page(samples::HELLO_WORLD).unwrap();
    let out = p.eval("string(browser:navigator()/appName)").unwrap();
    assert_eq!(p.render(&out), "Microsoft Internet Explorer");
    let out = p.eval("number(browser:screen()/height)").unwrap();
    assert_eq!(p.render(&out), "1024");
    // §4.2.4 sniffing sample picks the IE branch
    p.eval(samples::NAVIGATOR_SNIFF_SCRIPT).unwrap();
    assert!(p.alerts().contains(&"You are running IE".to_string()));
}

#[test]
fn frames_visible_by_name_same_origin_only() {
    let mut p = plugin();
    {
        let mut host = p.host.borrow_mut();
        let top = host.browser.top();
        host.browser
            .create_frame(top, "leftframe", "http://www.xqib.org/left");
        host.browser
            .create_frame(top, "evilframe", "http://evil.example/");
    }
    p.load_page(samples::HELLO_WORLD).unwrap();
    let out = p
        .eval("count(browser:top()//window[@name=\"leftframe\"])")
        .unwrap();
    assert_eq!(p.render(&out), "1");
    // the cross-origin frame materialises but exposes nothing
    let out = p
        .eval("count(browser:top()//window[@name=\"evilframe\"])")
        .unwrap();
    assert_eq!(p.render(&out), "0", "cross-origin frame has no name");
    // `//window` from the top element finds *descendant* windows only
    let out = p.eval("count(browser:top()//window)").unwrap();
    assert_eq!(
        p.render(&out),
        "2",
        "both frames materialise as window nodes"
    );
}

#[test]
fn cross_origin_document_is_empty() {
    let mut p = plugin();
    let evil_doc = {
        let mut host = p.host.borrow_mut();
        let top = host.browser.top();
        let evil = host
            .browser
            .create_frame(top, "evil", "http://evil.example/");
        drop(host);
        let doc = xqib_dom::parse_document("<html><body>secret</body></html>").unwrap();
        let id = p.store.borrow_mut().add_document(doc, None);
        p.host.borrow_mut().browser.set_document(evil, id);
        id
    };
    let _ = evil_doc;
    p.load_page(samples::HELLO_WORLD).unwrap();
    let out = p
        .eval("count(browser:document(browser:top()//window[2]))")
        .unwrap();
    assert_eq!(p.render(&out), "0");
}

#[test]
fn fn_doc_blocked_for_unfetched_urls() {
    let mut p = plugin();
    p.load_page(samples::HELLO_WORLD).unwrap();
    let err = p.eval("doc('http://anything.example/x.xml')").unwrap_err();
    assert_eq!(err.code, "XQIB0001");
}

#[test]
fn rest_get_fetches_and_caches() {
    let mut p = plugin();
    p.host
        .borrow_mut()
        .net
        .register("http://data.example/", 15, |_req| {
            Response::ok("<items><item>a</item><item>b</item></items>")
        });
    p.load_page(samples::HELLO_WORLD).unwrap();
    let out = p
        .eval("count(browser:httpGet('http://data.example/items.xml')//item)")
        .unwrap();
    assert_eq!(p.render(&out), "2");
    // second call answers from cache: no new network request
    let before = p.host.borrow().net.stats.requests;
    let out = p
        .eval("count(browser:httpGet('http://data.example/items.xml')//item)")
        .unwrap();
    assert_eq!(p.render(&out), "2");
    assert_eq!(p.host.borrow().net.stats.requests, before);
    // and fn:doc now resolves the cached URL (browser profile)
    let out = p
        .eval("count(doc('http://data.example/items.xml')//item)")
        .unwrap();
    assert_eq!(p.render(&out), "2");
}

#[test]
fn behind_async_call_with_ready_states() {
    // §4.4 suggest page
    let mut config = PluginConfig::default();
    config
        .modules
        .register_source(
            r#"module namespace ab = "http://example.com";
               declare function ab:unused() { () };"#,
        )
        .unwrap();
    let mut p = Plugin::new(config);
    // ab:getHint as a native web-service stub backed by the virtual network
    p.host
        .borrow_mut()
        .net
        .register("http://example.com/", 25, |req| {
            let q = req.query_param("q").unwrap_or_default();
            Response::ok(format!("<hints>{q}ison, {q}ilyn</hints>"))
        });
    {
        let host = p.host.clone();
        p.ctx.register_native(
            QName::ns("http://example.com", "getHint"),
            1,
            native(move |ctx, args| {
                let q = match args[0].first() {
                    Some(i) => i.string_value(&ctx.store.borrow()),
                    None => String::new(),
                };
                let url = format!("http://example.com/getHint?q={q}");
                let result = xqib_core::bindings::http_get(ctx, &host, &url)?;
                // return the hint text
                Ok(vec![Item::string(match result.first() {
                    Some(i) => i.string_value(&ctx.store.borrow()),
                    None => String::new(),
                })])
            }),
        );
    }
    p.load_page(samples::SUGGEST_PAGE).unwrap();
    let input = p.element_by_id("text1").unwrap();
    {
        let mut s = p.store.borrow_mut();
        s.doc_mut(input.doc)
            .set_attribute(input.node, QName::local("value"), "Mad")
            .unwrap();
    }
    p.keyup(input).unwrap();
    // the call is asynchronous: nothing yet
    assert!(!p.serialize_page().contains("Madison"));
    let tasks = p.run_until_idle().unwrap();
    assert!(tasks >= 1);
    assert!(p.serialize_page().contains("Madison, Madilyn"));
}

#[test]
fn css_store_vs_attribute_ablation() {
    // with the CSS store (plug-in default), styles stay out of the DOM
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery">
        set style "color" of //div[@id="d"] to "red"
        </script></head><body><div id="d"/></body></html>"#,
    )
    .unwrap();
    assert!(!p.serialize_page().contains("style="));
    let d = p.element_by_id("d").unwrap();
    assert_eq!(p.host.borrow().css.get(d, "color"), Some("red"));
    let out = p.eval("get style \"color\" of //div[@id=\"d\"]").unwrap();
    assert_eq!(p.render(&out), "red");

    // without the store, the engine falls back to the style attribute
    let mut p2 = Plugin::new(PluginConfig {
        use_css_store: false,
        ..Default::default()
    });
    p2.load_page(
        r#"<html><head><script type="text/xquery">
        set style "color" of //div[@id="d"] to "red"
        </script></head><body><div id="d"/></body></html>"#,
    )
    .unwrap();
    assert!(p2.serialize_page().contains("style=\"color: red\""));
}

#[test]
fn shopping_cart_xquery_only() {
    // §6.3 end-to-end: catalogue rendered, click adds to cart
    let mut p = plugin();
    p.host
        .borrow_mut()
        .net
        .register("http://shop.example/", 10, |_req| {
            Response::ok(
                "<products><product><name>Laptop</name><price>999</price></product>\
             <product><name>Mouse</name><price>10</price></product></products>",
            )
        });
    p.load_page(samples::SHOPPING_CART_XQUERY).unwrap();
    let page = p.serialize_page();
    assert!(page.contains("Laptop"), "catalogue rendered: {page}");
    assert!(page.contains("Mouse"));
    let button = p.element_by_id("Laptop").unwrap();
    p.click(button).unwrap();
    assert!(p
        .serialize_page()
        .contains("<div id=\"shoppingcart\"><p>Laptop</p></div>"));
    // buying another prepends
    let mouse = p.element_by_id("Mouse").unwrap();
    p.click(mouse).unwrap();
    assert!(p
        .serialize_page()
        .contains("<div id=\"shoppingcart\"><p>Mouse</p><p>Laptop</p></div>"));
}

#[test]
fn multiplication_table_renders_and_highlights() {
    let mut p = plugin();
    p.load_page(samples::MULTIPLICATION_TABLE_XQUERY).unwrap();
    let page = p.serialize_page();
    assert!(page.contains("<td id=\"c3-4\">12</td>"), "{page}");
    assert!(page.contains("<td id=\"c10-10\">100</td>"));
    assert!(page.contains("<caption>Multiplication table</caption>"));
    let cell = p.element_by_id("c3-4").unwrap();
    p.click(cell).unwrap();
    assert_eq!(
        p.host.borrow().css.get(cell, "background-color"),
        Some("yellow")
    );
}

#[test]
fn https_warning_flwor() {
    // §4.2.1: warn on every non-https frame
    let mut p = plugin();
    {
        let mut host = p.host.borrow_mut();
        let top = host.browser.top();
        let frame = host
            .browser
            .create_frame(top, "child", "http://www.xqib.org/child");
        drop(host);
        let doc = xqib_dom::parse_document("<html><body>child</body></html>").unwrap();
        let id = p.store.borrow_mut().add_document(doc, None);
        p.host.borrow_mut().browser.set_document(frame, id);
    }
    p.load_page("<html><body>main</body></html>").unwrap();
    p.eval(samples::HTTPS_WARNING_SCRIPT).unwrap();
    // `browser:top()//window` selects *descendant* windows (XPath `//`
    // excludes the start node), so only the frame is warned — the paper's
    // listing verbatim
    assert!(!p.serialize_page().contains("Warning: this page"));
    let host = p.host.borrow();
    let frame_doc = {
        let w = host.browser.find_by_name("child").unwrap();
        host.browser.window(w).document.unwrap()
    };
    let store = p.store.borrow();
    let frame_xml = xqib_dom::serialize::serialize_document(store.doc(frame_doc));
    assert!(frame_xml.contains("Warning: this page"));
}

#[test]
fn external_js_listener_coexists_on_same_event() {
    // §6.2: JS and XQuery listen to the SAME event on the SAME DOM
    use std::cell::RefCell;
    use std::rc::Rc;
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:xq($evt, $obj) {
            insert node <p id="from-xq">xq</p> into //body[1]
        };
        on event "onclick" at //input attach listener local:xq
        ]]></script></head><body><input id="search"/></body></html>"#,
    )
    .unwrap();
    let hits = Rc::new(RefCell::new(0));
    let hits2 = hits.clone();
    let input = p.element_by_id("search").unwrap();
    p.register_external_listener(input, "onclick", move |_ev| {
        *hits2.borrow_mut() += 1;
    });
    p.click(input).unwrap();
    assert_eq!(*hits.borrow(), 1, "the JS listener ran");
    assert!(
        p.serialize_page().contains("from-xq"),
        "the XQuery listener ran"
    );
}

#[test]
fn history_functions() {
    let mut p = plugin();
    p.load_page(samples::HELLO_WORLD).unwrap();
    {
        let mut host = p.host.borrow_mut();
        let w = host.page_window;
        host.browser.navigate(w, "http://www.xqib.org/page2");
    }
    p.eval("browser:historyBack()").unwrap();
    assert_eq!(
        p.host
            .borrow()
            .browser
            .window(p.page_window())
            .location
            .href,
        "http://www.xqib.org/index.html"
    );
    p.eval("browser:historyForward()").unwrap();
    assert_eq!(
        p.host
            .borrow()
            .browser
            .window(p.page_window())
            .location
            .href,
        "http://www.xqib.org/page2"
    );
}

#[test]
fn prompt_and_confirm_roundtrip() {
    let mut p = plugin();
    p.host
        .borrow_mut()
        .browser
        .prompt_answers
        .push("Ghislain".into());
    p.host.borrow_mut().browser.confirm_answers.push(false);
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        browser:alert(concat("Hi ", browser:prompt("name?"))),
        if (browser:confirm("sure?")) then browser:alert("yes") else browser:alert("no")
        ]]></script></head><body/></html>"#,
    )
    .unwrap();
    let alerts = p.alerts();
    assert_eq!(alerts, vec!["Hi Ghislain".to_string(), "no".to_string()]);
}
