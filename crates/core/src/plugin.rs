//! The plug-in proper: page lifecycle, event dispatch loop and the
//! asynchronous `behind` bridge (Figure 1 of the paper).
//!
//! Listener invocations are *fault-isolated*: a panicking or erroring
//! listener is caught at the dispatch boundary, surfaces as a synthetic
//! `error` DOM event, and repeated failures quarantine the listener
//! (see [`xqib_browser::quarantine`]) — one bad handler cannot wedge the
//! single event loop of Figure 1.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use xqib_browser::bom::Browser;
use xqib_browser::events::{DispatchStep, DomEvent, EventSystem, ListenerId};
use xqib_browser::{
    CssStore, EventLoop, IsolationConfig, ListenerQuarantine, RecoveryConfig, RecoveryState,
    VirtualNetwork, WindowId,
};
use xqib_dom::{
    name::{BROWSER_NS, LOCAL_NS},
    DocId, NodeKind, NodeRef, QName, SharedStore,
};
use xqib_xdm::{Item, Sequence, XdmError, XdmResult};
use xqib_xquery::ast::{Expr, MainModule};
use xqib_xquery::context::{DynamicContext, EngineHooks, StaticContext};
use xqib_xquery::functions::native;
use xqib_xquery::plan::lower;
use xqib_xquery::plancache::{self, PlanCache};
use xqib_xquery::runtime::{self, ModuleRegistry};

use crate::bindings;
use crate::window_xml::{self, WindowView};

/// A host-language (JavaScript) listener callback.
pub type ExternalListener = Rc<RefCell<dyn FnMut(&DomEvent)>>;

/// What a listener handle resolves to.
#[derive(Clone)]
pub enum ListenerKind {
    /// An XQuery function registered via `attach listener` or
    /// `browser:addEventListener` — invoked as `f($evt, $obj)` (§4.3.1).
    XQuery(QName),
    /// Inline XQuery from an `onclick="…"`-style attribute; evaluated with
    /// the target as context item, `$event` and `$value` bound.
    XQueryInline(Rc<Expr>),
    /// A host-language listener (the minijs baseline of §6.2): shares the
    /// DOM and dispatch machinery with XQuery listeners.
    External(ExternalListener),
}

/// Tasks on the plug-in's event loop.
pub enum PluginTask {
    /// Dispatch a DOM event through capture/target/bubble.
    Dispatch(DomEvent),
    /// An asynchronous `behind` call (§4.4): evaluate `call` in `env`, then
    /// invoke `listener($readyState, $result)`. Failed attempts are
    /// rescheduled with exponential backoff up to the retry policy's
    /// `max_attempts`; `call_id` keys the deterministic backoff jitter.
    Behind {
        call: Rc<Expr>,
        env: Vec<(QName, Sequence)>,
        listener: QName,
        attempt: u32,
        call_id: u64,
    },
}

/// Mutable host state shared between the plug-in, its hooks and the
/// `browser:` native functions.
pub struct HostState {
    pub browser: Browser,
    pub events: EventSystem,
    pub css: CssStore,
    pub net: VirtualNetwork,
    pub listeners: HashMap<ListenerId, ListenerKind>,
    /// stable handle per XQuery listener name (so detach finds attach's id)
    xq_ids: HashMap<String, ListenerId>,
    /// all window views materialised so far (write-back set)
    pub views: Vec<WindowView>,
    /// window-element node → (window, accessible)
    pub window_index: HashMap<NodeRef, (WindowId, bool)>,
    pub tasks: EventLoop<PluginTask>,
    /// route `set style`/`get style` to the CSS store (`true`, §4.5 design)
    /// or fall back to the `style` attribute (`false`) — the ablation knob.
    pub use_css_store: bool,
    pub page_window: WindowId,
    /// accumulated simulated network latency (ms)
    pub total_latency_ms: u64,
    /// retry policy, circuit breakers, stale cache and recovery counters
    pub recovery: RecoveryState,
    /// per-listener fault containment state and counters
    pub quarantine: ListenerQuarantine,
    /// isolation knobs (quarantine thresholds, listener fuel budget)
    pub isolation: IsolationConfig,
    /// monotonically increasing id handed to each `behind` call (jitter key)
    next_behind_id: u64,
}

impl HostState {
    /// Resolves (or creates) the stable listener handle for an XQuery
    /// listener function name.
    pub fn xq_listener_id(&mut self, name: &QName) -> ListenerId {
        let key = format!("{}|{}", name.ns_or_empty(), name.local);
        if let Some(&id) = self.xq_ids.get(&key) {
            return id;
        }
        let id = self.events.fresh_listener_id();
        self.xq_ids.insert(key, id);
        self.listeners
            .insert(id, ListenerKind::XQuery(name.clone()));
        id
    }

    /// Registers a view for write-back and indexes its window elements.
    pub fn adopt_view(&mut self, view: WindowView) {
        for w in &view.window_elems {
            self.window_index.insert(w.node, (w.window, w.accessible));
        }
        self.views.push(view);
    }
}

/// Plug-in configuration.
pub struct PluginConfig {
    /// URL of the page window.
    pub url: String,
    /// Window name.
    pub window_name: String,
    /// Library modules available to `import module` (§3.4).
    pub modules: ModuleRegistry,
    /// Use the CSS store (true) or the style-attribute fallback (false).
    pub use_css_store: bool,
    /// Retry/timeout/backoff policy and circuit-breaker settings for the
    /// asynchronous network path.
    pub recovery: RecoveryConfig,
    /// Listener fault-isolation settings: quarantine threshold/window and
    /// the per-invocation evaluation fuel budget.
    pub isolation: IsolationConfig,
}

impl Default for PluginConfig {
    fn default() -> Self {
        PluginConfig {
            url: "http://www.xqib.org/index.html".to_string(),
            window_name: "top_window".to_string(),
            modules: ModuleRegistry::new(),
            use_css_store: true,
            recovery: RecoveryConfig::default(),
            isolation: IsolationConfig::default(),
        }
    }
}

/// Eval-snippet plans kept per plug-in (REPL-ish traffic: small).
const EVAL_PLAN_CAPACITY: usize = 32;

/// The XQIB plug-in instance for one page.
pub struct Plugin {
    pub store: SharedStore,
    pub host: Rc<RefCell<HostState>>,
    pub ctx: DynamicContext,
    /// compiled page scripts, in document order
    pub scripts: Vec<MainModule>,
    pub page_doc: Option<DocId>,
    modules: ModuleRegistry,
    /// Compiled plans for [`Plugin::eval`] snippets, shared with the
    /// `browser:planCache()` introspection function.
    plans: Rc<RefCell<PlanCache>>,
    /// Bumped whenever the page scripts are (re)compiled: eval snippets
    /// merge the page's function library into their static context, so a
    /// cached snippet plan must not survive a script reload.
    script_version: Rc<Cell<u64>>,
}

/// The [`EngineHooks`] bridge: routes the paper's grammar extensions into
/// the host state.
struct Hooks {
    host: Rc<RefCell<HostState>>,
}

impl EngineHooks for Hooks {
    fn attach_listener(
        &self,
        ctx: &mut DynamicContext,
        event: &str,
        targets: &[Item],
        listener: &QName,
    ) -> XdmResult<()> {
        let mut host = self.host.borrow_mut();
        let id = host.xq_listener_id(listener);
        for t in targets {
            let node = expect_node(ctx, t, "event target")?;
            host.events.add_listener(node, event, id, false);
        }
        Ok(())
    }

    fn detach_listener(
        &self,
        ctx: &mut DynamicContext,
        event: &str,
        targets: &[Item],
        listener: &QName,
    ) -> XdmResult<()> {
        let mut host = self.host.borrow_mut();
        let id = host.xq_listener_id(listener);
        for t in targets {
            let node = expect_node(ctx, t, "event target")?;
            host.events.remove_listener(node, event, id);
        }
        Ok(())
    }

    fn trigger_event(
        &self,
        ctx: &mut DynamicContext,
        event: &str,
        targets: &[Item],
    ) -> XdmResult<()> {
        for t in targets {
            let node = expect_node(ctx, t, "event target")?;
            let ev = DomEvent::new(event, node);
            dispatch_event_inner(ctx, &self.host, &ev)?;
        }
        Ok(())
    }

    fn attach_behind(
        &self,
        ctx: &mut DynamicContext,
        _event: &str,
        call: &Expr,
        listener: &QName,
    ) -> XdmResult<()> {
        let env = ctx.snapshot_visible_vars();
        let mut host = self.host.borrow_mut();
        host.next_behind_id += 1;
        let call_id = host.next_behind_id;
        host.tasks.schedule(
            0,
            PluginTask::Behind {
                call: Rc::new(call.clone()),
                env,
                listener: listener.clone(),
                attempt: 1,
                call_id,
            },
        );
        Ok(())
    }

    fn set_style(
        &self,
        _ctx: &mut DynamicContext,
        target: NodeRef,
        prop: &str,
        value: &str,
    ) -> XdmResult<bool> {
        let mut host = self.host.borrow_mut();
        if host.use_css_store {
            host.css.set(target, prop, value);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn get_style(
        &self,
        _ctx: &mut DynamicContext,
        target: NodeRef,
        prop: &str,
    ) -> XdmResult<Option<Option<String>>> {
        let host = self.host.borrow();
        if host.use_css_store {
            Ok(Some(host.css.get(target, prop).map(|s| s.to_string())))
        } else {
            Ok(None)
        }
    }
}

fn expect_node(ctx: &DynamicContext, item: &Item, what: &str) -> XdmResult<NodeRef> {
    match item {
        Item::Node(n) => Ok(*n),
        Item::Atomic(a) => Err(XdmError::type_error(format!(
            "{what} must be a node, got {}",
            a.type_name()
        ))),
    }
    .inspect(|_n| {
        let _ = ctx; // reserved for future checks
    })
}

impl Plugin {
    /// Creates a plug-in with a fresh store and a single browser window.
    pub fn new(config: PluginConfig) -> Self {
        let store = xqib_dom::store::shared_store();
        let browser = Browser::new(&config.window_name, &config.url);
        let page_window = browser.top();
        let host = Rc::new(RefCell::new(HostState {
            browser,
            events: EventSystem::new(),
            css: CssStore::new(),
            net: VirtualNetwork::new(),
            listeners: HashMap::new(),
            xq_ids: HashMap::new(),
            views: Vec::new(),
            window_index: HashMap::new(),
            tasks: EventLoop::new(),
            use_css_store: config.use_css_store,
            page_window,
            total_latency_ms: 0,
            recovery: RecoveryState::new(config.recovery),
            quarantine: ListenerQuarantine::new(&config.isolation),
            isolation: config.isolation,
            next_behind_id: 0,
        }));
        let sctx = Rc::new(StaticContext {
            browser_profile: true,
            ..Default::default()
        });
        let mut ctx = DynamicContext::new(store.clone(), sctx);
        ctx.hooks = Some(Rc::new(Hooks { host: host.clone() }));
        bindings::install(&mut ctx, host.clone());
        let plans = Rc::new(RefCell::new(PlanCache::new(EVAL_PLAN_CAPACITY)));
        let script_version = Rc::new(Cell::new(0u64));
        {
            // browser:planCache() → one element carrying the cache counters
            let p = plans.clone();
            let v = script_version.clone();
            ctx.register_native(
                QName::ns(BROWSER_NS, "planCache"),
                0,
                native(move |ctx, _args| {
                    let cache = p.borrow();
                    let s = cache.stats();
                    let doc_id = ctx.construction_doc;
                    let mut store = ctx.store.borrow_mut();
                    let doc = store.doc_mut(doc_id);
                    let elem = doc.create_element(QName::local("plan-cache"));
                    let counters: [(&str, u64); 8] = [
                        ("hits", s.hits),
                        ("misses", s.misses),
                        ("evictions", s.evictions),
                        ("invalidations", s.invalidations),
                        ("size", cache.len() as u64),
                        ("capacity", cache.capacity() as u64),
                        ("epoch", cache.epoch()),
                        ("script-version", v.get()),
                    ];
                    for (name, val) in counters {
                        doc.set_attribute(elem, QName::local(name), val.to_string())
                            .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                    }
                    Ok(vec![Item::Node(NodeRef::new(doc_id, elem))])
                }),
            );
        }
        Plugin {
            store,
            host,
            ctx,
            scripts: Vec::new(),
            page_doc: None,
            modules: config.modules,
            plans,
            script_version,
        }
    }

    /// Loads an XHTML page: parses it into the live DOM, extracts and runs
    /// the XQuery scripts, registers attribute listeners. Returns the list
    /// of JavaScript script bodies found (for an external JS host, §6.2).
    pub fn load_page(&mut self, html: &str) -> XdmResult<Vec<String>> {
        let doc =
            xqib_dom::parse_document(html).map_err(|e| XdmError::new("XQIB0004", e.to_string()))?;
        let page_window = self.page_window();
        let url = {
            let host = self.host.borrow();
            host.browser.window(page_window).location.href.clone()
        };
        let doc_id = self.store.borrow_mut().add_document(doc, Some(&url));
        self.page_doc = Some(doc_id);
        self.host
            .borrow_mut()
            .browser
            .set_document(page_window, doc_id);

        // context item = the page document (§4.2.3: "it is the context item")
        let root = self.store.borrow().root(doc_id);
        self.ctx.focus = Some(xqib_xquery::context::Focus {
            item: Item::Node(root),
            position: 1,
            size: 1,
        });

        // collect scripts and attribute listeners
        let mut xq_sources: Vec<String> = Vec::new();
        let mut js_sources: Vec<String> = Vec::new();
        let mut attr_listeners: Vec<(NodeRef, String, String)> = Vec::new();
        {
            let store = self.store.borrow();
            let doc = store.doc(doc_id);
            for node in doc.descendants_or_self(doc.root()) {
                let NodeKind::Element { name, .. } = doc.kind(node) else {
                    continue;
                };
                if &*name.local == "script" {
                    let ty = doc
                        .get_attribute(node, None, "type")
                        .unwrap_or("text/javascript");
                    let body = doc.string_value(node);
                    if ty.contains("xquery") {
                        xq_sources.push(body);
                    } else if ty.contains("javascript") {
                        js_sources.push(body);
                    }
                    continue;
                }
                for &attr in doc.attributes(node) {
                    if let NodeKind::Attribute { name, value } = doc.kind(attr) {
                        if name.local.starts_with("on") && !value.trim().is_empty() {
                            attr_listeners.push((
                                NodeRef::new(doc_id, node),
                                name.local.to_string(),
                                value.clone(),
                            ));
                        }
                    }
                }
            }
        }

        // compile every script, merge their static contexts
        let mut merged = StaticContext {
            browser_profile: true,
            ..Default::default()
        };
        let mut modules_compiled = Vec::new();
        for src in &xq_sources {
            let q = runtime::compile_with(src, &self.modules, true)?;
            for f in q.sctx.functions.values() {
                merged.declare_function((**f).clone());
            }
            modules_compiled.push(q.module.clone());
        }
        let merged = Rc::new(merged);
        self.ctx.sctx = merged.clone();

        // inline attribute listeners (parsed against the merged context)
        for (target, event_attr, code) in attr_listeners {
            // `onclick` attribute → `onclick` event type
            match xqib_xquery::parser::parse_expr_str(&code) {
                Ok(expr) => {
                    let mut host = self.host.borrow_mut();
                    let id = host.events.fresh_listener_id();
                    host.listeners
                        .insert(id, ListenerKind::XQueryInline(Rc::new(expr)));
                    host.events.add_listener(target, &event_attr, id, false);
                }
                Err(_) => {
                    // not XQuery — presumably a JavaScript handler for the
                    // co-existing JS engine; leave it to the external host
                }
            }
        }

        // run the scripts (prolog globals + body program)
        for module in &modules_compiled {
            let q = runtime::CompiledQuery {
                module: module.clone(),
                sctx: merged.clone(),
            };
            q.execute(&mut self.ctx)?;
            self.sync_views()?;
        }
        self.scripts = modules_compiled;
        // eval-snippet plans baked the old page functions in; stop
        // matching them
        self.script_version.set(self.script_version.get() + 1);
        Ok(js_sources)
    }

    pub fn page_window(&self) -> WindowId {
        self.host.borrow().page_window
    }

    pub fn page_doc(&self) -> DocId {
        match self.page_doc {
            Some(d) => d,
            None => panic!("no page loaded"),
        }
    }

    /// Registers an external (JavaScript) listener on a node — the §6.2
    /// co-existence path. Returns the handle.
    pub fn register_external_listener(
        &mut self,
        target: NodeRef,
        event_type: &str,
        f: impl FnMut(&DomEvent) + 'static,
    ) -> ListenerId {
        let mut host = self.host.borrow_mut();
        let id = host.events.fresh_listener_id();
        host.listeners
            .insert(id, ListenerKind::External(Rc::new(RefCell::new(f))));
        host.events.add_listener(target, event_type, id, false);
        id
    }

    /// Dispatches one DOM event synchronously (the Figure 1 loop body).
    pub fn dispatch(&mut self, event: &DomEvent) -> XdmResult<()> {
        self.ctx.reset_stack_base();
        dispatch_event_inner(&mut self.ctx, &self.host, event)
    }

    /// Convenience: a left-button click on a node.
    pub fn click(&mut self, target: NodeRef) -> XdmResult<()> {
        self.dispatch(&DomEvent::new("onclick", target))
    }

    /// Convenience: a key-up on a node (after the host has updated the
    /// node's `value` attribute).
    pub fn keyup(&mut self, target: NodeRef) -> XdmResult<()> {
        self.dispatch(&DomEvent::new("onkeyup", target))
    }

    /// Current virtual time of this plug-in's event loop, in milliseconds.
    pub fn now(&self) -> u64 {
        self.host.borrow().tasks.now()
    }

    /// Advances this plug-in's virtual clock without running tasks — a fleet
    /// driver uses it to keep many plug-ins on one shared timeline.
    pub fn advance_clock(&mut self, ms: u64) {
        self.host.borrow_mut().tasks.advance(ms);
    }

    /// Clicks the element with the given `id`, erroring if absent.
    pub fn click_id(&mut self, id: &str) -> XdmResult<()> {
        let target = self
            .element_by_id(id)
            .ok_or_else(|| XdmError::new("XQIB0006", format!("no element with id '{id}'")))?;
        self.click(target)
    }

    /// Host-side form input: sets an attribute on the element with the given
    /// `id` (e.g. a search box's `value` before dispatching `onkeyup`).
    pub fn set_attr_by_id(&mut self, id: &str, attr: &str, value: &str) -> XdmResult<()> {
        let target = self
            .element_by_id(id)
            .ok_or_else(|| XdmError::new("XQIB0006", format!("no element with id '{id}'")))?;
        let mut store = self.store.borrow_mut();
        store
            .doc_mut(target.doc)
            .set_attribute(target.node, QName::local(attr), value)
            .map_err(|e| XdmError::new("XQIB0006", format!("set_attr_by_id({id}): {e:?}")))?;
        Ok(())
    }

    /// Drains the event loop (async `behind` completions, queued events).
    /// Returns the number of tasks processed.
    pub fn run_until_idle(&mut self) -> XdmResult<u64> {
        let mut n = 0;
        loop {
            let task = self.host.borrow_mut().tasks.pop();
            let Some(task) = task else { break };
            n += 1;
            match task {
                PluginTask::Dispatch(ev) => self.dispatch(&ev)?,
                PluginTask::Behind {
                    call,
                    env,
                    listener,
                    attempt,
                    call_id,
                } => {
                    self.run_behind(&call, env, &listener, attempt, call_id)?;
                }
            }
            if n > 1_000_000 {
                return Err(XdmError::new("XQIB0005", "event loop runaway"));
            }
        }
        Ok(n)
    }

    /// Executes one attempt of a `behind` call: readyState 1 (loading)
    /// notification on the first attempt, the call itself, then readyState 4
    /// with the result (§4.4's AJAX model). A failed attempt discards its
    /// pending updates and is rescheduled with exponential backoff; once the
    /// retry policy is exhausted the call degrades (stale cache, synthetic
    /// `stale`/`error` DOM events) instead of erroring the event loop.
    fn run_behind(
        &mut self,
        call: &Rc<Expr>,
        env: Vec<(QName, Sequence)>,
        listener: &QName,
        attempt: u32,
        call_id: u64,
    ) -> XdmResult<()> {
        self.ctx.reset_stack_base();
        self.host.borrow_mut().recovery.stats.attempts += 1;
        if attempt == 1 {
            // readyState 1: request started, no result yet
            runtime::invoke(
                &mut self.ctx,
                listener,
                vec![vec![Item::integer(1)], vec![]],
            )?;
        }
        match self.eval_behind_call(call, &env) {
            Ok(result) => {
                xqib_xquery::eval::apply_pending(&mut self.ctx)?;
                self.host.borrow_mut().recovery.stats.completions += 1;
                // readyState 4: done
                runtime::invoke(
                    &mut self.ctx,
                    listener,
                    vec![vec![Item::integer(4)], result],
                )?;
                self.sync_views()
            }
            Err(_) => {
                // a failed attempt must not leak half-built page updates
                self.ctx.pul.take();
                let (max_attempts, delay) = {
                    let host = self.host.borrow();
                    (
                        host.recovery.policy.max_attempts,
                        host.recovery.policy.backoff_delay(attempt, call_id),
                    )
                };
                if attempt < max_attempts {
                    let mut host = self.host.borrow_mut();
                    host.recovery.stats.retries += 1;
                    host.tasks.schedule(
                        delay,
                        PluginTask::Behind {
                            call: call.clone(),
                            env,
                            listener: listener.clone(),
                            attempt: attempt + 1,
                            call_id,
                        },
                    );
                    Ok(())
                } else {
                    self.degrade_behind(call, &env, listener)
                }
            }
        }
    }

    /// Evaluates the `behind` call expression in its captured environment.
    fn eval_behind_call(&mut self, call: &Expr, env: &[(QName, Sequence)]) -> XdmResult<Sequence> {
        self.ctx.push_scope();
        for (name, value) in env {
            self.ctx.bind_var(name.clone(), value.clone());
        }
        let result = xqib_xquery::eval::eval_expr(&mut self.ctx, call);
        self.ctx.pop_scope();
        result
    }

    /// Retries exhausted: one stale-enabled pass over the call. A fresh
    /// success (e.g. the host healed between the last retry and now) still
    /// completes normally; a stale-cache hit becomes a single `stale` DOM
    /// event carrying the served payload; anything else becomes a single
    /// `error` DOM event. Exactly one of the three outcomes is delivered.
    fn degrade_behind(
        &mut self,
        call: &Expr,
        env: &[(QName, Sequence)],
        listener: &QName,
    ) -> XdmResult<()> {
        {
            let mut host = self.host.borrow_mut();
            host.recovery.serve_stale = true;
            host.recovery.stale_url = None;
        }
        let result = self.eval_behind_call(call, env);
        let stale_url = {
            let mut host = self.host.borrow_mut();
            host.recovery.serve_stale = false;
            host.recovery.stale_url.take()
        };
        match (result, stale_url) {
            (Ok(result), None) => {
                xqib_xquery::eval::apply_pending(&mut self.ctx)?;
                self.host.borrow_mut().recovery.stats.completions += 1;
                runtime::invoke(
                    &mut self.ctx,
                    listener,
                    vec![vec![Item::integer(4)], result],
                )?;
                self.sync_views()
            }
            (Ok(result), Some(url)) => {
                // the stale pass's own updates are applied (the call ran to
                // completion); the listener is told via the event instead of
                // a readyState-4 completion
                xqib_xquery::eval::apply_pending(&mut self.ctx)?;
                // document nodes are normalised to their root element: the
                // payload is deep-copied *under* the event node, where a
                // document node would be ill-formed
                let payload = result.iter().find_map(|i| i.as_node()).map(|n| {
                    let store = self.store.borrow();
                    let doc = store.doc(n.doc);
                    if matches!(doc.kind(n.node), NodeKind::Document { .. }) {
                        doc.children(n.node)
                            .iter()
                            .copied()
                            .find(|&c| matches!(doc.kind(c), NodeKind::Element { .. }))
                            .map(|c| NodeRef::new(n.doc, c))
                            .unwrap_or(n)
                    } else {
                        n
                    }
                });
                self.host.borrow_mut().recovery.stats.stale_events += 1;
                self.dispatch_degradation_event("stale", &url, payload)
            }
            (Err(err), _) => {
                self.ctx.pul.take();
                self.host.borrow_mut().recovery.stats.error_events += 1;
                let detail = format!("{} {}", err.code, err.message);
                self.dispatch_degradation_event("error", &detail, None)
            }
        }
    }

    /// Dispatches a synthetic degradation event at the page `<body>` (or the
    /// document root when there is no body). Listeners attached via
    /// `on event "stale"`/`"error"` observe it like any DOM event.
    fn dispatch_degradation_event(
        &mut self,
        event_type: &str,
        detail: &str,
        payload: Option<NodeRef>,
    ) -> XdmResult<()> {
        let target = self.first_element_named("body").or_else(|| {
            self.page_doc.map(|d| {
                let store = self.store.borrow();
                store.root(d)
            })
        });
        let Some(target) = target else {
            return Ok(()); // no page loaded: nothing to notify
        };
        let mut event = DomEvent::new(event_type, target);
        event.detail = detail.to_string();
        event.payload = payload;
        self.dispatch(&event)
    }

    /// Applies window-view write-backs to the BOM (status/name changes,
    /// `location/href` navigation).
    pub fn sync_views(&mut self) -> XdmResult<()> {
        let mut host = self.host.borrow_mut();
        let host = &mut *host;
        let store = self.store.borrow();
        for view in &host.views {
            let _navigations = window_xml::sync_view(&store, &mut host.browser, view);
        }
        Ok(())
    }

    /// All alert messages shown so far.
    pub fn alerts(&self) -> Vec<String> {
        self.host
            .borrow()
            .browser
            .alerts()
            .into_iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Finds an element in the page by `id` attribute.
    pub fn element_by_id(&self, id: &str) -> Option<NodeRef> {
        let store = self.store.borrow();
        let doc_id = self.page_doc?;
        let doc = store.doc(doc_id);
        doc.descendants_or_self(doc.root())
            .into_iter()
            .find(|&n| doc.get_attribute(n, None, "id") == Some(id))
            .map(|n| NodeRef::new(doc_id, n))
    }

    /// Finds the first element with the given local name.
    pub fn first_element_named(&self, local: &str) -> Option<NodeRef> {
        let store = self.store.borrow();
        let doc_id = self.page_doc?;
        let doc = store.doc(doc_id);
        doc.descendants_or_self(doc.root())
            .into_iter()
            .find(|&n| {
                doc.element_name(n)
                    .map(|q| &*q.local == local)
                    .unwrap_or(false)
            })
            .map(|n| NodeRef::new(doc_id, n))
    }

    /// Serialises the current page DOM.
    pub fn serialize_page(&self) -> String {
        let store = self.store.borrow();
        xqib_dom::serialize::serialize_document(store.doc(self.page_doc()))
    }

    /// Runs an ad-hoc XQuery snippet against the live page (the context
    /// item is the page document). Useful in tests and examples.
    pub fn eval(&mut self, src: &str) -> XdmResult<Sequence> {
        self.ctx.reset_stack_base();
        // the fingerprint covers everything the snippet compilation reads
        // besides its text: the module registry and (via the version
        // counter) the page functions merged in below
        let fp = plancache::mix(
            plancache::static_fingerprint(&self.modules, true),
            self.script_version.get(),
        );
        let plan = {
            let modules = &self.modules;
            let page_sctx = self.ctx.sctx.clone();
            self.plans.borrow_mut().get_or_compile(src, fp, || {
                let q = runtime::compile_with(src, modules, true)?;
                // merge page functions so snippets can call local: listeners
                let mut merged = StaticContext {
                    browser_profile: true,
                    ..Default::default()
                };
                for f in page_sctx.functions.values() {
                    merged.declare_function((**f).clone());
                }
                for f in q.sctx.functions.values() {
                    merged.declare_function((**f).clone());
                }
                Ok(lower(&runtime::CompiledQuery {
                    module: q.module,
                    sctx: Rc::new(merged),
                }))
            })?
        };
        let saved = self.ctx.sctx.clone();
        self.ctx.sctx = plan.static_context().clone();
        let r = plan.execute(&mut self.ctx);
        self.ctx.sctx = saved;
        let out = r?;
        self.sync_views()?;
        Ok(out)
    }

    /// Renders a result sequence as text (nodes serialise to markup).
    pub fn render(&self, seq: &Sequence) -> String {
        runtime::render_sequence(&self.ctx, seq)
    }
}

/// How one isolated listener invocation ended.
#[derive(Debug)]
pub enum ListenerRun {
    /// Returned normally; its pending updates were applied.
    Completed,
    /// Raised a dynamic error; context repaired, pending updates discarded.
    Failed(XdmError),
    /// Panicked; the unwind was caught at the dispatch boundary.
    Panicked(String),
}

/// Core of the dispatch loop: plan the propagation path, invoke listeners.
///
/// Every listener runs isolated: a dynamic error or panic never unwinds
/// through the loop. Failures are recorded against the listener's
/// quarantine guard and surface as a synthetic `error` DOM event queued on
/// the event loop (observable after the next drain); the remaining
/// listeners of the plan still fire. Quarantined listeners are skipped.
pub fn dispatch_event_inner(
    ctx: &mut DynamicContext,
    host: &Rc<RefCell<HostState>>,
    event: &DomEvent,
) -> XdmResult<()> {
    let plan: Vec<DispatchStep> = {
        let mut host_mut = host.borrow_mut();
        let store = ctx.store.borrow();
        host_mut.events.dispatch_plan(&store, event)
    };
    for step in plan {
        let kind = host.borrow().listeners.get(&step.listener).cloned();
        let Some(kind) = kind else { continue };
        let admitted = {
            let mut h = host.borrow_mut();
            let now = h.tasks.now();
            h.quarantine.allow(step.listener, now)
        };
        if !admitted {
            continue; // quarantined: contained out of the dispatch plan
        }
        let budget = host.borrow().isolation.listener_fuel;
        ctx.set_fuel(budget);
        let outcome = run_listener_isolated(ctx, host, &kind, event, step.current_target);
        ctx.set_fuel(None);
        match outcome {
            ListenerRun::Completed => {
                host.borrow_mut().quarantine.on_success(step.listener);
            }
            ListenerRun::Failed(err) => {
                record_listener_failure(host, step.listener, false, err.code == "XQIB0011");
                raise_error_event(ctx, host, event, format!("{} {}", err.code, err.message));
            }
            ListenerRun::Panicked(msg) => {
                record_listener_failure(host, step.listener, true, false);
                raise_error_event(ctx, host, event, format!("panic {msg}"));
            }
        }
    }
    Ok(())
}

/// Invokes one listener behind `catch_unwind`, repairing the dynamic
/// context (scope/barrier stacks, focus, call depth) and discarding the
/// half-built pending update list when the listener does not return
/// normally. The context checkpoint plus the transactional PUL apply make
/// a failed listener invisible to engine state and DOM alike.
fn run_listener_isolated(
    ctx: &mut DynamicContext,
    host: &Rc<RefCell<HostState>>,
    kind: &ListenerKind,
    event: &DomEvent,
    current_target: NodeRef,
) -> ListenerRun {
    let checkpoint = ctx.checkpoint();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        invoke_listener(ctx, host, kind, event, current_target)
    }));
    match result {
        Ok(Ok(())) => ListenerRun::Completed,
        Ok(Err(err)) => {
            ctx.restore(&checkpoint);
            ctx.pul.take();
            ListenerRun::Failed(err)
        }
        Err(payload) => {
            ctx.restore(&checkpoint);
            ctx.pul.take();
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "listener panicked".to_string()
            };
            ListenerRun::Panicked(msg)
        }
    }
}

/// Books a failed invocation against the listener's quarantine guard.
fn record_listener_failure(
    host: &Rc<RefCell<HostState>>,
    listener: ListenerId,
    panicked: bool,
    fuel_exhausted: bool,
) {
    let mut h = host.borrow_mut();
    let now = h.tasks.now();
    if panicked {
        h.quarantine.stats.listener_panics += 1;
    } else {
        h.quarantine.stats.listener_errors += 1;
    }
    if fuel_exhausted {
        h.quarantine.stats.fuel_exhausted += 1;
    }
    h.quarantine.on_failure(listener, now);
}

/// Queues a synthetic `error` DOM event for a failed listener, delivered at
/// the `<body>` (or document root) of the failed event's document — the
/// same shape as the network degradation events. Queuing on the event loop
/// (rather than dispatching synchronously) bounds error-listener recursion:
/// an error listener that itself keeps failing is quarantined after the
/// usual threshold, at which point no further events are generated.
fn raise_error_event(
    ctx: &mut DynamicContext,
    host: &Rc<RefCell<HostState>>,
    failed: &DomEvent,
    detail: String,
) {
    let doc_id = failed.target.doc;
    let target = {
        let store = ctx.store.borrow();
        let doc = store.doc(doc_id);
        doc.descendants_or_self(doc.root())
            .into_iter()
            .find(|&n| {
                doc.element_name(n)
                    .map(|q| &*q.local == "body")
                    .unwrap_or(false)
            })
            .map(|n| NodeRef::new(doc_id, n))
            .unwrap_or_else(|| NodeRef::new(doc_id, doc.root()))
    };
    let mut ev = DomEvent::new("error", target);
    ev.detail = detail;
    host.borrow_mut()
        .tasks
        .schedule(0, PluginTask::Dispatch(ev));
}

/// Invokes a single listener of whatever kind.
fn invoke_listener(
    ctx: &mut DynamicContext,
    host: &Rc<RefCell<HostState>>,
    kind: &ListenerKind,
    event: &DomEvent,
    current_target: NodeRef,
) -> XdmResult<()> {
    match kind {
        ListenerKind::XQuery(name) => {
            let evt_node = build_event_node(ctx, event)?;
            runtime::invoke(
                ctx,
                name,
                vec![vec![Item::Node(evt_node)], vec![Item::Node(current_target)]],
            )?;
            sync_views_static(ctx, host)?;
            Ok(())
        }
        ListenerKind::XQueryInline(expr) => {
            let evt_node = build_event_node(ctx, event)?;
            ctx.push_scope();
            ctx.bind_var(QName::local("event"), vec![Item::Node(evt_node)]);
            // $value = the target's `value` attribute (form input model)
            let value = {
                let store = ctx.store.borrow();
                store
                    .doc(current_target.doc)
                    .get_attribute(current_target.node, None, "value")
                    .unwrap_or("")
                    .to_string()
            };
            ctx.bind_var(QName::local("value"), vec![Item::string(value)]);
            let r = ctx.with_focus(Item::Node(current_target), 1, 1, |ctx| {
                xqib_xquery::eval::eval_expr(ctx, expr)
            });
            ctx.pop_scope();
            r?;
            xqib_xquery::eval::apply_pending(ctx)?;
            sync_views_static(ctx, host)?;
            Ok(())
        }
        ListenerKind::External(f) => {
            (f.borrow_mut())(event);
            Ok(())
        }
    }
}

fn sync_views_static(ctx: &DynamicContext, host: &Rc<RefCell<HostState>>) -> XdmResult<()> {
    let mut host = host.borrow_mut();
    let host = &mut *host;
    let store = ctx.store.borrow();
    for view in &host.views {
        let _ = window_xml::sync_view(&store, &mut host.browser, view);
    }
    Ok(())
}

/// Builds the `$evt` event node (§4.3.2): an XML element carrying the same
/// information as a DOM Event object.
pub fn build_event_node(ctx: &mut DynamicContext, event: &DomEvent) -> XdmResult<NodeRef> {
    let doc_id = ctx.construction_doc;
    let mut store = ctx.store.borrow_mut();
    let doc = store.doc_mut(doc_id);
    let elem = doc.create_element(QName::local("event"));
    let fields: [(&str, String); 6] = [
        ("type", event.event_type.clone()),
        ("altKey", event.alt_key.to_string()),
        ("ctrlKey", event.ctrl_key.to_string()),
        ("shiftKey", event.shift_key.to_string()),
        ("button", event.button.to_string()),
        ("detail", event.detail.clone()),
    ];
    for (name, value) in fields {
        let f = doc.create_element(QName::local(name));
        doc.append_child(elem, f)
            .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
        if !value.is_empty() {
            let t = doc.create_text(value);
            doc.append_child(f, t)
                .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
        }
    }
    // events may carry a document payload (stale-cache responses): deep-copy
    // it under a <payload> child so listeners read it as $evt/payload/*
    if let Some(p) = event.payload {
        let wrapper = doc.create_element(QName::local("payload"));
        doc.append_child(elem, wrapper)
            .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
        let copy = store.copy_node_between(p, doc_id);
        store
            .doc_mut(doc_id)
            .append_child(wrapper, copy)
            .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
    }
    Ok(NodeRef::new(doc_id, elem))
}

/// Parses a listener name string like `"local:myListener"` into a QName
/// (the high-order-function registration path of §5.1).
pub fn parse_listener_name(name: &str) -> QName {
    match name.split_once(':') {
        Some(("local", l)) => QName::ns(LOCAL_NS, l),
        Some((p, l)) => QName::full(Some(p), Some(p), l), // ns == prefix heuristically
        None => QName::ns(LOCAL_NS, name),
    }
}
