//! Materialisation of the Browser Object Model as XML window nodes (§4.2).
//!
//! `browser:top()` / `browser:self()` return XML elements shaped exactly as
//! the paper's example:
//!
//! ```xml
//! <window name="top_window">
//!   <status>Welcome</status>
//!   <location><href>http://…</href>…</location>
//!   <frames> <window name="child1">…</window> … </frames>
//! </window>
//! ```
//!
//! Every view is built **at call time** ("pull") with a same-origin check
//! per window: a window the actor may not access materialises as a bare
//! `<window/>` carrying no name, no status and no location — "it is
//! impossible to learn anything about the new location of this window"
//! (§4.2.1). Views are *writable*: the plug-in records which view nodes
//! mirror which BOM fields and propagates `replace value of node …` updates
//! back into the browser after each query/listener (`sync` write-back),
//! including navigation when `location/href` changes.

use xqib_browser::bom::Browser;
use xqib_browser::security::{AccessPolicy, SameOriginPolicy};
use xqib_browser::WindowId;
use xqib_dom::{DocId, NodeId, NodeRef, QName, Store};

/// A BOM field mirrored by a view node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowField {
    Status,
    Href,
    Name,
}

/// One write-back binding: this view node's string value mirrors the field
/// of the window.
#[derive(Debug, Clone, Copy)]
pub struct ViewBinding {
    pub node: NodeRef,
    pub window: WindowId,
    pub field: WindowField,
}

/// Mapping from a materialised `<window>` element to its window (used by
/// `browser:document($w)` and the event functions).
#[derive(Debug, Clone, Copy)]
pub struct WindowElem {
    pub node: NodeRef,
    pub window: WindowId,
    /// whether the actor passed the security check for this window
    pub accessible: bool,
}

/// The output of one materialisation.
#[derive(Debug, Default)]
pub struct WindowView {
    pub bindings: Vec<ViewBinding>,
    pub window_elems: Vec<WindowElem>,
}

/// Materialises the window subtree rooted at `root` into a fresh document
/// in `store`, as seen by code running in window `actor`. Returns the root
/// `<window>` element and the view metadata.
pub fn materialize_window(
    store: &mut Store,
    browser: &Browser,
    actor: WindowId,
    root: WindowId,
) -> (NodeRef, WindowView) {
    let doc_id = store.new_document(None);
    let mut view = WindowView::default();
    let actor_origin = browser.origin_of(actor);
    let root_elem = build_window_elem(store, doc_id, browser, &actor_origin, root, &mut view);
    let root_node = NodeRef::new(doc_id, root_elem);
    let d = store.doc_mut(doc_id);
    let r = d.root();
    d.append_child(r, root_elem)
        .expect("fresh doc accepts a root element");
    (root_node, view)
}

fn build_window_elem(
    store: &mut Store,
    doc_id: DocId,
    browser: &Browser,
    actor_origin: &xqib_browser::Origin,
    win: WindowId,
    view: &mut WindowView,
) -> NodeId {
    let policy = SameOriginPolicy;
    let data = browser.window(win);
    let accessible = policy.allows(actor_origin, &data.location.origin());
    let doc = store.doc_mut(doc_id);
    let elem = doc.create_element(QName::local("window"));
    view.window_elems.push(WindowElem {
        node: NodeRef::new(doc_id, elem),
        window: win,
        accessible,
    });
    if !accessible {
        // the check failed: the window node exposes nothing (§4.2.1)
        return elem;
    }
    doc.set_attribute(elem, QName::local("name"), data.name.clone())
        .expect("fresh element accepts attributes");
    view.bindings.push(ViewBinding {
        node: NodeRef::new(
            doc_id,
            doc.attribute_node(elem, None, "name").expect("just set"),
        ),
        window: win,
        field: WindowField::Name,
    });

    // <status>
    let status = doc.create_element(QName::local("status"));
    doc.append_child(elem, status).expect("append status");
    if !data.status.is_empty() {
        let t = doc.create_text(data.status.clone());
        doc.append_child(status, t).expect("append status text");
    }
    view.bindings.push(ViewBinding {
        node: NodeRef::new(doc_id, status),
        window: win,
        field: WindowField::Status,
    });

    // <location><href/><protocol/><host/><port/><pathname/><search/></location>
    let location = doc.create_element(QName::local("location"));
    doc.append_child(elem, location).expect("append location");
    let fields: [(&str, String); 6] = [
        ("href", data.location.href.clone()),
        ("protocol", data.location.protocol()),
        ("host", data.location.host()),
        ("port", data.location.port().to_string()),
        ("pathname", data.location.pathname()),
        ("search", data.location.search()),
    ];
    for (name, value) in fields {
        let f = doc.create_element(QName::local(name));
        doc.append_child(location, f)
            .expect("append location field");
        if !value.is_empty() {
            let t = doc.create_text(value);
            doc.append_child(f, t).expect("append location text");
        }
        if name == "href" {
            view.bindings.push(ViewBinding {
                node: NodeRef::new(doc_id, f),
                window: win,
                field: WindowField::Href,
            });
        }
    }

    // <lastModified>
    let lm = doc.create_element(QName::local("lastModified"));
    doc.append_child(elem, lm).expect("append lastModified");
    let t = doc.create_text(data.last_modified.clone());
    doc.append_child(lm, t).expect("append lastModified text");

    // <frames> <window/>* </frames>
    let frames = doc.create_element(QName::local("frames"));
    doc.append_child(elem, frames).expect("append frames");
    let child_ids: Vec<WindowId> = data.frames.clone();
    for child in child_ids {
        let child_elem = build_window_elem(store, doc_id, browser, actor_origin, child, view);
        store
            .doc_mut(doc_id)
            .append_child(frames, child_elem)
            .expect("append child window");
    }
    elem
}

/// Materialises the `screen` object (§4.2.2).
pub fn materialize_screen(store: &mut Store, browser: &Browser) -> NodeRef {
    let doc_id = store.new_document(None);
    let doc = store.doc_mut(doc_id);
    let elem = doc.create_element(QName::local("screen"));
    let root = doc.root();
    doc.append_child(root, elem).expect("append screen");
    let s = &browser.screen;
    let fields: [(&str, String); 5] = [
        ("width", s.width.to_string()),
        ("height", s.height.to_string()),
        ("availWidth", s.avail_width.to_string()),
        ("availHeight", s.avail_height.to_string()),
        ("colorDepth", s.color_depth.to_string()),
    ];
    for (name, value) in fields {
        let f = doc.create_element(QName::local(name));
        doc.append_child(elem, f).expect("append screen field");
        let t = doc.create_text(value);
        doc.append_child(f, t).expect("append screen text");
    }
    NodeRef::new(doc_id, elem)
}

/// Materialises the `navigator` object (§4.2.2).
pub fn materialize_navigator(store: &mut Store, browser: &Browser) -> NodeRef {
    let doc_id = store.new_document(None);
    let doc = store.doc_mut(doc_id);
    let elem = doc.create_element(QName::local("navigator"));
    let root = doc.root();
    doc.append_child(root, elem).expect("append navigator");
    let n = &browser.navigator;
    let fields: [(&str, &str); 5] = [
        ("appName", &n.app_name),
        ("appVersion", &n.app_version),
        ("userAgent", &n.user_agent),
        ("platform", &n.platform),
        ("language", &n.language),
    ];
    for (name, value) in fields {
        let f = doc.create_element(QName::local(name));
        doc.append_child(elem, f).expect("append navigator field");
        let t = doc.create_text(value.to_string());
        doc.append_child(f, t).expect("append navigator text");
    }
    NodeRef::new(doc_id, elem)
}

/// Write-back: propagates changes made to view nodes back into the BOM.
/// Returns the list of windows that were *navigated* (href changed), so the
/// plug-in can reload them.
pub fn sync_view(
    store: &Store,
    browser: &mut Browser,
    view: &WindowView,
) -> Vec<(WindowId, String)> {
    let mut navigations = Vec::new();
    for b in &view.bindings {
        let doc = store.doc(b.node.doc);
        let current = doc.string_value(b.node.node);
        match b.field {
            WindowField::Status => {
                if browser.window(b.window).status != current {
                    browser.window_mut(b.window).status = current;
                }
            }
            WindowField::Href => {
                if browser.window(b.window).location.href != current && !current.is_empty() {
                    navigations.push((b.window, current.clone()));
                    browser.navigate(b.window, &current);
                }
            }
            WindowField::Name => {
                if browser.window(b.window).name != current && !current.is_empty() {
                    browser.window_mut(b.window).name = current;
                }
            }
        }
    }
    navigations
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::serialize::serialize_node;

    fn setup() -> (Store, Browser, WindowId, WindowId, WindowId) {
        let mut b = Browser::new("top_window", "http://www.dbis.ethz.ch/");
        let top = b.top();
        let left = b.create_frame(top, "leftframe", "http://www.dbis.ethz.ch/left");
        let evil = b.create_frame(top, "evilframe", "http://evil.example/");
        b.window_mut(top).status = "Welcome".to_string();
        (Store::new(), b, top, left, evil)
    }

    #[test]
    fn view_shape_matches_paper_example() {
        let (mut store, browser, top, _, _) = setup();
        let (root, _view) = materialize_window(&mut store, &browser, top, top);
        let xml = serialize_node(store.doc(root.doc), root.node);
        assert!(xml.starts_with("<window name=\"top_window\">"));
        assert!(xml.contains("<status>Welcome</status>"));
        assert!(xml.contains("<href>http://www.dbis.ethz.ch/</href>"));
        assert!(xml.contains("<frames><window name=\"leftframe\">"));
        assert!(xml.contains("<lastModified>"));
    }

    #[test]
    fn cross_origin_window_is_opaque() {
        let (mut store, browser, top, _, evil) = setup();
        let (_root, view) = materialize_window(&mut store, &browser, top, top);
        let evil_elem = view
            .window_elems
            .iter()
            .find(|w| w.window == evil)
            .expect("evil frame materialised");
        assert!(!evil_elem.accessible);
        let doc = store.doc(evil_elem.node.doc);
        assert!(doc.children(evil_elem.node.node).is_empty(), "no children");
        assert!(doc.attributes(evil_elem.node.node).is_empty(), "no name");
    }

    #[test]
    fn same_origin_frame_is_open_to_sibling() {
        let (mut store, browser, _top, left, _evil) = setup();
        // code in the left frame reads the top tree: same origin → open
        let (root, view) = materialize_window(&mut store, &browser, left, browser.top());
        let xml = serialize_node(store.doc(root.doc), root.node);
        assert!(xml.contains("leftframe"));
        assert!(view.window_elems.iter().filter(|w| w.accessible).count() >= 2);
    }

    #[test]
    fn status_write_back() {
        let (mut store, mut browser, top, _, _) = setup();
        let (_root, view) = materialize_window(&mut store, &browser, top, top);
        let status_binding = view
            .bindings
            .iter()
            .find(|b| b.field == WindowField::Status && b.window == top)
            .expect("status binding");
        store
            .doc_mut(status_binding.node.doc)
            .replace_element_value(status_binding.node.node, "Changed!")
            .unwrap();
        let navs = sync_view(&store, &mut browser, &view);
        assert!(navs.is_empty());
        assert_eq!(browser.window(top).status, "Changed!");
    }

    #[test]
    fn href_write_back_navigates() {
        let (mut store, mut browser, top, left, _) = setup();
        let (_root, view) = materialize_window(&mut store, &browser, top, top);
        let href = view
            .bindings
            .iter()
            .find(|b| b.field == WindowField::Href && b.window == left)
            .expect("href binding");
        store
            .doc_mut(href.node.doc)
            .replace_element_value(href.node.node, "http://www.dbis.ethz.ch/new")
            .unwrap();
        let navs = sync_view(&store, &mut browser, &view);
        assert_eq!(
            navs,
            vec![(left, "http://www.dbis.ethz.ch/new".to_string())]
        );
        assert_eq!(
            browser.window(left).location.href,
            "http://www.dbis.ethz.ch/new"
        );
        assert_eq!(browser.window(left).history.len(), 2);
    }

    #[test]
    fn screen_and_navigator_views() {
        let (mut store, browser, _, _, _) = setup();
        let s = materialize_screen(&mut store, &browser);
        let xml = serialize_node(store.doc(s.doc), s.node);
        assert!(xml.contains("<width>1280</width>"));
        assert!(xml.contains("<height>1024</height>"));
        let n = materialize_navigator(&mut store, &browser);
        let xml = serialize_node(store.doc(n.doc), n.node);
        assert!(xml.contains("<appName>Microsoft Internet Explorer</appName>"));
    }

    #[test]
    fn stale_views_are_not_refreshed() {
        // a view is a pull snapshot: after navigation to another origin a
        // NEW materialisation hides the window, while the old snapshot keeps
        // only the stale (now useless) data
        let (mut store, mut browser, top, left, _) = setup();
        let (_r1, _v1) = materialize_window(&mut store, &browser, top, top);
        browser.navigate(left, "http://elsewhere.example/");
        let (_r2, v2) = materialize_window(&mut store, &browser, top, top);
        let left_elem = v2
            .window_elems
            .iter()
            .find(|w| w.window == left)
            .expect("left frame in new view");
        assert!(!left_elem.accessible, "new view hides the navigated frame");
    }
}
