//! # xqib-core — the XQuery-in-the-Browser plug-in
//!
//! The paper's primary contribution (§4–§5): an XQuery execution environment
//! embedded in the browser. This crate wires the `xqib-xquery` engine to the
//! `xqib-browser` substrate exactly as Figure 1 describes:
//!
//! 1. the browser parses the XHTML page and renders the DOM;
//! 2. the plug-in extracts the `<script type="text/xquery">` prolog and
//!    main query and hands them to the engine, whose XDM store **wraps the
//!    live DOM** — reading/writing the XDM reads/writes the page;
//! 3. the main query runs, typically registering event listeners through
//!    the paper's `on event … attach listener` syntax (or the high-order
//!    `browser:addEventListener` function, the Zorba-era workaround of
//!    §5.1 — both are implemented);
//! 4. the plug-in loops: browser event → dispatch plan (DOM L3 capture/
//!    target/bubble) → listener invocation in the engine → pending updates
//!    applied to the DOM → next event.
//!
//! The `browser:` function library of §4.2 is registered into the engine's
//! dynamic context ([`bindings`]), the BOM is materialised as XML window
//! nodes with same-origin checks ([`window_xml`]), asynchronous `behind`
//! calls are bridged onto the event loop ([`plugin`]), and JavaScript
//! co-existence (§6.2) is supported through external listeners that share
//! the same DOM and the same dispatch machinery.

pub mod bindings;
pub mod plugin;
pub mod samples;
pub mod window_xml;

pub use plugin::{ListenerKind, Plugin, PluginConfig};
